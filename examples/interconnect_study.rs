//! The interconnect study: how much does the Enhanced Communicator (EC)
//! fabric matter, and for which workloads? (Paper §III-C/§III-G: CSP-2
//! with and without EC isolate the interconnect variable.)
//!
//! Sweeps rank counts on CSP-2 vs CSP-2 EC for the communication-heavy
//! cylinder and the communication-light cerebral tree, showing where the
//! better fabric pays and where it is wasted money.
//!
//! Run: `cargo run --release --example interconnect_study`

use hemocloud::prelude::*;
use hemocloud_cluster::exec::{simulate_geometry, Overheads};
use hemocloud_cluster::pricing::PriceSheet;
use hemocloud_geometry::voxel::VoxelGrid;
use hemocloud_lbm::kernel::KernelConfig;

fn main() {
    let geometries: Vec<(&str, VoxelGrid)> = vec![
        (
            "cylinder (high comm)",
            CylinderSpec::default().with_resolution(24).build(),
        ),
        (
            "cerebral (low comm)",
            CerebralSpec::default()
                .with_generations(5)
                .with_resolution(16)
                .build(),
        ),
    ];
    let no_ec = Platform::csp2();
    let ec = Platform::csp2_ec();
    let cfg = KernelConfig::harvey();
    let overheads = Overheads::default();
    let prices = PriceSheet::default();
    let steps = 10_000u64;

    for (name, grid) in &geometries {
        println!("\n{name}: {} fluid points", grid.fluid_count());
        println!(
            "{:>6} {:>14} {:>14} {:>10} {:>16}",
            "ranks", "CSP-2 MFLUPS", "EC MFLUPS", "EC gain", "EC $/M-updates"
        );
        for ranks in [36usize, 72, 108, 144] {
            let a = simulate_geometry(&no_ec, grid, &cfg, ranks, steps, &overheads, 5, 0.0)
                .expect("feasible");
            let b = simulate_geometry(&ec, grid, &cfg, ranks, steps, &overheads, 5, 0.0)
                .expect("feasible");
            let gain = b.mflups / a.mflups - 1.0;
            let cost_b = prices.run_cost(&ec, &b);
            let updates = grid.fluid_count() as f64 * steps as f64 / 1e6;
            println!(
                "{ranks:>6} {:>14.1} {:>14.1} {:>9.1}% {:>16.6}",
                a.mflups,
                b.mflups,
                100.0 * gain,
                cost_b / updates
            );
        }
    }

    println!(
        "\nReading: the EC fabric's 2.65 µs / 212 MB/s advantage matters on the \
         communication-heavy cylinder at multi-node scale and barely registers \
         within a node or on low-communication anatomies — paying for EC is a \
         workload decision, which is exactly what the dashboard automates."
    );
}

//! The CSP Option Dashboard — the paper's Fig. 1 framework end to end.
//!
//! Phase 1 (top of Fig. 1): characterize every cloud-service-provider
//! instance type with microbenchmarks and fit the hardware models.
//! Phase 2 (bottom): given a patient-specific anatomy, predict every
//! (instance, rank-count) option's throughput, time and cost, and
//! recommend under the user's objective.
//!
//! Run: `cargo run --release --example csp_dashboard`

use hemocloud::prelude::*;
use hemocloud_cluster::pricing::PriceSheet;
use hemocloud_core::characterize::characterize_all;

fn main() {
    // Phase 1: the CSP Option Dashboard's hardware side.
    println!("Characterizing all Table I platforms (simulated microbenchmarks)...");
    let characterizations = characterize_all(2023);
    for c in &characterizations {
        println!(
            "  {:>11}: node BW {:>7.0} MB/s @ {} cores | internodal {:>6.0} MB/s, {:>5.1} µs",
            c.platform.abbrev,
            c.node_bandwidth(c.platform.cores_per_node),
            c.platform.cores_per_node,
            c.internodal_fit.bandwidth_mb_s,
            c.internodal_fit.latency_us,
        );
    }

    // Phase 2: anatomy-specific predictions.
    let aorta = AortaSpec::default().with_resolution(20).build();
    let steps = 200_000u64; // a clinically sized steady-flow study
    let workload = Workload::harvey(&aorta, steps);
    println!(
        "\nWorkload: {} — {} fluid points x {steps} steps",
        workload.name,
        workload.points()
    );

    let rank_options = [16usize, 32, 48, 64, 128, 144, 512];
    let prices = PriceSheet::default();
    let dashboard = Dashboard::build(&characterizations, &workload, &rank_options, &prices);

    println!("\n{:-^88}", " CSP Option Dashboard ");
    println!(
        "{:>12} {:>6} {:>6} {:>10} {:>12} {:>10} {:>14}",
        "Platform", "Ranks", "Nodes", "MFLUPS", "Time (s)", "Cost ($)", "Updates/$"
    );
    for e in &dashboard.entries {
        println!(
            "{:>12} {:>6} {:>6} {:>10.1} {:>12.1} {:>10.4} {:>14.3e}",
            e.platform,
            e.ranks,
            e.nodes,
            e.predicted_mflups,
            e.time_to_solution_s,
            e.cost_dollars,
            e.updates_per_dollar
        );
    }

    // Objective-driven recommendations.
    println!("\nRecommendations:");
    let fastest = dashboard
        .recommend(Objective::MaxThroughput)
        .expect("non-empty dashboard");
    println!(
        "  Max throughput : {} @ {} ranks — {:.1} s, ${:.4}",
        fastest.platform, fastest.ranks, fastest.time_to_solution_s, fastest.cost_dollars
    );
    let cheapest = dashboard
        .recommend(Objective::MinCost)
        .expect("non-empty dashboard");
    println!(
        "  Min cost       : {} @ {} ranks — {:.1} s, ${:.4}",
        cheapest.platform, cheapest.ranks, cheapest.time_to_solution_s, cheapest.cost_dollars
    );
    let deadline = fastest.time_to_solution_s * 2.0;
    match dashboard.recommend(Objective::Deadline(deadline)) {
        Some(e) => println!(
            "  Within {:.0} s   : {} @ {} ranks — {:.1} s, ${:.4}",
            deadline, e.platform, e.ranks, e.time_to_solution_s, e.cost_dollars
        ),
        None => println!("  Within {deadline:.0} s: no option meets the deadline"),
    }

    // The Eq. 17 relative-value view at a fixed rank count.
    let ranks = 128;
    let entries: Vec<(String, f64)> = dashboard
        .entries
        .iter()
        .filter(|e| e.ranks == ranks)
        .map(|e| (e.platform.clone(), e.predicted_mflups))
        .collect();
    if entries.len() >= 2 {
        let matrix = relative_value_matrix(&entries);
        println!("\nRelative value r_B,A at {ranks} ranks (rows B, columns A):");
        print!("{:>12}", "");
        for l in &matrix.labels {
            print!("{l:>12}");
        }
        println!();
        for (b, l) in matrix.labels.iter().enumerate() {
            print!("{l:>12}");
            for a in 0..matrix.labels.len() {
                print!("{:>12.4}", matrix.get(b, a));
            }
            println!();
        }
        println!(
            "Best platform at {ranks} ranks: {}",
            matrix.labels[matrix.best()]
        );
    }
}

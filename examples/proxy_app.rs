//! The lbm-proxy-app analog on this machine: run every kernel variant
//! (AA/AB propagation x SoA/AoS layout x rolled/unrolled loops) on a real
//! cylinder flow, report *measured host* MFLUPS, and validate the physics
//! against the analytic Poiseuille solution.
//!
//! Run: `cargo run --release --example proxy_app`

use hemocloud_lbm::kernel::{KernelConfig, Layout, Propagation};
use hemocloud_lbm::proxy::ProxyApp;

fn main() {
    let diameter = 40;
    let length = 60;
    let tau = 0.8;
    let gravity = 1e-6;
    let warmup = 20u64;
    let measured_steps = 60u64;

    println!("lbm-proxy-app analog: {diameter}-voxel cylinder x {length}, tau={tau}\n");
    println!(
        "{:<16} {:>10} {:>12} {:>12}",
        "Variant", "MFLUPS", "steps/s", "fluid cells"
    );

    let mut results = Vec::new();
    for prop in [Propagation::Aa, Propagation::Ab] {
        for layout in [Layout::Soa, Layout::Aos] {
            for unrolled in [true, false] {
                let cfg = KernelConfig::proxy(layout, prop, unrolled);
                let mut app = ProxyApp::new(diameter, length, cfg, tau, gravity);
                app.run(warmup);
                let stats = app.run(measured_steps);
                println!(
                    "{:<16} {:>10.2} {:>12.1} {:>12}",
                    cfg.name().replace("/dense/f64", "")
                        + if unrolled { "+unroll" } else { "" },
                    stats.mflups,
                    measured_steps as f64 / stats.seconds,
                    app.fluid_count()
                );
                results.push((cfg, stats.mflups));
            }
        }
    }

    // Physics validation on one variant run to steady state.
    println!("\nValidating Poiseuille physics (AB/AoS, small cylinder)...");
    let cfg = KernelConfig::proxy(Layout::Aos, Propagation::Ab, true);
    let mut app = ProxyApp::new(14, 8, cfg, 0.9, 2e-6);
    app.run(4000);
    let peak = app
        .velocity_profile()
        .iter()
        .map(|&(_, u)| u)
        .fold(0.0f64, f64::max);
    let analytic = app.analytic_peak_velocity();
    println!(
        "  peak axial velocity {:.6} lu/step vs analytic {:.6} ({:+.1}% error)",
        peak,
        analytic,
        100.0 * (peak - analytic) / analytic
    );
    assert!(
        ((peak - analytic) / analytic).abs() < 0.15,
        "Poiseuille validation failed"
    );
    println!("  profile is parabolic within bounce-back staircase error. OK");
}

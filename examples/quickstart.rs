//! Quickstart: the whole hemocloud pipeline on one small case.
//!
//! 1. Build a patient-like vessel geometry and *actually solve* blood flow
//!    in it with the D3Q19 lattice Boltzmann solver.
//! 2. Characterize a (simulated) cloud platform from microbenchmarks.
//! 3. Predict the throughput a large run would achieve there.
//! 4. Compare against the simulated testbed's "measured" value and derive
//!    a cost-overrun guard.
//!
//! Run: `cargo run --release --example quickstart`

use hemocloud::prelude::*;
use hemocloud_cluster::exec::{simulate_geometry, Overheads};
use hemocloud_lbm::mesh::FluidMesh;
use hemocloud_lbm::solver::SolverConfig;

fn main() {
    // --- 1. Geometry + real flow solution -----------------------------
    let grid = CylinderSpec::default()
        .with_dimensions(4.0, 24.0)
        .with_resolution(20)
        .build();
    println!(
        "Geometry: idealized vessel, {} fluid points in a {:?} grid",
        grid.fluid_count(),
        grid.dims()
    );

    let mesh = FluidMesh::build(&grid);
    let mut solver = Solver::new(mesh, SolverConfig::default());
    let stats = solver.run(300);
    let vmax = solver.max_velocity();
    println!(
        "Solved 300 steps on this machine: {:.2} MFLUPS, peak velocity {:.4} lu/step \
         (inlet drives {:.4})",
        stats.mflups,
        vmax,
        solver.config().u_max
    );
    assert!(vmax > 0.0, "flow should have developed");

    // --- 2. Platform characterization ---------------------------------
    let platform = Platform::csp2();
    let character = characterize(&platform, 42);
    println!(
        "\nCharacterized {}: memory knee at {:.1} threads, internodal link \
         {:.0} MB/s @ {:.1} µs",
        platform.abbrev,
        character.memory_fit.a3,
        character.internodal_fit.bandwidth_mb_s,
        character.internodal_fit.latency_us
    );

    // --- 3. Prediction -------------------------------------------------
    let steps = 10_000u64;
    let workload = Workload::harvey(&grid, steps);
    let model = GeneralModel::from_characterization(&character, &workload);
    let ranks = 16;
    let prediction = model.predict(ranks);
    println!(
        "\nGeneralized model at {ranks} ranks: {:.1} MFLUPS, {:.2} s for {steps} steps",
        prediction.mflups,
        prediction.time_for_steps(steps)
    );

    // --- 4. Measured (simulated testbed) + guard ----------------------
    let measured = simulate_geometry(
        &platform,
        &grid,
        &workload.kernel,
        ranks,
        steps,
        &Overheads::default(),
        7,
        0.0,
    )
    .expect("feasible run");
    println!(
        "Simulated testbed measured: {:.1} MFLUPS ({:.2}x overprediction — the \
         margin iterative refinement absorbs)",
        measured.mflups,
        prediction.mflups / measured.mflups
    );

    let guard = JobGuard::from_prediction(&prediction, steps, &platform, 0.10);
    println!(
        "\nJob guard (10% tolerance): stop after {:.2} s, {:.2} CPU-h, or ${:.4}",
        guard.max_seconds, guard.max_cpu_hours, guard.max_dollars
    );
    match guard.check(measured.total_time_s, 0.0) {
        hemocloud::core::guard::GuardVerdict::WithinLimits => {
            println!("Measured run stayed within the guard limits.")
        }
        hemocloud::core::guard::GuardVerdict::Exceeded { seconds_over, .. } => println!(
            "Guard fired: measured run exceeded the uncalibrated prediction by {seconds_over:.2} s.\n\
             After one calibration pass the guard would be set from the corrected \
             prediction instead (see the campaign_planner example)."
        ),
    }
}

//! Planning and *running* a multi-patient simulation campaign — the
//! paper's closing loop, end to end, through the `hemocloud-sched`
//! discrete-event scheduler.
//!
//! Where the `csp_dashboard` example prices a single workload, this one
//! drives a whole campaign: 26 jobs across four vascular geometries are
//! submitted to four capacity-limited cloud pools. Each placement is
//! chosen by `Dashboard::recommend` under the job's own objective
//! (min-cost, max-throughput, or deadline), runs in time slices with a
//! `JobGuard` watching wall-clock and dollars, survives seeded node
//! faults via checkpoint-rollback retries, and feeds every measured slice
//! back into `ModelCalibrator`s — so late placements run on refined
//! predictions and the placement error visibly drops.
//!
//! Run: `cargo run --release --example campaign_planner`

use hemocloud::prelude::*;
use hemocloud::sched::{demo_config, demo_jobs, demo_pools};

fn main() {
    let seed = 42;
    let pools = demo_pools();
    let jobs = demo_jobs();

    println!("Campaign: {} jobs over {} platform pools (seed {seed})\n", jobs.len(), pools.len());
    println!("{:<14} {:>6} {:>12}", "pool", "nodes", "$/node-hour");
    for p in &pools {
        println!(
            "{:<14} {:>6} {:>12.2}",
            p.platform.abbrev,
            p.nodes.min(p.platform.max_nodes()),
            p.platform.price_per_node_hour
        );
    }

    let mut campaign = Campaign::new(demo_config(seed), pools);
    for job in jobs {
        campaign.submit(job);
    }
    let report = campaign.run();

    println!("\n{:<20} {:>12} {:>9} {:>8} {:>7} {:>10}", "job", "outcome", "run s", "$", "tries", "slo");
    for j in &report.job_reports {
        let slo = match j.slo_met {
            None => "-",
            Some(true) => "met",
            Some(false) => "missed",
        };
        println!(
            "{:<20} {:>12} {:>9.0} {:>8.3} {:>7} {:>10}",
            j.name, j.outcome, j.run_seconds, j.cost_dollars, j.attempts, slo
        );
    }

    println!("\n{:<14} {:>6} {:>9} {:>7} {:>7} {:>9} {:>12}", "platform", "nodes", "attempts", "faults", "kills", "$", "utilization");
    for p in &report.platforms {
        println!(
            "{:<14} {:>6} {:>9} {:>7} {:>7} {:>9.3} {:>11.1}%",
            p.platform,
            p.nodes_total,
            p.attempts,
            p.faults,
            p.guard_kills,
            p.cost_dollars,
            100.0 * p.utilization
        );
    }

    println!(
        "\nCampaign: {} completed, {} guard-killed, {} failed, {} rejected in {:.1} h for ${:.2}",
        report.completed,
        report.guard_kills,
        report.failed,
        report.rejected,
        report.makespan_s / 3600.0,
        report.total_cost_dollars
    );
    println!(
        "Faults {} / retries {} — {} job(s) recovered; SLO {} of {} deadline jobs met.",
        report.faults, report.retries, report.retried_jobs_completed, report.slo_attained, report.slo_total
    );
    let uncal = report
        .mape_first_quartile_uncalibrated_pct
        .expect("demo campaign measures uncalibrated placements");
    let cal = report
        .mape_calibrated_pct
        .expect("demo campaign measures calibrated placements");
    println!(
        "Refinement: placement MAPE {uncal:.1}% on the uncalibrated first quartile -> {cal:.1}% once calibrated."
    );

    assert!(cal < uncal, "refinement must reduce placement error");
    assert!(report.guard_kills >= 1, "the runaways must be killed");
    assert!(report.retried_jobs_completed >= 1, "a faulted job must recover");
}

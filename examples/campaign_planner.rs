//! Planning a multi-patient simulation campaign under a budget, with
//! iterative model refinement — the paper's closing loop ("storing all
//! measured performance along with the estimated performance model
//! prediction will be critical to iteratively refining the performance
//! models").
//!
//! The planner runs patients one at a time on the chosen instance. After
//! each run it records predicted-vs-measured step times; the calibrated
//! model re-prices the remaining campaign, and the per-job guards tighten
//! from the raw model's optimistic limits to realistic ones.
//!
//! Run: `cargo run --release --example campaign_planner`

use hemocloud::prelude::*;
use hemocloud_cluster::exec::{simulate_geometry, Overheads};
use hemocloud_cluster::pricing::PriceSheet;

fn main() {
    let platform = Platform::csp2_ec();
    let character = characterize(&platform, 2023);
    let prices = PriceSheet::default();
    let overheads = Overheads::default();
    let steps = 50_000u64;
    let ranks = 72;

    // Five "patients": anatomies of varying size (different resolutions
    // stand in for different vessel trees).
    let patients: Vec<(String, _)> = (0..5)
        .map(|i| {
            let res = 14 + 3 * i;
            (
                format!("patient-{:02} (res {res})", i + 1),
                AortaSpec::default().with_resolution(res).build(),
            )
        })
        .collect();

    let mut calibrator = ModelCalibrator::new();
    let mut total_cost = 0.0;
    let mut total_predicted_raw = 0.0;
    let mut total_predicted_cal = 0.0;
    let mut total_measured = 0.0;

    println!(
        "Campaign: {} patients x {steps} steps on {} @ {ranks} ranks\n",
        patients.len(),
        platform.abbrev
    );
    for (i, (name, grid)) in patients.iter().enumerate() {
        let workload = Workload::harvey(grid, steps);
        let model = GeneralModel::from_characterization(&character, &workload);
        let raw = model.predict(ranks);
        let raw_time = raw.time_for_steps(steps);
        let cal_time = calibrator.corrected_step_s(raw.step_time_s) * steps as f64;

        // Guard from the *calibrated* prediction once we have data.
        let tolerance = 0.10;
        let budget_time = cal_time * (1.0 + tolerance);

        let run = simulate_geometry(
            &platform,
            grid,
            &workload.kernel,
            ranks,
            steps,
            &overheads,
            31 + i as u64,
            i as f64 * 12.0,
        )
        .expect("feasible run");
        let cost = prices.run_cost(&platform, &run);
        total_cost += cost;
        total_predicted_raw += raw_time;
        total_predicted_cal += cal_time;
        total_measured += run.total_time_s;

        let flag = if run.total_time_s > budget_time {
            "OVERRUN FLAG"
        } else {
            "within guard"
        };
        println!(
            "{name}: {:>8} pts | raw pred {:>7.1} s | calibrated {:>7.1} s | measured {:>7.1} s | ${:.4} | {flag}",
            workload.points(),
            raw_time,
            cal_time,
            run.total_time_s,
            cost
        );

        calibrator.record(ranks, raw.step_time_s, run.step_time_s);
    }

    println!(
        "\nCampaign totals: measured {total_measured:.1} s, ${total_cost:.4} on {} nodes",
        platform.nodes_for_ranks(ranks)
    );
    println!(
        "Raw model underestimated time by {:.1}% overall; after calibration the gap is {:.1}%.",
        100.0 * (total_measured - total_predicted_raw) / total_measured,
        100.0 * (total_measured - total_predicted_cal) / total_measured,
    );
    println!(
        "Fitted efficiency factor: {:.3} (raw MAPE {:.1}% -> calibrated {:.1}%)",
        calibrator.correction_factor(),
        calibrator.raw_error_pct(),
        calibrator.calibrated_error_pct()
    );
    assert!(
        calibrator.calibrated_error_pct() <= calibrator.raw_error_pct(),
        "refinement must not increase error"
    );
}

#!/usr/bin/env bash
# Pre-merge gate: the tier-1 verify, run hermetically.
#
# --offline proves the zero-dependency property on every run: the build
# must succeed from a clean checkout with an empty cargo registry cache,
# with nothing but the in-tree workspace crates. If this script fails
# only without --offline having anything cached, someone reintroduced an
# external dependency — keep the workspace dependency-free instead.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline (workspace)"
cargo test -q --offline --workspace

echo "== cargo tree: checking for non-workspace dependencies"
if cargo tree --offline --workspace --edges normal,dev,build \
    | grep -v "hemocloud" | grep -q "v[0-9]"; then
  echo "ERROR: non-workspace dependencies found:" >&2
  cargo tree --offline --workspace --edges normal,dev,build | grep -v "hemocloud" >&2
  exit 1
fi

echo "verify.sh: OK"

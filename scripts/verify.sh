#!/usr/bin/env bash
# Pre-merge gate: the tier-1 verify, run hermetically.
#
# --offline proves the zero-dependency property on every run: the build
# must succeed from a clean checkout with an empty cargo registry cache,
# with nothing but the in-tree workspace crates. If this script fails
# only without --offline having anything cached, someone reintroduced an
# external dependency — keep the workspace dependency-free instead.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline (workspace)"
cargo test -q --offline --workspace

echo "== bench smoke: bench_baseline (RT_BENCH_FAST=1)"
# Every PR regenerates a comparable perf record. The smoke run writes to
# target/ so it never clobbers the committed full-size BENCH_lbm.json;
# regenerate that one with a plain
# `cargo run --release -p hemocloud-bench --bin bench_baseline`.
smoke_json="target/BENCH_lbm.json"
rm -f "$smoke_json"
RT_BENCH_FAST=1 BENCH_OUT="$smoke_json" \
  cargo run -q --release --offline -p hemocloud-bench --bin bench_baseline

if [ ! -f "$smoke_json" ]; then
  echo "ERROR: bench smoke did not produce $smoke_json" >&2
  exit 1
fi
# Match only bare nan/inf *values* (`"x": NaN`), not substrings of
# legitimate strings such as "indirect".
if grep -qiE ': *-?(nan|inf)' "$smoke_json"; then
  echo "ERROR: non-finite throughput in $smoke_json:" >&2
  grep -iE ': *-?(nan|inf)' "$smoke_json" >&2
  exit 1
fi
# Every throughput value (solver MFLUPS and STREAM GB/s) must be > 0.
if ! grep -oE '"(mflups|gb_s)": *[0-9.eE+-]+' "$smoke_json" \
    | awk -F': *' 'BEGIN { n = 0 } { n++; if ($2 + 0 <= 0) bad = 1 }
                   END { exit (bad || n < 3) }'; then
  echo "ERROR: zero/missing throughput values in $smoke_json:" >&2
  cat "$smoke_json" >&2
  exit 1
fi
# The tuned-traversal solver (morton + blocking + prefetch + stealing)
# must have produced bit-identical distributions to the default-order
# solver — the binary also exits non-zero on divergence, but the JSON
# record is the durable witness.
if ! grep -q '"traversal_bitwise_equal": true' "$smoke_json"; then
  echo "ERROR: tuned traversal is not bitwise equal to default order in $smoke_json" >&2
  exit 1
fi
# The explicitly vectorized collide-stream must have produced bit-identical
# f64 distributions to the scalar loop for every kernel config (the binary
# compares forced-scalar vs forced-vector solvers and records the verdict).
if ! grep -q '"simd_bitwise_equal": true' "$smoke_json"; then
  echo "ERROR: vector solver is not bitwise equal to scalar in $smoke_json" >&2
  exit 1
fi
# Single-precision storage rows must be present (the nan/inf grep above
# covers them) and the accuracy witness must be recorded.
if ! grep -q '"config": "AA/SOA/indirect/f32"' "$smoke_json"; then
  echo "ERROR: no f32 kernel rows in $smoke_json" >&2
  exit 1
fi
if ! grep -q '"f32_f64_moment_max_diff"' "$smoke_json"; then
  echo "ERROR: no f32 accuracy witness in $smoke_json" >&2
  exit 1
fi
echo "bench smoke: OK ($smoke_json)"

echo "== SIMD determinism smoke: RT_SIMD=scalar forced backend"
# Force the portable lane backend process-wide: every row must report the
# "scalar-lanes" instruction path, and the in-binary forced-scalar vs
# forced-vector comparison now pits the portable wide lanes against the
# plain scalar loop — so between this run and the default (avx2) run
# above, all three instruction paths are proven bit-identical for f64.
simd_json="target/BENCH_simd_scalar.json"
rm -f "$simd_json"
RT_SIMD=scalar RT_BENCH_FAST=1 BENCH_OUT="$simd_json" \
  cargo run -q --release --offline -p hemocloud-bench --bin bench_baseline > /dev/null
if ! grep -q '"simd_bitwise_equal": true' "$simd_json"; then
  echo "ERROR: portable wide lanes are not bitwise equal to scalar in $simd_json" >&2
  exit 1
fi
if grep -q '"simd": "avx2"' "$simd_json"; then
  echo "ERROR: RT_SIMD=scalar did not force the portable backend in $simd_json" >&2
  exit 1
fi
echo "SIMD determinism smoke: OK ($simd_json)"

echo "== perf regression gate: fresh fast-mode vs committed BENCH_lbm.json"
# The committed baseline is full-size and the smoke run is the fast mesh,
# so the numbers are not identical — but a healthy checkout lands well
# within 2x of the committed values on the machine class that produced
# them. Fail on non-finite values or a >50% regression; this catches
# silent hot-path regressions without requiring the slow full-size run.
committed_json="BENCH_lbm.json"
if [ -f "$committed_json" ]; then
  perf_gate() { # label fresh committed
    awk -v fresh="$2" -v base="$3" -v label="$1" 'BEGIN {
      if (fresh == "" || base == "" || fresh + 0 != fresh || base + 0 != base) {
        printf "ERROR: perf gate %s: non-numeric values (fresh=%s committed=%s)\n", label, fresh, base
        exit 1
      }
      if (fresh + 0 < 0.5 * (base + 0)) {
        printf "ERROR: perf gate %s: fresh %s is <50%% of committed %s\n", label, fresh, base
        exit 1
      }
      printf "  %s: fresh %s vs committed %s: OK\n", label, fresh, base
    }'
  }
  fresh_mflups=$(grep -m1 '"mflups"' "$smoke_json" | grep -oE '[0-9.]+' | head -1)
  base_mflups=$(grep -m1 '"mflups"' "$committed_json" | grep -oE '[0-9.]+' | head -1)
  perf_gate "solver MFLUPS" "$fresh_mflups" "$base_mflups"
  fresh_copy=$(grep -oE '"gb_s": *[0-9.]+' "$smoke_json" | head -1 | grep -oE '[0-9.]+$')
  base_copy=$(grep -oE '"gb_s": *[0-9.]+' "$committed_json" | head -1 | grep -oE '[0-9.]+$')
  perf_gate "STREAM Copy GB/s" "$fresh_copy" "$base_copy"
  fresh_triad=$(grep -oE '"gb_s": *[0-9.]+' "$smoke_json" | sed -n 2p | grep -oE '[0-9.]+$')
  base_triad=$(grep -oE '"gb_s": *[0-9.]+' "$committed_json" | sed -n 2p | grep -oE '[0-9.]+$')
  perf_gate "STREAM Triad GB/s" "$fresh_triad" "$base_triad"

  # The committed baseline must carry the kernel-config sweep, and its
  # best AA row must be at least as fast as the AB/AoS (HARVEY) row —
  # the AB->AA speedup is the point of recording the sweep.
  # f64 rows only: the f32 rows are faster by construction and must not
  # stand in for the double-precision AB->AA comparison.
  ab_mflups=$(grep -oE '\{"config": "AB/AOS/indirect/f64[^}]*' "$committed_json" \
    | grep -oE '"mflups": [0-9.]+' | grep -oE '[0-9.]+' | head -1)
  best_aa_mflups=$(grep -oE '\{"config": "AA/(AOS|SOA)/indirect/f64[^}]*' "$committed_json" \
    | grep -oE '"mflups": [0-9.]+' | grep -oE '[0-9.]+' | sort -g | tail -1)
  if [ -z "$ab_mflups" ] || [ -z "$best_aa_mflups" ]; then
    echo "ERROR: committed $committed_json lacks AB/AA kernel rows" >&2
    exit 1
  fi
  if ! awk -v aa="$best_aa_mflups" -v ab="$ab_mflups" 'BEGIN { exit !(aa + 0 >= ab + 0) }'; then
    echo "ERROR: committed best AA row ($best_aa_mflups MFLUPS) is slower than AB ($ab_mflups MFLUPS)" >&2
    exit 1
  fi
  echo "  committed kernel sweep: best AA $best_aa_mflups >= AB $ab_mflups MFLUPS: OK"

  # Model-fidelity gate: the best config's measured_over_modeled ratio
  # must not blow up relative to the committed full-size baseline. Fast
  # mode inflates the ratio (its STREAM arrays are cache-resident, so the
  # reference bandwidth is higher), so the gate allows a generous 2.5x —
  # it catches the failure mode where a hot-path regression doubles the
  # update time while STREAM stays flat, not small drifts.
  fresh_ratio=$(grep -m1 '"best"' "$smoke_json" \
    | grep -oE '"measured_over_modeled": [0-9.]+' | grep -oE '[0-9.]+')
  base_ratio=$(grep -m1 '"best"' "$committed_json" \
    | grep -oE '"measured_over_modeled": [0-9.]+' | grep -oE '[0-9.]+')
  if [ -z "$fresh_ratio" ] || [ -z "$base_ratio" ]; then
    echo "ERROR: missing best-config measured_over_modeled (fresh=$fresh_ratio committed=$base_ratio)" >&2
    exit 1
  fi
  if ! awk -v f="$fresh_ratio" -v b="$base_ratio" 'BEGIN { exit !(f + 0 <= 2.5 * (b + 0)) }'; then
    echo "ERROR: best-config measured_over_modeled regressed: fresh $fresh_ratio > 2.5x committed $base_ratio" >&2
    exit 1
  fi
  echo "  best-config measured/modeled: fresh $fresh_ratio vs committed $base_ratio (<=2.5x): OK"
else
  echo "ERROR: committed $committed_json missing" >&2
  exit 1
fi
echo "perf regression gate: OK"

echo "== campaign smoke: demo campaign at the committed seed"
# The scheduler's demo campaign must stay healthy: reproducible at seed
# 42, finite economics, and a non-empty placement log. The committed
# full record is CAMPAIGN_sched.json; the smoke run writes to target/ and
# the campaign binary itself exits non-zero on invariant violations
# (guard kills, retry success, and the calibration MAPE drop).
campaign_json="target/CAMPAIGN_sched.json"
rm -f "$campaign_json"
CAMPAIGN_SEED=42 CAMPAIGN_OUT="$campaign_json" \
  cargo run -q --release --offline -p hemocloud-bench --bin campaign

if [ ! -f "$campaign_json" ]; then
  echo "ERROR: campaign smoke did not produce $campaign_json" >&2
  exit 1
fi
if grep -qiE ': *-?(nan|inf)' "$campaign_json"; then
  echo "ERROR: non-finite values in $campaign_json:" >&2
  grep -iE ': *-?(nan|inf)' "$campaign_json" >&2
  exit 1
fi
# Makespan and total cost must be strictly positive, and at least one
# placement must have been recorded.
if ! grep -oE '"(makespan_s|total_cost_dollars)": *[0-9.eE+-]+' "$campaign_json" \
    | awk -F': *' 'BEGIN { n = 0 } { n++; if ($2 + 0 <= 0) bad = 1 }
                   END { exit (bad || n != 2) }'; then
  echo "ERROR: non-positive makespan/cost in $campaign_json" >&2
  exit 1
fi
if ! grep -q '"measured_step_s"' "$campaign_json"; then
  echo "ERROR: empty placement log in $campaign_json" >&2
  exit 1
fi
echo "campaign smoke: OK ($campaign_json)"

echo "== fabric smoke: routed contention demo at the committed seed"
# The routed-fabric demo: ten 2-node jobs contending pairwise on a
# spread topology's oversubscribed trunks. The binary itself exits
# non-zero unless the per-link delivered bytes reconcile *exactly*
# against the Eq. 9 message graph, the report is byte-identical across
# 1/2/4 event shards, a co-scheduled job is measurably slower than the
# same job isolated, and calibration closes the contention gap. The gate
# additionally proves worker-count independence: run 1 pins
# RT_POOL_THREADS=1, run 2 pins 8, and both the report and the obs
# snapshot (per-link byte counters included) must not differ by a byte.
for run in 1 2; do
  threads=1; [ "$run" -eq 2 ] && threads=8
  FABRIC_SEED=42 RT_POOL_THREADS="$threads" \
    FABRIC_OUT="target/CAMPAIGN_fabric_${run}.json" \
    OBS_OUT="target/OBS_fabric_${run}.json" \
    cargo run -q --release --offline -p hemocloud-bench --bin fabric_demo > /dev/null
done
for f in target/CAMPAIGN_fabric_1.json target/OBS_fabric_1.json; do
  if grep -qiE ': *-?(nan|inf)' "$f"; then
    echo "ERROR: non-finite values in $f:" >&2
    grep -iE ': *-?(nan|inf)' "$f" >&2
    exit 1
  fi
done
if ! cmp -s target/CAMPAIGN_fabric_1.json target/CAMPAIGN_fabric_2.json; then
  echo "ERROR: fabric campaign report differs across worker counts 1 and 8:" >&2
  diff target/CAMPAIGN_fabric_1.json target/CAMPAIGN_fabric_2.json | head >&2
  exit 1
fi
if ! cmp -s target/OBS_fabric_1.json target/OBS_fabric_2.json; then
  echo "ERROR: fabric obs snapshot differs across worker counts 1 and 8:" >&2
  diff target/OBS_fabric_1.json target/OBS_fabric_2.json | head >&2
  exit 1
fi
if ! grep -q '"topology": "spread"' target/CAMPAIGN_fabric_1.json; then
  echo "ERROR: fabric placements not routed on the spread topology" >&2
  exit 1
fi
# The committed record must exist and carry the same witnesses: exact
# byte reconciliation and a real (>1%) contention slowdown.
if [ ! -f "CAMPAIGN_fabric.json" ]; then
  echo "ERROR: committed CAMPAIGN_fabric.json missing" >&2
  exit 1
fi
eq9=$(grep -oE '"fabric_eq9_bytes": *"[0-9]+"' CAMPAIGN_fabric.json \
  | grep -oE '[0-9]+"' | tr -d '"')
got=$(grep -oE '"fabric_delivered_bytes": *"[0-9]+"' CAMPAIGN_fabric.json \
  | grep -oE '[0-9]+"' | tr -d '"')
if [ -z "$eq9" ] || [ "$eq9" != "$got" ]; then
  echo "ERROR: committed CAMPAIGN_fabric.json delivered bytes '$got' != Eq. 9 total '$eq9'" >&2
  exit 1
fi
if ! grep -oE '"fabric_contention_slowdown": *"[0-9.]+"' CAMPAIGN_fabric.json \
    | grep -oE '[0-9.]+"' | tr -d '"' | awk '{ exit !($1 > 1.01) }'; then
  echo "ERROR: committed CAMPAIGN_fabric.json lacks a measurable contention slowdown" >&2
  exit 1
fi
echo "fabric smoke: OK (delivered bytes == Eq. 9 total $eq9; worker-count invariant)"

echo "== sched scale smoke: bench_sched (RT_BENCH_FAST=1)"
# The million-job scheduler path, smoke-sized: the binary itself exits
# non-zero on zero/non-finite events-per-sec, missing outcomes, or a
# shard-determinism violation; the gate re-checks the artifact and
# byte-compares the per-shard reports it wrote. Regenerate the committed
# full-size BENCH_sched.json with a plain
# `cargo run --release -p hemocloud-bench --bin bench_sched`.
sched_json="target/BENCH_sched.json"
rm -f "$sched_json" target/SCHED_det.shard*.json
RT_BENCH_FAST=1 SCHED_OUT="$sched_json" SCHED_REPORT_OUT_PREFIX="target/SCHED_det" \
  cargo run -q --release --offline -p hemocloud-bench --bin bench_sched

if [ ! -f "$sched_json" ]; then
  echo "ERROR: sched smoke did not produce $sched_json" >&2
  exit 1
fi
if grep -qiE ': *-?(nan|inf)' "$sched_json"; then
  echo "ERROR: non-finite values in $sched_json:" >&2
  grep -iE ': *-?(nan|inf)' "$sched_json" >&2
  exit 1
fi
if ! grep -oE '"events_per_sec": *[0-9.eE+-]+' "$sched_json" \
    | awk -F': *' '{ if ($2 + 0 <= 0) exit 1; n = 1 } END { exit !n }'; then
  echo "ERROR: zero/missing events_per_sec in $sched_json" >&2
  exit 1
fi
if ! grep -q '"reports_identical": true' "$sched_json"; then
  echo "ERROR: shard determinism flag not set in $sched_json" >&2
  exit 1
fi
# Independent byte-diff of the reports the determinism pass rendered at
# shard counts 1 and 4 (and 2): the tentpole guarantee, enforced outside
# the binary that claims it.
for s in 2 4; do
  if ! cmp -s target/SCHED_det.shard1.json "target/SCHED_det.shard${s}.json"; then
    echo "ERROR: campaign report differs between 1 and ${s} event shards:" >&2
    diff "target/SCHED_det.shard1.json" "target/SCHED_det.shard${s}.json" | head >&2
    exit 1
  fi
done
if grep -qiE ': *-?(nan|inf)' target/SCHED_det.shard1.json; then
  echo "ERROR: non-finite values in the sharded campaign report:" >&2
  grep -iE ': *-?(nan|inf)' target/SCHED_det.shard1.json >&2
  exit 1
fi
echo "sched scale smoke: OK ($sched_json; shard reports byte-identical)"

# The committed full-size scale record must exist and carry the same
# witness flag — a PR cannot claim the million-job path without it.
if [ ! -f "BENCH_sched.json" ]; then
  echo "ERROR: committed BENCH_sched.json missing" >&2
  exit 1
fi
if ! grep -q '"reports_identical": true' "BENCH_sched.json"; then
  echo "ERROR: committed BENCH_sched.json lacks the shard-determinism witness" >&2
  exit 1
fi

echo "== obs smoke: deterministic metrics snapshots"
# The observability layer's contract: two identical seeded runs render
# byte-identical snapshots (Render::Deterministic demotes wall-clock
# samples to counts; everything else is fixed-count instrumentation).
# Checked at pool widths 1 and 8 for the bench baseline, and at the
# committed seed for the campaign (whose registry runs on the virtual
# clock, so its spans are deterministic even in Full render).
obs_diff() { # label file_a file_b
  if ! cmp -s "$2" "$3"; then
    echo "ERROR: obs snapshots differ across identical runs ($1):" >&2
    diff "$2" "$3" >&2 || true
    exit 1
  fi
  if grep -qiE ': *-?(nan|inf)' "$2"; then
    echo "ERROR: non-finite metric in $2:" >&2
    grep -iE ': *-?(nan|inf)' "$2" >&2
    exit 1
  fi
  echo "  $1: byte-identical, finite: OK"
}
for width in 1 8; do
  for run in 1 2; do
    RT_BENCH_FAST=1 RT_POOL_THREADS="$width" \
      BENCH_OUT="target/OBS_bench_w${width}_${run}.bench.json" \
      OBS_OUT="target/OBS_bench_w${width}_${run}.json" \
      cargo run -q --release --offline -p hemocloud-bench --bin bench_baseline \
      > /dev/null
  done
  obs_diff "bench_baseline width $width" \
    "target/OBS_bench_w${width}_1.json" "target/OBS_bench_w${width}_2.json"
done
# Stealing determinism, both directions: at width 8 the tuned-traversal
# pass must actually run the stealing scheduler (nonzero deterministic
# pool.chunks counter — steal *counts* are schedule-dependent and are
# deliberately kept out of the registry), and the byte-identical diff
# above proves its schedule cannot leak into any recorded metric. At
# width 1 the scheduler must be provably bypassed: pure serial order,
# zero chunks ever enqueued.
chunks_w8=$(grep -oE '"pool\.chunks"[^}]*"value": *[0-9]+' target/OBS_bench_w8_1.json \
  | grep -oE '[0-9]+$' || true)
chunks_w1=$(grep -oE '"pool\.chunks"[^}]*"value": *[0-9]+' target/OBS_bench_w1_1.json \
  | grep -oE '[0-9]+$' || true)
if [ -z "$chunks_w8" ] || [ "$chunks_w8" -eq 0 ]; then
  echo "ERROR: width-8 obs snapshot shows no stealing chunks (pool.chunks=$chunks_w8)" >&2
  exit 1
fi
if [ -z "$chunks_w1" ] || [ "$chunks_w1" -ne 0 ]; then
  echo "ERROR: width-1 run did not bypass the stealing scheduler (pool.chunks=$chunks_w1)" >&2
  exit 1
fi
echo "  stealing determinism: width 8 chunks=$chunks_w8, width 1 chunks=0: OK"
for run in 1 2; do
  CAMPAIGN_SEED=42 CAMPAIGN_OUT="target/OBS_campaign_${run}.campaign.json" \
    OBS_OUT="target/OBS_campaign_${run}.json" \
    cargo run -q --release --offline -p hemocloud-bench --bin campaign > /dev/null
done
obs_diff "campaign seed 42" "target/OBS_campaign_1.json" "target/OBS_campaign_2.json"
echo "obs smoke: OK"

echo "== eval sweep smoke: eval_campaign (RT_BENCH_FAST=1)"
# The scenario-sweep evaluation harness: the smoke grid (16 cells) with
# every invariant checker armed. The binary exits non-zero on any
# violation (budget overruns, SLO drift, billed < busy, inexact guard
# kills, Eq. 9 byte mismatches, non-finite statistics); the gate
# re-checks the artifact and proves worker-count independence by
# byte-comparing RT_POOL_THREADS=1 vs =8 runs. Regenerate the committed
# full-grid EVAL_campaign.json with a plain
# `cargo run --release -p hemocloud-bench --bin eval_campaign`.
for run in 1 2; do
  threads=1; [ "$run" -eq 2 ] && threads=8
  RT_BENCH_FAST=1 RT_POOL_THREADS="$threads" \
    EVAL_OUT="target/EVAL_campaign_${run}.json" \
    cargo run -q --release --offline -p hemocloud-bench --bin eval_campaign > /dev/null
done
if [ ! -f target/EVAL_campaign_1.json ]; then
  echo "ERROR: eval sweep smoke did not produce target/EVAL_campaign_1.json" >&2
  exit 1
fi
if grep -qiE ': *-?(nan|inf)' target/EVAL_campaign_1.json; then
  echo "ERROR: non-finite values in target/EVAL_campaign_1.json:" >&2
  grep -iE ': *-?(nan|inf)' target/EVAL_campaign_1.json >&2
  exit 1
fi
if ! cmp -s target/EVAL_campaign_1.json target/EVAL_campaign_2.json; then
  echo "ERROR: eval sweep report differs across worker counts 1 and 8:" >&2
  diff target/EVAL_campaign_1.json target/EVAL_campaign_2.json | head >&2
  exit 1
fi
if ! grep -q '"violations": 0,' target/EVAL_campaign_1.json; then
  echo "ERROR: eval sweep smoke recorded violations:" >&2
  grep -A4 '"violation_list"' target/EVAL_campaign_1.json | head >&2
  exit 1
fi
# The committed full-grid record must exist and carry the witnesses: the
# full grid, zero violations, the >=48-cell floor, both new anatomies
# swept, and non-vacuous Eq. 9 / guard-exactness checkers.
if [ ! -f "EVAL_campaign.json" ]; then
  echo "ERROR: committed EVAL_campaign.json missing" >&2
  exit 1
fi
if grep -qiE ': *-?(nan|inf)' EVAL_campaign.json; then
  echo "ERROR: non-finite values in committed EVAL_campaign.json" >&2
  exit 1
fi
if ! grep -q '"grid": "full"' EVAL_campaign.json; then
  echo "ERROR: committed EVAL_campaign.json was not produced by the full grid" >&2
  exit 1
fi
if ! grep -q '"violations": "0"' EVAL_campaign.json; then
  echo "ERROR: committed EVAL_campaign.json carries invariant violations" >&2
  exit 1
fi
eval_cells=$(grep -oE '"cells": *"[0-9]+"' EVAL_campaign.json | grep -oE '[0-9]+' | head -1)
if [ -z "$eval_cells" ] || [ "$eval_cells" -lt 48 ]; then
  echo "ERROR: committed EVAL_campaign.json swept only '$eval_cells' cells (< 48)" >&2
  exit 1
fi
for geom in sten8 aneu8; do
  if ! grep -q "\"axis\": \"geometry\", \"value\": \"$geom\"" EVAL_campaign.json; then
    echo "ERROR: committed EVAL_campaign.json lacks the $geom geometry axis" >&2
    exit 1
  fi
done
for witness in eq9_cells_checked guard_exact_checks; do
  n=$(grep -oE "\"$witness\": *\"[0-9]+\"" EVAL_campaign.json | grep -oE '[0-9]+' | head -1)
  if [ -z "$n" ] || [ "$n" -eq 0 ]; then
    echo "ERROR: committed EVAL_campaign.json: $witness is '$n' (vacuous evaluation)" >&2
    exit 1
  fi
done
echo "eval sweep smoke: OK ($eval_cells committed cells, zero violations, worker-count invariant)"

echo "== cargo doc --no-deps --offline"
# The API docs must build cleanly: the AA safety argument and the kernel
# accounting live in doc comments, so broken intra-doc links or bad
# rustdoc syntax are regressions.
cargo doc --no-deps --offline --workspace -q

echo "== cargo tree: checking for non-workspace dependencies"
if cargo tree --offline --workspace --edges normal,dev,build \
    | grep -v "hemocloud" | grep -q "v[0-9]"; then
  echo "ERROR: non-workspace dependencies found:" >&2
  cargo tree --offline --workspace --edges normal,dev,build | grep -v "hemocloud" >&2
  exit 1
fi

echo "verify.sh: OK"

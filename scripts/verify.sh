#!/usr/bin/env bash
# Pre-merge gate: the tier-1 verify, run hermetically.
#
# --offline proves the zero-dependency property on every run: the build
# must succeed from a clean checkout with an empty cargo registry cache,
# with nothing but the in-tree workspace crates. If this script fails
# only without --offline having anything cached, someone reintroduced an
# external dependency — keep the workspace dependency-free instead.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline (workspace)"
cargo test -q --offline --workspace

echo "== bench smoke: bench_baseline (RT_BENCH_FAST=1)"
# Every PR regenerates a comparable perf record. The smoke run writes to
# target/ so it never clobbers the committed full-size BENCH_lbm.json;
# regenerate that one with a plain
# `cargo run --release -p hemocloud-bench --bin bench_baseline`.
smoke_json="target/BENCH_lbm.json"
rm -f "$smoke_json"
RT_BENCH_FAST=1 BENCH_OUT="$smoke_json" \
  cargo run -q --release --offline -p hemocloud-bench --bin bench_baseline

if [ ! -f "$smoke_json" ]; then
  echo "ERROR: bench smoke did not produce $smoke_json" >&2
  exit 1
fi
if grep -qiE '(nan|inf)' "$smoke_json"; then
  echo "ERROR: non-finite throughput in $smoke_json:" >&2
  grep -iE '(nan|inf)' "$smoke_json" >&2
  exit 1
fi
# Every throughput value (solver MFLUPS and STREAM GB/s) must be > 0.
if ! grep -oE '"(mflups|gb_s)": *[0-9.eE+-]+' "$smoke_json" \
    | awk -F': *' 'BEGIN { n = 0 } { n++; if ($2 + 0 <= 0) bad = 1 }
                   END { exit (bad || n < 3) }'; then
  echo "ERROR: zero/missing throughput values in $smoke_json:" >&2
  cat "$smoke_json" >&2
  exit 1
fi
echo "bench smoke: OK ($smoke_json)"

echo "== campaign smoke: demo campaign at the committed seed"
# The scheduler's demo campaign must stay healthy: reproducible at seed
# 42, finite economics, and a non-empty placement log. The committed
# full record is CAMPAIGN_sched.json; the smoke run writes to target/ and
# the campaign binary itself exits non-zero on invariant violations
# (guard kills, retry success, and the calibration MAPE drop).
campaign_json="target/CAMPAIGN_sched.json"
rm -f "$campaign_json"
CAMPAIGN_SEED=42 CAMPAIGN_OUT="$campaign_json" \
  cargo run -q --release --offline -p hemocloud-bench --bin campaign

if [ ! -f "$campaign_json" ]; then
  echo "ERROR: campaign smoke did not produce $campaign_json" >&2
  exit 1
fi
if grep -qiE '(nan|inf)' "$campaign_json"; then
  echo "ERROR: non-finite values in $campaign_json:" >&2
  grep -iE '(nan|inf)' "$campaign_json" >&2
  exit 1
fi
# Makespan and total cost must be strictly positive, and at least one
# placement must have been recorded.
if ! grep -oE '"(makespan_s|total_cost_dollars)": *[0-9.eE+-]+' "$campaign_json" \
    | awk -F': *' 'BEGIN { n = 0 } { n++; if ($2 + 0 <= 0) bad = 1 }
                   END { exit (bad || n != 2) }'; then
  echo "ERROR: non-positive makespan/cost in $campaign_json" >&2
  exit 1
fi
if ! grep -q '"measured_step_s"' "$campaign_json"; then
  echo "ERROR: empty placement log in $campaign_json" >&2
  exit 1
fi
echo "campaign smoke: OK ($campaign_json)"

echo "== cargo tree: checking for non-workspace dependencies"
if cargo tree --offline --workspace --edges normal,dev,build \
    | grep -v "hemocloud" | grep -q "v[0-9]"; then
  echo "ERROR: non-workspace dependencies found:" >&2
  cargo tree --offline --workspace --edges normal,dev,build | grep -v "hemocloud" >&2
  exit 1
fi

echo "verify.sh: OK"

//! # hemocloud
//!
//! A Rust reproduction of *"Optimizing Cloud Computing Resource Usage for
//! Hemodynamic Simulation"* (Ladd et al.): an iteratively-refined
//! performance model that lets users of lattice-Boltzmann blood-flow codes
//! choose cloud instances — and bound job cost — before running.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`geometry`] — voxelized vascular geometries (cylinder, aorta,
//!   cerebral vasculature).
//! * [`lbm`] — the D3Q19 lattice Boltzmann solver (AA/AB propagation,
//!   SoA/AoS layouts) and its memory-access profiles.
//! * [`decomp`] — domain decomposition, halo exchange structure, load
//!   imbalance measurement.
//! * [`fitting`] — least squares, two-line bandwidth fits, Nelder-Mead.
//! * [`cluster`] — the simulated cloud/traditional platforms, their
//!   microbenchmarks and the workload timing engine.
//! * [`microbench`] — real host STREAM and ping-pong microbenchmarks.
//! * [`core`] — the paper's contribution: direct and generalized
//!   performance models, the CSP Option Dashboard, cost optimizers, job
//!   guards and the iterative refinement loop.
//! * [`fabric`] — the route-aware interconnect fabric: fat-tree,
//!   placement-group, and spread topologies with per-link bandwidth and
//!   deterministic fair-share contention for the Eq. 9 halo traffic.
//! * [`sched`] — the discrete-event campaign scheduler that runs the
//!   predict → run → guard → refine loop end-to-end over many jobs on
//!   capacity-limited platform pools (with shared-fabric cross-job
//!   contention on routed pools).
//! * [`obs`] — the deterministic metrics + tracing layer the runtime,
//!   solver, and scheduler record into (byte-reproducible snapshots).
//!
//! ## Quickstart
//!
//! ```
//! use hemocloud::prelude::*;
//!
//! // Voxelize an idealized vessel and describe the LBM workload.
//! let geo = CylinderSpec::default().with_resolution(24).build();
//! let workload = Workload::harvey(&geo, 100);
//!
//! // Characterize a (simulated) cloud platform from its microbenchmarks.
//! let platform = Platform::csp2();
//! let character = characterize(&platform, 42);
//!
//! // Predict throughput with the generalized model.
//! let model = GeneralModel::from_characterization(&character, &workload);
//! let prediction = model.predict(64);
//! assert!(prediction.mflups > 0.0);
//! ```

pub use hemocloud_cluster as cluster;
pub use hemocloud_core as core;
pub use hemocloud_decomp as decomp;
pub use hemocloud_fabric as fabric;
pub use hemocloud_fitting as fitting;
pub use hemocloud_geometry as geometry;
pub use hemocloud_lbm as lbm;
pub use hemocloud_microbench as microbench;
pub use hemocloud_obs as obs;
pub use hemocloud_sched as sched;

/// Commonly used items, re-exported for one-line imports.
pub mod prelude {
    pub use hemocloud_cluster::{
        exec::SimulatedRun,
        platform::Platform,
        pricing::PriceSheet,
        topology::{build_topology, CommModel, PlatformTopology, TopologyVariant},
    };
    pub use hemocloud_fabric::{exchange, ExchangeOutcome, Flow, LinkId, Topology};
    pub use hemocloud_core::{
        characterize::{characterize, PlatformCharacterization},
        dashboard::{Dashboard, DashboardEntry, Objective},
        direct::DirectModel,
        general::GeneralModel,
        guard::JobGuard,
        refine::ModelCalibrator,
        roofline::{FlopProfile, Roofline},
        value::relative_value_matrix,
        workload::Workload,
    };
    pub use hemocloud_decomp::partition::BlockPartition;
    pub use hemocloud_geometry::anatomy::{AortaSpec, CerebralSpec, CylinderSpec};
    pub use hemocloud_geometry::voxel::{CellType, VoxelGrid};
    pub use hemocloud_lbm::{
        kernel::{KernelConfig, Layout, Propagation},
        solver::Solver,
    };
    pub use hemocloud_obs::{Registry, Render, Snapshot};
    pub use hemocloud_sched::{
        Campaign, CampaignConfig, CampaignReport, JobOutcome, JobSpec, PoolSpec,
    };
}

//! Acceptance tests for the routed-fabric campaign: the fabric demo must
//! be byte-for-byte reproducible across reruns and shard counts, its
//! per-link delivered-byte counters must reconcile *exactly* against the
//! Eq. 9 halo message graph, co-scheduled jobs must run measurably
//! slower than an isolated run, and calibration must close the
//! contention-induced prediction gap.

use std::sync::OnceLock;

use hemocloud_cluster::exec::{Overheads, PreparedRun};
use hemocloud_cluster::platform::Platform;
use hemocloud_cluster::topology::{CommModel, TopologyVariant};
use hemocloud_core::workload::Workload;
use hemocloud_geometry::anatomy::CylinderSpec;
use hemocloud_obs::{Render, Snapshot};
use hemocloud_sched::{
    fabric_demo_config, fabric_demo_jobs, fabric_demo_pools, run_fabric_demo, Campaign,
    CampaignReport,
};

/// The fabric demo is expensive in debug builds; run it once and share
/// the report, its JSON, and the obs snapshot across tests.
fn fabric_demo() -> &'static (CampaignReport, String, Snapshot) {
    static DEMO: OnceLock<(CampaignReport, String, Snapshot)> = OnceLock::new();
    DEMO.get_or_init(|| {
        let (report, snapshot) = run_fabric_demo(42);
        let json = report.to_json();
        (report, json, snapshot)
    })
}

/// Sum one `fabric.pool0.link.*` counter family out of a snapshot.
fn link_family_total(snap: &Snapshot, prefix: &str) -> u64 {
    let mut total = 0u64;
    let mut i = 0usize;
    while let Some(v) = snap.counter(&format!("{prefix}.{i}")) {
        total += v;
        i += 1;
    }
    assert!(i > 0, "no counters under {prefix}");
    total
}

#[test]
fn fabric_demo_completes_cleanly_on_the_spread_pool() {
    let (report, json, _) = fabric_demo();
    assert_eq!(report.jobs, 10, "{json}");
    assert_eq!(report.completed, 10, "every honest fault-free job lands");
    assert_eq!(report.faults, 0, "fault injection is off in the demo");
    assert_eq!(report.guard_kills, 0);
    assert_eq!(report.rejected, 0);
    // Every placement ran routed on the spread topology, and the report
    // says so per row.
    assert_eq!(report.placements.len(), 10);
    for rec in &report.placements {
        assert_eq!(rec.topology, "spread", "placement {} mislabelled", rec.job);
        assert_eq!(rec.nodes, 2, "16 ranks on 8-core nodes is 2 nodes");
    }
}

#[test]
fn fabric_demo_is_reproducible_and_shard_invariant() {
    let (_, json, snapshot) = fabric_demo();
    // Rerun at the same seed: report AND the full obs render (per-link
    // byte counters included) must not move by a byte.
    let (again_report, again_snap) = run_fabric_demo(42);
    assert_eq!(*json, again_report.to_json(), "rerun changed the report");
    assert_eq!(
        snapshot.to_json(Render::Full),
        again_snap.to_json(Render::Full),
        "rerun changed the obs snapshot"
    );
    // Shard count is pure event-queue layout: the shared-fabric
    // contention context is gathered in job-index order from the pool's
    // active set, so the report must be byte-identical at any shard
    // count even though co-scheduled jobs price each other's traffic.
    let run = |shards: usize| {
        let mut config = fabric_demo_config(42);
        config.shards = shards;
        let mut campaign = Campaign::new(config, fabric_demo_pools());
        for job in fabric_demo_jobs() {
            campaign.submit(job);
        }
        campaign.run().to_json()
    };
    for shards in [2, 4] {
        assert_eq!(*json, run(shards), "report changed at {shards} shards");
    }
}

#[test]
fn per_link_delivered_bytes_reconcile_exactly_with_eq9() {
    let (report, _, snapshot) = fabric_demo();
    assert_eq!(report.completed, 10, "reconciliation needs fault-free runs");

    // Independently rebuild the Eq. 9 graph for the demo's one prepared
    // shape (cyl10, 16 ranks, CSP-2 Small) and price a single step's
    // internodal bytes from its flows.
    let grid = CylinderSpec::default().with_resolution(10).build();
    let workload = Workload::harvey(&grid, 1);
    let prepared = PreparedRun::new_with_comm(
        &Platform::csp2_small(),
        &grid,
        &workload.kernel,
        16,
        &Overheads::default(),
        CommModel::Routed(TopologyVariant::Spread),
    )
    .expect("demo shape is feasible");
    let per_step_bytes: u64 = prepared
        .flows(&[0, 1], 0)
        .iter()
        .map(|f| {
            assert_eq!(f.bytes.fract(), 0.0, "Eq. 9 bytes are integral");
            f.bytes as u64
        })
        .sum();
    assert!(per_step_bytes > 0, "2-node cyl10 must cross the interconnect");

    // Total steps actually delivered: all jobs honest (hidden factor 1)
    // and fault-free, so each completes exactly its declared steps.
    let expected: u64 = fabric_demo_jobs()
        .iter()
        .map(|j| j.workload.steps * per_step_bytes)
        .sum();

    let delivered = link_family_total(&snapshot, "fabric.pool0.link.delivered_bytes");
    assert_eq!(
        delivered, expected,
        "per-link delivered bytes must sum exactly to the Eq. 9 total"
    );
    // Forwarded counts every hop, delivered only the last: spread routes
    // are 2 hops same-rack and 4 hops cross-rack, so strictly more bytes
    // are forwarded than delivered whenever any flow crosses a rack.
    let forwarded = link_family_total(&snapshot, "fabric.pool0.link.forwarded_bytes");
    assert!(
        forwarded > delivered,
        "cross-rack routes must forward through intermediate links \
         (forwarded {forwarded} vs delivered {delivered})"
    );
    // And the roll-up gauge agrees with the family sum.
    match snapshot.get("fabric.pool0.delivered_bytes_total") {
        Some(hemocloud_obs::Sample::Gauge(v)) => {
            assert_eq!(*v, expected as f64, "roll-up gauge disagrees with family sum");
        }
        other => panic!("delivered_bytes_total: expected gauge, got {other:?}"),
    }
}

#[test]
fn co_scheduled_jobs_run_measurably_slower_than_isolated() {
    let (report, _, _) = fabric_demo();
    // Solo baseline: the same first job, alone on the same pool, same
    // seed — its noise stream (seeded by job index / attempt / slice) is
    // identical, so any runtime difference is contention.
    let mut solo = Campaign::new(fabric_demo_config(42), fabric_demo_pools());
    solo.submit(fabric_demo_jobs().remove(0));
    let solo_report = solo.run();
    assert_eq!(solo_report.completed, 1);

    let solo_job = &solo_report.job_reports[0];
    let demo_job = report
        .job_reports
        .iter()
        .find(|j| j.name == solo_job.name)
        .expect("job 0 present in the demo report");
    assert!(
        demo_job.run_seconds > solo_job.run_seconds * 1.01,
        "co-scheduled run {} s not measurably slower than isolated {} s",
        demo_job.run_seconds,
        solo_job.run_seconds
    );
}

#[test]
fn calibration_closes_the_contention_gap() {
    let (report, json, _) = fabric_demo();
    let before = report
        .mape_first_quartile_uncalibrated_pct
        .expect("uncalibrated placements exist");
    let after = report.mape_calibrated_pct.expect("calibrated placements exist");
    assert!(
        after < before,
        "calibrated MAPE {after}% must beat uncalibrated {before}%\n{json}"
    );
    assert!(report.mape_calibrated_count > 0);
}

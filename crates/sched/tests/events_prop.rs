//! Property tests for the sharded event queue: the total pop order is the
//! merge key `(time, lane, per-lane FIFO)` — for any random event stream,
//! any lane count, and any shard count.

use hemocloud_rt::check::{self, Config};
use hemocloud_sched::{Event, ShardedEventQueue};

#[test]
fn pops_are_nondecreasing_in_time_with_fifo_ties_per_lane() {
    check::run(
        "pops_are_nondecreasing_in_time_with_fifo_ties_per_lane",
        Config::cases(8),
        |rng| {
            let lanes = 1 + (rng.next_u64() % 7) as usize;
            let shards = 1 + (rng.next_u64() % 9) as usize;
            let mut queue = ShardedEventQueue::new(lanes, shards);
            // 100k events over a coarse time grid so equal timestamps are
            // common and the tie-break arms actually run.
            let n = 100_000usize;
            let mut lane_order = vec![0usize; lanes];
            let mut pushed: Vec<(f64, usize, usize)> = Vec::with_capacity(n);
            for job in 0..n {
                let lane = (rng.next_u64() % lanes as u64) as usize;
                let time = (rng.next_u64() % 1000) as f64 * 0.5;
                let order = lane_order[lane];
                lane_order[lane] += 1;
                pushed.push((time, lane, order));
                queue.push(lane, time, Event::Arrive { job });
            }
            assert_eq!(queue.len(), n);

            let mut prev: Option<(f64, usize, usize)> = None;
            let mut popped = 0usize;
            while let Some((time, lane, event)) = queue.pop() {
                let Event::Arrive { job } = event else {
                    panic!("pushed only Arrive events");
                };
                let (t0, l0, order) = pushed[job];
                assert_eq!(time, t0, "pop returned a different time than pushed");
                assert_eq!(lane, l0, "pop returned a different lane than pushed");
                // The total order is lexicographic (time, lane, per-lane
                // FIFO order): per-lane seq is assigned in push order, so
                // this tuple IS the merge key — strictly increasing since
                // (lane, order) is unique.
                let key = (time, lane, order);
                if let Some(prev) = prev {
                    assert!(
                        prev.0 < key.0
                            || (prev.0 == key.0
                                && (prev.1, prev.2) < (key.1, key.2)),
                        "pop order violated merge key: {prev:?} then {key:?}"
                    );
                }
                prev = Some(key);
                popped += 1;
            }
            assert_eq!(popped, n, "queue lost or duplicated events");
            assert!(queue.is_empty());
        },
    );
}

#[test]
fn shard_count_never_changes_the_pop_stream() {
    check::run(
        "shard_count_never_changes_the_pop_stream",
        Config::cases(8),
        |rng| {
            let lanes = 1 + (rng.next_u64() % 5) as usize;
            let n = 5_000usize;
            let stream: Vec<(usize, f64)> = (0..n)
                .map(|_| {
                    (
                        (rng.next_u64() % lanes as u64) as usize,
                        (rng.next_u64() % 200) as f64,
                    )
                })
                .collect();
            let drain = |shards: usize| -> Vec<(f64, usize, usize)> {
                let mut queue = ShardedEventQueue::new(lanes, shards);
                for (job, &(lane, time)) in stream.iter().enumerate() {
                    queue.push(lane, time, Event::Arrive { job });
                }
                let mut out = Vec::with_capacity(n);
                while let Some((time, lane, event)) = queue.pop() {
                    let Event::Arrive { job } = event else {
                        panic!("pushed only Arrive events");
                    };
                    out.push((time, lane, job));
                }
                out
            };
            let reference = drain(1);
            let shards = 2 + (rng.next_u64() % 7) as usize;
            assert_eq!(reference, drain(shards), "{shards} shards diverged");
        },
    );
}

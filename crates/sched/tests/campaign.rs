//! Acceptance tests for the campaign scheduler: the seeded demo campaign
//! must be byte-for-byte reproducible, show the guard and retry machinery
//! firing, and show placement error dropping once calibration kicks in.

use std::sync::{Arc, OnceLock};

use hemocloud_cluster::exec::Overheads;
use hemocloud_cluster::platform::Platform;
use hemocloud_core::dashboard::Objective;
use hemocloud_core::workload::Workload;
use hemocloud_geometry::anatomy::CylinderSpec;
use hemocloud_sched::{
    run_demo, Campaign, CampaignConfig, CampaignReport, JobSpec, PoolSpec,
};

/// The demo campaign is expensive in debug builds; run it once and share
/// the report (and its JSON) across tests.
fn demo() -> &'static (CampaignReport, String) {
    static DEMO: OnceLock<(CampaignReport, String)> = OnceLock::new();
    DEMO.get_or_init(|| {
        let report = run_demo(42);
        let json = report.to_json();
        (report, json)
    })
}

fn tiny_config(seed: u64, fault_rate: f64) -> CampaignConfig {
    CampaignConfig {
        seed,
        characterization_seed: 7,
        rank_options: vec![8, 16],
        slice_steps: 100_000,
        fault_rate_per_node_hour: fault_rate,
        retry_backoff_s: 10.0,
        max_retry_backoff_s: 600.0,
        min_calibration_obs: 3,
        prices: Default::default(),
        shards: 1,
        max_placement_log: usize::MAX,
        max_job_reports: usize::MAX,
    }
}

fn tiny_job(name: &str, steps: u64, tolerance: f64, hidden: f64, submit_s: f64) -> JobSpec {
    let grid = CylinderSpec::default().with_resolution(8).build();
    JobSpec {
        name: name.to_string(),
        workload: Arc::new(Workload::harvey(&grid, steps)),
        model_key: "cyl8".to_string(),
        objective: Objective::MinCost,
        tolerance,
        budget_dollars: 100.0,
        max_retries: 2,
        checkpoint_steps: 200_000,
        hidden_steps_factor: hidden,
        submit_s,
    }
}

fn one_pool(nodes: usize) -> Vec<PoolSpec> {
    vec![PoolSpec {
        platform: Platform::csp1(),
        nodes,
        overheads: Overheads::default(),
        topology: None,
    }]
}

#[test]
fn demo_campaign_is_byte_for_byte_reproducible() {
    let (_, first) = demo();
    let second = run_demo(42).to_json();
    assert_eq!(first, &second, "same seed must produce identical reports");
}

#[test]
fn demo_campaign_meets_the_acceptance_invariants() {
    let (report, _) = demo();
    // Scale floors.
    assert!(report.jobs >= 20, "jobs {}", report.jobs);
    assert!(report.platforms.len() >= 3, "platforms {}", report.platforms.len());
    // Fault injection was on and at least one job recovered via retry.
    assert!(report.faults >= 1, "no faults injected");
    assert!(report.retries >= 1, "no retries dispatched");
    assert!(
        report.retried_jobs_completed >= 1,
        "no job completed after a fault retry"
    );
    // The guard killed at least one runaway mid-run.
    assert!(report.guard_kills >= 1, "no guard kills");
    // The refinement loop: calibrated placements must beat the
    // uncalibrated first quartile.
    let uncal = report
        .mape_first_quartile_uncalibrated_pct
        .expect("uncalibrated MAPE must be measurable");
    let cal = report
        .mape_calibrated_pct
        .expect("calibrated MAPE must be measurable");
    assert!(uncal.is_finite() && cal.is_finite());
    assert!(
        cal < uncal,
        "calibrated MAPE {cal} must beat uncalibrated first-quartile MAPE {uncal}"
    );
    assert!(report.mape_first_quartile_uncalibrated_count >= 1);
    assert!(report.mape_calibrated_count >= 1);
    // The online accumulators must agree with a recount over the
    // (uncapped) retained placement log.
    let mut recount = report.clone();
    let (re_uncal, re_cal) = recount.compute_mapes();
    assert!((re_uncal.unwrap() - uncal).abs() < 1e-9, "uncal accumulator drifted");
    assert!((re_cal.unwrap() - cal).abs() < 1e-9, "cal accumulator drifted");
    // Error percentiles exist and are ordered on a measured campaign.
    let p50 = report.error_p50_pct.expect("p50");
    let p99 = report.error_p99_pct.expect("p99");
    assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
    assert_eq!(report.placements_total, report.placements.len());
    assert!(report.events_processed > 0);
    // Every job is accounted for exactly once.
    assert_eq!(
        report.completed + report.guard_kills + report.failed + report.rejected,
        report.jobs
    );
    // Sanity of the headline numbers.
    assert!(report.makespan_s.is_finite() && report.makespan_s > 0.0);
    assert!(report.total_cost_dollars.is_finite() && report.total_cost_dollars > 0.0);
    assert!(!report.placements.is_empty());
}

#[test]
fn demo_runaways_are_guard_killed_and_doomed_budget_is_rejected() {
    let (report, _) = demo();
    for j in &report.job_reports {
        if j.name.starts_with("runaway-") {
            assert_eq!(j.outcome, "guard_killed", "{}", j.name);
            assert!(j.run_seconds > 0.0, "{} must die mid-run, not at admission", j.name);
        }
        if j.name == "doomed-budget" {
            assert_eq!(j.outcome, "rejected");
            assert_eq!(j.attempts, 0, "rejected jobs never run");
            assert_eq!(j.cost_dollars, 0.0);
        }
    }
}

#[test]
fn demo_utilization_respects_pool_capacity() {
    let (report, _) = demo();
    for p in &report.platforms {
        assert!(
            p.utilization <= 1.0 + 1e-9,
            "{} utilization {} exceeds capacity",
            p.platform,
            p.utilization
        );
        assert!(p.busy_node_seconds >= 0.0);
    }
    // Placements only ever use node counts a pool can host.
    for r in &report.placements {
        let pool = report
            .platforms
            .iter()
            .find(|p| p.platform == r.platform)
            .expect("placement on an unknown platform");
        assert!(
            r.nodes <= pool.nodes_total,
            "{} nodes {} > pool {}",
            r.job_name,
            r.nodes,
            pool.nodes_total
        );
    }
}

#[test]
fn single_node_pool_serializes_contending_jobs() {
    let mut campaign = Campaign::new(tiny_config(1, 0.0), one_pool(1));
    for i in 0..3 {
        campaign.submit(tiny_job(&format!("contender-{i}"), 400_000, 10.0, 1.0, 0.0));
    }
    let report = campaign.run();
    assert_eq!(report.completed, 3, "{}", report.to_json());
    // One node: placements must not overlap — each next job starts at or
    // after the previous finish.
    for w in report.placements.windows(2) {
        assert!(
            w[1].time_s >= w[0].time_s,
            "placements out of order: {} then {}",
            w[0].time_s,
            w[1].time_s
        );
    }
    let busy = report.platforms[0].busy_node_seconds;
    assert!(
        busy <= report.makespan_s + 1e-6,
        "1-node pool can't do {busy} busy seconds in {} wall seconds",
        report.makespan_s
    );
}

#[test]
fn runaway_is_killed_mid_run_without_faults() {
    let mut campaign = Campaign::new(tiny_config(5, 0.0), one_pool(2));
    campaign.submit(tiny_job("honest", 500_000, 10.0, 1.0, 0.0));
    campaign.submit(tiny_job("runaway", 500_000, 0.2, 6.0, 0.0));
    let report = campaign.run();
    let honest = &report.job_reports[0];
    let runaway = &report.job_reports[1];
    assert_eq!(honest.outcome, "completed");
    assert_eq!(runaway.outcome, "guard_killed");
    assert!(runaway.run_seconds > 0.0, "killed mid-run, not at admission");
    assert!(runaway.wasted_steps > 0, "the in-flight slice is discarded");
    assert_eq!(report.guard_kills, 1);
}

#[test]
fn fault_retries_are_bounded_and_roll_back_to_checkpoints() {
    // A fault rate this extreme faults every slice: the job must burn its
    // first attempt plus max_retries retries, then fail.
    let mut campaign = Campaign::new(tiny_config(9, 50_000.0), one_pool(1));
    campaign.submit(tiny_job("unlucky", 400_000, 10.0, 1.0, 0.0));
    let report = campaign.run();
    let job = &report.job_reports[0];
    assert_eq!(job.outcome, "failed", "{}", report.to_json());
    assert_eq!(job.attempts, 3, "1 initial + max_retries = 2 retries");
    assert_eq!(job.faults, 3);
    assert_eq!(report.retries, 2);
    assert_eq!(report.failed, 1);
}

#[test]
fn different_seeds_change_the_outcome_stream() {
    let run = |seed: u64| {
        let mut campaign = Campaign::new(tiny_config(seed, 40.0), one_pool(1));
        for i in 0..4 {
            campaign.submit(tiny_job(&format!("j{i}"), 400_000, 10.0, 1.0, 0.0));
        }
        campaign.run().to_json()
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(a, b, "fault draws must depend on the campaign seed");
    assert_eq!(a, run(1), "and stay reproducible per seed");
}

#[test]
fn sixty_retry_job_rearrives_at_finite_bounded_times() {
    // Regression: unclamped doubling would park the 60th re-arrival at
    // 10·2^59 ≈ 5.8e18 simulated seconds (and overflow to +inf past
    // ~1070 retries, which the event queue rejects). With the cap, a job
    // that faults 61 straight times still drains in bounded virtual time.
    let mut config = tiny_config(9, 50_000.0);
    config.max_retry_backoff_s = 1800.0;
    let mut campaign = Campaign::new(config, one_pool(1));
    // Tolerance and budget are effectively unlimited so the retry loop —
    // not the guard — decides the outcome.
    let mut spec = tiny_job("retry-storm", 400_000, 1.0e9, 1.0, 0.0);
    spec.max_retries = 60;
    spec.budget_dollars = 1.0e12;
    campaign.submit(spec);
    let report = campaign.run();
    let job = &report.job_reports[0];
    assert_eq!(job.outcome, "failed", "{}", report.to_json());
    assert_eq!(report.retries, 60);
    assert_eq!(job.attempts, 61, "1 initial + 60 retries");
    assert!(report.makespan_s.is_finite());
    // 60 capped backoffs plus the faulted slices themselves: far below
    // what even a single uncapped late-round backoff would add.
    assert!(
        report.makespan_s <= 60.0 * 1800.0 + 1.0e6,
        "makespan {} suggests an uncapped backoff",
        report.makespan_s
    );
}

#[test]
fn report_is_byte_identical_at_any_shard_count() {
    // The tentpole determinism guarantee: the shard count is pure event-
    // queue layout, so the full campaign report (and its JSON) must not
    // change by a byte across 1/2/4/8 shards — faults, contention,
    // retries, batched same-time arrivals and all.
    let run = |shards: usize| {
        let mut config = tiny_config(11, 30.0);
        config.shards = shards;
        let mut campaign = Campaign::new(config, one_pool(2));
        for i in 0..6 {
            // Two jobs share each submit time to exercise same-time
            // batching across lanes.
            campaign.submit(tiny_job(
                &format!("s{i}"),
                400_000 + 100_000 * (i % 3),
                10.0,
                1.0,
                (i / 2) as f64 * 120.0,
            ));
        }
        campaign.run().to_json()
    };
    let reference = run(1);
    for shards in [2, 4, 8] {
        assert_eq!(
            reference,
            run(shards),
            "report changed between 1 and {shards} shards"
        );
    }
}

#[test]
fn capped_logs_keep_exact_campaign_aggregates() {
    // Cap the retained placement/job logs far below the campaign size:
    // the retained vectors shrink, but every aggregate — MAPEs, costs,
    // outcome counts — is computed online and must not move.
    let run = |max_log: usize| {
        let mut config = tiny_config(3, 0.0);
        config.max_placement_log = max_log;
        config.max_job_reports = max_log;
        let mut campaign = Campaign::new(config, one_pool(2));
        for i in 0..8 {
            campaign.submit(tiny_job(&format!("c{i}"), 400_000, 10.0, 1.0, i as f64 * 60.0));
        }
        campaign.run()
    };
    let full = run(usize::MAX);
    let capped = run(2);
    assert_eq!(capped.placements.len(), 2);
    assert_eq!(capped.job_reports.len(), 2);
    assert_eq!(capped.placements_total, full.placements.len());
    assert_eq!(capped.completed, full.completed);
    assert_eq!(capped.events_processed, full.events_processed);
    assert!((capped.total_cost_dollars - full.total_cost_dollars).abs() < 1e-9);
    assert_eq!(
        capped.mape_first_quartile_uncalibrated_pct,
        full.mape_first_quartile_uncalibrated_pct
    );
    assert_eq!(capped.mape_calibrated_pct, full.mape_calibrated_pct);
    assert_eq!(capped.mape_calibrated_count, full.mape_calibrated_count);
}

#[test]
fn campaign_obs_snapshot_is_deterministic_and_matches_report() {
    use hemocloud_obs::{Render, Sample};
    use hemocloud_sched::run_demo_with_obs;

    let (report, snap) = run_demo_with_obs(42);
    // Counters agree with the report's own accounting.
    assert_eq!(snap.counter("sched.jobs.submitted"), Some(report.jobs as u64));
    assert_eq!(snap.counter("sched.faults"), Some(report.faults as u64));
    assert_eq!(snap.counter("sched.retries"), Some(report.retries as u64));
    assert_eq!(snap.counter("sched.jobs.rejected"), Some(report.rejected as u64));
    let placements = snap.counter("sched.placements").expect("placements counter");
    assert_eq!(placements, report.placements.len() as u64);
    assert!(snap.counter("sched.slices").unwrap() >= placements);
    // Per-event-type virtual spans partition the whole campaign
    // timeline: their totals sum back to the makespan.
    let span_total = |name: &str| match snap.get(name) {
        Some(Sample::Span { total_s, deterministic, .. }) => {
            assert!(deterministic, "{name} must ride the virtual clock");
            *total_s
        }
        other => panic!("{name}: expected span, got {other:?}"),
    };
    let spanned = span_total("sched.event.arrive") + span_total("sched.event.slice_done");
    assert!(
        (spanned - report.makespan_s).abs() <= 1e-6 * report.makespan_s.max(1.0),
        "span totals {spanned} vs makespan {}",
        report.makespan_s
    );
    // The full render is byte-for-byte reproducible per seed.
    let (_, again) = run_demo_with_obs(42);
    assert_eq!(
        snap.to_json(Render::Full),
        again.to_json(Render::Full),
        "same seed must produce identical snapshots"
    );
    assert_ne!(
        snap.to_json(Render::Full),
        run_demo_with_obs(7).1.to_json(Render::Full),
        "snapshot must reflect the seed's event stream"
    );
}

//! `hemocloud-sched` — a discrete-event cloud campaign scheduler that
//! closes the paper's predict → run → guard → refine loop.
//!
//! The paper's Discussion sketches an operational deployment: a
//! performance model prices every (platform, ranks) option, a dashboard
//! recommends one under the user's objective, guards kill runs that blow
//! past their predicted budgets, and every measured run feeds back into
//! the model. The other crates in this workspace each build one of those
//! pieces; this crate is the control loop that runs them *together*,
//! against many jobs at once, on capacity-limited pools, over simulated
//! time:
//!
//! * [`events`] — the deterministic discrete-event clock.
//! * [`job`] — what users submit ([`JobSpec`]) and how runs end
//!   ([`JobOutcome`]).
//! * [`scheduler`] — the [`Campaign`] engine: admission, model-driven
//!   placement through `Dashboard::recommend`, sliced execution through
//!   `cluster::exec`, guard enforcement mid-run, seeded fault injection
//!   with checkpoint-rollback retries, and continuous model calibration.
//! * [`report`] — the [`CampaignReport`]: utilization, cost, SLO
//!   attainment, guard/retry accounting, and the placement-MAPE
//!   refinement trajectory, with deterministic JSON output.
//! * [`demo`] — the seeded reference campaign the bench driver, example,
//!   and acceptance tests all share.
//! * [`sweep`] — the scenario-sweep evaluation harness: the campaign run
//!   across seeds × geometries × platform mixes × fault rates × kernel
//!   configurations with budget/SLO/billing/Eq. 9/guard invariants
//!   armed, aggregated into one deterministic JSON report.
//!
//! Everything is reproducible: same seed, same report, byte for byte.

pub mod demo;
pub mod events;
pub mod job;
pub mod report;
pub mod scheduler;
pub mod sweep;

pub use demo::{
    demo_config, demo_jobs, demo_pools, fabric_demo_config, fabric_demo_jobs, fabric_demo_pools,
    run_demo, run_demo_with_obs, run_fabric_demo,
};
pub use events::{Event, EventQueue, ShardedEventQueue};
pub use job::{JobOutcome, JobSpec};
pub use report::{
    percentile, placement_mape, CampaignReport, JobReport, PlacementRecord, PlatformReport,
};
pub use scheduler::{
    expected_faults, fault_probability, retry_backoff_s, Campaign, CampaignConfig, PoolSpec,
};
pub use sweep::{
    cell_config, cell_jobs, mix_pools, run_sweep, AxisAggregate, CellResult, GeometryCase,
    SweepGrid, SweepReport, WorkloadCase,
};

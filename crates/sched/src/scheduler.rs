//! The campaign scheduler: a deterministic discrete-event loop that
//! closes the paper's predict → run → guard → refine cycle over many jobs
//! and capacity-limited platform pools.
//!
//! * **Predict / admit / place** — every waiting job's (platform, ranks)
//!   options are priced with the generalized model, corrected by the
//!   freshest [`ModelCalibrator`] fit, filtered to pools with free nodes
//!   and to the job's dollar budget, and handed to
//!   [`Dashboard::recommend_index`] under the job's objective. Full pools
//!   queue the job; a job with no feasible option even on empty pools is
//!   rejected.
//! * **Run** — placed jobs advance in time slices through
//!   [`PreparedRun::run_slice`], so the simulated platform noise follows
//!   the campaign clock hour by hour.
//! * **Guard** — each attempt carries a [`JobGuard`] built from the same
//!   (calibrated) prediction the placement used. The wall-clock budget
//!   truncates a slice mid-flight (the kill happens *at* the limit, not
//!   at the next boundary), and the dollar limit is checked every slice.
//! * **Faults** — node preemption is drawn per slice from the campaign's
//!   seeded PRNG at a per-node-hour rate; a faulted attempt rolls back to
//!   its last checkpoint, releases its nodes, and retries after bounded
//!   exponential backoff.
//! * **Refine** — every completed slice records (raw-predicted, measured)
//!   step times into per-platform and global calibrators; later
//!   placements and guards run on the corrected predictions, which is
//!   what drives the report's placement-MAPE trajectory down.
//!
//! # Scale: indexed state instead of per-event scans
//!
//! The original loop rescanned every job on every event — O(events ×
//! jobs), fine for a 26-job demo, hopeless for the million-job campaigns
//! ROADMAP item 2 asks for. The loop is now O(log n) per decision:
//!
//! * **Intake** — submissions sit in a submit-time-sorted vector behind a
//!   cursor (they never touch the event heap), and all events sharing one
//!   timestamp are processed as a *batch* with a single dispatch pass
//!   after it, so a burst of simultaneous arrivals is admitted in one
//!   sweep.
//! * **Ready set** — newly arrived or retried jobs go into a `BTreeSet`
//!   and are placed in job-index order.
//! * **Wait index** — a job that must queue registers, per pool, under
//!   the *smallest* node count any of its in-budget options needs
//!   (`wait_buckets`). When a pool releases nodes it is marked in
//!   `freed_pools`, and the next dispatch wakes only the lowest-indexed
//!   eligible parked job per freed pool instead of rescanning everyone.
//!   One deliberate semantic change rides along: a parked job is
//!   re-evaluated when capacity frees up, not on every event, so a
//!   placement that becomes feasible purely through calibration drift
//!   (with no node ever released) is only discovered at the next wake.
//! * **Model cache** — `model_key`s are interned to dense ids at submit;
//!   per-(pool, model) raw predictions for every rank option are computed
//!   once ([`Prediction`]s are time-invariant), decompositions are shared
//!   via `Arc<PreparedRun>`, and the calibrators fold observations into
//!   running sums so a correction factor is O(1) per query
//!   ([`ModelCalibrator::bounded`] keeps their memory flat).
//!
//! # Determinism, sharded
//!
//! The only clock is the event queue ([`crate::events`]): one *lane* per
//! pool plus an intake lane, merged by `(time, lane, per-lane seq)` — a
//! key that never mentions how lanes are spread over shard heaps, so a
//! campaign report is byte-identical at any
//! [`CampaignConfig::shards`] count. Every random draw derives from the
//! campaign seed via SplitMix64, and all iteration is over
//! `Vec`/`BTreeMap`/`BTreeSet` — reports are byte-for-byte reproducible
//! per seed.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use hemocloud_cluster::exec::{Overheads, PreparedRun};
use hemocloud_cluster::platform::Platform;
use hemocloud_cluster::pool::NodePool;
use hemocloud_cluster::pricing::PriceSheet;
use hemocloud_cluster::topology::{build_topology, CommModel, PlatformTopology, TopologyVariant};
use hemocloud_fabric::{Flow, Topology};
use hemocloud_core::characterize::{characterize, PlatformCharacterization};
use hemocloud_core::composition::Prediction;
use hemocloud_core::dashboard::{Dashboard, DashboardEntry};
use hemocloud_core::general::GeneralModel;
use hemocloud_core::guard::JobGuard;
use hemocloud_core::refine::ModelCalibrator;
use hemocloud_obs::{Counter, Registry, Snapshot};
use hemocloud_rt::rng::{Rng, SplitMix64};

use crate::events::{Event, ShardedEventQueue};
use crate::job::{JobOutcome, JobSpec};
use crate::report::{CampaignReport, JobReport, PlacementRecord, PlatformReport};

/// Observations each calibrator retains for diagnostics; the fit itself
/// always covers the full history (see [`ModelCalibrator::bounded`]).
const CALIBRATOR_WINDOW: usize = 1024;

/// Campaign-wide knobs.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seed for every stochastic element (faults, slice noise streams).
    pub seed: u64,
    /// Seed for the one-time platform characterizations.
    pub characterization_seed: u64,
    /// Rank counts the dashboard may offer.
    pub rank_options: Vec<usize>,
    /// Steps per execution slice (guard checks and fault draws happen at
    /// this granularity).
    pub slice_steps: u64,
    /// Node-fault intensity, in **faults per node-hour** of occupancy
    /// (0 disables fault injection). A slice occupying `nodes` nodes for
    /// `dur_s` seconds expects `rate × nodes × dur_s / 3600` faults
    /// ([`expected_faults`]); the per-slice fault draw fires with the
    /// Poisson hit probability `1 − e^(−λ)` ([`fault_probability`]). At
    /// the demo's 0.15, a 2-node half-hour slice expects 0.15 faults and
    /// is interrupted with probability ≈ 0.139.
    pub fault_rate_per_node_hour: f64,
    /// Base retry backoff, seconds; doubles per retry of the same job up
    /// to [`CampaignConfig::max_retry_backoff_s`].
    pub retry_backoff_s: f64,
    /// Ceiling on a single retry's backoff, seconds. Doubling is clamped
    /// here so a job with a large `max_retries` cannot push its re-arrival
    /// into an astronomically late (or, past ~1070 retries, non-finite)
    /// event time — the event queue rejects non-finite times outright.
    pub max_retry_backoff_s: f64,
    /// Observations a calibrator needs before its correction is trusted
    /// for placement.
    pub min_calibration_obs: usize,
    /// Billing model.
    pub prices: PriceSheet,
    /// Shard heaps for the event queue. Pure layout: the campaign report
    /// is byte-identical at any value (the merge key is shard-free), so
    /// pick whatever balances heap sizes. Clamped to at least 1.
    pub shards: usize,
    /// Placement records retained for the report (the chronologically
    /// first this many). MAPE/percentile accounting stays exact over
    /// *every* placement regardless; the cap only bounds report memory on
    /// million-job campaigns.
    pub max_placement_log: usize,
    /// Per-job report rows retained (the first this many jobs by
    /// submission index). Campaign-level aggregates always cover every
    /// job.
    pub max_job_reports: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            characterization_seed: 2023,
            rank_options: vec![8, 16, 32, 36, 64, 72],
            slice_steps: 25_000,
            fault_rate_per_node_hour: 0.0,
            retry_backoff_s: 30.0,
            max_retry_backoff_s: 3600.0,
            min_calibration_obs: 5,
            prices: PriceSheet::default(),
            shards: 1,
            max_placement_log: usize::MAX,
            max_job_reports: usize::MAX,
        }
    }
}

/// One capacity-limited platform pool offered to the campaign.
#[derive(Debug, Clone)]
pub struct PoolSpec {
    /// The platform.
    pub platform: Platform,
    /// Nodes the campaign may occupy at once (capped at the platform's
    /// allocation).
    pub nodes: usize,
    /// The *actual* machine behavior for jobs run here — the unmodeled
    /// overheads the performance model will consistently miss until the
    /// calibrator learns them.
    pub overheads: Overheads,
    /// `Some(variant)` prices this pool's internodal traffic through a
    /// shared route-aware fabric sized to the whole pool: co-scheduled
    /// jobs contend for the same links. `None` keeps the scalar Eq. 12
    /// model (the calibration baseline).
    pub topology: Option<TopologyVariant>,
}

#[derive(Debug)]
struct PoolState {
    pool: NodePool,
    overheads: Overheads,
    character: PlatformCharacterization,
    calibrator: ModelCalibrator,
    /// The pool-wide shared fabric for routed pools — every job placed
    /// here routes its Eq. 9 messages over these links, so concurrent
    /// jobs' flows fair-share bandwidth.
    topology: Option<(TopologyVariant, PlatformTopology)>,
    /// Jobs with an active run on this pool, in job-index order — the
    /// deterministic background-traffic set for contended slices.
    active_jobs: BTreeSet<usize>,
    attempts: usize,
    faults: usize,
    guard_kills: usize,
    cost: f64,
    /// Integer billed node-seconds (per-attempt round-up, saturating) —
    /// the counter the sweep harness reconciles against busy time.
    billed_node_seconds: u64,
}

impl PoolState {
    /// The comm-model tag reports and dashboard rows carry for this pool.
    fn comm_name(&self) -> &'static str {
        match &self.topology {
            Some((variant, _)) => variant.name(),
            None => "scalar",
        }
    }
}

/// Why the current slice's end event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SliceEnd {
    /// The slice ran its full step window.
    Ran,
    /// A node fault cut it short; the attempt aborts.
    Fault,
    /// The guard's wall-clock budget ran out mid-slice; the job dies at
    /// exactly its limit.
    GuardKill,
}

#[derive(Debug, Clone, Copy)]
struct PendingSlice {
    steps: u64,
    /// Measured seconds per step for this slice.
    step_s: f64,
    /// How the slice ends.
    end: SliceEnd,
    /// Actual occupancy seconds until the end event.
    dur_s: f64,
}

#[derive(Debug)]
struct ActiveRun {
    pool_idx: usize,
    ranks: usize,
    nodes: usize,
    /// Physical node ids of the allocation (lowest-free-first, so
    /// deterministic). On routed pools these address the pool fabric.
    node_ids: Vec<usize>,
    /// Cached Eq. 9 internodal flows mapped onto `node_ids` (empty on
    /// scalar pools) — this run's contribution to pool contention and
    /// the per-link obs byte accounting.
    flows: Vec<Flow>,
    /// Shared with the campaign's decomposition cache — repeat placements
    /// of the same (pool, model, ranks) never rebuild or clone the RCB.
    prepared: Arc<PreparedRun>,
    guard: JobGuard,
    /// Uncalibrated model step prediction — what the calibrator learns
    /// against.
    raw_step_pred_s: f64,
    /// The (possibly calibrated) step prediction the placement believed —
    /// what the MAPE accounting scores.
    corrected_step_pred_s: f64,
    /// Whether that prediction was calibrated.
    calibrated: bool,
    attempt_elapsed_s: f64,
    slice_idx: u64,
    /// Global placement ordinal (may exceed the retained placement log).
    placement_ordinal: usize,
    /// Whether this attempt already contributed its first measured slice
    /// to the error accounting.
    measured_recorded: bool,
    pending: Option<PendingSlice>,
}

#[derive(Debug)]
struct JobState {
    spec: JobSpec,
    /// Interned `model_key|kernel` id — the dense cache key.
    model_id: u32,
    outcome: Option<JobOutcome>,
    waiting: bool,
    /// Wait-index registrations: (pool, min-nodes bucket) pairs this job
    /// currently occupies. Empty unless parked.
    parked: Vec<(usize, usize)>,
    completed_steps: u64,
    attempts: u32,
    retries_used: u32,
    faults: u32,
    /// Boxed: a million queued jobs must not each inline a ~200-byte run.
    run: Option<Box<ActiveRun>>,
    cost: f64,
    prior_attempts_s: f64,
    wasted_steps: u64,
    finish_s: f64,
}

impl JobState {
    fn new(spec: JobSpec, model_id: u32) -> Self {
        Self {
            spec,
            model_id,
            outcome: None,
            waiting: false,
            parked: Vec::new(),
            completed_steps: 0,
            attempts: 0,
            retries_used: 0,
            faults: 0,
            run: None,
            cost: 0.0,
            prior_attempts_s: 0.0,
            wasted_steps: 0,
            finish_s: 0.0,
        }
    }
}

/// Expected fault count `λ` for occupying `nodes` nodes over `dur_s`
/// seconds at `rate_per_node_hour` faults per node-hour (the unit of
/// [`CampaignConfig::fault_rate_per_node_hour`]):
/// `λ = rate × nodes × dur_s / 3600`.
///
/// Total by construction: a zero-duration slice has zero expected faults
/// at *any* rate (including `inf`, where the naive product would be
/// `inf × 0 = NaN`), and non-finite or negative inputs clamp to the
/// nearest meaningful value instead of poisoning downstream probability
/// math. The sweep harness runs fault-rate extremes on purpose.
pub fn expected_faults(rate_per_node_hour: f64, nodes: usize, dur_s: f64) -> f64 {
    let rate = if rate_per_node_hour.is_nan() {
        0.0
    } else {
        rate_per_node_hour.max(0.0)
    };
    let dur = if dur_s.is_nan() { 0.0 } else { dur_s.max(0.0) };
    if rate == 0.0 || dur == 0.0 || nodes == 0 {
        return 0.0;
    }
    rate * nodes as f64 * (dur / 3600.0)
}

/// Probability that at least one fault lands in a window whose expected
/// fault count is `lambda`, under Poisson arrivals: `1 − e^(−λ)`.
/// Computed via `exp_m1` so tiny rates keep full precision. The result is
/// always in `[0, 1]`: negative or NaN `λ` counts as 0 (no exposure),
/// huge or infinite `λ` saturates at 1 — never NaN, never outside the
/// unit interval, so `rng.next_f64() < fault_probability(λ)` stays a
/// well-defined Bernoulli draw at every sweep extreme.
pub fn fault_probability(lambda: f64) -> f64 {
    let lambda = if lambda.is_nan() { 0.0 } else { lambda.max(0.0) };
    if lambda == f64::INFINITY {
        return 1.0;
    }
    (-(-lambda).exp_m1()).clamp(0.0, 1.0)
}

/// Bounded exponential retry backoff: `base_s × 2^(retry−1)` for the
/// `retry`-th retry (1-based), clamped to `max_s`. The doubling stops as
/// soon as the cap is reached, so any `retry` count — even one far past
/// the ~1070 doublings that would overflow `f64` — yields a finite,
/// monotonically non-decreasing delay.
pub fn retry_backoff_s(base_s: f64, max_s: f64, retry: u32) -> f64 {
    if !(base_s > 0.0) {
        return 0.0;
    }
    // A non-positive or non-finite cap means "no cap" — which still must
    // not produce a non-finite delay, so fall back to f64::MAX.
    let max_s = if max_s > 0.0 && max_s.is_finite() {
        max_s
    } else {
        f64::MAX
    };
    let mut backoff = base_s;
    for _ in 1..retry {
        if backoff >= max_s {
            break;
        }
        backoff *= 2.0;
    }
    backoff.min(max_s)
}

/// Derive a child seed from mixed parts (SplitMix64 chaining — the same
/// construction `rt::check` uses for per-case seeds).
fn derive_seed(parts: &[u64]) -> u64 {
    let mut acc = 0x9E37_79B9_7F4A_7C15u64;
    for &p in parts {
        acc = SplitMix64::new(acc ^ p).next_u64();
    }
    acc
}

/// One statically feasible (ranks, nodes) option of a (pool, model) pair:
/// rank fits the platform and the grid, the node count fits the pool, and
/// the raw prediction is finite. Raw predictions are time-invariant, so
/// the whole row is computed once per (pool, model) and cached.
#[derive(Debug, Clone, Copy)]
struct OptionSpec {
    ranks: usize,
    nodes: usize,
    raw: Prediction,
}

/// A candidate (pool, ranks) option for one waiting job, with the index
/// context placement needs carried alongside (never re-matched by float
/// equality — see [`Dashboard::recommend_index`]).
#[derive(Debug, Clone, Copy)]
struct Candidate {
    pool_idx: usize,
    ranks: usize,
    nodes: usize,
    raw: Prediction,
    calibrated: bool,
    fits_now: bool,
}

enum PlaceResult {
    Placed,
    /// Queue the job; the payload is its wait-index registration — per
    /// pool, the minimum node count among its in-budget options there.
    Wait(Vec<(usize, usize)>),
    Reject(String),
}

/// The campaign's observability handles. The campaign owns a *private*
/// [`Registry`] (not the process-global one): everything in here advances
/// on the virtual event clock and per-seed determinism matters, so the
/// counters must not mix with wall-clock metrics or with a second
/// campaign running in the same process.
#[derive(Debug)]
struct SchedObs {
    registry: Registry,
    submitted: Arc<Counter>,
    admitted: Arc<Counter>,
    rejected: Arc<Counter>,
    slices: Arc<Counter>,
    guard_kills: Arc<Counter>,
    faults: Arc<Counter>,
    retries: Arc<Counter>,
    events: Arc<Counter>,
    /// Pops per event lane (0 = intake, 1 + p = pool p). Lane-keyed, not
    /// shard-keyed, so the whole snapshot stays shard-count-invariant
    /// apart from the explicit `sched.shards` gauge.
    lane_pops: Vec<Arc<Counter>>,
    /// Per pool, per link: bytes forwarded over the link by completed
    /// slices (every hop of every route counts). Empty for scalar pools.
    fabric_forwarded: Vec<Vec<Arc<Counter>>>,
    /// Per pool, per link: bytes delivered at the link (final hop only),
    /// so the family sum equals the Eq. 9 message-graph bytes exactly.
    fabric_delivered: Vec<Vec<Arc<Counter>>>,
}

impl SchedObs {
    fn new(lanes: usize, pool_links: &[usize]) -> Self {
        let registry = Registry::new();
        Self {
            submitted: registry.counter("sched.jobs.submitted"),
            admitted: registry.counter("sched.placements"),
            rejected: registry.counter("sched.jobs.rejected"),
            slices: registry.counter("sched.slices"),
            guard_kills: registry.counter("sched.guard_kills"),
            faults: registry.counter("sched.faults"),
            retries: registry.counter("sched.retries"),
            events: registry.counter("sched.events.processed"),
            lane_pops: registry.counter_family("sched.lane.pops", lanes),
            fabric_forwarded: pool_links
                .iter()
                .enumerate()
                .map(|(p, &n)| {
                    registry.counter_family(&format!("fabric.pool{p}.link.forwarded_bytes"), n)
                })
                .collect(),
            fabric_delivered: pool_links
                .iter()
                .enumerate()
                .map(|(p, &n)| {
                    registry.counter_family(&format!("fabric.pool{p}.link.delivered_bytes"), n)
                })
                .collect(),
            registry,
        }
    }
}

/// The campaign scheduler.
#[derive(Debug)]
pub struct Campaign {
    config: CampaignConfig,
    pools: Vec<PoolState>,
    jobs: Vec<JobState>,
    events: ShardedEventQueue,
    clock_s: f64,
    global_calibrator: ModelCalibrator,
    /// `model_key|kernel` strings interned to dense ids at submit.
    model_key_ids: BTreeMap<String, u32>,
    /// Statically feasible rank options with raw predictions, per
    /// (pool, model id) — built once, reused by every placement attempt.
    pool_options: BTreeMap<(usize, u32), Vec<OptionSpec>>,
    /// `PreparedRun` cache keyed by (pool, model id, ranks) — the RCB
    /// decomposition behind a placement is deterministic per key, so
    /// repeat placements share one `Arc`.
    prepared: BTreeMap<(usize, u32, usize), Arc<PreparedRun>>,
    /// Jobs that arrived (or retried) and await their first placement
    /// attempt, tried in job-index order on the next dispatch.
    ready: BTreeSet<usize>,
    /// Per pool: min-required-nodes → parked job indices. The wake path
    /// scans only buckets whose key fits the pool's free nodes.
    wait_buckets: Vec<BTreeMap<usize, BTreeSet<usize>>>,
    /// Pools that released nodes since the last dispatch.
    freed_pools: BTreeSet<usize>,
    /// Retained placement log (first `max_placement_log` placements).
    placements: Vec<PlacementRecord>,
    placements_total: usize,
    /// (placement ordinal, |pct error|) of every measured *uncalibrated*
    /// placement — small, since calibration kicks in within a few slices.
    uncal_errs: Vec<(usize, f64)>,
    /// Running totals over every measured *calibrated* placement.
    cal_err_sum: f64,
    cal_err_count: usize,
    events_processed: u64,
    retries: usize,
    obs: SchedObs,
}

impl Campaign {
    /// Set up a campaign over `pools`.
    ///
    /// # Panics
    /// Panics on an empty pool list or duplicate platform abbreviations
    /// (reports key per-platform accounting by abbreviation).
    pub fn new(config: CampaignConfig, pools: Vec<PoolSpec>) -> Self {
        assert!(!pools.is_empty(), "campaign needs at least one pool");
        let mut seen: Vec<&str> = Vec::new();
        for p in &pools {
            assert!(
                !seen.contains(&p.platform.abbrev),
                "duplicate pool platform {}",
                p.platform.abbrev
            );
            seen.push(p.platform.abbrev);
        }
        let characterization_seed = config.characterization_seed;
        let pools: Vec<PoolState> = pools
            .into_iter()
            .map(|spec| {
                let character = characterize(&spec.platform, characterization_seed);
                let pool = NodePool::new(spec.platform, spec.nodes);
                // The shared fabric spans the whole pool allocation (after
                // the platform cap), so every placement's node ids address
                // valid fabric nodes.
                let topology = spec
                    .topology
                    .map(|v| (v, build_topology(&pool.platform, v, pool.nodes_total())));
                PoolState {
                    character,
                    pool,
                    overheads: spec.overheads,
                    calibrator: ModelCalibrator::bounded(CALIBRATOR_WINDOW),
                    topology,
                    active_jobs: BTreeSet::new(),
                    attempts: 0,
                    faults: 0,
                    guard_kills: 0,
                    cost: 0.0,
                    billed_node_seconds: 0,
                }
            })
            .collect();
        let lanes = 1 + pools.len();
        let shards = config.shards.max(1);
        let pool_links: Vec<usize> = pools
            .iter()
            .map(|s| s.topology.as_ref().map_or(0, |(_, t)| t.links().len()))
            .collect();
        Self {
            events: ShardedEventQueue::new(lanes, shards),
            wait_buckets: vec![BTreeMap::new(); pools.len()],
            obs: SchedObs::new(lanes, &pool_links),
            config,
            jobs: Vec::new(),
            clock_s: 0.0,
            global_calibrator: ModelCalibrator::bounded(CALIBRATOR_WINDOW),
            model_key_ids: BTreeMap::new(),
            pool_options: BTreeMap::new(),
            prepared: BTreeMap::new(),
            ready: BTreeSet::new(),
            freed_pools: BTreeSet::new(),
            placements: Vec::new(),
            placements_total: 0,
            uncal_errs: Vec::new(),
            cal_err_sum: 0.0,
            cal_err_count: 0,
            events_processed: 0,
            retries: 0,
            pools,
        }
    }

    /// Deterministic snapshot of the campaign's private metrics registry:
    /// admission/guard/retry/fault counters, per-lane pop counters,
    /// per-event-type virtual-time span totals, and (after
    /// [`Campaign::run`]) calibration-error gauges. Byte-for-byte
    /// reproducible per seed; only the `sched.shards` gauge varies with
    /// the shard count.
    pub fn obs_snapshot(&self) -> Snapshot {
        self.obs.registry.snapshot()
    }

    /// Submit a job; returns its index.
    ///
    /// # Panics
    /// Panics on invalid specs (negative tolerance, non-positive budget
    /// or hidden-step factor, zero declared steps).
    pub fn submit(&mut self, spec: JobSpec) -> usize {
        assert!(spec.tolerance >= 0.0, "negative tolerance on {}", spec.name);
        assert!(
            spec.budget_dollars > 0.0,
            "non-positive budget on {}",
            spec.name
        );
        assert!(
            spec.hidden_steps_factor > 0.0,
            "non-positive hidden_steps_factor on {}",
            spec.name
        );
        assert!(spec.workload.steps > 0, "zero-step job {}", spec.name);
        assert!(
            spec.submit_s.is_finite() && spec.submit_s >= 0.0,
            "bad submit time on {}",
            spec.name
        );
        let key = format!("{}|{}", spec.model_key, spec.workload.kernel.name());
        let next_id = self.model_key_ids.len() as u32;
        let model_id = *self.model_key_ids.entry(key).or_insert(next_id);
        let idx = self.jobs.len();
        self.jobs.push(JobState::new(spec, model_id));
        self.obs.submitted.inc();
        idx
    }

    /// Number of submitted jobs.
    pub fn n_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Drain every event and return the campaign report.
    ///
    /// Events sharing one (bitwise-equal) timestamp are processed as a
    /// batch — intake arrivals first (lane 0 outranks every pool lane at
    /// equal time), then queued events in `(lane, seq)` order — followed
    /// by a single dispatch pass. Events pushed *during* that dispatch at
    /// the same time form the next batch at the same clock value, so the
    /// loop terminates because every batch consumes events and scheduled
    /// work strictly advances.
    pub fn run(&mut self) -> CampaignReport {
        self.obs
            .registry
            .gauge("sched.shards")
            .set(self.events.shard_count() as f64);
        // Intake: submission indices, stably sorted by submit time — an
        // O(1)-per-arrival cursor instead of a heap of a million events.
        let mut intake: Vec<usize> = (0..self.jobs.len()).collect();
        intake.sort_by(|&a, &b| {
            self.jobs[a]
                .spec
                .submit_s
                .total_cmp(&self.jobs[b].spec.submit_s)
        });
        let mut cursor = 0usize;
        loop {
            let next_intake = intake.get(cursor).map(|&j| self.jobs[j].spec.submit_s);
            let t = match (next_intake, self.events.next_time()) {
                (None, None) => break,
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (Some(a), Some(b)) => {
                    if a <= b {
                        a
                    } else {
                        b
                    }
                }
            };
            debug_assert!(t >= self.clock_s, "clock moved backwards");
            while cursor < intake.len() && self.jobs[intake[cursor]].spec.submit_s == t {
                let job = intake[cursor];
                cursor += 1;
                self.note_event("sched.event.arrive", t, 0);
                self.jobs[job].waiting = true;
                self.ready.insert(job);
            }
            while self.events.next_time() == Some(t) {
                let (_, lane, event) = self.events.pop().expect("peeked event");
                match event {
                    Event::Arrive { job } => {
                        self.note_event("sched.event.arrive", t, lane);
                        self.jobs[job].waiting = true;
                        self.ready.insert(job);
                    }
                    Event::SliceDone { job, attempt } => {
                        self.note_event("sched.event.slice_done", t, lane);
                        self.on_slice_done(job, attempt);
                    }
                }
            }
            self.dispatch();
        }
        // Anything still parked can never be placed again: no running job
        // remains to free nodes.
        for job in &mut self.jobs {
            if job.outcome.is_none() {
                assert!(job.run.is_none(), "drained queue with a live run");
                job.outcome = Some(JobOutcome::Rejected {
                    reason: "starved: no pool ever had room".into(),
                });
                job.finish_s = self.clock_s;
            }
        }
        self.build_report()
    }

    /// Advance the clock to `t`, attributing the virtual-time gap to the
    /// event type that closes it (so per-type span totals sum exactly to
    /// the makespan — later events in the same batch record zero-length
    /// spans), and count the pop on its lane.
    fn note_event(&mut self, span: &str, t: f64, lane: usize) {
        self.obs
            .registry
            .record_span_s(span, (t - self.clock_s).max(0.0), true);
        self.clock_s = t;
        self.events_processed += 1;
        self.obs.events.inc();
        self.obs.lane_pops[lane].inc();
    }

    // ---- placement ----------------------------------------------------

    /// The correction factor placement scoring uses for `pool_idx`, and
    /// whether it is calibrated: the pool's own fit once it has enough
    /// observations, else the global fit, else identity. O(1) — the
    /// calibrators keep running sums.
    fn correction_k(&self, pool_idx: usize) -> (f64, bool) {
        let min = self.config.min_calibration_obs.max(1);
        let local = &self.pools[pool_idx].calibrator;
        if local.len() >= min {
            (local.correction_factor(), true)
        } else if self.global_calibrator.len() >= min {
            (self.global_calibrator.correction_factor(), true)
        } else {
            (1.0, false)
        }
    }

    /// Full corrected prediction from the same calibrator
    /// [`Campaign::correction_k`] selected — built only for a placement
    /// winner.
    fn corrected(&self, pool_idx: usize, raw: &Prediction) -> (Prediction, bool) {
        let min = self.config.min_calibration_obs.max(1);
        let local = &self.pools[pool_idx].calibrator;
        if local.len() >= min {
            (local.corrected_prediction(raw), true)
        } else if self.global_calibrator.len() >= min {
            (self.global_calibrator.corrected_prediction(raw), true)
        } else {
            (*raw, false)
        }
    }

    /// Build (once) the statically feasible option rows for every pool of
    /// this job's model.
    fn ensure_options(&mut self, job_idx: usize) {
        let model_id = self.jobs[job_idx].model_id;
        for pool_idx in 0..self.pools.len() {
            if self.pool_options.contains_key(&(pool_idx, model_id)) {
                continue;
            }
            let spec = &self.jobs[job_idx].spec;
            let state = &self.pools[pool_idx];
            let platform = &state.pool.platform;
            let model = GeneralModel::from_characterization(&state.character, &spec.workload);
            let mut opts = Vec::new();
            for &ranks in &self.config.rank_options {
                if ranks == 0
                    || ranks > platform.total_cores
                    || ranks > spec.workload.grid.fluid_count()
                {
                    continue;
                }
                let nodes = platform.nodes_for_ranks(ranks);
                if !state.pool.can_host(nodes) {
                    continue;
                }
                let raw = model.predict(ranks);
                if !(raw.step_time_s > 0.0) || !raw.step_time_s.is_finite() {
                    continue;
                }
                opts.push(OptionSpec { ranks, nodes, raw });
            }
            self.pool_options.insert((pool_idx, model_id), opts);
        }
    }

    fn try_place(&mut self, job_idx: usize) -> PlaceResult {
        self.ensure_options(job_idx);
        let model_id = self.jobs[job_idx].model_id;
        let spec = &self.jobs[job_idx].spec;
        let steps = spec.workload.steps;
        let updates = spec.workload.total_updates();
        let budget = spec.budget_dollars;
        let objective = spec.objective;
        let workload_name = spec.workload.name.clone();

        let mut cands: Vec<Candidate> = Vec::new();
        let mut entries: Vec<DashboardEntry> = Vec::new();
        let mut park_regs: Vec<(usize, usize)> = Vec::new();
        for pool_idx in 0..self.pools.len() {
            let (k, calibrated) = self.correction_k(pool_idx);
            let state = &self.pools[pool_idx];
            let platform = &state.pool.platform;
            let nodes_free = state.pool.nodes_free();
            let mut min_nodes: Option<usize> = None;
            for opt in &self.pool_options[&(pool_idx, model_id)] {
                // Same arithmetic the winner's corrected prediction uses:
                // time_for_steps(steps) over a step time scaled by k.
                let time = opt.raw.step_time_s * k * steps as f64;
                let cost = self.config.prices.cost(platform, opt.nodes, time);
                if cost > budget {
                    continue; // admission: never offer an over-budget option
                }
                min_nodes = Some(min_nodes.map_or(opt.nodes, |m: usize| m.min(opt.nodes)));
                cands.push(Candidate {
                    pool_idx,
                    ranks: opt.ranks,
                    nodes: opt.nodes,
                    raw: opt.raw,
                    calibrated,
                    fits_now: opt.nodes <= nodes_free,
                });
                entries.push(DashboardEntry {
                    platform: platform.abbrev.to_string(),
                    ranks: opt.ranks,
                    nodes: opt.nodes,
                    predicted_mflups: if k > 0.0 { opt.raw.mflups / k } else { 0.0 },
                    time_to_solution_s: time,
                    cost_dollars: cost,
                    updates_per_dollar: if cost > 0.0 {
                        updates / cost
                    } else {
                        f64::INFINITY
                    },
                    topology: state.comm_name().to_string(),
                });
            }
            if let Some(n) = min_nodes {
                park_regs.push((pool_idx, n));
            }
        }

        // Recommend over a subset, carrying candidate indices all the way
        // through (the old path matched the winning entry back by float
        // equality, silently resolving duplicate predictions to the first
        // duplicate — `recommend_index` makes the winner unambiguous).
        let recommend = |subset: &[usize]| -> Option<usize> {
            if subset.is_empty() {
                return None;
            }
            let dashboard = Dashboard {
                workload_name: workload_name.clone(),
                entries: subset.iter().map(|&i| entries[i].clone()).collect(),
            };
            dashboard.recommend_index(objective).map(|pos| subset[pos])
        };

        let free: Vec<usize> = (0..cands.len()).filter(|&i| cands[i].fits_now).collect();
        if let Some(win) = recommend(&free) {
            let chosen = cands[win];
            self.place(job_idx, &chosen);
            return PlaceResult::Placed;
        }
        // Nothing fits right now — would anything fit on an empty pool?
        let all: Vec<usize> = (0..cands.len()).collect();
        if recommend(&all).is_some() {
            PlaceResult::Wait(park_regs)
        } else {
            PlaceResult::Reject(
                "no (platform, ranks) option satisfies the objective and budget".into(),
            )
        }
    }

    fn place(&mut self, job_idx: usize, chosen: &Candidate) {
        let (corrected, calibrated) = self.corrected(chosen.pool_idx, &chosen.raw);
        debug_assert_eq!(calibrated, chosen.calibrated, "calibration flag drifted");
        let state = &mut self.pools[chosen.pool_idx];
        let node_ids = state
            .pool
            .try_alloc_ids(chosen.nodes)
            .expect("placement raced capacity");
        state.attempts += 1;
        state.active_jobs.insert(job_idx);
        self.obs.admitted.inc();
        let platform = state.pool.platform.clone();
        let overheads = state.overheads;
        let comm = match &state.topology {
            Some((variant, _)) => CommModel::Routed(*variant),
            None => CommModel::Scalar,
        };
        let topology_name = state.comm_name();

        let prep_key = (chosen.pool_idx, self.jobs[job_idx].model_id, chosen.ranks);
        if !self.prepared.contains_key(&prep_key) {
            let spec = &self.jobs[job_idx].spec;
            let built = PreparedRun::new_with_comm(
                &platform,
                &spec.workload.grid,
                &spec.workload.kernel,
                chosen.ranks,
                &overheads,
                comm,
            )
            .expect("candidate was validated feasible");
            self.prepared.insert(prep_key, Arc::new(built));
        }
        let prepared = Arc::clone(&self.prepared[&prep_key]);
        // The run's contention footprint: its Eq. 9 flows on its physical
        // nodes. Tagged by job so fabric traces stay attributable.
        let flows = if matches!(comm, CommModel::Routed(_)) {
            prepared.flows(&node_ids, (job_idx as u64) << 32)
        } else {
            Vec::new()
        };

        let max_placement_log = self.config.max_placement_log;
        let placement_ordinal = self.placements_total;
        self.placements_total += 1;

        let job = &mut self.jobs[job_idx];
        job.waiting = false;
        job.attempts += 1;
        let spec = &job.spec;
        let mut guard = JobGuard::from_prediction(
            &corrected,
            spec.workload.steps,
            &platform,
            spec.tolerance,
        );
        guard.max_dollars = guard.max_dollars.min(spec.budget_dollars);

        if self.placements.len() < max_placement_log {
            self.placements.push(PlacementRecord {
                job: job_idx,
                job_name: spec.name.clone(),
                attempt: job.attempts,
                platform: platform.abbrev.to_string(),
                ranks: chosen.ranks,
                nodes: chosen.nodes,
                calibrated,
                predicted_step_s: corrected.step_time_s,
                measured_step_s: None,
                time_s: self.clock_s,
                topology: topology_name.to_string(),
            });
        }
        job.run = Some(Box::new(ActiveRun {
            pool_idx: chosen.pool_idx,
            ranks: chosen.ranks,
            nodes: chosen.nodes,
            node_ids,
            flows,
            prepared,
            guard,
            raw_step_pred_s: chosen.raw.step_time_s,
            corrected_step_pred_s: corrected.step_time_s,
            calibrated,
            attempt_elapsed_s: 0.0,
            slice_idx: 0,
            placement_ordinal,
            measured_recorded: false,
            pending: None,
        }));
        self.schedule_slice(job_idx);
    }

    fn reject(&mut self, job_idx: usize, reason: String) {
        let job = &mut self.jobs[job_idx];
        job.waiting = false;
        job.outcome = Some(JobOutcome::Rejected { reason });
        job.finish_s = self.clock_s;
        self.obs.rejected.inc();
    }

    /// Register a queued job in the wait index under its per-pool minimum
    /// node requirements (refreshing any stale registration — budgets are
    /// re-evaluated under the current calibration on every failed try).
    fn park(&mut self, job_idx: usize, regs: Vec<(usize, usize)>) {
        self.unpark(job_idx);
        for &(pool_idx, nodes) in &regs {
            self.wait_buckets[pool_idx]
                .entry(nodes)
                .or_default()
                .insert(job_idx);
        }
        self.jobs[job_idx].parked = regs;
    }

    fn unpark(&mut self, job_idx: usize) {
        for (pool_idx, nodes) in std::mem::take(&mut self.jobs[job_idx].parked) {
            let bucket = self.wait_buckets[pool_idx]
                .get_mut(&nodes)
                .expect("parked job has a bucket");
            bucket.remove(&job_idx);
            if bucket.is_empty() {
                self.wait_buckets[pool_idx].remove(&nodes);
            }
        }
    }

    /// Lowest-indexed parked job that `pool_idx` could currently host and
    /// that has not already failed to place this dispatch. Scans only the
    /// buckets whose node requirement fits the free count; within a
    /// bucket, the first non-tried job is its minimum.
    fn wake_candidate(
        &self,
        pool_idx: usize,
        nodes_free: usize,
        tried: &BTreeSet<usize>,
    ) -> Option<usize> {
        let mut best: Option<usize> = None;
        for jobs in self.wait_buckets[pool_idx].range(..=nodes_free).map(|(_, j)| j) {
            for &job in jobs {
                if tried.contains(&job) {
                    continue;
                }
                best = Some(best.map_or(job, |b: usize| b.min(job)));
                break;
            }
        }
        best
    }

    /// One placement pass: try every ready job in index order, then wake
    /// parked jobs on pools that freed nodes. `tried` jobs that failed to
    /// place are skipped for the rest of the pass — free capacity only
    /// shrinks within a dispatch, so a failed job cannot succeed later in
    /// the same pass.
    fn dispatch(&mut self) {
        let mut tried: BTreeSet<usize> = BTreeSet::new();
        for job_idx in std::mem::take(&mut self.ready) {
            if self.jobs[job_idx].outcome.is_some() || self.jobs[job_idx].run.is_some() {
                continue;
            }
            match self.try_place(job_idx) {
                PlaceResult::Placed => {}
                PlaceResult::Wait(regs) => {
                    self.park(job_idx, regs);
                    tried.insert(job_idx);
                }
                PlaceResult::Reject(reason) => self.reject(job_idx, reason),
            }
        }
        while let Some(pool_idx) = self.freed_pools.pop_first() {
            loop {
                let nodes_free = self.pools[pool_idx].pool.nodes_free();
                let Some(job_idx) = self.wake_candidate(pool_idx, nodes_free, &tried) else {
                    break;
                };
                match self.try_place(job_idx) {
                    PlaceResult::Placed => self.unpark(job_idx),
                    PlaceResult::Wait(regs) => {
                        self.park(job_idx, regs);
                        tried.insert(job_idx);
                    }
                    PlaceResult::Reject(reason) => {
                        self.unpark(job_idx);
                        self.reject(job_idx, reason);
                    }
                }
            }
        }
    }

    // ---- execution ----------------------------------------------------

    /// The event lane of pool `pool_idx` (lane 0 is intake).
    fn pool_lane(pool_idx: usize) -> usize {
        1 + pool_idx
    }

    fn schedule_slice(&mut self, job_idx: usize) {
        let seed_base = self.config.seed;
        let fault_rate = self.config.fault_rate_per_node_hour;
        let slice_cap = self.config.slice_steps.max(1);
        let clock = self.clock_s;

        // Contention context first (immutable pass): on a routed pool,
        // every *other* active job's cached flows become background
        // traffic on the shared fabric. Job-index order via the pool's
        // `active_jobs` set keeps the flow list — and therefore the
        // fair-share arithmetic — identical at any shard count.
        let pool_idx = self.jobs[job_idx]
            .run
            .as_ref()
            .expect("slice for idle job")
            .pool_idx;
        let background: Vec<Flow> = match &self.pools[pool_idx].topology {
            Some(_) => self.pools[pool_idx]
                .active_jobs
                .iter()
                .filter(|&&j| j != job_idx)
                .flat_map(|&j| {
                    self.jobs[j]
                        .run
                        .as_ref()
                        .map_or(&[][..], |r| r.flows.as_slice())
                        .iter()
                        .copied()
                })
                .collect(),
            None => Vec::new(),
        };

        let job = &mut self.jobs[job_idx];
        let attempt = job.attempts;
        let run = job.run.as_mut().expect("slice for idle job");
        let remaining = job.spec.true_steps().saturating_sub(job.completed_steps);
        let steps = remaining.min(slice_cap).max(1);

        let noise_seed =
            derive_seed(&[seed_base, job_idx as u64, attempt as u64, run.slice_idx, 0x51]);
        let sim = match &self.pools[pool_idx].topology {
            Some((_, topology)) => run.prepared.run_slice_contended(
                steps,
                noise_seed,
                clock / 3600.0,
                topology,
                &run.node_ids,
                &background,
            ),
            None => run.prepared.run_slice(steps, noise_seed, clock / 3600.0),
        };

        // Pre-draw the fault for this slice from the campaign stream.
        let mut rng = Rng::new(derive_seed(&[
            seed_base,
            job_idx as u64,
            attempt as u64,
            run.slice_idx,
            0xFA,
        ]));
        let lambda = expected_faults(fault_rate, run.nodes, sim.total_time_s);
        let fault = rng.next_f64() < fault_probability(lambda);
        let fault_at = sim.total_time_s * rng.next_f64();

        // Whichever intervenes first ends the slice: the pre-drawn fault
        // or the guard's wall-clock budget running dry.
        let budget_left = run
            .guard
            .remaining_seconds(job.prior_attempts_s + run.attempt_elapsed_s);
        let (end, dur_s) = if fault && fault_at <= sim.total_time_s.min(budget_left) {
            (SliceEnd::Fault, fault_at)
        } else if budget_left < sim.total_time_s {
            (SliceEnd::GuardKill, budget_left)
        } else {
            (SliceEnd::Ran, sim.total_time_s)
        };
        run.pending = Some(PendingSlice {
            steps,
            step_s: sim.step_time_s,
            end,
            dur_s,
        });
        run.slice_idx += 1;
        let lane = Self::pool_lane(run.pool_idx);
        self.events
            .push(lane, clock + dur_s, Event::SliceDone { job: job_idx, attempt });
    }

    /// Close the books on the current attempt: bill it, free its nodes,
    /// and mark the pool for the next dispatch's wake pass.
    fn finalize_attempt(&mut self, job_idx: usize) {
        let job = &mut self.jobs[job_idx];
        let run = job.run.take().expect("no attempt to finalize");
        let state = &mut self.pools[run.pool_idx];
        let attempt_s = run.attempt_elapsed_s;
        // Per-attempt billing: each attempt is its own allocation (the
        // PerHour partial-hour round-up applies per attempt).
        let cost = self
            .config
            .prices
            .attempts_cost(&state.pool.platform, run.nodes, &[attempt_s]);
        job.cost += cost;
        job.prior_attempts_s += attempt_s;
        state.cost += cost;
        state.billed_node_seconds = state.billed_node_seconds.saturating_add(
            self.config
                .prices
                .attempts_billed_node_seconds(run.nodes, &[attempt_s]),
        );
        state.pool.release_ids(&run.node_ids, attempt_s);
        state.active_jobs.remove(&job_idx);
        self.freed_pools.insert(run.pool_idx);
    }

    fn on_slice_done(&mut self, job_idx: usize, attempt: u32) {
        self.obs.slices.inc();
        let job = &mut self.jobs[job_idx];
        assert_eq!(job.attempts, attempt, "stale slice event");
        let run = job.run.as_mut().expect("slice for idle job");
        let pending = run.pending.take().expect("slice event without a pending slice");
        run.attempt_elapsed_s += pending.dur_s;

        match pending.end {
            SliceEnd::Fault => {
                job.faults += 1;
                // Roll back to the last durable checkpoint: the faulted
                // slice's steps were never credited, and any credited
                // steps past the checkpoint are lost too.
                let ckpt = job.spec.checkpoint_steps.max(1);
                let rollback = job.completed_steps % ckpt;
                job.completed_steps -= rollback;
                job.wasted_steps += rollback;
                let pool_idx = run.pool_idx;
                let can_retry = job.retries_used < job.spec.max_retries;
                self.pools[pool_idx].faults += 1;
                self.obs.faults.inc();
                self.finalize_attempt(job_idx);
                if can_retry {
                    let job = &mut self.jobs[job_idx];
                    job.retries_used += 1;
                    self.retries += 1;
                    self.obs.retries.inc();
                    let backoff = retry_backoff_s(
                        self.config.retry_backoff_s,
                        self.config.max_retry_backoff_s,
                        job.retries_used,
                    );
                    // The retry re-arrives on the faulted pool's lane: the
                    // lane is a stable property of what produced the
                    // event, which is what keeps the order shard-free.
                    self.events.push(
                        Self::pool_lane(pool_idx),
                        self.clock_s + backoff,
                        Event::Arrive { job: job_idx },
                    );
                } else {
                    let job = &mut self.jobs[job_idx];
                    job.outcome = Some(JobOutcome::Failed);
                    job.finish_s = self.clock_s;
                }
            }
            SliceEnd::GuardKill => {
                // Killed at exactly the wall-clock limit: the in-flight
                // slice is discarded.
                job.wasted_steps += pending.steps;
                let pool_idx = run.pool_idx;
                self.pools[pool_idx].guard_kills += 1;
                self.obs.guard_kills.inc();
                self.finalize_attempt(job_idx);
                let job = &mut self.jobs[job_idx];
                job.outcome = Some(JobOutcome::GuardKilled);
                job.finish_s = self.clock_s;
            }
            SliceEnd::Ran => {
                job.completed_steps += pending.steps;
                let pool_idx = run.pool_idx;
                // Per-link byte accounting for completed slices: each
                // flow's bytes cross every link of its route once per
                // step (forwarded) and arrive at the final link
                // (delivered). Comm bytes are integral (points × 152),
                // so the u64 arithmetic is exact and the delivered
                // family sums to the Eq. 9 graph total exactly.
                if let Some((_, topology)) = &self.pools[pool_idx].topology {
                    let forwarded = &self.obs.fabric_forwarded[pool_idx];
                    let delivered = &self.obs.fabric_delivered[pool_idx];
                    for flow in &run.flows {
                        debug_assert_eq!(flow.bytes.fract(), 0.0, "non-integral comm bytes");
                        let bytes = (flow.bytes as u64) * pending.steps;
                        let route = topology.get_route(flow.src, flow.dst);
                        for &link in route {
                            forwarded[link].add(bytes);
                        }
                        if let Some(&last) = route.last() {
                            delivered[last].add(bytes);
                        }
                    }
                }
                let ranks = run.ranks;
                let nodes = run.nodes;
                let raw_pred = run.raw_step_pred_s;
                let elapsed = job.prior_attempts_s + run.attempt_elapsed_s;
                let attempt_cost = self.config.prices.attempts_cost(
                    &self.pools[pool_idx].pool.platform,
                    nodes,
                    &[run.attempt_elapsed_s],
                );
                let spent = job.cost + attempt_cost;
                let guard = run.guard;
                let done = job.completed_steps >= job.spec.true_steps();

                // First measured slice of the attempt: score the placement
                // prediction (exact accounting even when the placement log
                // is capped — the accumulators don't depend on it).
                if !run.measured_recorded {
                    run.measured_recorded = true;
                    let ordinal = run.placement_ordinal;
                    let err = 100.0 * (run.corrected_step_pred_s - pending.step_s).abs()
                        / pending.step_s;
                    if run.calibrated {
                        self.cal_err_sum += err;
                        self.cal_err_count += 1;
                    } else {
                        self.uncal_errs.push((ordinal, err));
                    }
                    if ordinal < self.placements.len() {
                        self.placements[ordinal].measured_step_s = Some(pending.step_s);
                    }
                }

                // Refinement: every completed slice feeds the calibrators.
                self.pools[pool_idx]
                    .calibrator
                    .record(ranks, raw_pred, pending.step_s);
                self.global_calibrator.record(ranks, raw_pred, pending.step_s);

                if guard.check(elapsed, spent).is_exceeded() {
                    // The dollar limit (or a boundary-exact overrun) trips
                    // post-slice.
                    self.pools[pool_idx].guard_kills += 1;
                    self.obs.guard_kills.inc();
                    self.finalize_attempt(job_idx);
                    let job = &mut self.jobs[job_idx];
                    job.outcome = Some(JobOutcome::GuardKilled);
                    job.finish_s = self.clock_s;
                } else if done {
                    self.finalize_attempt(job_idx);
                    let job = &mut self.jobs[job_idx];
                    job.outcome = Some(JobOutcome::Completed);
                    job.finish_s = self.clock_s;
                } else if !guard.has_budget(elapsed) {
                    // Budget exhausted to the exact second with work left:
                    // stop cleanly at the boundary (see GuardVerdict docs).
                    self.pools[pool_idx].guard_kills += 1;
                    self.obs.guard_kills.inc();
                    self.finalize_attempt(job_idx);
                    let job = &mut self.jobs[job_idx];
                    job.outcome = Some(JobOutcome::GuardKilled);
                    job.finish_s = self.clock_s;
                } else {
                    self.schedule_slice(job_idx);
                }
            }
        }
    }

    // ---- reporting ----------------------------------------------------

    fn build_report(&mut self) -> CampaignReport {
        let makespan = self.clock_s;
        // Refinement MAPEs from the online accumulators — exact over every
        // placement, independent of the retained-log cap. The uncalibrated
        // errors are summed in placement order (they arrive in measurement
        // order) for a stable, order-independent-of-batching total.
        let q1 = self.placements_total.div_ceil(4);
        let mut first_q: Vec<(usize, f64)> = self
            .uncal_errs
            .iter()
            .copied()
            .filter(|&(ordinal, _)| ordinal < q1)
            .collect();
        first_q.sort_by_key(|&(ordinal, _)| ordinal);
        let uncal_count = first_q.len();
        let uncal_mape = if uncal_count == 0 {
            None
        } else {
            Some(first_q.iter().map(|&(_, e)| e).sum::<f64>() / uncal_count as f64)
        };
        let cal_mape = if self.cal_err_count == 0 {
            None
        } else {
            Some(self.cal_err_sum / self.cal_err_count as f64)
        };
        let mut report = CampaignReport {
            seed: self.config.seed,
            jobs: self.jobs.len(),
            completed: 0,
            guard_kills: 0,
            failed: 0,
            rejected: 0,
            faults: 0,
            retries: self.retries,
            retried_jobs_completed: 0,
            makespan_s: makespan,
            total_cost_dollars: 0.0,
            wasted_steps: 0,
            slo_attained: 0,
            slo_total: 0,
            mape_first_quartile_uncalibrated_pct: uncal_mape,
            mape_first_quartile_uncalibrated_count: uncal_count,
            mape_calibrated_pct: cal_mape,
            mape_calibrated_count: self.cal_err_count,
            error_p50_pct: None,
            error_p99_pct: None,
            placements_total: self.placements_total,
            events_processed: self.events_processed,
            platforms: Vec::new(),
            job_reports: Vec::new(),
            placements: std::mem::take(&mut self.placements),
        };
        let max_job_reports = self.config.max_job_reports;
        for job in &self.jobs {
            let outcome = job.outcome.clone().expect("job left without outcome");
            match &outcome {
                JobOutcome::Completed => {
                    report.completed += 1;
                    if job.faults > 0 {
                        report.retried_jobs_completed += 1;
                    }
                }
                JobOutcome::GuardKilled => report.guard_kills += 1,
                JobOutcome::Failed => report.failed += 1,
                JobOutcome::Rejected { .. } => report.rejected += 1,
            }
            report.faults += job.faults as usize;
            report.total_cost_dollars += job.cost;
            report.wasted_steps += job.wasted_steps;
            let slo_met = match job.spec.objective {
                hemocloud_core::dashboard::Objective::Deadline(d) => {
                    report.slo_total += 1;
                    let met = outcome == JobOutcome::Completed
                        && job.finish_s - job.spec.submit_s <= d;
                    if met {
                        report.slo_attained += 1;
                    }
                    Some(met)
                }
                _ => None,
            };
            if report.job_reports.len() < max_job_reports {
                report.job_reports.push(JobReport {
                    name: job.spec.name.clone(),
                    outcome: outcome.label().to_string(),
                    cost_dollars: job.cost,
                    run_seconds: job.prior_attempts_s,
                    attempts: job.attempts,
                    faults: job.faults,
                    wasted_steps: job.wasted_steps,
                    finish_s: job.finish_s,
                    slo_met,
                });
            }
        }
        for state in &self.pools {
            report.platforms.push(PlatformReport {
                platform: state.pool.platform.abbrev.to_string(),
                nodes_total: state.pool.nodes_total(),
                peak_nodes_busy: state.pool.peak_nodes_busy(),
                attempts: state.attempts,
                faults: state.faults,
                guard_kills: state.guard_kills,
                cost_dollars: state.cost,
                busy_node_seconds: state.pool.busy_node_seconds(),
                billed_node_seconds: state.billed_node_seconds,
                utilization: state.pool.utilization(makespan),
            });
        }
        report.compute_error_percentiles();
        // Calibration-error gauges, set serially (hence deterministic).
        // Degenerate campaigns (no measured placements) simply omit the
        // gauge rather than leak a non-finite value into snapshots the
        // verify gate greps.
        let registry = &self.obs.registry;
        let set_finite = |name: &str, v: Option<f64>| {
            if let Some(v) = v.filter(|v| v.is_finite()) {
                registry.gauge(name).set(v);
            }
        };
        set_finite(
            "sched.calibration.mape_uncalibrated_pct",
            report.mape_first_quartile_uncalibrated_pct,
        );
        set_finite(
            "sched.calibration.mape_calibrated_pct",
            report.mape_calibrated_pct,
        );
        set_finite("sched.makespan_s", Some(makespan));
        registry
            .gauge("sched.calibration.observations")
            .set(self.global_calibrator.len() as f64);
        // Per-link utilization gauges for routed pools: forwarded bytes
        // over the link's byte capacity across the makespan. Set serially
        // from the counters, so deterministic; degenerate (zero-makespan)
        // campaigns omit them rather than leak non-finite values.
        for (p, state) in self.pools.iter().enumerate() {
            let Some((_, topology)) = &state.topology else {
                continue;
            };
            let links = topology.links();
            let mut delivered_total = 0u64;
            for counter in &self.obs.fabric_delivered[p] {
                delivered_total += counter.get();
            }
            registry
                .gauge(&format!("fabric.pool{p}.delivered_bytes_total"))
                .set(delivered_total as f64);
            if makespan > 0.0 {
                for (i, counter) in self.obs.fabric_forwarded[p].iter().enumerate() {
                    let util = counter.get() as f64 / (links[i].bytes_per_s() * makespan);
                    registry
                        .gauge(&format!("fabric.pool{p}.link.utilization.{i}"))
                        .set(util);
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_expectation_is_rate_times_node_hours() {
        // The pinning triple from the config rustdoc: 0.1 faults per
        // node-hour on 2 nodes for half an hour expects 0.1 faults, and
        // the slice is interrupted with probability 1 − e^(−0.1).
        let lambda = expected_faults(0.1, 2, 1800.0);
        assert_eq!(lambda, 0.1);
        let p = fault_probability(lambda);
        assert!((p - (1.0 - (-0.1f64).exp())).abs() < 1e-15, "p = {p}");
        // Degenerate corners: no rate, no nodes, or no time ⇒ no faults.
        assert_eq!(expected_faults(0.0, 8, 3600.0), 0.0);
        assert_eq!(expected_faults(0.15, 0, 3600.0), 0.0);
        assert_eq!(expected_faults(0.15, 8, 0.0), 0.0);
        assert_eq!(fault_probability(0.0), 0.0);
        // The demo rate: 0.15 per node-hour, 2 nodes, 30 minutes.
        let demo = fault_probability(expected_faults(0.15, 2, 1800.0));
        assert!((demo - 0.139_292_023_574_942_34).abs() < 1e-15, "{demo}");
    }

    /// Fault-rate extremes the sweep harness runs on purpose: every λ and
    /// every probability must stay finite and inside `[0, 1]` — a NaN
    /// here would poison an entire scenario cell's report.
    #[test]
    fn fault_helpers_are_total_at_extremes() {
        // inf × 0 corners: zero-duration slices and zero-node windows at
        // an infinite rate are "no exposure", not NaN.
        assert_eq!(expected_faults(f64::INFINITY, 8, 0.0), 0.0);
        assert_eq!(expected_faults(f64::INFINITY, 0, 3600.0), 0.0);
        assert_eq!(expected_faults(0.0, 8, f64::INFINITY), 0.0);
        // Hostile inputs clamp instead of propagating.
        assert_eq!(expected_faults(f64::NAN, 4, 100.0), 0.0);
        assert_eq!(expected_faults(-0.5, 4, 100.0), 0.0);
        assert_eq!(expected_faults(0.5, 4, f64::NAN), 0.0);
        assert_eq!(expected_faults(0.5, 4, -100.0), 0.0);
        // λ → 0⁺ keeps full precision through exp_m1: p ≈ λ.
        let tiny = fault_probability(1e-300);
        assert!(tiny > 0.0 && (tiny - 1e-300).abs() < 1e-315, "{tiny}");
        // λ huge / infinite saturates at exactly 1.
        assert_eq!(fault_probability(1e9), 1.0);
        assert_eq!(fault_probability(f64::MAX), 1.0);
        assert_eq!(fault_probability(f64::INFINITY), 1.0);
        // Negative / NaN λ count as no exposure.
        assert_eq!(fault_probability(-3.0), 0.0);
        assert_eq!(fault_probability(f64::NAN), 0.0);
        assert_eq!(fault_probability(f64::NEG_INFINITY), 0.0);
        // Random sweep: the composition is always a probability.
        let mut rng = hemocloud_rt::rng::Rng::new(0xFA);
        for _ in 0..10_000 {
            let rate = (rng.next_f64() - 0.25) * 1e6;
            let dur = (rng.next_f64() - 0.25) * 1e9;
            let nodes = (rng.next_u64() % 1000) as usize;
            let p = fault_probability(expected_faults(rate, nodes, dur));
            assert!((0.0..=1.0).contains(&p), "p = {p} at rate {rate} dur {dur}");
        }
    }

    #[test]
    fn retry_backoff_doubles_then_saturates_finite() {
        // Doubling run: 30, 60, 120, ... capped at one hour.
        assert_eq!(retry_backoff_s(30.0, 3600.0, 1), 30.0);
        assert_eq!(retry_backoff_s(30.0, 3600.0, 2), 60.0);
        assert_eq!(retry_backoff_s(30.0, 3600.0, 5), 480.0);
        assert_eq!(retry_backoff_s(30.0, 3600.0, 8), 3600.0);
        // 60 retries (the regression shape): every delay finite, capped,
        // and the re-arrival sequence monotonically ordered.
        let mut clock = 0.0f64;
        let mut prev_backoff = 0.0f64;
        for retry in 1..=60u32 {
            let b = retry_backoff_s(30.0, 3600.0, retry);
            assert!(b.is_finite() && b > 0.0, "retry {retry}: {b}");
            assert!(b <= 3600.0, "retry {retry} beyond cap: {b}");
            assert!(b >= prev_backoff, "backoff shrank at retry {retry}");
            prev_backoff = b;
            let next = clock + b;
            assert!(next > clock, "re-arrival did not advance at {retry}");
            clock = next;
        }
        // Uncapped, the 60th retry would already be 30·2^59 ≈ 1.7e19 s;
        // the clamp keeps the whole sequence within retries × cap.
        assert!(clock <= 60.0 * 3600.0, "clock = {clock}");
        // Exponents that overflow 2^e to infinity still come back capped.
        assert_eq!(retry_backoff_s(30.0, 3600.0, 2000), 3600.0);
        assert_eq!(retry_backoff_s(30.0, 3600.0, u32::MAX), 3600.0);
        // A degenerate cap falls back to a finite ceiling, never inf.
        assert!(retry_backoff_s(30.0, f64::INFINITY, 4000).is_finite());
        assert!(retry_backoff_s(30.0, 0.0, 4000).is_finite());
        // Non-positive bases mean "retry immediately".
        assert_eq!(retry_backoff_s(0.0, 3600.0, 7), 0.0);
    }
}

//! The campaign scheduler: a deterministic discrete-event loop that
//! closes the paper's predict → run → guard → refine cycle over many jobs
//! and capacity-limited platform pools.
//!
//! * **Predict / admit / place** — every waiting job's (platform, ranks)
//!   options are priced with the generalized model, corrected by the
//!   freshest [`ModelCalibrator`] fit, filtered to pools with free nodes
//!   and to the job's dollar budget, and handed to
//!   [`Dashboard::recommend`] under the job's objective. Full pools queue
//!   the job; a job with no feasible option even on empty pools is
//!   rejected.
//! * **Run** — placed jobs advance in time slices through
//!   [`PreparedRun::run_slice`], so the simulated platform noise follows
//!   the campaign clock hour by hour.
//! * **Guard** — each attempt carries a [`JobGuard`] built from the same
//!   (calibrated) prediction the placement used. The wall-clock budget
//!   truncates a slice mid-flight (the kill happens *at* the limit, not
//!   at the next boundary), and the dollar limit is checked every slice.
//! * **Faults** — node preemption is drawn per slice from the campaign's
//!   seeded PRNG at a per-node-hour rate; a faulted attempt rolls back to
//!   its last checkpoint, releases its nodes, and retries after bounded
//!   exponential backoff.
//! * **Refine** — every completed slice records (raw-predicted, measured)
//!   step times into per-platform and global calibrators; later
//!   placements and guards run on the corrected predictions, which is
//!   what drives the report's placement-MAPE trajectory down.
//!
//! Determinism: the only clock is the event queue ([`crate::events`]),
//! every random draw is derived from the campaign seed via SplitMix64,
//! and all iteration is over `Vec`/`BTreeMap` — reports are
//! byte-for-byte reproducible per seed.

use std::collections::BTreeMap;
use std::sync::Arc;

use hemocloud_cluster::exec::{Overheads, PreparedRun};
use hemocloud_cluster::platform::Platform;
use hemocloud_cluster::pool::NodePool;
use hemocloud_cluster::pricing::PriceSheet;
use hemocloud_core::characterize::{characterize, PlatformCharacterization};
use hemocloud_core::composition::Prediction;
use hemocloud_core::dashboard::{Dashboard, DashboardEntry};
use hemocloud_core::general::GeneralModel;
use hemocloud_core::guard::JobGuard;
use hemocloud_core::refine::ModelCalibrator;
use hemocloud_obs::{Counter, Registry, Snapshot};
use hemocloud_rt::rng::{Rng, SplitMix64};

use crate::events::{Event, EventQueue};
use crate::job::{JobOutcome, JobSpec};
use crate::report::{CampaignReport, JobReport, PlacementRecord, PlatformReport};

/// Campaign-wide knobs.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seed for every stochastic element (faults, slice noise streams).
    pub seed: u64,
    /// Seed for the one-time platform characterizations.
    pub characterization_seed: u64,
    /// Rank counts the dashboard may offer.
    pub rank_options: Vec<usize>,
    /// Steps per execution slice (guard checks and fault draws happen at
    /// this granularity).
    pub slice_steps: u64,
    /// Node-fault intensity, in **faults per node-hour** of occupancy
    /// (0 disables fault injection). A slice occupying `nodes` nodes for
    /// `dur_s` seconds expects `rate × nodes × dur_s / 3600` faults
    /// ([`expected_faults`]); the per-slice fault draw fires with the
    /// Poisson hit probability `1 − e^(−λ)` ([`fault_probability`]). At
    /// the demo's 0.15, a 2-node half-hour slice expects 0.15 faults and
    /// is interrupted with probability ≈ 0.139.
    pub fault_rate_per_node_hour: f64,
    /// Base retry backoff, seconds; doubles per retry of the same job up
    /// to [`CampaignConfig::max_retry_backoff_s`].
    pub retry_backoff_s: f64,
    /// Ceiling on a single retry's backoff, seconds. Doubling is clamped
    /// here so a job with a large `max_retries` cannot push its re-arrival
    /// into an astronomically late (or, past ~1070 retries, non-finite)
    /// event time — the event queue rejects non-finite times outright.
    pub max_retry_backoff_s: f64,
    /// Observations a calibrator needs before its correction is trusted
    /// for placement.
    pub min_calibration_obs: usize,
    /// Billing model.
    pub prices: PriceSheet,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            characterization_seed: 2023,
            rank_options: vec![8, 16, 32, 36, 64, 72],
            slice_steps: 25_000,
            fault_rate_per_node_hour: 0.0,
            retry_backoff_s: 30.0,
            max_retry_backoff_s: 3600.0,
            min_calibration_obs: 5,
            prices: PriceSheet::default(),
        }
    }
}

/// One capacity-limited platform pool offered to the campaign.
#[derive(Debug, Clone)]
pub struct PoolSpec {
    /// The platform.
    pub platform: Platform,
    /// Nodes the campaign may occupy at once (capped at the platform's
    /// allocation).
    pub nodes: usize,
    /// The *actual* machine behavior for jobs run here — the unmodeled
    /// overheads the performance model will consistently miss until the
    /// calibrator learns them.
    pub overheads: Overheads,
}

#[derive(Debug)]
struct PoolState {
    pool: NodePool,
    overheads: Overheads,
    character: PlatformCharacterization,
    calibrator: ModelCalibrator,
    attempts: usize,
    faults: usize,
    guard_kills: usize,
    cost: f64,
}

/// Why the current slice's end event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SliceEnd {
    /// The slice ran its full step window.
    Ran,
    /// A node fault cut it short; the attempt aborts.
    Fault,
    /// The guard's wall-clock budget ran out mid-slice; the job dies at
    /// exactly its limit.
    GuardKill,
}

#[derive(Debug, Clone, Copy)]
struct PendingSlice {
    steps: u64,
    /// Measured seconds per step for this slice.
    step_s: f64,
    /// How the slice ends.
    end: SliceEnd,
    /// Actual occupancy seconds until the end event.
    dur_s: f64,
}

#[derive(Debug)]
struct ActiveRun {
    pool_idx: usize,
    ranks: usize,
    nodes: usize,
    prepared: PreparedRun,
    guard: JobGuard,
    /// Uncalibrated model step prediction — what the calibrator learns
    /// against.
    raw_step_pred_s: f64,
    attempt_elapsed_s: f64,
    slice_idx: u64,
    placement_idx: usize,
    pending: Option<PendingSlice>,
}

#[derive(Debug)]
struct JobState {
    spec: JobSpec,
    outcome: Option<JobOutcome>,
    waiting: bool,
    completed_steps: u64,
    attempts: u32,
    retries_used: u32,
    faults: u32,
    run: Option<ActiveRun>,
    cost: f64,
    prior_attempts_s: f64,
    wasted_steps: u64,
    finish_s: f64,
}

impl JobState {
    fn new(spec: JobSpec) -> Self {
        Self {
            spec,
            outcome: None,
            waiting: false,
            completed_steps: 0,
            attempts: 0,
            retries_used: 0,
            faults: 0,
            run: None,
            cost: 0.0,
            prior_attempts_s: 0.0,
            wasted_steps: 0,
            finish_s: 0.0,
        }
    }
}

/// Expected fault count `λ` for occupying `nodes` nodes over `dur_s`
/// seconds at `rate_per_node_hour` faults per node-hour (the unit of
/// [`CampaignConfig::fault_rate_per_node_hour`]):
/// `λ = rate × nodes × dur_s / 3600`.
pub fn expected_faults(rate_per_node_hour: f64, nodes: usize, dur_s: f64) -> f64 {
    rate_per_node_hour * nodes as f64 * (dur_s / 3600.0)
}

/// Probability that at least one fault lands in a window whose expected
/// fault count is `lambda`, under Poisson arrivals: `1 − e^(−λ)`.
/// Computed via `exp_m1` so tiny rates keep full precision.
pub fn fault_probability(lambda: f64) -> f64 {
    -(-lambda).exp_m1()
}

/// Bounded exponential retry backoff: `base_s × 2^(retry−1)` for the
/// `retry`-th retry (1-based), clamped to `max_s`. The doubling stops as
/// soon as the cap is reached, so any `retry` count — even one far past
/// the ~1070 doublings that would overflow `f64` — yields a finite,
/// monotonically non-decreasing delay.
pub fn retry_backoff_s(base_s: f64, max_s: f64, retry: u32) -> f64 {
    if !(base_s > 0.0) {
        return 0.0;
    }
    // A non-positive or non-finite cap means "no cap" — which still must
    // not produce a non-finite delay, so fall back to f64::MAX.
    let max_s = if max_s > 0.0 && max_s.is_finite() {
        max_s
    } else {
        f64::MAX
    };
    let mut backoff = base_s;
    for _ in 1..retry {
        if backoff >= max_s {
            break;
        }
        backoff *= 2.0;
    }
    backoff.min(max_s)
}

/// Derive a child seed from mixed parts (SplitMix64 chaining — the same
/// construction `rt::check` uses for per-case seeds).
fn derive_seed(parts: &[u64]) -> u64 {
    let mut acc = 0x9E37_79B9_7F4A_7C15u64;
    for &p in parts {
        acc = SplitMix64::new(acc ^ p).next_u64();
    }
    acc
}

/// A candidate (pool, ranks) option for one waiting job.
struct Candidate {
    pool_idx: usize,
    ranks: usize,
    nodes: usize,
    raw: Prediction,
    corrected: Prediction,
    calibrated: bool,
    fits_now: bool,
    entry: DashboardEntry,
}

enum PlaceResult {
    Placed,
    Wait,
    Reject(String),
}

/// The campaign's observability handles. The campaign owns a *private*
/// [`Registry`] (not the process-global one): everything in here advances
/// on the virtual event clock and per-seed determinism matters, so the
/// counters must not mix with wall-clock metrics or with a second
/// campaign running in the same process.
#[derive(Debug)]
struct SchedObs {
    registry: Registry,
    submitted: Arc<Counter>,
    admitted: Arc<Counter>,
    rejected: Arc<Counter>,
    slices: Arc<Counter>,
    guard_kills: Arc<Counter>,
    faults: Arc<Counter>,
    retries: Arc<Counter>,
}

impl SchedObs {
    fn new() -> Self {
        let registry = Registry::new();
        Self {
            submitted: registry.counter("sched.jobs.submitted"),
            admitted: registry.counter("sched.placements"),
            rejected: registry.counter("sched.jobs.rejected"),
            slices: registry.counter("sched.slices"),
            guard_kills: registry.counter("sched.guard_kills"),
            faults: registry.counter("sched.faults"),
            retries: registry.counter("sched.retries"),
            registry,
        }
    }
}

/// The campaign scheduler.
#[derive(Debug)]
pub struct Campaign {
    config: CampaignConfig,
    pools: Vec<PoolState>,
    jobs: Vec<JobState>,
    events: EventQueue,
    clock_s: f64,
    global_calibrator: ModelCalibrator,
    /// `GeneralModel` cache keyed by (pool, geometry/kernel identity).
    models: BTreeMap<(usize, String), GeneralModel>,
    /// `PreparedRun` cache keyed by (pool, geometry/kernel identity,
    /// ranks) — the RCB decomposition behind a placement is deterministic
    /// per key, so repeat placements reuse it.
    prepared: BTreeMap<(usize, String, usize), PreparedRun>,
    placements: Vec<PlacementRecord>,
    retries: usize,
    obs: SchedObs,
}

impl Campaign {
    /// Set up a campaign over `pools`.
    ///
    /// # Panics
    /// Panics on an empty pool list or duplicate platform abbreviations
    /// (placement matches recommendations back by `(platform, ranks)`).
    pub fn new(config: CampaignConfig, pools: Vec<PoolSpec>) -> Self {
        assert!(!pools.is_empty(), "campaign needs at least one pool");
        let mut seen: Vec<&str> = Vec::new();
        for p in &pools {
            assert!(
                !seen.contains(&p.platform.abbrev),
                "duplicate pool platform {}",
                p.platform.abbrev
            );
            seen.push(p.platform.abbrev);
        }
        let characterization_seed = config.characterization_seed;
        let pools = pools
            .into_iter()
            .map(|spec| PoolState {
                character: characterize(&spec.platform, characterization_seed),
                pool: NodePool::new(spec.platform, spec.nodes),
                overheads: spec.overheads,
                calibrator: ModelCalibrator::new(),
                attempts: 0,
                faults: 0,
                guard_kills: 0,
                cost: 0.0,
            })
            .collect();
        Self {
            config,
            pools,
            jobs: Vec::new(),
            events: EventQueue::new(),
            clock_s: 0.0,
            global_calibrator: ModelCalibrator::new(),
            models: BTreeMap::new(),
            prepared: BTreeMap::new(),
            placements: Vec::new(),
            retries: 0,
            obs: SchedObs::new(),
        }
    }

    /// Deterministic snapshot of the campaign's private metrics registry:
    /// admission/guard/retry/fault counters, per-event-type virtual-time
    /// span totals, and (after [`Campaign::run`]) calibration-error
    /// gauges. Byte-for-byte reproducible per seed.
    pub fn obs_snapshot(&self) -> Snapshot {
        self.obs.registry.snapshot()
    }

    /// Submit a job; returns its index.
    ///
    /// # Panics
    /// Panics on invalid specs (negative tolerance, non-positive budget
    /// or hidden-step factor, zero declared steps).
    pub fn submit(&mut self, spec: JobSpec) -> usize {
        assert!(spec.tolerance >= 0.0, "negative tolerance on {}", spec.name);
        assert!(
            spec.budget_dollars > 0.0,
            "non-positive budget on {}",
            spec.name
        );
        assert!(
            spec.hidden_steps_factor > 0.0,
            "non-positive hidden_steps_factor on {}",
            spec.name
        );
        assert!(spec.workload.steps > 0, "zero-step job {}", spec.name);
        let idx = self.jobs.len();
        self.events.push(spec.submit_s, Event::Arrive { job: idx });
        self.jobs.push(JobState::new(spec));
        self.obs.submitted.inc();
        idx
    }

    /// Number of submitted jobs.
    pub fn n_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Drain every event and return the campaign report.
    pub fn run(&mut self) -> CampaignReport {
        while let Some((t, event)) = self.events.pop() {
            debug_assert!(t >= self.clock_s, "clock moved backwards");
            // Attribute the virtual time between consecutive events to the
            // event type that closes the gap — a span on the event clock,
            // so the totals are exactly reproducible per seed.
            let span = match &event {
                Event::Arrive { .. } => "sched.event.arrive",
                Event::SliceDone { .. } => "sched.event.slice_done",
            };
            self.obs
                .registry
                .record_span_s(span, (t - self.clock_s).max(0.0), true);
            self.clock_s = t;
            match event {
                Event::Arrive { job } => {
                    self.jobs[job].waiting = true;
                }
                Event::SliceDone { job, attempt } => self.on_slice_done(job, attempt),
            }
            self.dispatch();
        }
        // Anything still waiting can never be placed again: no running
        // job remains to free nodes.
        for job in &mut self.jobs {
            if job.outcome.is_none() {
                assert!(job.run.is_none(), "drained queue with a live run");
                job.outcome = Some(JobOutcome::Rejected {
                    reason: "starved: no pool ever had room".into(),
                });
                job.finish_s = self.clock_s;
            }
        }
        self.build_report()
    }

    // ---- placement ----------------------------------------------------

    fn model_key(spec: &JobSpec) -> String {
        format!("{}|{}", spec.model_key, spec.workload.kernel.name())
    }

    /// Correct a raw prediction with the freshest trusted calibrator:
    /// the pool's own if it has enough observations, else the global one,
    /// else identity.
    fn corrected(&self, pool_idx: usize, raw: &Prediction) -> (Prediction, bool) {
        let min = self.config.min_calibration_obs.max(1);
        let local = &self.pools[pool_idx].calibrator;
        if local.len() >= min {
            (local.corrected_prediction(raw), true)
        } else if self.global_calibrator.len() >= min {
            (self.global_calibrator.corrected_prediction(raw), true)
        } else {
            (*raw, false)
        }
    }

    fn candidates(&mut self, job_idx: usize) -> Vec<Candidate> {
        let spec = &self.jobs[job_idx].spec;
        let key_tail = Self::model_key(spec);
        let mut out = Vec::new();
        for pool_idx in 0..self.pools.len() {
            let key = (pool_idx, key_tail.clone());
            if !self.models.contains_key(&key) {
                let model = GeneralModel::from_characterization(
                    &self.pools[pool_idx].character,
                    &spec.workload,
                );
                self.models.insert(key.clone(), model);
            }
            let model = &self.models[&key];
            let state = &self.pools[pool_idx];
            let platform = &state.pool.platform;
            for &ranks in &self.config.rank_options {
                if ranks == 0
                    || ranks > platform.total_cores
                    || ranks > spec.workload.grid.fluid_count()
                {
                    continue;
                }
                let nodes = platform.nodes_for_ranks(ranks);
                if !state.pool.can_host(nodes) {
                    continue;
                }
                let raw = model.predict(ranks);
                if !(raw.step_time_s > 0.0) || !raw.step_time_s.is_finite() {
                    continue;
                }
                let (corrected, calibrated) = self.corrected(pool_idx, &raw);
                let time = corrected.time_for_steps(spec.workload.steps);
                let cost = self.config.prices.cost(platform, nodes, time);
                if cost > spec.budget_dollars {
                    continue; // admission: never offer an over-budget option
                }
                out.push(Candidate {
                    pool_idx,
                    ranks,
                    nodes,
                    raw,
                    corrected,
                    calibrated,
                    fits_now: nodes <= state.pool.nodes_free(),
                    entry: DashboardEntry {
                        platform: platform.abbrev.to_string(),
                        ranks,
                        nodes,
                        predicted_mflups: corrected.mflups,
                        time_to_solution_s: time,
                        cost_dollars: cost,
                        updates_per_dollar: if cost > 0.0 {
                            spec.workload.total_updates() / cost
                        } else {
                            f64::INFINITY
                        },
                    },
                });
            }
        }
        out
    }

    /// Run `Dashboard::recommend` over a candidate subset; returns the
    /// winning index into `candidates`.
    fn recommend_index(
        &self,
        job_idx: usize,
        candidates: &[Candidate],
        subset: &[usize],
    ) -> Option<usize> {
        if subset.is_empty() {
            return None;
        }
        let dashboard = Dashboard {
            workload_name: self.jobs[job_idx].spec.workload.name.clone(),
            entries: subset.iter().map(|&i| candidates[i].entry.clone()).collect(),
        };
        let choice = dashboard.recommend(self.jobs[job_idx].spec.objective)?;
        let pos = dashboard
            .entries
            .iter()
            .position(|e| e == choice)
            .expect("recommendation is one of the entries");
        Some(subset[pos])
    }

    fn try_place(&mut self, job_idx: usize) -> PlaceResult {
        let candidates = self.candidates(job_idx);
        let free: Vec<usize> = (0..candidates.len())
            .filter(|&i| candidates[i].fits_now)
            .collect();
        if let Some(win) = self.recommend_index(job_idx, &candidates, &free) {
            self.place(job_idx, &candidates[win]);
            return PlaceResult::Placed;
        }
        // Nothing fits right now — would anything fit on an empty pool?
        let all: Vec<usize> = (0..candidates.len()).collect();
        if self.recommend_index(job_idx, &candidates, &all).is_some() {
            PlaceResult::Wait
        } else {
            PlaceResult::Reject(
                "no (platform, ranks) option satisfies the objective and budget".into(),
            )
        }
    }

    fn place(&mut self, job_idx: usize, chosen: &Candidate) {
        let state = &mut self.pools[chosen.pool_idx];
        assert!(state.pool.try_alloc(chosen.nodes), "placement raced capacity");
        state.attempts += 1;
        self.obs.admitted.inc();
        let platform = state.pool.platform.clone();
        let overheads = state.overheads;

        let prep_key = (
            chosen.pool_idx,
            Self::model_key(&self.jobs[job_idx].spec),
            chosen.ranks,
        );
        if !self.prepared.contains_key(&prep_key) {
            let spec = &self.jobs[job_idx].spec;
            let built = PreparedRun::new(
                &platform,
                &spec.workload.grid,
                &spec.workload.kernel,
                chosen.ranks,
                &overheads,
            )
            .expect("candidate was validated feasible");
            self.prepared.insert(prep_key.clone(), built);
        }
        let prepared = self.prepared[&prep_key].clone();

        let job = &mut self.jobs[job_idx];
        job.waiting = false;
        job.attempts += 1;
        let spec = &job.spec;
        let mut guard =
            JobGuard::from_prediction(&chosen.corrected, spec.workload.steps, &platform, spec.tolerance);
        guard.max_dollars = guard.max_dollars.min(spec.budget_dollars);

        let placement_idx = self.placements.len();
        self.placements.push(PlacementRecord {
            job: job_idx,
            job_name: spec.name.clone(),
            attempt: job.attempts,
            platform: platform.abbrev.to_string(),
            ranks: chosen.ranks,
            nodes: chosen.nodes,
            calibrated: chosen.calibrated,
            predicted_step_s: chosen.corrected.step_time_s,
            measured_step_s: None,
            time_s: self.clock_s,
        });
        job.run = Some(ActiveRun {
            pool_idx: chosen.pool_idx,
            ranks: chosen.ranks,
            nodes: chosen.nodes,
            prepared,
            guard,
            raw_step_pred_s: chosen.raw.step_time_s,
            attempt_elapsed_s: 0.0,
            slice_idx: 0,
            placement_idx,
            pending: None,
        });
        self.schedule_slice(job_idx);
    }

    fn dispatch(&mut self) {
        for job_idx in 0..self.jobs.len() {
            let job = &self.jobs[job_idx];
            if !job.waiting || job.outcome.is_some() || job.run.is_some() {
                continue;
            }
            match self.try_place(job_idx) {
                PlaceResult::Placed => {}
                PlaceResult::Wait => {}
                PlaceResult::Reject(reason) => {
                    let job = &mut self.jobs[job_idx];
                    job.waiting = false;
                    job.outcome = Some(JobOutcome::Rejected { reason });
                    job.finish_s = self.clock_s;
                    self.obs.rejected.inc();
                }
            }
        }
    }

    // ---- execution ----------------------------------------------------

    fn schedule_slice(&mut self, job_idx: usize) {
        let seed_base = self.config.seed;
        let fault_rate = self.config.fault_rate_per_node_hour;
        let slice_cap = self.config.slice_steps.max(1);
        let clock = self.clock_s;

        let job = &mut self.jobs[job_idx];
        let attempt = job.attempts;
        let run = job.run.as_mut().expect("slice for idle job");
        let remaining = job.spec.true_steps().saturating_sub(job.completed_steps);
        let steps = remaining.min(slice_cap).max(1);

        let noise_seed = derive_seed(&[seed_base, job_idx as u64, attempt as u64, run.slice_idx, 0x51]);
        let sim = run.prepared.run_slice(steps, noise_seed, clock / 3600.0);

        // Pre-draw the fault for this slice from the campaign stream.
        let mut rng = Rng::new(derive_seed(&[
            seed_base,
            job_idx as u64,
            attempt as u64,
            run.slice_idx,
            0xFA,
        ]));
        let lambda = expected_faults(fault_rate, run.nodes, sim.total_time_s);
        let fault = rng.next_f64() < fault_probability(lambda);
        let fault_at = sim.total_time_s * rng.next_f64();

        // Whichever intervenes first ends the slice: the pre-drawn fault
        // or the guard's wall-clock budget running dry.
        let budget_left = run
            .guard
            .remaining_seconds(job.prior_attempts_s + run.attempt_elapsed_s);
        let (end, dur_s) = if fault && fault_at <= sim.total_time_s.min(budget_left) {
            (SliceEnd::Fault, fault_at)
        } else if budget_left < sim.total_time_s {
            (SliceEnd::GuardKill, budget_left)
        } else {
            (SliceEnd::Ran, sim.total_time_s)
        };
        run.pending = Some(PendingSlice {
            steps,
            step_s: sim.step_time_s,
            end,
            dur_s,
        });
        run.slice_idx += 1;
        self.events
            .push(clock + dur_s, Event::SliceDone { job: job_idx, attempt });
    }

    /// Close the books on the current attempt: bill it, free its nodes.
    fn finalize_attempt(&mut self, job_idx: usize) {
        let job = &mut self.jobs[job_idx];
        let run = job.run.take().expect("no attempt to finalize");
        let state = &mut self.pools[run.pool_idx];
        let attempt_s = run.attempt_elapsed_s;
        // Per-attempt billing: each attempt is its own allocation (the
        // PerHour partial-hour round-up applies per attempt).
        let cost = self
            .config
            .prices
            .attempts_cost(&state.pool.platform, run.nodes, &[attempt_s]);
        job.cost += cost;
        job.prior_attempts_s += attempt_s;
        state.cost += cost;
        state.pool.release(run.nodes, attempt_s);
    }

    fn on_slice_done(&mut self, job_idx: usize, attempt: u32) {
        self.obs.slices.inc();
        let job = &mut self.jobs[job_idx];
        assert_eq!(job.attempts, attempt, "stale slice event");
        let run = job.run.as_mut().expect("slice for idle job");
        let pending = run.pending.take().expect("slice event without a pending slice");
        run.attempt_elapsed_s += pending.dur_s;

        match pending.end {
            SliceEnd::Fault => {
                job.faults += 1;
                // Roll back to the last durable checkpoint: the faulted
                // slice's steps were never credited, and any credited
                // steps past the checkpoint are lost too.
                let ckpt = job.spec.checkpoint_steps.max(1);
                let rollback = job.completed_steps % ckpt;
                job.completed_steps -= rollback;
                job.wasted_steps += rollback;
                let pool_idx = run.pool_idx;
                let can_retry = job.retries_used < job.spec.max_retries;
                self.pools[pool_idx].faults += 1;
                self.obs.faults.inc();
                self.finalize_attempt(job_idx);
                if can_retry {
                    let job = &mut self.jobs[job_idx];
                    job.retries_used += 1;
                    self.retries += 1;
                    self.obs.retries.inc();
                    let backoff = retry_backoff_s(
                        self.config.retry_backoff_s,
                        self.config.max_retry_backoff_s,
                        job.retries_used,
                    );
                    self.events
                        .push(self.clock_s + backoff, Event::Arrive { job: job_idx });
                } else {
                    let job = &mut self.jobs[job_idx];
                    job.outcome = Some(JobOutcome::Failed);
                    job.finish_s = self.clock_s;
                }
            }
            SliceEnd::GuardKill => {
                // Killed at exactly the wall-clock limit: the in-flight
                // slice is discarded.
                job.wasted_steps += pending.steps;
                let pool_idx = run.pool_idx;
                self.pools[pool_idx].guard_kills += 1;
                self.obs.guard_kills.inc();
                self.finalize_attempt(job_idx);
                let job = &mut self.jobs[job_idx];
                job.outcome = Some(JobOutcome::GuardKilled);
                job.finish_s = self.clock_s;
            }
            SliceEnd::Ran => {
                job.completed_steps += pending.steps;
                let pool_idx = run.pool_idx;
                let ranks = run.ranks;
                let nodes = run.nodes;
                let raw_pred = run.raw_step_pred_s;
                let placement_idx = run.placement_idx;
                let elapsed = job.prior_attempts_s + run.attempt_elapsed_s;
                let attempt_cost = self.config.prices.attempts_cost(
                    &self.pools[pool_idx].pool.platform,
                    nodes,
                    &[run.attempt_elapsed_s],
                );
                let spent = job.cost + attempt_cost;
                let guard = run.guard;
                let done = job.completed_steps >= job.spec.true_steps();

                // Refinement: every completed slice feeds the calibrators.
                self.pools[pool_idx]
                    .calibrator
                    .record(ranks, raw_pred, pending.step_s);
                self.global_calibrator.record(ranks, raw_pred, pending.step_s);
                if self.placements[placement_idx].measured_step_s.is_none() {
                    self.placements[placement_idx].measured_step_s = Some(pending.step_s);
                }

                if guard.check(elapsed, spent).is_exceeded() {
                    // The dollar limit (or a boundary-exact overrun) trips
                    // post-slice.
                    self.pools[pool_idx].guard_kills += 1;
                    self.obs.guard_kills.inc();
                    self.finalize_attempt(job_idx);
                    let job = &mut self.jobs[job_idx];
                    job.outcome = Some(JobOutcome::GuardKilled);
                    job.finish_s = self.clock_s;
                } else if done {
                    self.finalize_attempt(job_idx);
                    let job = &mut self.jobs[job_idx];
                    job.outcome = Some(JobOutcome::Completed);
                    job.finish_s = self.clock_s;
                } else if !guard.has_budget(elapsed) {
                    // Budget exhausted to the exact second with work left:
                    // stop cleanly at the boundary (see GuardVerdict docs).
                    self.pools[pool_idx].guard_kills += 1;
                    self.obs.guard_kills.inc();
                    self.finalize_attempt(job_idx);
                    let job = &mut self.jobs[job_idx];
                    job.outcome = Some(JobOutcome::GuardKilled);
                    job.finish_s = self.clock_s;
                } else {
                    self.schedule_slice(job_idx);
                }
            }
        }
    }

    // ---- reporting ----------------------------------------------------

    fn build_report(&mut self) -> CampaignReport {
        let makespan = self.clock_s;
        let mut report = CampaignReport {
            seed: self.config.seed,
            jobs: self.jobs.len(),
            completed: 0,
            guard_kills: 0,
            failed: 0,
            rejected: 0,
            faults: 0,
            retries: self.retries,
            retried_jobs_completed: 0,
            makespan_s: makespan,
            total_cost_dollars: 0.0,
            wasted_steps: 0,
            slo_attained: 0,
            slo_total: 0,
            mape_first_quartile_uncalibrated_pct: f64::NAN,
            mape_calibrated_pct: f64::NAN,
            platforms: Vec::new(),
            job_reports: Vec::new(),
            placements: self.placements.clone(),
        };
        for job in &self.jobs {
            let outcome = job.outcome.clone().expect("job left without outcome");
            match &outcome {
                JobOutcome::Completed => {
                    report.completed += 1;
                    if job.faults > 0 {
                        report.retried_jobs_completed += 1;
                    }
                }
                JobOutcome::GuardKilled => report.guard_kills += 1,
                JobOutcome::Failed => report.failed += 1,
                JobOutcome::Rejected { .. } => report.rejected += 1,
            }
            report.faults += job.faults as usize;
            report.total_cost_dollars += job.cost;
            report.wasted_steps += job.wasted_steps;
            let slo_met = match job.spec.objective {
                hemocloud_core::dashboard::Objective::Deadline(d) => {
                    report.slo_total += 1;
                    let met = outcome == JobOutcome::Completed
                        && job.finish_s - job.spec.submit_s <= d;
                    if met {
                        report.slo_attained += 1;
                    }
                    Some(met)
                }
                _ => None,
            };
            report.job_reports.push(JobReport {
                name: job.spec.name.clone(),
                outcome: outcome.label().to_string(),
                cost_dollars: job.cost,
                run_seconds: job.prior_attempts_s,
                attempts: job.attempts,
                faults: job.faults,
                wasted_steps: job.wasted_steps,
                finish_s: job.finish_s,
                slo_met,
            });
        }
        for state in &self.pools {
            report.platforms.push(PlatformReport {
                platform: state.pool.platform.abbrev.to_string(),
                nodes_total: state.pool.nodes_total(),
                attempts: state.attempts,
                faults: state.faults,
                guard_kills: state.guard_kills,
                cost_dollars: state.cost,
                busy_node_seconds: state.pool.busy_node_seconds(),
                utilization: state.pool.utilization(makespan),
            });
        }
        report.compute_mapes();
        // Calibration-error gauges, set serially (hence deterministic).
        // A campaign with too few placements leaves the MAPEs NaN; those
        // must not leak into snapshots the verify gate greps for
        // non-finite values, so only finite values are exported.
        let registry = &self.obs.registry;
        let set_finite = |name: &str, v: f64| {
            if v.is_finite() {
                registry.gauge(name).set(v);
            }
        };
        set_finite(
            "sched.calibration.mape_uncalibrated_pct",
            report.mape_first_quartile_uncalibrated_pct,
        );
        set_finite(
            "sched.calibration.mape_calibrated_pct",
            report.mape_calibrated_pct,
        );
        set_finite("sched.makespan_s", makespan);
        registry
            .gauge("sched.calibration.observations")
            .set(self.global_calibrator.len() as f64);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_expectation_is_rate_times_node_hours() {
        // The pinning triple from the config rustdoc: 0.1 faults per
        // node-hour on 2 nodes for half an hour expects 0.1 faults, and
        // the slice is interrupted with probability 1 − e^(−0.1).
        let lambda = expected_faults(0.1, 2, 1800.0);
        assert_eq!(lambda, 0.1);
        let p = fault_probability(lambda);
        assert!((p - (1.0 - (-0.1f64).exp())).abs() < 1e-15, "p = {p}");
        // Degenerate corners: no rate, no nodes, or no time ⇒ no faults.
        assert_eq!(expected_faults(0.0, 8, 3600.0), 0.0);
        assert_eq!(expected_faults(0.15, 0, 3600.0), 0.0);
        assert_eq!(expected_faults(0.15, 8, 0.0), 0.0);
        assert_eq!(fault_probability(0.0), 0.0);
        // The demo rate: 0.15 per node-hour, 2 nodes, 30 minutes.
        let demo = fault_probability(expected_faults(0.15, 2, 1800.0));
        assert!((demo - 0.139_292_023_574_942_34).abs() < 1e-15, "{demo}");
    }

    #[test]
    fn retry_backoff_doubles_then_saturates_finite() {
        // Doubling run: 30, 60, 120, ... capped at one hour.
        assert_eq!(retry_backoff_s(30.0, 3600.0, 1), 30.0);
        assert_eq!(retry_backoff_s(30.0, 3600.0, 2), 60.0);
        assert_eq!(retry_backoff_s(30.0, 3600.0, 5), 480.0);
        assert_eq!(retry_backoff_s(30.0, 3600.0, 8), 3600.0);
        // 60 retries (the regression shape): every delay finite, capped,
        // and the re-arrival sequence monotonically ordered.
        let mut clock = 0.0f64;
        let mut prev_backoff = 0.0f64;
        for retry in 1..=60u32 {
            let b = retry_backoff_s(30.0, 3600.0, retry);
            assert!(b.is_finite() && b > 0.0, "retry {retry}: {b}");
            assert!(b <= 3600.0, "retry {retry} beyond cap: {b}");
            assert!(b >= prev_backoff, "backoff shrank at retry {retry}");
            prev_backoff = b;
            let next = clock + b;
            assert!(next > clock, "re-arrival did not advance at {retry}");
            clock = next;
        }
        // Uncapped, the 60th retry would already be 30·2^59 ≈ 1.7e19 s;
        // the clamp keeps the whole sequence within retries × cap.
        assert!(clock <= 60.0 * 3600.0, "clock = {clock}");
        // Exponents that overflow 2^e to infinity still come back capped.
        assert_eq!(retry_backoff_s(30.0, 3600.0, 2000), 3600.0);
        assert_eq!(retry_backoff_s(30.0, 3600.0, u32::MAX), 3600.0);
        // A degenerate cap falls back to a finite ceiling, never inf.
        assert!(retry_backoff_s(30.0, f64::INFINITY, 4000).is_finite());
        assert!(retry_backoff_s(30.0, 0.0, 4000).is_finite());
        // Non-positive bases mean "retry immediately".
        assert_eq!(retry_backoff_s(0.0, 3600.0, 7), 0.0);
    }
}

//! The reference campaign: a seeded, fully reproducible demonstration of
//! the scheduler that exercises every subsystem — multi-platform pools,
//! queueing under contention, fault retries, a guard-killed runaway, an
//! admission rejection, and the calibration-driven MAPE drop.
//!
//! The bench driver (`campaign`), the `campaign_planner` example, and the
//! acceptance tests all run *this* campaign, so its invariants are pinned
//! in one place.

use std::sync::Arc;

use hemocloud_cluster::exec::Overheads;
use hemocloud_cluster::platform::Platform;
use hemocloud_core::dashboard::Objective;
use hemocloud_core::workload::Workload;
use hemocloud_geometry::anatomy::{AortaSpec, CerebralSpec, CylinderSpec};
use hemocloud_geometry::voxel::VoxelGrid;

use hemocloud_cluster::topology::TopologyVariant;

use crate::job::JobSpec;
use crate::report::CampaignReport;
use crate::scheduler::{Campaign, CampaignConfig, PoolSpec};

/// The four capacity-limited pools the demo campaign runs against.
///
/// Each pool's overheads differ slightly — per-platform biases the raw
/// model cannot see, which is exactly what the per-platform calibrators
/// must learn.
pub fn demo_pools() -> Vec<PoolSpec> {
    vec![
        PoolSpec {
            platform: Platform::csp1(),
            nodes: 3,
            overheads: Overheads::default(),
            topology: None,
        },
        PoolSpec {
            platform: Platform::csp2(),
            nodes: 2,
            overheads: Overheads {
                lbm_bandwidth_efficiency: 0.72,
                ..Overheads::default()
            },
            topology: None,
        },
        PoolSpec {
            platform: Platform::csp2_small(),
            nodes: 8,
            overheads: Overheads {
                message_software_overhead_us: 2.5,
                ..Overheads::default()
            },
            topology: None,
        },
        PoolSpec {
            platform: Platform::csp2_ec(),
            nodes: 2,
            overheads: Overheads {
                lbm_bandwidth_efficiency: 0.85,
                ..Overheads::default()
            },
            topology: None,
        },
    ]
}

/// The demo campaign's configuration under `seed`.
pub fn demo_config(seed: u64) -> CampaignConfig {
    CampaignConfig {
        seed,
        characterization_seed: 2023,
        rank_options: vec![8, 16, 32, 36, 64, 72],
        slice_steps: 2_000_000,
        fault_rate_per_node_hour: 0.15,
        retry_backoff_s: 60.0,
        max_retry_backoff_s: 3600.0,
        min_calibration_obs: 6,
        prices: Default::default(),
        shards: 1,
        max_placement_log: usize::MAX,
        max_job_reports: usize::MAX,
    }
}

struct Geometry {
    key: &'static str,
    grid: VoxelGrid,
}

fn demo_geometries() -> Vec<Geometry> {
    vec![
        Geometry {
            key: "cyl8",
            grid: CylinderSpec::default().with_resolution(8).build(),
        },
        Geometry {
            key: "cyl10",
            grid: CylinderSpec::default().with_resolution(10).build(),
        },
        Geometry {
            key: "aorta8",
            grid: AortaSpec::default().with_resolution(8).build(),
        },
        Geometry {
            key: "cereb6",
            grid: CerebralSpec::default()
                .with_resolution(6)
                .with_generations(3)
                .build(),
        },
    ]
}

/// The demo job mix: 26 jobs over 4 geometry classes.
///
/// * An initial wave of 8 jobs at t = 0 — they place on the raw
///   (uncalibrated) model and populate the report's "before" MAPE.
/// * A staggered stream of 15 more jobs arriving every 10 minutes, placed
///   with progressively calibrated predictions under contention.
/// * Two **runaway** jobs whose hidden step factor (3×) dwarfs any guard
///   tolerance — the guard must kill them mid-run.
/// * One **doomed** job whose budget can't buy its cheapest option — the
///   admission filter must reject it.
pub fn demo_jobs() -> Vec<JobSpec> {
    let geoms = demo_geometries();
    let objectives = [
        Objective::MinCost,
        Objective::MaxThroughput,
        Objective::Deadline(6.0 * 3600.0),
    ];
    let mut jobs = Vec::new();
    let mut push = |name: String,
                    geom: &Geometry,
                    steps: u64,
                    objective: Objective,
                    tolerance: f64,
                    budget: f64,
                    hidden: f64,
                    submit_s: f64| {
        jobs.push(JobSpec {
            name,
            workload: Arc::new(Workload::harvey(&geom.grid, steps)),
            model_key: geom.key.to_string(),
            objective,
            tolerance,
            budget_dollars: budget,
            max_retries: 3,
            checkpoint_steps: 4_000_000,
            hidden_steps_factor: hidden,
            submit_s,
        })
    };

    // Wave 1: eight honest jobs at t = 0. They place on the raw model,
    // which underpredicts by several-fold (the deliberately unmodeled
    // overheads), so their operators grant bootstrap-era tolerance until
    // calibration has data.
    for i in 0..8u64 {
        let geom = &geoms[(i as usize) % geoms.len()];
        let steps = 18_000_000 + 3_000_000 * i;
        push(
            format!("wave1-{i:02}-{}", geom.key),
            geom,
            steps,
            objectives[(i as usize) % objectives.len()],
            7.0,
            150.0,
            1.0,
            0.0,
        );
    }
    // Stream: fifteen honest jobs, one every 10 simulated minutes. By now
    // placements run on calibrated predictions, so tolerance tightens.
    for i in 0..15u64 {
        let geom = &geoms[(i as usize + 1) % geoms.len()];
        let steps = 16_000_000 + 2_500_000 * (i % 7);
        push(
            format!("stream-{i:02}-{}", geom.key),
            geom,
            steps,
            objectives[(i as usize + 1) % objectives.len()],
            1.5,
            150.0,
            1.0,
            600.0 * (i + 1) as f64,
        );
    }
    // Runaways: declared steps are a third of what they truly need, so
    // even a calibrated guard budget runs dry mid-run.
    push(
        "runaway-00-cyl8".to_string(),
        &geoms[0],
        20_000_000,
        Objective::MinCost,
        0.50,
        150.0,
        3.0,
        300.0,
    );
    push(
        "runaway-01-aorta8".to_string(),
        &geoms[2],
        24_000_000,
        Objective::MaxThroughput,
        0.50,
        150.0,
        3.0,
        4_500.0,
    );
    // Doomed: no option can run 40M steps for five cents.
    push(
        "doomed-budget".to_string(),
        &geoms[1],
        40_000_000,
        Objective::MinCost,
        1.0,
        0.05,
        1.0,
        900.0,
    );
    jobs
}

/// Build and run the whole demo campaign under `seed`; returns the
/// report.
pub fn run_demo(seed: u64) -> CampaignReport {
    run_demo_with_obs(seed).0
}

/// [`run_demo`], also returning the campaign's metrics snapshot
/// (admission/guard/retry/fault counters, per-event-type virtual-time
/// spans, calibration gauges). Deterministic: same seed, same snapshot,
/// byte for byte.
pub fn run_demo_with_obs(seed: u64) -> (CampaignReport, hemocloud_obs::Snapshot) {
    let mut campaign = Campaign::new(demo_config(seed), demo_pools());
    for job in demo_jobs() {
        campaign.submit(job);
    }
    let report = campaign.run();
    let snapshot = campaign.obs_snapshot();
    (report, snapshot)
}

// ---- fabric contention demo -------------------------------------------

/// The fabric demo pool: one 4-node CSP-2 Small allocation behind a
/// **spread** topology (2 racks, oversubscribed trunks). Spread scatters
/// consecutive node ids across racks (`rack = id % 2`), so the pool's
/// lowest-free-first allocation gives every 2-node job one node in each
/// rack — two co-scheduled jobs route all their internodal halo traffic
/// over the *same* two trunk links and contend for them.
pub fn fabric_demo_pools() -> Vec<PoolSpec> {
    vec![PoolSpec {
        platform: Platform::csp2_small(),
        nodes: 4,
        overheads: Overheads::default(),
        topology: Some(TopologyVariant::Spread),
    }]
}

/// The fabric demo configuration: faults off (the per-link byte
/// accounting must reconcile exactly against the Eq. 9 graph, so no
/// slice may be cut short) and a single 2-node rank option (every job
/// has the same contention footprint).
pub fn fabric_demo_config(seed: u64) -> CampaignConfig {
    CampaignConfig {
        seed,
        characterization_seed: 2023,
        rank_options: vec![16],
        slice_steps: 2_000_000,
        fault_rate_per_node_hour: 0.0,
        retry_backoff_s: 60.0,
        max_retry_backoff_s: 3600.0,
        min_calibration_obs: 6,
        prices: Default::default(),
        shards: 1,
        max_placement_log: usize::MAX,
        max_job_reports: usize::MAX,
    }
}

/// The fabric demo job mix: ten identical honest jobs at t = 0. The pool
/// holds two at a time, so the campaign runs as concurrent contending
/// pairs; the scalar-calibrated model has never seen routed-plus-
/// contended comm, so the first placements mispredict and the
/// calibrators close the gap — the MAPE trajectory under contention.
pub fn fabric_demo_jobs() -> Vec<JobSpec> {
    let grid = CylinderSpec::default().with_resolution(10).build();
    (0..10u64)
        .map(|i| JobSpec {
            name: format!("fabric-{i:02}-cyl10"),
            workload: Arc::new(Workload::harvey(&grid, 14_000_000 + 2_000_000 * (i % 4))),
            model_key: "cyl10".to_string(),
            objective: Objective::MinCost,
            tolerance: 7.0,
            budget_dollars: 200.0,
            max_retries: 0,
            checkpoint_steps: 4_000_000,
            hidden_steps_factor: 1.0,
            submit_s: 0.0,
        })
        .collect()
}

/// Build and run the fabric contention campaign under `seed`; returns
/// the report and the obs snapshot (whose `fabric.pool0.link.*` counter
/// families carry the per-link byte accounting).
pub fn run_fabric_demo(seed: u64) -> (CampaignReport, hemocloud_obs::Snapshot) {
    let mut campaign = Campaign::new(fabric_demo_config(seed), fabric_demo_pools());
    for job in fabric_demo_jobs() {
        campaign.submit(job);
    }
    let report = campaign.run();
    let snapshot = campaign.obs_snapshot();
    (report, snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_mix_has_the_advertised_shape() {
        let jobs = demo_jobs();
        assert!(jobs.len() >= 20, "acceptance floor: >= 20 jobs");
        assert!(demo_pools().len() >= 3, "acceptance floor: >= 3 platforms");
        assert_eq!(
            jobs.iter().filter(|j| j.hidden_steps_factor > 2.0).count(),
            2,
            "two runaways"
        );
        assert_eq!(
            jobs.iter().filter(|j| j.budget_dollars < 1.0).count(),
            1,
            "one doomed-budget job"
        );
        assert!(demo_config(42).fault_rate_per_node_hour > 0.0, "faults on");
    }
}

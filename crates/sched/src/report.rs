//! The campaign report: what the paper's Discussion says an operational
//! deployment must surface — per-platform utilization and cost, SLO
//! attainment, guard activity, retry accounting, and the model-refinement
//! trajectory (placement MAPE dropping as observations accumulate).
//!
//! [`CampaignReport::to_json`] renders a stable, hand-rolled JSON
//! document (the workspace is dependency-free — no serde): same campaign
//! seed, same bytes. Statistics that have no defined value on a
//! degenerate campaign — a MAPE with zero measured placements, a
//! percentile over an empty error set — are `Option`s rendered as JSON
//! `null`, never `NaN` (which is not valid JSON at all); each MAPE
//! carries its sample count so a consumer can tell "no data" from
//! "averaged over two placements".

/// One placement decision and how reality answered it.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementRecord {
    /// Job index in submission order.
    pub job: usize,
    /// Job name.
    pub job_name: String,
    /// Attempt number this placement started (1 = first run).
    pub attempt: u32,
    /// Platform chosen by `Dashboard::recommend`.
    pub platform: String,
    /// Ranks of the chosen option.
    pub ranks: usize,
    /// Whole nodes occupied.
    pub nodes: usize,
    /// Whether the prediction behind this placement was calibrated (a
    /// platform or global `ModelCalibrator` had enough observations).
    pub calibrated: bool,
    /// The step time the placement decision believed, seconds.
    pub predicted_step_s: f64,
    /// The first measured step time of the attempt, seconds. `None` only
    /// if the attempt died before its first slice finished.
    pub measured_step_s: Option<f64>,
    /// Campaign clock at dispatch, seconds.
    pub time_s: f64,
    /// Communication pricing of the chosen pool: `"scalar"` or the
    /// routed topology variant the job's messages were forwarded over.
    pub topology: String,
}

impl PlacementRecord {
    /// Absolute percentage error of the placement prediction, if
    /// measured.
    pub fn abs_pct_error(&self) -> Option<f64> {
        self.measured_step_s.map(|m| {
            100.0 * (self.predicted_step_s - m).abs() / m
        })
    }
}

/// Mean absolute percentage error over a set of placements; `None` when
/// no placement in the set has a measurement.
pub fn placement_mape(records: &[&PlacementRecord]) -> Option<f64> {
    let errs: Vec<f64> = records.iter().filter_map(|r| r.abs_pct_error()).collect();
    if errs.is_empty() {
        None
    } else {
        Some(errs.iter().sum::<f64>() / errs.len() as f64)
    }
}

/// Nearest-rank percentile (`pct` in (0, 100]) of an unsorted sample;
/// `None` on an empty sample. Nearest-rank keeps the result an actual
/// member of the sample, so a p99 over one element is that element, not
/// an interpolation artifact.
pub fn percentile(values: &[f64], pct: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

/// Per-platform campaign accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformReport {
    /// Platform abbreviation.
    pub platform: String,
    /// Pool size, nodes.
    pub nodes_total: usize,
    /// High-water mark of simultaneously busy nodes — how much of the
    /// reserved allocation the campaign ever needed at once.
    pub peak_nodes_busy: usize,
    /// Attempts dispatched here.
    pub attempts: usize,
    /// Node preemptions/failures injected here.
    pub faults: usize,
    /// Guard kills here.
    pub guard_kills: usize,
    /// Dollars billed here.
    pub cost_dollars: f64,
    /// Busy node-seconds accumulated.
    pub busy_node_seconds: f64,
    /// Integer billed node-seconds: every attempt's occupancy rounded up
    /// to the billing granularity independently (saturating at
    /// `u64::MAX`). Per-attempt round-up makes this ≥ `busy_node_seconds`
    /// always — an invariant the sweep harness checks per cell.
    pub billed_node_seconds: u64,
    /// busy node-seconds / (nodes × makespan).
    pub utilization: f64,
}

/// Per-job campaign accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Job name.
    pub name: String,
    /// Outcome label (`completed`, `guard_killed`, `failed`, `rejected`).
    pub outcome: String,
    /// Dollars billed across all attempts.
    pub cost_dollars: f64,
    /// Node-occupancy wall seconds across all attempts.
    pub run_seconds: f64,
    /// Attempts started.
    pub attempts: u32,
    /// Faults suffered.
    pub faults: u32,
    /// Steps lost to checkpoint rollback and killed slices.
    pub wasted_steps: u64,
    /// Campaign clock when the job left the system.
    pub finish_s: f64,
    /// Deadline-SLO verdict: `None` for jobs without a deadline
    /// objective.
    pub slo_met: Option<bool>,
}

/// The full campaign summary.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Campaign seed.
    pub seed: u64,
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs that completed.
    pub completed: usize,
    /// Jobs killed by their guard.
    pub guard_kills: usize,
    /// Jobs that exhausted retries.
    pub failed: usize,
    /// Jobs admission rejected.
    pub rejected: usize,
    /// Faults injected.
    pub faults: usize,
    /// Retry attempts dispatched.
    pub retries: usize,
    /// Jobs that faulted at least once and still completed — successful
    /// retries.
    pub retried_jobs_completed: usize,
    /// Campaign makespan, seconds (last event processed).
    pub makespan_s: f64,
    /// Total dollars billed.
    pub total_cost_dollars: f64,
    /// Steps lost to rollback/kills, campaign-wide.
    pub wasted_steps: u64,
    /// Deadline jobs that met their deadline.
    pub slo_attained: usize,
    /// Deadline jobs total.
    pub slo_total: usize,
    /// MAPE (%) of measured uncalibrated placements within the first
    /// quartile of all placements — the "before" of the refinement loop.
    /// `None` when no such placement was measured (e.g. an all-rejected
    /// campaign, or one so small calibration never engaged and nothing
    /// finished a slice).
    pub mape_first_quartile_uncalibrated_pct: Option<f64>,
    /// Measured placements behind the uncalibrated MAPE.
    pub mape_first_quartile_uncalibrated_count: usize,
    /// MAPE (%) of measured calibrated placements — the "after". `None`
    /// when no calibrated placement was measured.
    pub mape_calibrated_pct: Option<f64>,
    /// Measured placements behind the calibrated MAPE.
    pub mape_calibrated_count: usize,
    /// Median absolute placement error (%) over the retained placement
    /// log, calibrated or not; `None` when nothing was measured.
    pub error_p50_pct: Option<f64>,
    /// 99th-percentile (nearest-rank) absolute placement error (%) over
    /// the retained placement log; `None` when nothing was measured.
    pub error_p99_pct: Option<f64>,
    /// Placements dispatched over the whole campaign. May exceed
    /// `placements.len()` when the retained log was capped
    /// (`CampaignConfig::max_placement_log`); the MAPE fields always
    /// cover all of them.
    pub placements_total: usize,
    /// Events the scheduler processed (arrivals, retries, slice ends) —
    /// identical at any shard count.
    pub events_processed: u64,
    /// Per-platform accounting.
    pub platforms: Vec<PlatformReport>,
    /// Per-job accounting, submission order (possibly capped by
    /// `CampaignConfig::max_job_reports`).
    pub job_reports: Vec<JobReport>,
    /// Retained placements in dispatch order (possibly capped).
    pub placements: Vec<PlacementRecord>,
}

impl CampaignReport {
    /// Recompute the refinement-trajectory MAPEs from the *retained*
    /// placement log: the measured uncalibrated slice of the
    /// chronologically first quartile versus all measured calibrated
    /// placements. Sets the MAPE and count fields and returns
    /// `(first_quartile_uncalibrated, calibrated)`.
    ///
    /// The scheduler fills these fields from exact online accumulators
    /// that cover *every* placement; calling this on a report whose log
    /// was capped recomputes them over the retained subset only. It is a
    /// consumer-side utility (and the cross-check the campaign tests use
    /// on uncapped reports), not part of report construction.
    pub fn compute_mapes(&mut self) -> (Option<f64>, Option<f64>) {
        let n = self.placements.len();
        let q1 = n.div_ceil(4);
        let first_q: Vec<&PlacementRecord> = self
            .placements
            .iter()
            .take(q1)
            .filter(|r| !r.calibrated && r.measured_step_s.is_some())
            .collect();
        let calibrated: Vec<&PlacementRecord> = self
            .placements
            .iter()
            .filter(|r| r.calibrated && r.measured_step_s.is_some())
            .collect();
        self.mape_first_quartile_uncalibrated_pct = placement_mape(&first_q);
        self.mape_first_quartile_uncalibrated_count = first_q.len();
        self.mape_calibrated_pct = placement_mape(&calibrated);
        self.mape_calibrated_count = calibrated.len();
        (
            self.mape_first_quartile_uncalibrated_pct,
            self.mape_calibrated_pct,
        )
    }

    /// Compute the p50/p99 absolute-error percentiles over every measured
    /// placement in the retained log and set the fields. `None`s (and
    /// leaves `None`) when nothing was measured.
    pub fn compute_error_percentiles(&mut self) {
        let errs: Vec<f64> = self
            .placements
            .iter()
            .filter_map(|r| r.abs_pct_error())
            .collect();
        self.error_p50_pct = percentile(&errs, 50.0);
        self.error_p99_pct = percentile(&errs, 99.0);
    }

    /// Render the report as deterministic JSON.
    pub fn to_json(&self) -> String {
        // An undefined statistic renders as JSON null; a non-finite one
        // would not be JSON at all, so it is defensively nulled too (the
        // verify gate greps artifacts for nan/inf).
        fn opt(v: Option<f64>, decimals: usize) -> String {
            match v.filter(|v| v.is_finite()) {
                None => "null".to_string(),
                Some(v) => format!("{v:.decimals$}"),
            }
        }
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"report\": \"hemocloud_campaign\",\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        s.push_str(&format!("  \"completed\": {},\n", self.completed));
        s.push_str(&format!("  \"guard_kills\": {},\n", self.guard_kills));
        s.push_str(&format!("  \"failed\": {},\n", self.failed));
        s.push_str(&format!("  \"rejected\": {},\n", self.rejected));
        s.push_str(&format!("  \"faults\": {},\n", self.faults));
        s.push_str(&format!("  \"retries\": {},\n", self.retries));
        s.push_str(&format!(
            "  \"retried_jobs_completed\": {},\n",
            self.retried_jobs_completed
        ));
        s.push_str(&format!("  \"makespan_s\": {:.3},\n", self.makespan_s));
        s.push_str(&format!(
            "  \"total_cost_dollars\": {:.6},\n",
            self.total_cost_dollars
        ));
        s.push_str(&format!("  \"wasted_steps\": {},\n", self.wasted_steps));
        s.push_str(&format!(
            "  \"slo\": {{\"attained\": {}, \"total\": {}}},\n",
            self.slo_attained, self.slo_total
        ));
        s.push_str(&format!(
            "  \"refinement\": {{\"mape_first_quartile_uncalibrated_pct\": {}, \"mape_first_quartile_uncalibrated_count\": {}, \"mape_calibrated_pct\": {}, \"mape_calibrated_count\": {}, \"error_p50_pct\": {}, \"error_p99_pct\": {}}},\n",
            opt(self.mape_first_quartile_uncalibrated_pct, 4),
            self.mape_first_quartile_uncalibrated_count,
            opt(self.mape_calibrated_pct, 4),
            self.mape_calibrated_count,
            opt(self.error_p50_pct, 4),
            opt(self.error_p99_pct, 4),
        ));
        s.push_str(&format!(
            "  \"placements_total\": {},\n",
            self.placements_total
        ));
        s.push_str(&format!(
            "  \"events_processed\": {},\n",
            self.events_processed
        ));
        s.push_str("  \"platforms\": [\n");
        for (i, p) in self.platforms.iter().enumerate() {
            let comma = if i + 1 < self.platforms.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"platform\": \"{}\", \"nodes_total\": {}, \"peak_nodes_busy\": {}, \"attempts\": {}, \"faults\": {}, \"guard_kills\": {}, \"cost_dollars\": {:.6}, \"busy_node_seconds\": {:.3}, \"billed_node_seconds\": {}, \"utilization\": {:.6}}}{comma}\n",
                p.platform,
                p.nodes_total,
                p.peak_nodes_busy,
                p.attempts,
                p.faults,
                p.guard_kills,
                p.cost_dollars,
                p.busy_node_seconds,
                p.billed_node_seconds,
                p.utilization,
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"job_reports\": [\n");
        for (i, j) in self.job_reports.iter().enumerate() {
            let comma = if i + 1 < self.job_reports.len() { "," } else { "" };
            let slo = match j.slo_met {
                None => "null".to_string(),
                Some(b) => b.to_string(),
            };
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"outcome\": \"{}\", \"cost_dollars\": {:.6}, \"run_seconds\": {:.3}, \"attempts\": {}, \"faults\": {}, \"wasted_steps\": {}, \"finish_s\": {:.3}, \"slo_met\": {slo}}}{comma}\n",
                j.name,
                j.outcome,
                j.cost_dollars,
                j.run_seconds,
                j.attempts,
                j.faults,
                j.wasted_steps,
                j.finish_s,
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"placements\": [\n");
        for (i, r) in self.placements.iter().enumerate() {
            let comma = if i + 1 < self.placements.len() { "," } else { "" };
            let measured = match r.measured_step_s {
                None => "null".to_string(),
                Some(m) => format!("{m:.9}"),
            };
            s.push_str(&format!(
                "    {{\"job\": {}, \"name\": \"{}\", \"attempt\": {}, \"platform\": \"{}\", \"topology\": \"{}\", \"ranks\": {}, \"nodes\": {}, \"calibrated\": {}, \"predicted_step_s\": {:.9}, \"measured_step_s\": {measured}, \"time_s\": {:.3}}}{comma}\n",
                r.job,
                r.job_name,
                r.attempt,
                r.platform,
                r.topology,
                r.ranks,
                r.nodes,
                r.calibrated,
                r.predicted_step_s,
                r.time_s,
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }

    /// Render as deterministic JSON with a leading `"provenance"` object
    /// built from `(key, value)` string fields (e.g. the git revision and
    /// `rustc -V` of the run that produced the report). Values must
    /// already be JSON-escaped; with no fields this is exactly
    /// [`CampaignReport::to_json`], so committed artifacts only change
    /// when a caller opts in.
    pub fn to_json_with_provenance(&self, fields: &[(&str, &str)]) -> String {
        let base = self.to_json();
        if fields.is_empty() {
            return base;
        }
        let head_end = base.find('\n').map_or(0, |i| i + 1);
        let mut s = String::with_capacity(base.len() + 128);
        s.push_str(&base[..head_end]);
        s.push_str("  \"provenance\": {");
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{k}\": \"{v}\""));
        }
        s.push_str("},\n");
        s.push_str(&base[head_end..]);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(order: usize, calibrated: bool, pred: f64, meas: Option<f64>) -> PlacementRecord {
        PlacementRecord {
            job: order,
            job_name: format!("job-{order}"),
            attempt: 1,
            platform: "CSP-2".into(),
            ranks: 16,
            nodes: 1,
            calibrated,
            predicted_step_s: pred,
            measured_step_s: meas,
            time_s: order as f64,
            topology: "scalar".into(),
        }
    }

    fn empty_report(placements: Vec<PlacementRecord>) -> CampaignReport {
        CampaignReport {
            seed: 1,
            jobs: placements.len(),
            completed: placements.len(),
            guard_kills: 0,
            failed: 0,
            rejected: 0,
            faults: 0,
            retries: 0,
            retried_jobs_completed: 0,
            makespan_s: 8.0,
            total_cost_dollars: 1.0,
            wasted_steps: 0,
            slo_attained: 0,
            slo_total: 0,
            mape_first_quartile_uncalibrated_pct: None,
            mape_first_quartile_uncalibrated_count: 0,
            mape_calibrated_pct: None,
            mape_calibrated_count: 0,
            error_p50_pct: None,
            error_p99_pct: None,
            placements_total: placements.len(),
            events_processed: 0,
            platforms: vec![],
            job_reports: vec![],
            placements,
        }
    }

    #[test]
    fn abs_pct_error_is_relative_to_measurement() {
        let r = record(0, false, 0.5, Some(1.0));
        assert!((r.abs_pct_error().unwrap() - 50.0).abs() < 1e-12);
        assert!(record(0, false, 0.5, None).abs_pct_error().is_none());
    }

    #[test]
    fn mapes_split_first_quartile_uncalibrated_vs_calibrated() {
        // 8 placements: first 2 (= ceil(8/4)) uncalibrated with 50% error,
        // the rest calibrated with 10% error.
        let mut placements = Vec::new();
        for i in 0..8 {
            let calibrated = i >= 2;
            let err = if calibrated { 0.9 } else { 0.5 };
            placements.push(record(i, calibrated, err, Some(1.0)));
        }
        let mut report = empty_report(placements);
        let (q1, cal) = report.compute_mapes();
        let (q1, cal) = (q1.unwrap(), cal.unwrap());
        assert!((q1 - 50.0).abs() < 1e-9, "q1 {q1}");
        assert!((cal - 10.0).abs() < 1e-9, "cal {cal}");
        assert!(cal < q1);
        assert_eq!(report.mape_first_quartile_uncalibrated_count, 2);
        assert_eq!(report.mape_calibrated_count, 6);
    }

    #[test]
    fn degenerate_mapes_are_none_not_nan() {
        // No placements at all (e.g. an all-rejected campaign).
        let mut report = empty_report(vec![]);
        let (q1, cal) = report.compute_mapes();
        assert!(q1.is_none() && cal.is_none());
        assert_eq!(report.mape_first_quartile_uncalibrated_count, 0);

        // One placement that died before its first slice measured: still
        // no NaN anywhere, and the single-entry percentile is None too.
        let mut report = empty_report(vec![record(0, false, 0.5, None)]);
        let (q1, cal) = report.compute_mapes();
        assert!(q1.is_none() && cal.is_none());
        report.compute_error_percentiles();
        assert!(report.error_p50_pct.is_none() && report.error_p99_pct.is_none());

        // The rendered JSON must carry null, never nan/inf tokens.
        let json = report.to_json();
        assert!(json.contains("\"mape_first_quartile_uncalibrated_pct\": null"));
        assert!(json.contains("\"mape_calibrated_pct\": null"));
        assert!(json.contains("\"error_p50_pct\": null"));
        let lower = json.to_lowercase();
        assert!(!lower.contains("nan") && !lower.contains("inf"), "{json}");
    }

    #[test]
    fn nearest_rank_percentiles() {
        assert_eq!(percentile(&[], 50.0), None);
        // Single sample: every percentile is that sample.
        assert_eq!(percentile(&[7.0], 50.0), Some(7.0));
        assert_eq!(percentile(&[7.0], 99.0), Some(7.0));
        // 1..=100: pNN is exactly NN under nearest-rank.
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), Some(50.0));
        assert_eq!(percentile(&v, 99.0), Some(99.0));
        assert_eq!(percentile(&v, 100.0), Some(100.0));
        // Unsorted input is handled; the result is a sample member.
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0), Some(2.0));

        let mut report = empty_report(vec![
            record(0, false, 1.5, Some(1.0)), // 50% error
            record(1, true, 1.1, Some(1.0)),  // 10% error
            record(2, true, 1.2, Some(1.0)),  // 20% error
        ]);
        report.compute_error_percentiles();
        assert!((report.error_p50_pct.unwrap() - 20.0).abs() < 1e-9);
        assert!((report.error_p99_pct.unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn json_is_deterministic_and_tagged() {
        let mut report = CampaignReport {
            seed: 7,
            jobs: 1,
            completed: 1,
            guard_kills: 0,
            failed: 0,
            rejected: 0,
            faults: 0,
            retries: 0,
            retried_jobs_completed: 0,
            makespan_s: 10.0,
            total_cost_dollars: 0.5,
            wasted_steps: 0,
            slo_attained: 0,
            slo_total: 0,
            mape_first_quartile_uncalibrated_pct: None,
            mape_first_quartile_uncalibrated_count: 0,
            mape_calibrated_pct: None,
            mape_calibrated_count: 0,
            error_p50_pct: None,
            error_p99_pct: None,
            placements_total: 1,
            events_processed: 2,
            platforms: vec![PlatformReport {
                platform: "CSP-1".into(),
                nodes_total: 2,
                peak_nodes_busy: 1,
                attempts: 1,
                faults: 0,
                guard_kills: 0,
                cost_dollars: 0.5,
                busy_node_seconds: 10.0,
                billed_node_seconds: 10,
                utilization: 0.5,
            }],
            job_reports: vec![JobReport {
                name: "only".into(),
                outcome: "completed".into(),
                cost_dollars: 0.5,
                run_seconds: 10.0,
                attempts: 1,
                faults: 0,
                wasted_steps: 0,
                finish_s: 10.0,
                slo_met: None,
            }],
            placements: vec![record(0, false, 0.5, Some(1.0))],
        };
        report.compute_mapes();
        report.compute_error_percentiles();
        let a = report.to_json();
        let b = report.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"report\": \"hemocloud_campaign\""));
        assert!(a.contains("\"slo_met\": null"));
        assert!(a.contains("\"placements_total\": 1"));
        assert!(a.contains("\"events_processed\": 2"));
        assert!(a.contains("\"peak_nodes_busy\": 1"));
        assert!(a.contains("\"mape_first_quartile_uncalibrated_pct\": 50.0000"));
        assert!(a.starts_with('{') && a.ends_with("}\n"));

        // Provenance prepends one object right after the opening brace and
        // leaves the rest of the rendering byte-identical.
        assert_eq!(report.to_json_with_provenance(&[]), a);
        let p = report.to_json_with_provenance(&[("git_rev", "abc123"), ("rustc", "rustc 1.0")]);
        let expected_head = "{\n  \"provenance\": {\"git_rev\": \"abc123\", \"rustc\": \"rustc 1.0\"},\n";
        assert!(p.starts_with(expected_head), "got head: {}", &p[..120.min(p.len())]);
        assert_eq!(&p[expected_head.len()..], &a[2..]);
    }
}

//! The campaign report: what the paper's Discussion says an operational
//! deployment must surface — per-platform utilization and cost, SLO
//! attainment, guard activity, retry accounting, and the model-refinement
//! trajectory (placement MAPE dropping as observations accumulate).
//!
//! [`CampaignReport::to_json`] renders a stable, hand-rolled JSON
//! document (the workspace is dependency-free — no serde): same campaign
//! seed, same bytes.

/// One placement decision and how reality answered it.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementRecord {
    /// Job index in submission order.
    pub job: usize,
    /// Job name.
    pub job_name: String,
    /// Attempt number this placement started (1 = first run).
    pub attempt: u32,
    /// Platform chosen by `Dashboard::recommend`.
    pub platform: String,
    /// Ranks of the chosen option.
    pub ranks: usize,
    /// Whole nodes occupied.
    pub nodes: usize,
    /// Whether the prediction behind this placement was calibrated (a
    /// platform or global `ModelCalibrator` had enough observations).
    pub calibrated: bool,
    /// The step time the placement decision believed, seconds.
    pub predicted_step_s: f64,
    /// The first measured step time of the attempt, seconds. `None` only
    /// if the attempt died before its first slice finished.
    pub measured_step_s: Option<f64>,
    /// Campaign clock at dispatch, seconds.
    pub time_s: f64,
}

impl PlacementRecord {
    /// Absolute percentage error of the placement prediction, if
    /// measured.
    pub fn abs_pct_error(&self) -> Option<f64> {
        self.measured_step_s.map(|m| {
            100.0 * (self.predicted_step_s - m).abs() / m
        })
    }
}

/// Mean absolute percentage error over a set of placements; `None` when
/// no placement in the set has a measurement.
pub fn placement_mape(records: &[&PlacementRecord]) -> Option<f64> {
    let errs: Vec<f64> = records.iter().filter_map(|r| r.abs_pct_error()).collect();
    if errs.is_empty() {
        None
    } else {
        Some(errs.iter().sum::<f64>() / errs.len() as f64)
    }
}

/// Per-platform campaign accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformReport {
    /// Platform abbreviation.
    pub platform: String,
    /// Pool size, nodes.
    pub nodes_total: usize,
    /// Attempts dispatched here.
    pub attempts: usize,
    /// Node preemptions/failures injected here.
    pub faults: usize,
    /// Guard kills here.
    pub guard_kills: usize,
    /// Dollars billed here.
    pub cost_dollars: f64,
    /// Busy node-seconds accumulated.
    pub busy_node_seconds: f64,
    /// busy node-seconds / (nodes × makespan).
    pub utilization: f64,
}

/// Per-job campaign accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Job name.
    pub name: String,
    /// Outcome label (`completed`, `guard_killed`, `failed`, `rejected`).
    pub outcome: String,
    /// Dollars billed across all attempts.
    pub cost_dollars: f64,
    /// Node-occupancy wall seconds across all attempts.
    pub run_seconds: f64,
    /// Attempts started.
    pub attempts: u32,
    /// Faults suffered.
    pub faults: u32,
    /// Steps lost to checkpoint rollback and killed slices.
    pub wasted_steps: u64,
    /// Campaign clock when the job left the system.
    pub finish_s: f64,
    /// Deadline-SLO verdict: `None` for jobs without a deadline
    /// objective.
    pub slo_met: Option<bool>,
}

/// The full campaign summary.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Campaign seed.
    pub seed: u64,
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs that completed.
    pub completed: usize,
    /// Jobs killed by their guard.
    pub guard_kills: usize,
    /// Jobs that exhausted retries.
    pub failed: usize,
    /// Jobs admission rejected.
    pub rejected: usize,
    /// Faults injected.
    pub faults: usize,
    /// Retry attempts dispatched.
    pub retries: usize,
    /// Jobs that faulted at least once and still completed — successful
    /// retries.
    pub retried_jobs_completed: usize,
    /// Campaign makespan, seconds (last event processed).
    pub makespan_s: f64,
    /// Total dollars billed.
    pub total_cost_dollars: f64,
    /// Steps lost to rollback/kills, campaign-wide.
    pub wasted_steps: u64,
    /// Deadline jobs that met their deadline.
    pub slo_attained: usize,
    /// Deadline jobs total.
    pub slo_total: usize,
    /// MAPE (%) of uncalibrated placements within the first quartile of
    /// all placements — the "before" of the refinement loop.
    pub mape_first_quartile_uncalibrated_pct: f64,
    /// MAPE (%) of calibrated placements — the "after".
    pub mape_calibrated_pct: f64,
    /// Per-platform accounting.
    pub platforms: Vec<PlatformReport>,
    /// Per-job accounting, submission order.
    pub job_reports: Vec<JobReport>,
    /// Every placement in dispatch order.
    pub placements: Vec<PlacementRecord>,
}

impl CampaignReport {
    /// Compute the refinement-trajectory MAPEs from `placements`:
    /// the uncalibrated slice of the chronologically first quartile
    /// versus all calibrated placements. Sets the fields and returns
    /// `(first_quartile_uncalibrated, calibrated)`.
    pub fn compute_mapes(&mut self) -> (f64, f64) {
        let n = self.placements.len();
        let q1 = n.div_ceil(4);
        let first_q: Vec<&PlacementRecord> = self
            .placements
            .iter()
            .take(q1)
            .filter(|r| !r.calibrated)
            .collect();
        let calibrated: Vec<&PlacementRecord> =
            self.placements.iter().filter(|r| r.calibrated).collect();
        self.mape_first_quartile_uncalibrated_pct =
            placement_mape(&first_q).unwrap_or(f64::NAN);
        self.mape_calibrated_pct = placement_mape(&calibrated).unwrap_or(f64::NAN);
        (
            self.mape_first_quartile_uncalibrated_pct,
            self.mape_calibrated_pct,
        )
    }

    /// Render the report as deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"report\": \"hemocloud_campaign\",\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        s.push_str(&format!("  \"completed\": {},\n", self.completed));
        s.push_str(&format!("  \"guard_kills\": {},\n", self.guard_kills));
        s.push_str(&format!("  \"failed\": {},\n", self.failed));
        s.push_str(&format!("  \"rejected\": {},\n", self.rejected));
        s.push_str(&format!("  \"faults\": {},\n", self.faults));
        s.push_str(&format!("  \"retries\": {},\n", self.retries));
        s.push_str(&format!(
            "  \"retried_jobs_completed\": {},\n",
            self.retried_jobs_completed
        ));
        s.push_str(&format!("  \"makespan_s\": {:.3},\n", self.makespan_s));
        s.push_str(&format!(
            "  \"total_cost_dollars\": {:.6},\n",
            self.total_cost_dollars
        ));
        s.push_str(&format!("  \"wasted_steps\": {},\n", self.wasted_steps));
        s.push_str(&format!(
            "  \"slo\": {{\"attained\": {}, \"total\": {}}},\n",
            self.slo_attained, self.slo_total
        ));
        s.push_str(&format!(
            "  \"refinement\": {{\"mape_first_quartile_uncalibrated_pct\": {:.4}, \"mape_calibrated_pct\": {:.4}}},\n",
            self.mape_first_quartile_uncalibrated_pct, self.mape_calibrated_pct
        ));
        s.push_str("  \"platforms\": [\n");
        for (i, p) in self.platforms.iter().enumerate() {
            let comma = if i + 1 < self.platforms.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"platform\": \"{}\", \"nodes_total\": {}, \"attempts\": {}, \"faults\": {}, \"guard_kills\": {}, \"cost_dollars\": {:.6}, \"busy_node_seconds\": {:.3}, \"utilization\": {:.6}}}{comma}\n",
                p.platform,
                p.nodes_total,
                p.attempts,
                p.faults,
                p.guard_kills,
                p.cost_dollars,
                p.busy_node_seconds,
                p.utilization,
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"job_reports\": [\n");
        for (i, j) in self.job_reports.iter().enumerate() {
            let comma = if i + 1 < self.job_reports.len() { "," } else { "" };
            let slo = match j.slo_met {
                None => "null".to_string(),
                Some(b) => b.to_string(),
            };
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"outcome\": \"{}\", \"cost_dollars\": {:.6}, \"run_seconds\": {:.3}, \"attempts\": {}, \"faults\": {}, \"wasted_steps\": {}, \"finish_s\": {:.3}, \"slo_met\": {slo}}}{comma}\n",
                j.name,
                j.outcome,
                j.cost_dollars,
                j.run_seconds,
                j.attempts,
                j.faults,
                j.wasted_steps,
                j.finish_s,
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"placements\": [\n");
        for (i, r) in self.placements.iter().enumerate() {
            let comma = if i + 1 < self.placements.len() { "," } else { "" };
            let measured = match r.measured_step_s {
                None => "null".to_string(),
                Some(m) => format!("{m:.9}"),
            };
            s.push_str(&format!(
                "    {{\"job\": {}, \"name\": \"{}\", \"attempt\": {}, \"platform\": \"{}\", \"ranks\": {}, \"nodes\": {}, \"calibrated\": {}, \"predicted_step_s\": {:.9}, \"measured_step_s\": {measured}, \"time_s\": {:.3}}}{comma}\n",
                r.job,
                r.job_name,
                r.attempt,
                r.platform,
                r.ranks,
                r.nodes,
                r.calibrated,
                r.predicted_step_s,
                r.time_s,
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }

    /// Render as deterministic JSON with a leading `"provenance"` object
    /// built from `(key, value)` string fields (e.g. the git revision and
    /// `rustc -V` of the run that produced the report). Values must
    /// already be JSON-escaped; with no fields this is exactly
    /// [`CampaignReport::to_json`], so committed artifacts only change
    /// when a caller opts in.
    pub fn to_json_with_provenance(&self, fields: &[(&str, &str)]) -> String {
        let base = self.to_json();
        if fields.is_empty() {
            return base;
        }
        let head_end = base.find('\n').map_or(0, |i| i + 1);
        let mut s = String::with_capacity(base.len() + 128);
        s.push_str(&base[..head_end]);
        s.push_str("  \"provenance\": {");
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{k}\": \"{v}\""));
        }
        s.push_str("},\n");
        s.push_str(&base[head_end..]);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(order: usize, calibrated: bool, pred: f64, meas: Option<f64>) -> PlacementRecord {
        PlacementRecord {
            job: order,
            job_name: format!("job-{order}"),
            attempt: 1,
            platform: "CSP-2".into(),
            ranks: 16,
            nodes: 1,
            calibrated,
            predicted_step_s: pred,
            measured_step_s: meas,
            time_s: order as f64,
        }
    }

    #[test]
    fn abs_pct_error_is_relative_to_measurement() {
        let r = record(0, false, 0.5, Some(1.0));
        assert!((r.abs_pct_error().unwrap() - 50.0).abs() < 1e-12);
        assert!(record(0, false, 0.5, None).abs_pct_error().is_none());
    }

    #[test]
    fn mapes_split_first_quartile_uncalibrated_vs_calibrated() {
        // 8 placements: first 2 (= ceil(8/4)) uncalibrated with 50% error,
        // the rest calibrated with 10% error.
        let mut placements = Vec::new();
        for i in 0..8 {
            let calibrated = i >= 2;
            let err = if calibrated { 0.9 } else { 0.5 };
            placements.push(record(i, calibrated, err, Some(1.0)));
        }
        let mut report = CampaignReport {
            seed: 1,
            jobs: 8,
            completed: 8,
            guard_kills: 0,
            failed: 0,
            rejected: 0,
            faults: 0,
            retries: 0,
            retried_jobs_completed: 0,
            makespan_s: 8.0,
            total_cost_dollars: 1.0,
            wasted_steps: 0,
            slo_attained: 0,
            slo_total: 0,
            mape_first_quartile_uncalibrated_pct: f64::NAN,
            mape_calibrated_pct: f64::NAN,
            platforms: vec![],
            job_reports: vec![],
            placements,
        };
        let (q1, cal) = report.compute_mapes();
        assert!((q1 - 50.0).abs() < 1e-9, "q1 {q1}");
        assert!((cal - 10.0).abs() < 1e-9, "cal {cal}");
        assert!(cal < q1);
    }

    #[test]
    fn json_is_deterministic_and_tagged() {
        let mut report = CampaignReport {
            seed: 7,
            jobs: 1,
            completed: 1,
            guard_kills: 0,
            failed: 0,
            rejected: 0,
            faults: 0,
            retries: 0,
            retried_jobs_completed: 0,
            makespan_s: 10.0,
            total_cost_dollars: 0.5,
            wasted_steps: 0,
            slo_attained: 0,
            slo_total: 0,
            mape_first_quartile_uncalibrated_pct: f64::NAN,
            mape_calibrated_pct: f64::NAN,
            platforms: vec![PlatformReport {
                platform: "CSP-1".into(),
                nodes_total: 2,
                attempts: 1,
                faults: 0,
                guard_kills: 0,
                cost_dollars: 0.5,
                busy_node_seconds: 10.0,
                utilization: 0.5,
            }],
            job_reports: vec![JobReport {
                name: "only".into(),
                outcome: "completed".into(),
                cost_dollars: 0.5,
                run_seconds: 10.0,
                attempts: 1,
                faults: 0,
                wasted_steps: 0,
                finish_s: 10.0,
                slo_met: None,
            }],
            placements: vec![record(0, false, 0.5, Some(1.0))],
        };
        report.compute_mapes();
        let a = report.to_json();
        let b = report.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"report\": \"hemocloud_campaign\""));
        assert!(a.contains("\"slo_met\": null"));
        assert!(a.starts_with('{') && a.ends_with("}\n"));

        // Provenance prepends one object right after the opening brace and
        // leaves the rest of the rendering byte-identical.
        assert_eq!(report.to_json_with_provenance(&[]), a);
        let p = report.to_json_with_provenance(&[("git_rev", "abc123"), ("rustc", "rustc 1.0")]);
        let expected_head = "{\n  \"provenance\": {\"git_rev\": \"abc123\", \"rustc\": \"rustc 1.0\"},\n";
        assert!(p.starts_with(expected_head), "got head: {}", &p[..120.min(p.len())]);
        assert_eq!(&p[expected_head.len()..], &a[2..]);
    }
}

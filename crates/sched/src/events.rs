//! The discrete-event clock: a deterministic priority queue of campaign
//! events, optionally sharded.
//!
//! Determinism is the whole point — a campaign must be byte-for-byte
//! reproducible from its seed **at any shard count**, the same guarantee
//! `rt::pool` gives the LBM solver at any worker width. The total order
//! popped by the queue is
//!
//! ```text
//! (time_s  via total_cmp,  lane,  per-lane seq)
//! ```
//!
//! where a *lane* is a stable logical event source (lane 0 = job intake,
//! lanes 1..=P = one per platform pool). Each lane numbers its own events
//! with a monotone sequence counter, so the key of an event depends only
//! on *what produced it and in what order* — never on how lanes are
//! interleaved into shards. Sharding (lane → `lane % shards` heaps, pop =
//! min across shard heads) is therefore pure layout: the popped order is
//! provably identical at 1, 2, 4, or any number of shards.
//!
//! The earlier single-queue design used one global seq counter; reusing
//! that across sharded heaps would have made equal-time ordering depend
//! on push interleaving — exactly the bug the per-lane seq space fixes.
//! No wall clock, no hash-order, no thread interleaving anywhere in the
//! scheduler.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// A campaign event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A job enters the waiting queue: its first submission, or its
    /// return after a fault-retry backoff.
    Arrive {
        /// Index of the job in the campaign's job table.
        job: usize,
    },
    /// The current slice of a running job's attempt finishes (or is cut
    /// short by a fault that was pre-drawn when the slice was scheduled).
    SliceDone {
        /// Index of the job in the campaign's job table.
        job: usize,
        /// The attempt the slice belongs to — asserted against the job's
        /// live attempt, since an aborted attempt must never leave a
        /// stale slice behind.
        attempt: u32,
    },
}

#[derive(Debug, Clone)]
struct Scheduled {
    time_s: f64,
    lane: u32,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time_s.total_cmp(&other.time_s) == Ordering::Equal
            && self.lane == other.lane
            && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time_s
            .total_cmp(&other.time_s)
            .then(self.lane.cmp(&other.lane))
            .then(self.seq.cmp(&other.seq))
    }
}

/// Sharded min-queue of events totally ordered by
/// `(time, lane, per-lane seq)`.
///
/// The pop order is independent of the shard count — see the module docs
/// for the argument. `shards` only controls how many heaps share the
/// load; each heap holds the lanes congruent to its index.
#[derive(Debug)]
pub struct ShardedEventQueue {
    shards: Vec<BinaryHeap<Reverse<Scheduled>>>,
    lane_seq: Vec<u64>,
    len: usize,
}

impl ShardedEventQueue {
    /// An empty queue with `lanes` event sources spread over `shards`
    /// heaps.
    ///
    /// # Panics
    /// Panics when either count is zero.
    pub fn new(lanes: usize, shards: usize) -> Self {
        assert!(lanes > 0, "zero lanes");
        assert!(shards > 0, "zero shards");
        Self {
            shards: (0..shards).map(|_| BinaryHeap::new()).collect(),
            lane_seq: vec![0; lanes],
            len: 0,
        }
    }

    /// Number of shard heaps.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of lanes.
    pub fn lane_count(&self) -> usize {
        self.lane_seq.len()
    }

    /// Schedule `event` on `lane` at absolute campaign time `time_s`.
    ///
    /// # Panics
    /// Panics on a non-finite or negative time (events like that would
    /// silently corrupt the clock), on an out-of-range lane, and on
    /// per-lane sequence exhaustion (2^64 events from one source — the
    /// clock refuses to wrap and reorder rather than corrupt the total
    /// order).
    pub fn push(&mut self, lane: usize, time_s: f64, event: Event) {
        assert!(
            time_s.is_finite() && time_s >= 0.0,
            "bad event time {time_s}"
        );
        let seq = self.lane_seq[lane];
        self.lane_seq[lane] = seq.checked_add(1).expect("lane seq overflow");
        let shard = lane % self.shards.len();
        self.shards[shard].push(Reverse(Scheduled {
            time_s,
            lane: lane as u32,
            seq,
            event,
        }));
        self.len += 1;
    }

    /// Time of the earliest pending event, if any.
    pub fn next_time(&self) -> Option<f64> {
        self.min_shard().map(|i| {
            let Reverse(s) = self.shards[i].peek().expect("nonempty shard");
            s.time_s
        })
    }

    /// Pop the earliest event under `(time, lane, seq)` order, returning
    /// the lane it was scheduled on.
    pub fn pop(&mut self) -> Option<(f64, usize, Event)> {
        let i = self.min_shard()?;
        let Reverse(s) = self.shards[i].pop().expect("nonempty shard");
        self.len -= 1;
        Some((s.time_s, s.lane as usize, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Index of the shard holding the globally minimal head. The scan is
    /// O(shards); shard counts are small (≈ pool counts) so the merge
    /// stays cheap while each heap's O(log n) operates on `1/shards` of
    /// the events.
    fn min_shard(&self) -> Option<usize> {
        let mut best: Option<(usize, &Scheduled)> = None;
        for (i, heap) in self.shards.iter().enumerate() {
            if let Some(Reverse(head)) = heap.peek() {
                match best {
                    Some((_, b)) if b.cmp(head) != Ordering::Greater => {}
                    _ => best = Some((i, head)),
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Test hook: jump a lane's sequence counter (e.g. near `u64::MAX`)
    /// to exercise the overflow guard without 2^64 pushes.
    #[doc(hidden)]
    pub fn force_lane_seq(&mut self, lane: usize, seq: u64) {
        self.lane_seq[lane] = seq;
    }
}

/// Single-lane, single-shard min-queue of events ordered by
/// `(time, insertion order)` — the original unsharded clock, now a thin
/// wrapper over [`ShardedEventQueue`]. With one lane the total order
/// `(time, 0, seq)` degenerates to the historic `(time, seq)`.
#[derive(Debug)]
pub struct EventQueue {
    inner: ShardedEventQueue,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self {
            inner: ShardedEventQueue::new(1, 1),
        }
    }
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute campaign time `time_s`.
    ///
    /// # Panics
    /// Panics on a non-finite or negative time — events like that would
    /// silently corrupt the clock.
    pub fn push(&mut self, time_s: f64, event: Event) {
        self.inner.push(0, time_s, event);
    }

    /// Pop the earliest event (ties in insertion order).
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        self.inner.pop().map(|(t, _lane, e)| (t, e))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(5.0, Event::Arrive { job: 0 });
        q.push(1.0, Event::Arrive { job: 1 });
        q.push(3.0, Event::SliceDone { job: 2, attempt: 1 });
        let order: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for job in 0..5 {
            q.push(2.0, Event::Arrive { job });
        }
        let jobs: Vec<usize> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::Arrive { job } => job,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(jobs, vec![0, 1, 2, 3, 4], "FIFO among simultaneous events");
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(0.0, Event::Arrive { job: 0 });
        q.push(0.0, Event::Arrive { job: 1 });
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "bad event time")]
    fn rejects_nan_times() {
        EventQueue::new().push(f64::NAN, Event::Arrive { job: 0 });
    }

    /// Deterministic pseudo-random pushes drained from queues at several
    /// shard counts must pop the identical sequence: the merge key
    /// `(time, lane, per-lane seq)` never mentions shards.
    #[test]
    fn pop_order_is_shard_count_invariant() {
        let lanes = 5;
        let mut rng = hemocloud_rt::rng::SplitMix64::new(7);
        let pushes: Vec<(usize, f64, usize)> = (0..4000)
            .map(|job| {
                let lane = (rng.next_u64() % lanes as u64) as usize;
                // Coarse times force plenty of exact ties.
                let t = (rng.next_u64() % 50) as f64;
                (lane, t, job)
            })
            .collect();
        let drain = |shards: usize| -> Vec<(f64, usize, usize)> {
            let mut q = ShardedEventQueue::new(lanes, shards);
            for &(lane, t, job) in &pushes {
                q.push(lane, t, Event::Arrive { job });
            }
            std::iter::from_fn(|| {
                q.pop().map(|(t, lane, e)| match e {
                    Event::Arrive { job } => (t, lane, job),
                    _ => unreachable!(),
                })
            })
            .collect()
        };
        let reference = drain(1);
        assert_eq!(reference.len(), pushes.len());
        for shards in [2, 3, 4, 8] {
            assert_eq!(drain(shards), reference, "diverged at {shards} shards");
        }
    }

    #[test]
    fn lane_breaks_equal_time_ties_before_seq() {
        let mut q = ShardedEventQueue::new(3, 2);
        // Lane 2 pushed first, then lane 0: at equal time, lane 0 pops
        // first regardless of push order or per-lane seq values.
        q.push(2, 1.0, Event::Arrive { job: 20 });
        q.push(2, 1.0, Event::Arrive { job: 21 });
        q.push(0, 1.0, Event::Arrive { job: 0 });
        let jobs: Vec<usize> = std::iter::from_fn(|| {
            q.pop().map(|(_, _, e)| match e {
                Event::Arrive { job } => job,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(jobs, vec![0, 20, 21]);
    }

    #[test]
    fn next_time_tracks_global_minimum() {
        let mut q = ShardedEventQueue::new(4, 2);
        assert_eq!(q.next_time(), None);
        q.push(3, 9.0, Event::Arrive { job: 3 });
        q.push(1, 4.0, Event::Arrive { job: 1 });
        assert_eq!(q.next_time(), Some(4.0));
        q.pop();
        assert_eq!(q.next_time(), Some(9.0));
    }

    #[test]
    #[should_panic(expected = "lane seq overflow")]
    fn lane_seq_overflow_is_a_panic_not_a_wrap() {
        let mut q = ShardedEventQueue::new(2, 2);
        q.force_lane_seq(1, u64::MAX);
        q.push(1, 0.0, Event::Arrive { job: 0 });
        q.push(1, 0.0, Event::Arrive { job: 1 });
    }

    /// `PartialOrd` is derived from `Ord` (`Some(self.cmp(other))`), so the
    /// two orders can never diverge — a divergence would silently break the
    /// shard-invariant pop order, since `BinaryHeap` uses `Ord` while any
    /// future comparison through `PartialOrd` would disagree. Pinned on
    /// random keys including the `total_cmp` specials (NaN, ±0.0, ±inf);
    /// `push` rejects non-finite times, but the key type itself must stay
    /// total regardless of how it is constructed.
    #[test]
    fn partial_cmp_always_agrees_with_cmp() {
        use hemocloud_rt::check::{self, Config};
        let specials = [f64::NAN, -f64::NAN, 0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY];
        check::run("partial_cmp_always_agrees_with_cmp", Config::cases(16), |rng| {
            let draw = |rng: &mut hemocloud_rt::rng::Rng| {
                let time_s = if rng.next_u64() % 4 == 0 {
                    specials[(rng.next_u64() % specials.len() as u64) as usize]
                } else {
                    // Coarse grid so exact time ties exercise the lane/seq arms.
                    (rng.next_u64() % 8) as f64 - 3.0
                };
                Scheduled {
                    time_s,
                    lane: (rng.next_u64() % 3) as u32,
                    seq: rng.next_u64() % 4,
                    event: Event::Arrive { job: 0 },
                }
            };
            for _ in 0..256 {
                let a = draw(rng);
                let b = draw(rng);
                assert_eq!(a.partial_cmp(&b), Some(a.cmp(&b)));
                assert_eq!(b.partial_cmp(&a), Some(b.cmp(&a)));
                assert_eq!(a.partial_cmp(&a), Some(std::cmp::Ordering::Equal));
                // PartialEq must match the Equal arm of the same key.
                assert_eq!(a == b, a.cmp(&b) == std::cmp::Ordering::Equal);
            }
        });
    }
}

//! The discrete-event clock: a deterministic priority queue of campaign
//! events.
//!
//! Determinism is the whole point — a campaign must be byte-for-byte
//! reproducible from its seed, so the queue orders events by simulated
//! time with ties broken by **insertion order** (a monotone sequence
//! number). No wall clock, no hash-order, no thread interleaving anywhere
//! in the scheduler.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// A campaign event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A job enters the waiting queue: its first submission, or its
    /// return after a fault-retry backoff.
    Arrive {
        /// Index of the job in the campaign's job table.
        job: usize,
    },
    /// The current slice of a running job's attempt finishes (or is cut
    /// short by a fault that was pre-drawn when the slice was scheduled).
    SliceDone {
        /// Index of the job in the campaign's job table.
        job: usize,
        /// The attempt the slice belongs to — asserted against the job's
        /// live attempt, since an aborted attempt must never leave a
        /// stale slice behind.
        attempt: u32,
    },
}

#[derive(Debug, Clone)]
struct Scheduled {
    time_s: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time_s.total_cmp(&other.time_s) == Ordering::Equal && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time_s
            .total_cmp(&other.time_s)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Min-queue of events ordered by `(time, insertion order)`.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute campaign time `time_s`.
    ///
    /// # Panics
    /// Panics on a non-finite or negative time — events like that would
    /// silently corrupt the clock.
    pub fn push(&mut self, time_s: f64, event: Event) {
        assert!(
            time_s.is_finite() && time_s >= 0.0,
            "bad event time {time_s}"
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled {
            time_s,
            seq,
            event,
        }));
    }

    /// Pop the earliest event (ties in insertion order).
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        self.heap.pop().map(|Reverse(s)| (s.time_s, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(5.0, Event::Arrive { job: 0 });
        q.push(1.0, Event::Arrive { job: 1 });
        q.push(3.0, Event::SliceDone { job: 2, attempt: 1 });
        let order: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for job in 0..5 {
            q.push(2.0, Event::Arrive { job });
        }
        let jobs: Vec<usize> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::Arrive { job } => job,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(jobs, vec![0, 1, 2, 3, 4], "FIFO among simultaneous events");
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(0.0, Event::Arrive { job: 0 });
        q.push(0.0, Event::Arrive { job: 1 });
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "bad event time")]
    fn rejects_nan_times() {
        EventQueue::new().push(f64::NAN, Event::Arrive { job: 0 });
    }
}

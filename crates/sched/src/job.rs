//! Campaign jobs: what a user submits and how a run can end.

use std::sync::Arc;

use hemocloud_core::dashboard::Objective;
use hemocloud_core::workload::Workload;

/// One simulation job submitted to the campaign scheduler.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Human-readable name.
    pub name: String,
    /// The simulation to run: geometry, kernel and *declared* step count.
    ///
    /// Shared, not owned: a `Workload` embeds its whole voxel grid, so a
    /// million-job campaign whose jobs draw from a few dozen geometries
    /// must not clone the grid per job. Submitters build each distinct
    /// workload once and hand every job an `Arc` to it.
    pub workload: Arc<Workload>,
    /// Key identifying the job's geometry for model caching: jobs that
    /// share a `model_key` (same grid) share fitted [`GeneralModel`]s per
    /// platform instead of re-sweeping the decomposition.
    ///
    /// [`GeneralModel`]: hemocloud_core::general::GeneralModel
    pub model_key: String,
    /// Placement objective handed to `Dashboard::recommend`.
    pub objective: Objective,
    /// Guard tolerance fraction on the placement-time prediction (the
    /// paper's "10% tolerance" dial).
    pub tolerance: f64,
    /// Hard dollar budget for the whole job, all attempts included. An
    /// admission filter (options predicted to cost more are never
    /// offered) *and* a cap on the guard's dollar limit.
    pub budget_dollars: f64,
    /// Fault retries allowed before the job is declared failed.
    pub max_retries: u32,
    /// Steps between durable checkpoints: after a fault the job restarts
    /// from the last multiple of this, losing the work since.
    pub checkpoint_steps: u64,
    /// Hidden multiplier on the declared step count — the user's
    /// convergence misestimate. The scheduler predicts, prices, and
    /// guards with the *declared* steps; the simulation actually needs
    /// `declared × hidden_steps_factor`. Values well above the guard
    /// tolerance make the job a runaway the guard must kill mid-run.
    pub hidden_steps_factor: f64,
    /// Submission time, campaign seconds.
    pub submit_s: f64,
}

impl JobSpec {
    /// The number of steps the job *actually* needs before it converges.
    pub fn true_steps(&self) -> u64 {
        assert!(
            self.hidden_steps_factor > 0.0,
            "non-positive hidden_steps_factor"
        );
        (self.workload.steps as f64 * self.hidden_steps_factor).round() as u64
    }
}

/// How a job's campaign life ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// Ran to convergence within its limits.
    Completed,
    /// A guard limit was strictly exceeded mid-run and the scheduler
    /// killed the job at the next slice boundary.
    GuardKilled,
    /// Faulted more times than `max_retries` allowed.
    Failed,
    /// Never ran: no (platform, ranks) option satisfied the job's
    /// objective and budget, even on an empty pool.
    Rejected {
        /// Why admission refused the job.
        reason: String,
    },
}

impl JobOutcome {
    /// Short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            JobOutcome::Completed => "completed",
            JobOutcome::GuardKilled => "guard_killed",
            JobOutcome::Failed => "failed",
            JobOutcome::Rejected { .. } => "rejected",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemocloud_geometry::anatomy::CylinderSpec;

    #[test]
    fn true_steps_applies_the_hidden_factor() {
        let grid = CylinderSpec::default().with_resolution(8).build();
        let spec = JobSpec {
            name: "j".into(),
            workload: Arc::new(Workload::harvey(&grid, 10_000)),
            model_key: "cyl8".into(),
            objective: Objective::MinCost,
            tolerance: 0.1,
            budget_dollars: 10.0,
            max_retries: 2,
            checkpoint_steps: 1_000,
            hidden_steps_factor: 2.5,
            submit_s: 0.0,
        };
        assert_eq!(spec.true_steps(), 25_000);
        let honest = JobSpec {
            hidden_steps_factor: 1.0,
            ..spec
        };
        assert_eq!(honest.true_steps(), 10_000);
    }

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(JobOutcome::Completed.label(), "completed");
        assert_eq!(JobOutcome::GuardKilled.label(), "guard_killed");
        assert_eq!(JobOutcome::Failed.label(), "failed");
        assert_eq!(
            JobOutcome::Rejected {
                reason: "x".into()
            }
            .label(),
            "rejected"
        );
    }
}

//! Scenario sweep: run the campaign scheduler across a grid of seeds ×
//! geometries × platform mixes × fault rates × kernel configurations with
//! every cross-cutting invariant armed, and aggregate the results into
//! one deterministic JSON evaluation report (DESIGN.md §17).
//!
//! A single demo campaign shows the control loop works *once*; the sweep
//! is the evaluation harness that shows it keeps its promises everywhere
//! in the configuration space the paper's Discussion cares about:
//!
//! * **Budget** — no completed job ever bills past its dollar budget.
//! * **Guard exactness** — a guard-killed job stopped at its rebuilt
//!   wall limit or past its rebuilt dollar limit, where the limits are
//!   recomputed from nothing but the placement log (the guard is a pure
//!   function of the logged prediction).
//! * **SLO consistency** — the report's deadline accounting matches a
//!   recomputation from the submitted specs.
//! * **Billing** — integer billed node-seconds dominate fractional busy
//!   node-seconds on every platform (per-attempt round-up).
//! * **Eq. 9 reconciliation** — on fault-free, kill-free cells, the
//!   fabric's per-link delivered-byte counters equal the message-graph
//!   bytes × true steps of every routed job, as exact `u64` equality.
//! * **Placement regret** — every completed job's cost is compared
//!   against an oracle that knows the noise-free step time of every
//!   feasible (pool, ranks) option; regret is reported per axis.
//!
//! Violations are collected as strings, never panics, so one bad cell
//! cannot hide the others; the committed artifact (`EVAL_campaign.json`)
//! is gated on the list being empty.

use std::collections::BTreeMap;
use std::sync::Arc;

use hemocloud_cluster::exec::{Overheads, PreparedRun};
use hemocloud_cluster::platform::Platform;
use hemocloud_cluster::topology::{CommModel, TopologyVariant};
use hemocloud_core::dashboard::Objective;
use hemocloud_core::workload::Workload;
use hemocloud_geometry::anatomy::{
    AneurysmSpec, AortaSpec, CerebralSpec, CylinderSpec, StenosisSpec,
};
use hemocloud_geometry::voxel::VoxelGrid;
use hemocloud_lbm::kernel::{KernelConfig, Layout, Propagation};
use hemocloud_obs::{Sample, Snapshot};

use crate::job::JobSpec;
use crate::report::{percentile, CampaignReport};
use crate::scheduler::{Campaign, CampaignConfig, PoolSpec};

/// One geometry under sweep: a stable key and its voxelized grid.
pub struct GeometryCase {
    /// Stable axis label (e.g. `"sten8"`).
    pub key: String,
    /// The voxelized lumen, shared across cells.
    pub grid: Arc<VoxelGrid>,
}

/// One kernel/job-mix configuration under sweep.
#[derive(Clone)]
pub struct WorkloadCase {
    /// Stable axis label (e.g. `"aa_stress"`).
    pub key: &'static str,
    /// The LBM kernel every job in the cell runs.
    pub kernel: KernelConfig,
    /// Whether the mix includes a runaway (hidden-steps) job and a
    /// doomed-budget job on top of the honest stream.
    pub stress: bool,
}

/// The sweep grid: the cross product of five axes.
pub struct SweepGrid {
    /// Campaign seeds.
    pub seeds: Vec<u64>,
    /// Geometries.
    pub geometries: Vec<GeometryCase>,
    /// Platform-mix keys, resolved through [`mix_pools`].
    pub mixes: Vec<&'static str>,
    /// Fault rates per node-hour.
    pub fault_rates: Vec<f64>,
    /// Kernel/job-mix configurations.
    pub workloads: Vec<WorkloadCase>,
}

fn geometry_case(key: &str) -> GeometryCase {
    let grid = match key {
        "cyl8" => CylinderSpec::default().with_resolution(8).build(),
        "aorta8" => AortaSpec::default().with_resolution(8).build(),
        "sten8" => StenosisSpec::default().with_resolution(8).build(),
        "aneu8" => AneurysmSpec::default().with_resolution(8).build(),
        "cereb6" => CerebralSpec::default()
            .with_resolution(6)
            .with_generations(3)
            .build(),
        other => panic!("unknown geometry case {other}"),
    };
    GeometryCase {
        key: key.to_string(),
        grid: Arc::new(grid),
    }
}

fn workload_cases() -> Vec<WorkloadCase> {
    vec![
        WorkloadCase {
            key: "ab_honest",
            kernel: KernelConfig::harvey(),
            stress: false,
        },
        WorkloadCase {
            key: "aa_stress",
            kernel: KernelConfig::sparse(Propagation::Aa, Layout::Soa),
            stress: true,
        },
    ]
}

impl SweepGrid {
    /// The full evaluation grid: 2 seeds × 5 geometries (including the
    /// stenosis and aneurysm anatomies) × 3 platform mixes (scalar plus
    /// all three routed topology shapes) × 2 fault rates × 2 kernel
    /// configurations = 120 cells.
    pub fn full() -> Self {
        Self {
            seeds: vec![42, 4242],
            geometries: ["cyl8", "aorta8", "sten8", "aneu8", "cereb6"]
                .iter()
                .map(|k| geometry_case(k))
                .collect(),
            mixes: vec!["scalar", "spread", "clos"],
            fault_rates: vec![0.0, 0.25],
            workloads: workload_cases(),
        }
    }

    /// The CI smoke grid (`RT_BENCH_FAST=1`): 1 seed × 2 geometries ×
    /// 2 mixes × 2 fault rates × 2 kernel configurations = 16 cells.
    pub fn smoke() -> Self {
        Self {
            seeds: vec![42],
            geometries: ["cyl8", "aneu8"].iter().map(|k| geometry_case(k)).collect(),
            mixes: vec!["scalar", "spread"],
            fault_rates: vec![0.0, 0.25],
            workloads: workload_cases(),
        }
    }

    /// Number of cells in the grid.
    pub fn cell_count(&self) -> usize {
        self.seeds.len()
            * self.geometries.len()
            * self.mixes.len()
            * self.fault_rates.len()
            * self.workloads.len()
    }
}

/// The capacity-limited pools behind a mix key. Platforms within one mix
/// are distinct, so a placement's platform abbreviation identifies its
/// pool unambiguously.
pub fn mix_pools(key: &str) -> Vec<PoolSpec> {
    match key {
        // Scalar-priced comm on both pools (Eq. 12, no fabric).
        "scalar" => vec![
            PoolSpec {
                platform: Platform::csp1(),
                nodes: 3,
                overheads: Overheads::default(),
                topology: None,
            },
            PoolSpec {
                platform: Platform::csp2_small(),
                nodes: 8,
                overheads: Overheads {
                    message_software_overhead_us: 2.5,
                    ..Overheads::default()
                },
                topology: None,
            },
        ],
        // Oversubscribed rack trunks plus a scalar fallback pool.
        "spread" => vec![
            PoolSpec {
                platform: Platform::csp2_small(),
                nodes: 8,
                overheads: Overheads::default(),
                topology: Some(TopologyVariant::Spread),
            },
            PoolSpec {
                platform: Platform::csp1(),
                nodes: 2,
                overheads: Overheads::default(),
                topology: None,
            },
        ],
        // Full-bisection Clos vs the single-switch placement group.
        "clos" => vec![
            PoolSpec {
                platform: Platform::csp2_small(),
                nodes: 6,
                overheads: Overheads {
                    lbm_bandwidth_efficiency: 0.72,
                    ..Overheads::default()
                },
                topology: Some(TopologyVariant::FatTree),
            },
            PoolSpec {
                platform: Platform::csp2_ec(),
                nodes: 3,
                overheads: Overheads {
                    lbm_bandwidth_efficiency: 0.85,
                    ..Overheads::default()
                },
                topology: Some(TopologyVariant::PlacementGroup),
            },
        ],
        other => panic!("unknown mix {other}"),
    }
}

/// Campaign configuration for one cell.
pub fn cell_config(seed: u64, fault_rate: f64) -> CampaignConfig {
    CampaignConfig {
        seed,
        characterization_seed: 2023,
        // No single-digit rank option: on the 8-core CSP-2 Small nodes
        // every option spans at least two nodes, so routed pools always
        // carry internodal traffic for the Eq. 9 reconciliation.
        rank_options: vec![16, 32, 36, 64, 72],
        slice_steps: 1_000_000,
        fault_rate_per_node_hour: fault_rate,
        retry_backoff_s: 60.0,
        max_retry_backoff_s: 3600.0,
        min_calibration_obs: 4,
        prices: Default::default(),
        shards: 1,
        max_placement_log: usize::MAX,
        max_job_reports: usize::MAX,
    }
}

/// The job mix for one cell: a bootstrap wave at t = 0 placed on the raw
/// model (generous tolerance), a calibrated-era stream, and — in stress
/// cells — one runaway the guard must kill and one doomed-budget job
/// admission must reject.
pub fn cell_jobs(
    geom: &GeometryCase,
    wk: &WorkloadCase,
    workloads: &mut BTreeMap<(String, u64), Arc<Workload>>,
) -> Vec<JobSpec> {
    let wl_name = format!("{}:{}", geom.key, wk.key);
    let mut wl = |steps: u64| -> Arc<Workload> {
        workloads
            .entry((wl_name.clone(), steps))
            .or_insert_with(|| Arc::new(Workload::new(wl_name.clone(), &geom.grid, wk.kernel, steps)))
            .clone()
    };
    let mut jobs = Vec::new();
    let mut push = |name: String,
                    objective: Objective,
                    tolerance: f64,
                    budget: f64,
                    hidden: f64,
                    submit_s: f64,
                    wl: Arc<Workload>| {
        jobs.push(JobSpec {
            name,
            workload: wl,
            model_key: wl_name.clone(),
            objective,
            tolerance,
            budget_dollars: budget,
            max_retries: 3,
            checkpoint_steps: 2_000_000,
            hidden_steps_factor: hidden,
            submit_s,
        });
    };
    // Bootstrap wave: raw-model placements, generous tolerance.
    let w0 = wl(10_000_000);
    push("h0-mincost".into(), Objective::MinCost, 7.0, 150.0, 1.0, 0.0, w0);
    let w1 = wl(12_000_000);
    push("h1-throughput".into(), Objective::MaxThroughput, 7.0, 150.0, 1.0, 0.0, w1);
    let w2 = wl(14_000_000);
    push(
        "h2-deadline".into(),
        Objective::Deadline(6.0 * 3600.0),
        7.0,
        150.0,
        1.0,
        0.0,
        w2,
    );
    // Calibrated-era stream: tighter tolerance, staggered arrivals.
    let w3 = wl(16_000_000);
    push("h3-mincost".into(), Objective::MinCost, 3.0, 150.0, 1.0, 900.0, w3);
    if wk.stress {
        // Runaway: truly needs 4× its declared steps under a 0.5
        // tolerance. It arrives after the honest wave has calibrated the
        // models, so its placement prediction is accurate and the guard
        // budget runs dry mid-run no matter how loose the raw model was.
        let wr = wl(6_000_000);
        push("runaway".into(), Objective::MinCost, 0.5, 150.0, 4.0, 3600.0, wr);
        // Doomed: no option can run 40M steps for five cents.
        let wd = wl(40_000_000);
        push("doomed-budget".into(), Objective::MinCost, 1.0, 0.05, 1.0, 60.0, wd);
    } else {
        let w4 = wl(12_000_000);
        push(
            "h4-deadline".into(),
            Objective::Deadline(6.0 * 3600.0),
            3.0,
            150.0,
            1.0,
            1800.0,
            w4,
        );
        let w5 = wl(18_000_000);
        push("h5-throughput".into(), Objective::MaxThroughput, 3.0, 150.0, 1.0, 2700.0, w5);
    }
    jobs
}

/// One cell's results: the axis coordinates, outcome counts, pooled
/// placement errors, regret, utilization and Eq. 9 reconciliation.
pub struct CellResult {
    /// Campaign seed.
    pub seed: u64,
    /// Geometry key.
    pub geometry: String,
    /// Platform-mix key.
    pub mix: String,
    /// Fault rate per node-hour.
    pub fault_rate: f64,
    /// Workload key.
    pub workload: String,
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs completed.
    pub completed: usize,
    /// Guard kills.
    pub guard_kills: usize,
    /// Jobs failed (retries exhausted).
    pub failed: usize,
    /// Jobs rejected at admission.
    pub rejected: usize,
    /// Faults injected.
    pub faults: usize,
    /// Campaign makespan, seconds.
    pub makespan_s: f64,
    /// Total dollars billed.
    pub total_cost_dollars: f64,
    /// Campaign-wide utilization: Σ busy node-seconds over Σ pool
    /// capacity node-seconds at the cell makespan.
    pub utilization: f64,
    /// Median absolute placement error, %, over measured placements.
    pub error_p50_pct: Option<f64>,
    /// 99th-percentile absolute placement error, %.
    pub error_p99_pct: Option<f64>,
    /// Mean cost regret vs the noise-free oracle over completed jobs, %.
    pub mean_regret_pct: Option<f64>,
    /// Whether the Eq. 9 reconciliation ran (fault-free, kill-free cell
    /// with at least one routed pool).
    pub eq9_checked: bool,
    /// Delivered bytes summed over every routed pool's link counters.
    pub eq9_delivered_bytes: u64,
    /// Expected bytes from the message graphs of every routed placement.
    pub eq9_expected_bytes: u64,
    /// Absolute placement errors pooled for axis aggregation (not
    /// serialized).
    pub abs_errors: Vec<f64>,
    /// Per-completed-job regrets pooled for axis aggregation (not
    /// serialized).
    pub regrets: Vec<f64>,
}

impl CellResult {
    /// Stable cell key used to prefix violations and name cells in JSON.
    pub fn key(&self) -> String {
        cell_key(&self.geometry, &self.mix, self.seed, self.fault_rate, &self.workload)
    }
}

fn cell_key(geometry: &str, mix: &str, seed: u64, fault_rate: f64, workload: &str) -> String {
    format!("s{seed}/{geometry}/{mix}/f{fault_rate:.2}/{workload}")
}

/// Aggregate over every cell sharing one axis value.
pub struct AxisAggregate {
    /// Axis name (`seed`, `geometry`, `mix`, `fault_rate`, `workload`,
    /// or `overall`).
    pub axis: &'static str,
    /// The shared axis value.
    pub value: String,
    /// Cells aggregated.
    pub cells: usize,
    /// Jobs across those cells.
    pub jobs: usize,
    /// Completions across those cells.
    pub completed: usize,
    /// Measured placements pooled.
    pub measured_placements: usize,
    /// p50 of the pooled absolute placement errors, %.
    pub error_p50_pct: Option<f64>,
    /// p99 of the pooled absolute placement errors, %.
    pub error_p99_pct: Option<f64>,
    /// Mean cost regret vs oracle over pooled completed jobs, %.
    pub mean_regret_pct: Option<f64>,
    /// Mean of the cells' utilizations.
    pub mean_utilization: f64,
}

/// The full sweep evaluation report.
pub struct SweepReport {
    /// Per-cell results in grid iteration order.
    pub cells: Vec<CellResult>,
    /// Per-axis aggregates in axis/value iteration order.
    pub by_axis: Vec<AxisAggregate>,
    /// The global aggregate.
    pub overall: AxisAggregate,
    /// Invariant violations; the artifact gate requires this empty.
    pub violations: Vec<String>,
    /// Cells where the Eq. 9 reconciliation ran.
    pub eq9_cells_checked: usize,
    /// Guard-killed jobs whose limits were rebuilt and checked exactly.
    pub guard_exact_checks: usize,
}

// ---- oracle -----------------------------------------------------------

/// Cached per-option oracle data: noise-free step seconds, node count,
/// and (routed only) the Eq. 9 per-step internodal byte total.
struct OracleOption {
    step_nf_s: f64,
    nodes: usize,
    flow_bytes_per_step: u64,
}

type OracleCache = BTreeMap<(String, usize, String, usize), Option<OracleOption>>;

/// The noise-free cost oracle for one (mix pool, geometry+workload,
/// ranks) option. Uses each prepared run's *isolated* timing — the
/// oracle prices options as if the job ran alone, which is the paper's
/// dashboard-style a-priori best case.
fn oracle_option<'c>(
    cache: &'c mut OracleCache,
    mix: &str,
    pool_idx: usize,
    pool: &PoolSpec,
    model_key: &str,
    ranks: usize,
    grid: &VoxelGrid,
    kernel: &KernelConfig,
) -> &'c Option<OracleOption> {
    let key = (mix.to_string(), pool_idx, model_key.to_string(), ranks);
    cache.entry(key).or_insert_with(|| {
        let comm = match pool.topology {
            Some(variant) => CommModel::Routed(variant),
            None => CommModel::Scalar,
        };
        let prepared =
            PreparedRun::new_with_comm(&pool.platform, grid, kernel, ranks, &pool.overheads, comm)?;
        let nodes = prepared.nodes();
        let pool_nodes = pool.nodes.min(pool.platform.max_nodes());
        if nodes > pool_nodes {
            return None;
        }
        // Any seed works: dividing out the reported noise factor leaves
        // the deterministic model time.
        let sim = prepared.run_slice(1_000_000, 7, 0.0);
        let step_nf_s = sim.step_time_s / sim.noise_factor;
        let flow_bytes_per_step = if pool.topology.is_some() {
            let node_map: Vec<usize> = (0..nodes).collect();
            prepared
                .flows(&node_map, 0)
                .iter()
                .map(|f| f.bytes as u64)
                .sum()
        } else {
            0
        };
        Some(OracleOption {
            step_nf_s,
            nodes,
            flow_bytes_per_step,
        })
    })
}

// ---- invariants -------------------------------------------------------

/// Sum a `fabric.pool{p}.link.{kind}` counter family out of a snapshot.
fn link_family_total(snap: &Snapshot, prefix: &str) -> u64 {
    let mut total = 0u64;
    let mut i = 0usize;
    while let Some(Sample::Counter(v)) = snap.get(&format!("{prefix}.{i}")) {
        total += v;
        i += 1;
    }
    total
}

fn is_bad(v: f64) -> bool {
    !v.is_finite()
}

/// Run every per-cell invariant, appending violations as
/// `"<cell>: <what>"` strings. Returns the number of guard-killed jobs
/// whose limits were rebuilt and checked.
#[allow(clippy::too_many_arguments)]
fn check_invariants(
    key: &str,
    report: &CampaignReport,
    specs: &[JobSpec],
    pools: &[PoolSpec],
    config: &CampaignConfig,
    snapshot: &Snapshot,
    eq9_expected: Option<&BTreeMap<usize, u64>>,
    violations: &mut Vec<String>,
) -> usize {
    let mut bad = |what: String| violations.push(format!("{key}: {what}"));

    // Outcome conservation.
    if report.completed + report.guard_kills + report.failed + report.rejected != report.jobs {
        bad(format!(
            "outcomes {}+{}+{}+{} != jobs {}",
            report.completed, report.guard_kills, report.failed, report.rejected, report.jobs
        ));
    }
    if report.jobs != specs.len() || report.job_reports.len() != specs.len() {
        bad(format!(
            "job counts report {} / reports {} != specs {}",
            report.jobs,
            report.job_reports.len(),
            specs.len()
        ));
    }
    if is_bad(report.makespan_s) || report.makespan_s < 0.0 {
        bad(format!("bad makespan {}", report.makespan_s));
    }
    if is_bad(report.total_cost_dollars) || report.total_cost_dollars < 0.0 {
        bad(format!("bad total cost {}", report.total_cost_dollars));
    }

    // Cost, fault and retry books must balance across views.
    let job_cost: f64 = report.job_reports.iter().map(|j| j.cost_dollars).sum();
    if (job_cost - report.total_cost_dollars).abs() > 1e-6 * report.total_cost_dollars.max(1.0) {
        bad(format!(
            "job costs {job_cost} != total {}",
            report.total_cost_dollars
        ));
    }
    let platform_cost: f64 = report.platforms.iter().map(|p| p.cost_dollars).sum();
    if (platform_cost - report.total_cost_dollars).abs()
        > 1e-6 * report.total_cost_dollars.max(1.0)
    {
        bad(format!(
            "platform costs {platform_cost} != total {}",
            report.total_cost_dollars
        ));
    }
    let job_faults: usize = report.job_reports.iter().map(|j| j.faults as usize).sum();
    if job_faults != report.faults {
        bad(format!("job faults {job_faults} != total {}", report.faults));
    }
    let job_retries: usize = report
        .job_reports
        .iter()
        .map(|j| (j.attempts as usize).saturating_sub(1))
        .sum();
    if job_retries != report.retries {
        bad(format!("job retries {job_retries} != total {}", report.retries));
    }

    // Per-job: budget ceiling on completions, SLO recomputation.
    let mut slo_total = 0usize;
    let mut slo_attained = 0usize;
    for (spec, jr) in specs.iter().zip(&report.job_reports) {
        if jr.name != spec.name {
            bad(format!("job order drifted: {} vs {}", jr.name, spec.name));
            continue;
        }
        if is_bad(jr.cost_dollars) || jr.cost_dollars < 0.0 || is_bad(jr.run_seconds) {
            bad(format!("job {}: non-finite accounting", jr.name));
        }
        if jr.outcome == "completed" && jr.cost_dollars > spec.budget_dollars + 1e-6 {
            bad(format!(
                "job {}: completed at ${} over budget ${}",
                jr.name, jr.cost_dollars, spec.budget_dollars
            ));
        }
        let expect_slo = match spec.objective {
            Objective::Deadline(d) => {
                slo_total += 1;
                let met = jr.outcome == "completed" && jr.finish_s - spec.submit_s <= d;
                if met {
                    slo_attained += 1;
                }
                Some(met)
            }
            _ => None,
        };
        if jr.slo_met != expect_slo {
            bad(format!(
                "job {}: slo_met {:?} != recomputed {:?}",
                jr.name, jr.slo_met, expect_slo
            ));
        }
    }
    if slo_total != report.slo_total || slo_attained != report.slo_attained {
        bad(format!(
            "slo books {}/{} != recomputed {slo_attained}/{slo_total}",
            report.slo_attained, report.slo_total
        ));
    }

    // Per-platform: billed dominates busy, utilization sane.
    for p in &report.platforms {
        if is_bad(p.busy_node_seconds) || p.busy_node_seconds < 0.0 {
            bad(format!("{}: bad busy_node_seconds {}", p.platform, p.busy_node_seconds));
        }
        if (p.billed_node_seconds as f64) + 1e-6 < p.busy_node_seconds {
            bad(format!(
                "{}: billed {} < busy {}",
                p.platform, p.billed_node_seconds, p.busy_node_seconds
            ));
        }
        if is_bad(p.utilization) || !(0.0..=1.0 + 1e-9).contains(&p.utilization) {
            bad(format!("{}: bad utilization {}", p.platform, p.utilization));
        }
    }

    // Guard-kill exactness: rebuild each killed job's limits from its
    // last logged placement — the guard is a pure function of the log.
    let price_of = |abbrev: &str| -> Option<f64> {
        pools
            .iter()
            .find(|p| p.platform.abbrev == abbrev)
            .map(|p| p.platform.price_per_node_hour)
    };
    let mut guard_checks = 0usize;
    for (idx, (spec, jr)) in specs.iter().zip(&report.job_reports).enumerate() {
        if jr.outcome != "guard_killed" {
            continue;
        }
        let Some(rec) = report.placements.iter().rev().find(|r| r.job == idx) else {
            bad(format!("job {}: guard-killed with no placement", jr.name));
            continue;
        };
        let Some(price) = price_of(&rec.platform) else {
            bad(format!("job {}: unknown platform {}", jr.name, rec.platform));
            continue;
        };
        let max_s = rec.predicted_step_s * spec.workload.steps as f64 * (1.0 + spec.tolerance);
        let max_d = (max_s / 3600.0 * rec.nodes as f64 * price).min(spec.budget_dollars);
        let wall_hit = jr.run_seconds >= max_s * (1.0 - 1e-9) - 1e-6;
        let dollars_hit = jr.cost_dollars >= max_d - 1e-6;
        if !wall_hit && !dollars_hit {
            bad(format!(
                "job {}: guard-killed below both limits ({}s < {max_s}s, ${} < ${max_d})",
                jr.name, jr.run_seconds, jr.cost_dollars
            ));
        }
        // A fault-free kill has exactly one guard lifetime, so the wall
        // limit is also an upper bound (a wall kill truncates its last
        // slice to land exactly on it; a dollar kill trips post-slice,
        // still inside the wall).
        if jr.faults == 0 && jr.run_seconds > max_s * (1.0 + 1e-9) + 1e-6 {
            bad(format!(
                "job {}: ran {}s past rebuilt wall limit {max_s}s",
                jr.name, jr.run_seconds
            ));
        }
        guard_checks += 1;
    }

    // Eq. 9: delivered fabric bytes reconcile exactly on clean cells.
    if let Some(expected) = eq9_expected {
        for (pool_idx, &want) in expected {
            let got = link_family_total(
                snapshot,
                &format!("fabric.pool{pool_idx}.link.delivered_bytes"),
            );
            if got != want {
                bad(format!(
                    "eq9 pool {pool_idx}: delivered {got} != expected {want}"
                ));
            }
        }
    }

    // Refinement statistics must be finite when present.
    for (name, v) in [
        ("mape_uncal", report.mape_first_quartile_uncalibrated_pct),
        ("mape_cal", report.mape_calibrated_pct),
        ("error_p50", report.error_p50_pct),
        ("error_p99", report.error_p99_pct),
    ] {
        if let Some(v) = v {
            if is_bad(v) || v < 0.0 {
                bad(format!("bad {name} {v}"));
            }
        }
    }
    let _ = config;
    guard_checks
}

// ---- sweep driver -----------------------------------------------------

/// Run every cell of `grid` and aggregate. Deterministic: the same grid
/// produces the same report, byte for byte, at any `RT_POOL_THREADS`.
pub fn run_sweep(grid: &SweepGrid) -> SweepReport {
    let mut workloads: BTreeMap<(String, u64), Arc<Workload>> = BTreeMap::new();
    let mut oracle: OracleCache = BTreeMap::new();
    let mut cells = Vec::new();
    let mut violations = Vec::new();
    let mut eq9_cells_checked = 0usize;
    let mut guard_exact_checks = 0usize;

    for &seed in &grid.seeds {
        for geom in &grid.geometries {
            for &mix in &grid.mixes {
                for &fault_rate in &grid.fault_rates {
                    for wk in &grid.workloads {
                        let key = cell_key(&geom.key, mix, seed, fault_rate, wk.key);
                        let pools = mix_pools(mix);
                        let config = cell_config(seed, fault_rate);
                        let specs = cell_jobs(geom, wk, &mut workloads);
                        let model_key = format!("{}:{}", geom.key, wk.key);

                        let mut campaign = Campaign::new(config.clone(), mix_pools(mix));
                        for job in specs.clone() {
                            campaign.submit(job);
                        }
                        let report = campaign.run();
                        let snapshot = campaign.obs_snapshot();

                        // Oracle regret for completed jobs, and the
                        // routed byte expectation for clean cells.
                        let mut regrets = Vec::new();
                        let mut eq9_expected: BTreeMap<usize, u64> = BTreeMap::new();
                        for (idx, (spec, jr)) in
                            specs.iter().zip(&report.job_reports).enumerate()
                        {
                            if jr.outcome == "rejected" {
                                continue;
                            }
                            let mut best: Option<f64> = None;
                            for (pool_idx, pool) in pools.iter().enumerate() {
                                for &ranks in &config.rank_options {
                                    let opt = oracle_option(
                                        &mut oracle,
                                        mix,
                                        pool_idx,
                                        pool,
                                        &model_key,
                                        ranks,
                                        &geom.grid,
                                        &wk.kernel,
                                    );
                                    if let Some(o) = opt {
                                        let seconds = o.step_nf_s * spec.true_steps() as f64;
                                        let cost =
                                            config.prices.cost(&pool.platform, o.nodes, seconds);
                                        best = Some(best.map_or(cost, |b: f64| b.min(cost)));
                                    }
                                }
                            }
                            if jr.outcome == "completed" {
                                match best {
                                    Some(oracle_cost) if oracle_cost > 0.0 => {
                                        let regret =
                                            100.0 * (jr.cost_dollars - oracle_cost) / oracle_cost;
                                        if is_bad(regret) {
                                            violations
                                                .push(format!("{key}: non-finite regret for {}", jr.name));
                                        } else {
                                            regrets.push(regret);
                                        }
                                    }
                                    _ => violations.push(format!(
                                        "{key}: no feasible oracle option for completed {}",
                                        jr.name
                                    )),
                                }
                            }
                            // Eq. 9 expectation: the job's routed flows ×
                            // its true steps, attributed to its pool.
                            if let Some(rec) =
                                report.placements.iter().rev().find(|r| r.job == idx)
                            {
                                if rec.topology != "scalar" {
                                    let Some(pool_idx) = pools
                                        .iter()
                                        .position(|p| p.platform.abbrev == rec.platform)
                                    else {
                                        violations.push(format!(
                                            "{key}: placement on unknown platform {}",
                                            rec.platform
                                        ));
                                        continue;
                                    };
                                    let opt = oracle_option(
                                        &mut oracle,
                                        mix,
                                        pool_idx,
                                        &pools[pool_idx],
                                        &model_key,
                                        rec.ranks,
                                        &geom.grid,
                                        &wk.kernel,
                                    );
                                    if let Some(o) = opt {
                                        *eq9_expected.entry(pool_idx).or_insert(0) +=
                                            o.flow_bytes_per_step * spec.true_steps();
                                    }
                                }
                            }
                        }

                        let clean = report.faults == 0
                            && report.guard_kills == 0
                            && report.failed == 0;
                        let has_routed = pools.iter().any(|p| p.topology.is_some());
                        let eq9_armed = clean && has_routed;
                        if eq9_armed {
                            eq9_cells_checked += 1;
                        }

                        guard_exact_checks += check_invariants(
                            &key,
                            &report,
                            &specs,
                            &pools,
                            &config,
                            &snapshot,
                            eq9_armed.then_some(&eq9_expected),
                            &mut violations,
                        );

                        // Cell-level aggregation inputs.
                        let abs_errors: Vec<f64> = report
                            .placements
                            .iter()
                            .filter_map(|r| r.abs_pct_error())
                            .collect();
                        let capacity: f64 = report
                            .platforms
                            .iter()
                            .map(|p| p.nodes_total as f64 * report.makespan_s)
                            .sum();
                        let busy: f64 =
                            report.platforms.iter().map(|p| p.busy_node_seconds).sum();
                        let utilization = if capacity > 0.0 { busy / capacity } else { 0.0 };
                        let delivered: u64 = (0..pools.len())
                            .map(|p| {
                                link_family_total(
                                    &snapshot,
                                    &format!("fabric.pool{p}.link.delivered_bytes"),
                                )
                            })
                            .sum();

                        cells.push(CellResult {
                            seed,
                            geometry: geom.key.clone(),
                            mix: mix.to_string(),
                            fault_rate,
                            workload: wk.key.to_string(),
                            jobs: report.jobs,
                            completed: report.completed,
                            guard_kills: report.guard_kills,
                            failed: report.failed,
                            rejected: report.rejected,
                            faults: report.faults,
                            makespan_s: report.makespan_s,
                            total_cost_dollars: report.total_cost_dollars,
                            utilization,
                            error_p50_pct: percentile(&abs_errors, 50.0),
                            error_p99_pct: percentile(&abs_errors, 99.0),
                            mean_regret_pct: mean(&regrets),
                            eq9_checked: eq9_armed,
                            eq9_delivered_bytes: delivered,
                            eq9_expected_bytes: eq9_expected.values().sum(),
                            abs_errors,
                            regrets,
                        });
                    }
                }
            }
        }
    }

    let by_axis = aggregate_axes(grid, &cells);
    let overall = aggregate("overall", "all", cells.iter().collect());
    SweepReport {
        cells,
        by_axis,
        overall,
        violations,
        eq9_cells_checked,
        guard_exact_checks,
    }
}

fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

fn aggregate(axis: &'static str, value: &str, cells: Vec<&CellResult>) -> AxisAggregate {
    let mut errors = Vec::new();
    let mut regrets = Vec::new();
    let mut jobs = 0usize;
    let mut completed = 0usize;
    let mut util_sum = 0.0;
    for c in &cells {
        errors.extend_from_slice(&c.abs_errors);
        regrets.extend_from_slice(&c.regrets);
        jobs += c.jobs;
        completed += c.completed;
        util_sum += c.utilization;
    }
    let n = cells.len();
    AxisAggregate {
        axis,
        value: value.to_string(),
        cells: n,
        jobs,
        completed,
        measured_placements: errors.len(),
        error_p50_pct: percentile(&errors, 50.0),
        error_p99_pct: percentile(&errors, 99.0),
        mean_regret_pct: mean(&regrets),
        mean_utilization: if n == 0 { 0.0 } else { util_sum / n as f64 },
    }
}

fn aggregate_axes(grid: &SweepGrid, cells: &[CellResult]) -> Vec<AxisAggregate> {
    let mut out = Vec::new();
    for &seed in &grid.seeds {
        let subset = cells.iter().filter(|c| c.seed == seed).collect();
        out.push(aggregate("seed", &seed.to_string(), subset));
    }
    for geom in &grid.geometries {
        let subset = cells.iter().filter(|c| c.geometry == geom.key).collect();
        out.push(aggregate("geometry", &geom.key, subset));
    }
    for &mix in &grid.mixes {
        let subset = cells.iter().filter(|c| c.mix == mix).collect();
        out.push(aggregate("mix", mix, subset));
    }
    for &rate in &grid.fault_rates {
        let subset = cells
            .iter()
            .filter(|c| c.fault_rate == rate)
            .collect();
        out.push(aggregate("fault_rate", &format!("{rate:.2}"), subset));
    }
    for wk in &grid.workloads {
        let subset = cells.iter().filter(|c| c.workload == wk.key).collect();
        out.push(aggregate("workload", wk.key, subset));
    }
    out
}

// ---- JSON -------------------------------------------------------------

fn opt_json(v: Option<f64>, decimals: usize) -> String {
    match v.filter(|v| v.is_finite()) {
        None => "null".to_string(),
        Some(v) => format!("{v:.decimals$}"),
    }
}

impl AxisAggregate {
    fn to_json(&self) -> String {
        format!(
            "{{\"axis\": \"{}\", \"value\": \"{}\", \"cells\": {}, \"jobs\": {}, \"completed\": {}, \"measured_placements\": {}, \"error_p50_pct\": {}, \"error_p99_pct\": {}, \"mean_regret_pct\": {}, \"mean_utilization\": {:.6}}}",
            self.axis,
            self.value,
            self.cells,
            self.jobs,
            self.completed,
            self.measured_placements,
            opt_json(self.error_p50_pct, 4),
            opt_json(self.error_p99_pct, 4),
            opt_json(self.mean_regret_pct, 4),
            self.mean_utilization,
        )
    }
}

impl SweepReport {
    /// Render the report as deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(16384);
        s.push_str("{\n");
        s.push_str("  \"report\": \"hemocloud_eval_campaign\",\n");
        s.push_str(&format!("  \"cells\": {},\n", self.cells.len()));
        s.push_str(&format!("  \"violations\": {},\n", self.violations.len()));
        s.push_str(&format!(
            "  \"eq9_cells_checked\": {},\n",
            self.eq9_cells_checked
        ));
        s.push_str(&format!(
            "  \"guard_exact_checks\": {},\n",
            self.guard_exact_checks
        ));
        s.push_str(&format!("  \"overall\": {},\n", self.overall.to_json()));
        s.push_str("  \"violation_list\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            let comma = if i + 1 < self.violations.len() { "," } else { "" };
            s.push_str(&format!("    \"{}\"{comma}\n", v.replace('"', "'")));
        }
        s.push_str("  ],\n");
        s.push_str("  \"by_axis\": [\n");
        for (i, a) in self.by_axis.iter().enumerate() {
            let comma = if i + 1 < self.by_axis.len() { "," } else { "" };
            s.push_str(&format!("    {}{comma}\n", a.to_json()));
        }
        s.push_str("  ],\n");
        s.push_str("  \"cell_results\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"cell\": \"{}\", \"jobs\": {}, \"completed\": {}, \"guard_kills\": {}, \"failed\": {}, \"rejected\": {}, \"faults\": {}, \"makespan_s\": {:.3}, \"total_cost_dollars\": {:.6}, \"utilization\": {:.6}, \"error_p50_pct\": {}, \"error_p99_pct\": {}, \"mean_regret_pct\": {}, \"eq9_checked\": {}, \"eq9_delivered_bytes\": {}, \"eq9_expected_bytes\": {}}}{comma}\n",
                c.key(),
                c.jobs,
                c.completed,
                c.guard_kills,
                c.failed,
                c.rejected,
                c.faults,
                c.makespan_s,
                c.total_cost_dollars,
                c.utilization,
                opt_json(c.error_p50_pct, 4),
                opt_json(c.error_p99_pct, 4),
                opt_json(c.mean_regret_pct, 4),
                c.eq9_checked,
                c.eq9_delivered_bytes,
                c.eq9_expected_bytes,
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }

    /// [`SweepReport::to_json`] with a leading `"provenance"` object of
    /// pre-escaped `(key, value)` string fields.
    pub fn to_json_with_provenance(&self, fields: &[(&str, &str)]) -> String {
        let base = self.to_json();
        if fields.is_empty() {
            return base;
        }
        let head_end = base.find('\n').map_or(0, |i| i + 1);
        let mut s = String::with_capacity(base.len() + 128);
        s.push_str(&base[..head_end]);
        s.push_str("  \"provenance\": {");
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{k}\": \"{v}\""));
        }
        s.push_str("},\n");
        s.push_str(&base[head_end..]);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro_grid(mix: &'static str, fault_rate: f64, wk_idx: usize) -> SweepGrid {
        SweepGrid {
            seeds: vec![42],
            geometries: vec![geometry_case("cyl8")],
            mixes: vec![mix],
            fault_rates: vec![fault_rate],
            workloads: vec![workload_cases().remove(wk_idx)],
        }
    }

    #[test]
    fn clean_routed_cell_reconciles_and_repeats() {
        let grid = micro_grid("spread", 0.0, 0);
        let a = run_sweep(&grid);
        assert_eq!(a.cells.len(), 1);
        assert!(a.violations.is_empty(), "violations: {:?}", a.violations);
        let cell = &a.cells[0];
        assert_eq!(cell.completed, cell.jobs, "honest fault-free cell completes");
        assert!(cell.eq9_checked, "routed fault-free cell must arm Eq. 9");
        assert!(cell.eq9_delivered_bytes > 0);
        assert_eq!(cell.eq9_delivered_bytes, cell.eq9_expected_bytes);
        assert!(cell.error_p50_pct.is_some());
        assert!(cell.mean_regret_pct.is_some());
        // Determinism: a second run renders byte-identical JSON.
        let b = run_sweep(&grid);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn stress_cell_kills_the_runaway_and_rejects_the_doomed() {
        let grid = micro_grid("scalar", 0.25, 1);
        let report = run_sweep(&grid);
        assert!(
            report.violations.is_empty(),
            "violations: {:?}",
            report.violations
        );
        let cell = &report.cells[0];
        assert_eq!(cell.rejected, 1, "doomed-budget job is rejected");
        assert!(cell.guard_kills >= 1, "runaway is guard-killed");
        assert!(report.guard_exact_checks >= 1);
        assert!(!cell.eq9_checked, "scalar mix has no fabric to reconcile");
        let json = report.to_json();
        let lower = json.to_lowercase();
        assert!(!lower.contains("nan") && !lower.contains("inf"), "{json}");
    }
}

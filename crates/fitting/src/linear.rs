//! Ordinary least-squares fits for straight lines.
//!
//! Used for the PingPong communication model (paper Eq. 12): communication
//! time is modeled as `t(m) = m/b + l`, a line in the message size `m` with
//! slope `1/b` (inverse bandwidth) and intercept `l` (latency). The paper
//! fits this two ways — a free-intercept ordinary fit, and a fit where the
//! latency is *pinned* to the measured zero-byte time ("latency is the
//! communication time for 0 bytes"), with only the slope estimated from the
//! remaining points. Both are provided here.

/// Result of fitting `y = slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Sum of squared residuals over the input points.
    pub sse: f64,
}

impl LineFit {
    /// Evaluate the fitted line at `x`.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// True iff every sample is finite. A single NaN would otherwise poison
/// the normal-equation sums *without* tripping the `sxx == 0` degeneracy
/// check (`NaN != 0`), yielding a `Some(LineFit)` full of NaNs.
pub(crate) fn all_finite(vs: &[f64]) -> bool {
    vs.iter().all(|v| v.is_finite())
}

/// Ordinary least-squares fit of `y = a*x + b`.
///
/// Returns `None` when fewer than two points are supplied, when any
/// sample is non-finite, or when all `x` values coincide (the slope is
/// then unidentifiable).
///
/// # Panics
/// Panics if `xs` and `ys` have different lengths.
pub fn fit_line(xs: &[f64], ys: &[f64]) -> Option<LineFit> {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    let n = xs.len();
    if n < 2 || !all_finite(xs) || !all_finite(ys) {
        return None;
    }
    let nf = n as f64;
    let mean_x = xs.iter().sum::<f64>() / nf;
    let mean_y = ys.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        sxx += dx * dx;
        sxy += dx * (y - mean_y);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let sse = xs
        .iter()
        .zip(ys)
        .map(|(&x, &y)| {
            let r = y - (slope * x + intercept);
            r * r
        })
        .sum();
    Some(LineFit {
        slope,
        intercept,
        sse,
    })
}

/// Least-squares fit of `y = a*x + b` with the intercept `b` held fixed.
///
/// This implements the paper's convention of defining latency as the
/// measured zero-byte communication time: the intercept is pinned and only
/// the slope minimizes the SSE. Returns `None` if no point has `x != 0`,
/// or if any sample (or the pinned intercept) is non-finite.
pub fn fit_line_fixed_intercept(xs: &[f64], ys: &[f64], intercept: f64) -> Option<LineFit> {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    if !intercept.is_finite() || !all_finite(xs) || !all_finite(ys) {
        return None;
    }
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += x * x;
        sxy += x * (y - intercept);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let sse = xs
        .iter()
        .zip(ys)
        .map(|(&x, &y)| {
            let r = y - (slope * x + intercept);
            r * r
        })
        .sum();
    Some(LineFit {
        slope,
        intercept,
        sse,
    })
}

/// Least-squares fit of the proportional model `y = a*x` (zero intercept).
pub fn fit_proportional(xs: &[f64], ys: &[f64]) -> Option<LineFit> {
    fit_line_fixed_intercept(xs, ys, 0.0)
}

/// Streaming proportional fit: the running-sum form of
/// [`fit_proportional`], O(1) per observation and O(1) per slope query.
///
/// Feeding the same samples in the same order yields a slope **bitwise
/// identical** to `fit_proportional` over the collected vectors, because
/// both accumulate `sxx += x·x` and `sxy += x·y` in input order — so a
/// caller (e.g. a campaign calibrator recording millions of slices) can
/// switch from refit-per-observation to this accumulator without
/// changing a single reported number.
///
/// Degeneracy mirrors the batch fit: the slope is `None` while no sample
/// with `x != 0` has arrived, and `None` forever once any non-finite
/// sample is pushed (a NaN would silently poison the sums otherwise).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProportionalAccumulator {
    n: u64,
    sxx: f64,
    sxy: f64,
    poisoned: bool,
}

impl ProportionalAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one `(x, y)` sample.
    pub fn push(&mut self, x: f64, y: f64) {
        if !(x.is_finite() && y.is_finite()) {
            self.poisoned = true;
        }
        self.n += 1;
        self.sxx += x * x;
        self.sxy += x * y;
    }

    /// Samples pushed so far (including any non-finite ones).
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether no samples have been pushed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The fitted slope of `y = a·x`, or `None` when degenerate (no
    /// samples, all `x` zero, or a non-finite sample was pushed).
    pub fn slope(&self) -> Option<f64> {
        if self.poisoned || self.sxx == 0.0 {
            None
        } else {
            Some(self.sxy / self.sxx)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn exact_line_is_recovered() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.5 * x - 2.0).collect();
        let fit = fit_line(&xs, &ys).unwrap();
        assert!(close(fit.slope, 3.5, 1e-12));
        assert!(close(fit.intercept, -2.0, 1e-12));
        assert!(fit.sse < 1e-18);
    }

    #[test]
    fn noisy_line_slope_is_near_truth() {
        // Deterministic pseudo-noise, zero-mean by symmetric construction.
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 2.0 * x + 1.0 + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let fit = fit_line(&xs, &ys).unwrap();
        assert!(close(fit.slope, 2.0, 1e-3));
        assert!(close(fit.intercept, 1.0, 1e-1));
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(fit_line(&[], &[]).is_none());
        assert!(fit_line(&[1.0], &[2.0]).is_none());
        assert!(fit_line(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn non_finite_samples_return_none() {
        // Regression: a NaN x made sxx NaN, which passed the `sxx == 0`
        // degeneracy check and returned Some(LineFit) full of NaNs.
        assert!(fit_line(&[0.0, 1.0, f64::NAN], &[0.0, 1.0, 2.0]).is_none());
        assert!(fit_line(&[0.0, 1.0, 2.0], &[0.0, f64::NAN, 2.0]).is_none());
        assert!(fit_line(&[0.0, 1.0, f64::INFINITY], &[0.0, 1.0, 2.0]).is_none());
        assert!(fit_line_fixed_intercept(&[1.0, f64::NAN], &[1.0, 2.0], 0.0).is_none());
        assert!(fit_line_fixed_intercept(&[1.0, 2.0], &[f64::NAN, 2.0], 0.0).is_none());
        assert!(fit_line_fixed_intercept(&[1.0, 2.0], &[1.0, 2.0], f64::NAN).is_none());
        assert!(fit_proportional(&[1.0, 2.0], &[2.0, f64::NEG_INFINITY]).is_none());
    }

    #[test]
    fn fixed_intercept_pins_latency() {
        let xs = [0.0, 1.0, 2.0, 4.0];
        let ys = [5.0, 7.0, 9.0, 13.0]; // y = 2x + 5
        let fit = fit_line_fixed_intercept(&xs, &ys, 5.0).unwrap();
        assert!(close(fit.slope, 2.0, 1e-12));
        assert_eq!(fit.intercept, 5.0);
    }

    #[test]
    fn pinned_intercept_underestimates_large_messages_on_convex_data() {
        // Convex (super-linear) timing data: pinning latency to the
        // zero-byte time underpredicts the largest message, but is exact at
        // zero bytes — precisely the trade-off the paper describes for its
        // PingPong fits.
        let xs = [0.0, 1.0, 2.0, 4.0, 8.0];
        let ys: Vec<f64> = xs.iter().map(|&x| 1.0 + x + 0.05 * x * x).collect();
        let pinned = fit_line_fixed_intercept(&xs, &ys, ys[0]).unwrap();
        assert!(pinned.eval(8.0) < *ys.last().unwrap());
        assert_eq!(pinned.eval(0.0), ys[0]);
        // The free fit trades zero-byte accuracy for overall SSE.
        let free = fit_line(&xs, &ys).unwrap();
        assert!(free.sse <= pinned.sse);
    }

    #[test]
    fn proportional_fit() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        let fit = fit_proportional(&xs, &ys).unwrap();
        assert!(close(fit.slope, 2.0, 1e-12));
        assert_eq!(fit.intercept, 0.0);
    }

    #[test]
    fn proportional_fit_all_zero_x_is_none() {
        assert!(fit_proportional(&[0.0, 0.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = fit_line(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn accumulator_matches_batch_fit_bitwise() {
        // Pseudo-random-ish but deterministic samples; the streaming slope
        // must equal the batch slope to the last bit after every push,
        // because both accumulate sxx/sxy in the same order.
        let mut acc = ProportionalAccumulator::new();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut v = 0.123_f64;
        for i in 0..257 {
            v = (v * 1.618_033_988 + 0.271_828).fract();
            let x = 1e-3 + v * (i as f64 + 1.0);
            let y = x * (1.3 + v * 0.4);
            xs.push(x);
            ys.push(y);
            acc.push(x, y);
            let batch = fit_proportional(&xs, &ys).unwrap().slope;
            assert_eq!(
                acc.slope().unwrap().to_bits(),
                batch.to_bits(),
                "diverged at sample {i}"
            );
        }
        assert_eq!(acc.len(), 257);
    }

    #[test]
    fn accumulator_degeneracies_match_batch_fit() {
        // Empty and all-zero-x: no slope, like fit_proportional's None.
        let mut acc = ProportionalAccumulator::new();
        assert!(acc.is_empty());
        assert!(acc.slope().is_none());
        acc.push(0.0, 1.0);
        acc.push(0.0, 2.0);
        assert!(acc.slope().is_none(), "all-zero x is unidentifiable");
        // A non-finite sample poisons the accumulator permanently — the
        // batch fit would return None for any vector containing it.
        let mut poisoned = ProportionalAccumulator::new();
        poisoned.push(1.0, 2.0);
        assert!(poisoned.slope().is_some());
        poisoned.push(f64::NAN, 1.0);
        assert!(poisoned.slope().is_none());
        poisoned.push(3.0, 6.0);
        assert!(poisoned.slope().is_none(), "poisoning is permanent");
        assert_eq!(poisoned.len(), 3);
    }
}

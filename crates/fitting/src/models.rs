//! Fits for the paper's empirical decomposition models.
//!
//! * **Load imbalance** (Eq. 11): `z(n) = c1 * ln(c2 * (n - 1) + 1) + 1`,
//!   the deviation from perfect load balance as a function of task count,
//!   fit against measured per-task byte-count maxima.
//! * **Message events** (Eq. 15):
//!   `E(n_tasks, n_nodes) = 4 * log2((k1 / n_nodes + k2) * (n_tasks - n_nodes) + 1)`,
//!   the maximum number of communication events a task participates in.
//!
//! Both are fit by SSE minimization with Nelder-Mead, matching the paper's
//! "empirical parameters derived from fits ... to prior HARVEY
//! decomposition data".

use crate::nelder_mead::{nelder_mead, NelderMeadOptions};

/// Parameters of the load-imbalance model `z(n) = c1*ln(c2*(n-1)+1) + 1`
/// (paper Eq. 11).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImbalanceModel {
    /// Logarithm amplitude.
    pub c1: f64,
    /// Logarithm rate.
    pub c2: f64,
    /// SSE of the fit over the training data.
    pub sse: f64,
}

impl ImbalanceModel {
    /// Evaluate `z` at a task count. Always at least 1 for `n >= 1` and
    /// non-negative parameters; a serial run has `z = 1` by construction.
    #[inline]
    pub fn eval(&self, n_tasks: usize) -> f64 {
        let n = n_tasks.max(1) as f64;
        self.c1 * (self.c2 * (n - 1.0) + 1.0).ln() + 1.0
    }

    /// A model representing perfect load balance (`z = 1` everywhere).
    pub fn perfect() -> Self {
        Self {
            c1: 0.0,
            c2: 0.0,
            sse: 0.0,
        }
    }
}

/// Fit the imbalance model to `(task count, measured z)` pairs.
///
/// Measured `z` values come from decomposition sweeps: the maximum per-task
/// byte count divided by the perfectly balanced share (paper Eq. 10).
/// Parameters are constrained non-negative (a negative rate or amplitude is
/// meaningless for imbalance). Returns `None` for fewer than two points
/// or any non-finite measurement (a NaN `z` would make every candidate's
/// SSE non-finite and the minimization meaningless).
pub fn fit_imbalance(task_counts: &[usize], z_values: &[f64]) -> Option<ImbalanceModel> {
    assert_eq!(task_counts.len(), z_values.len(), "length mismatch");
    if task_counts.len() < 2 || !z_values.iter().all(|z| z.is_finite()) {
        return None;
    }
    let objective = |p: &[f64]| -> f64 {
        let (c1, c2) = (p[0], p[1]);
        if c1 < 0.0 || c2 < 0.0 {
            return f64::INFINITY;
        }
        task_counts
            .iter()
            .zip(z_values)
            .map(|(&n, &z)| {
                let pred = c1 * (c2 * (n.max(1) as f64 - 1.0) + 1.0).ln() + 1.0;
                let r = pred - z;
                r * r
            })
            .sum()
    };
    // Multi-start: the log model's SSE surface has a shallow valley.
    let starts = [[0.05, 0.1], [0.2, 0.01], [0.5, 1.0], [0.01, 5.0]];
    let best = starts
        .iter()
        .map(|s| nelder_mead(objective, s, NelderMeadOptions::default()))
        .min_by(|a, b| a.fx.total_cmp(&b.fx))?;
    Some(ImbalanceModel {
        c1: best.x[0],
        c2: best.x[1],
        sse: best.fx,
    })
}

/// Parameters of the message-event model (paper Eq. 15).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventModel {
    /// Per-node-inverse coefficient.
    pub k1: f64,
    /// Constant coefficient.
    pub k2: f64,
    /// SSE of the fit over the training data.
    pub sse: f64,
}

impl EventModel {
    /// Evaluate the maximum event count for `n_tasks` tasks spread over
    /// `n_nodes` nodes. Returns 0 when all tasks fit on a single... node
    /// count >= task count (no internodal messages).
    #[inline]
    pub fn eval(&self, n_tasks: usize, n_nodes: usize) -> f64 {
        let nt = n_tasks as f64;
        let nn = (n_nodes.max(1)) as f64;
        if nt <= nn {
            return 0.0;
        }
        let inner = (self.k1 / nn + self.k2) * (nt - nn) + 1.0;
        if inner <= 1.0 {
            0.0
        } else {
            4.0 * inner.log2()
        }
    }
}

/// Fit the event model to `(n_tasks, n_nodes, measured events)` triples.
///
/// Measured event counts come from counting the halo messages of the most
/// connected task in real decompositions. Returns `None` for fewer than two
/// samples or any non-finite measured event count.
pub fn fit_events(samples: &[(usize, usize, f64)]) -> Option<EventModel> {
    if samples.len() < 2 || !samples.iter().all(|&(_, _, e)| e.is_finite()) {
        return None;
    }
    let objective = |p: &[f64]| -> f64 {
        let (k1, k2) = (p[0], p[1]);
        if k2 < 0.0 {
            return f64::INFINITY;
        }
        samples
            .iter()
            .map(|&(nt, nn, events)| {
                let m = EventModel { k1, k2, sse: 0.0 };
                let r = m.eval(nt, nn) - events;
                r * r
            })
            .sum()
    };
    let starts = [[1.0, 0.1], [0.1, 1.0], [5.0, 0.01], [0.0, 0.5]];
    let best = starts
        .iter()
        .map(|s| nelder_mead(objective, s, NelderMeadOptions::default()))
        .min_by(|a, b| a.fx.total_cmp(&b.fx))?;
    Some(EventModel {
        k1: best.x[0],
        k2: best.x[1],
        sse: best.fx,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_model_is_one_for_serial() {
        let m = ImbalanceModel {
            c1: 0.3,
            c2: 0.5,
            sse: 0.0,
        };
        assert!((m.eval(1) - 1.0).abs() < 1e-12);
        assert!((m.eval(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_model_is_monotone_in_tasks() {
        let m = ImbalanceModel {
            c1: 0.3,
            c2: 0.5,
            sse: 0.0,
        };
        let mut prev = m.eval(1);
        for n in [2, 4, 8, 64, 512, 4096] {
            let z = m.eval(n);
            assert!(z >= prev, "z({n}) = {z} < {prev}");
            prev = z;
        }
    }

    #[test]
    fn fit_imbalance_recovers_synthetic_truth() {
        let truth = ImbalanceModel {
            c1: 0.25,
            c2: 0.8,
            sse: 0.0,
        };
        let ns: Vec<usize> = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512].to_vec();
        let zs: Vec<f64> = ns.iter().map(|&n| truth.eval(n)).collect();
        let fit = fit_imbalance(&ns, &zs).unwrap();
        for &n in &ns {
            let err = (fit.eval(n) - truth.eval(n)).abs() / truth.eval(n);
            assert!(err < 0.02, "n={n}: fit={} truth={}", fit.eval(n), truth.eval(n));
        }
    }

    #[test]
    fn fit_imbalance_rejects_tiny_input() {
        assert!(fit_imbalance(&[4], &[1.2]).is_none());
    }

    #[test]
    fn non_finite_measurements_return_none() {
        // Regression: a NaN measurement made every candidate's SSE NaN;
        // Nelder-Mead then "converged" to whatever start it was given and
        // the fit came back Some with garbage parameters.
        assert!(fit_imbalance(&[1, 2, 4], &[1.0, f64::NAN, 1.3]).is_none());
        assert!(fit_imbalance(&[1, 2], &[1.0, f64::INFINITY]).is_none());
        assert!(fit_events(&[(8, 2, 4.0), (16, 2, f64::NAN)]).is_none());
        assert!(fit_events(&[(8, 2, f64::NEG_INFINITY), (16, 2, 5.0)]).is_none());
    }

    #[test]
    fn perfect_balance_model() {
        let m = ImbalanceModel::perfect();
        for n in [1, 7, 100] {
            assert_eq!(m.eval(n), 1.0);
        }
    }

    #[test]
    fn event_model_zero_without_internodal_tasks() {
        let m = EventModel {
            k1: 1.0,
            k2: 0.5,
            sse: 0.0,
        };
        assert_eq!(m.eval(4, 4), 0.0);
        assert_eq!(m.eval(2, 8), 0.0);
    }

    #[test]
    fn event_model_grows_with_tasks() {
        let m = EventModel {
            k1: 1.0,
            k2: 0.5,
            sse: 0.0,
        };
        assert!(m.eval(64, 4) > m.eval(16, 4));
    }

    #[test]
    fn fit_events_recovers_synthetic_truth() {
        let truth = EventModel {
            k1: 2.0,
            k2: 0.3,
            sse: 0.0,
        };
        let samples: Vec<(usize, usize, f64)> = [
            (8usize, 2usize),
            (16, 2),
            (32, 2),
            (16, 4),
            (32, 4),
            (64, 4),
            (128, 4),
            (64, 8),
            (256, 8),
        ]
        .iter()
        .map(|&(nt, nn)| (nt, nn, truth.eval(nt, nn)))
        .collect();
        let fit = fit_events(&samples).unwrap();
        for &(nt, nn, ev) in &samples {
            let err = (fit.eval(nt, nn) - ev).abs();
            assert!(err < 0.25, "({nt},{nn}): fit={} truth={ev}", fit.eval(nt, nn));
        }
    }
}

//! Curve-fitting toolkit for the hemocloud performance-modeling pipeline.
//!
//! The paper's models are built from three kinds of fits:
//!
//! * **Linear least squares** ([`linear`]) — the PingPong communication
//!   model `t = m/b + l` (paper Eq. 12) is a line in message size whose
//!   slope is `1/b` and whose intercept is the latency `l`.
//! * **Continuous two-line fits** ([`two_line`]) — node memory bandwidth
//!   vs. thread count follows two regimes (core-limited, then
//!   subsystem-limited) joined at a breakpoint `a3` (paper Eq. 8).
//! * **General nonlinear fits** ([`mod@nelder_mead`]) — the load-imbalance
//!   model `z(n)` (Eq. 11) and the message-event model (Eq. 15) have no
//!   closed-form estimator, so they are fit with a derivative-free
//!   Nelder-Mead simplex search.
//!
//! [`metrics`] provides the goodness-of-fit measures (SSE, R², MAPE) used
//! throughout the evaluation and by the iterative-refinement loop.

pub mod linear;
pub mod metrics;
pub mod models;
pub mod nelder_mead;
pub mod two_line;

pub use linear::{fit_line, fit_line_fixed_intercept, fit_proportional, LineFit};
pub use models::{fit_events, fit_imbalance, EventModel, ImbalanceModel};
pub use metrics::{mape, mean, r_squared, rmse, sse, std_dev};
pub use nelder_mead::{nelder_mead, NelderMeadOptions, NelderMeadResult};
pub use two_line::{fit_two_line, TwoLineFit};

//! The continuous two-line bandwidth model of paper Eq. 8.
//!
//! Node memory bandwidth over `n` active cores follows two regimes:
//!
//! ```text
//! B(n) = a1 * n                      for n <  a3   (core-limited)
//! B(n) = a2 * n + a3 * (a1 - a2)     for n >= a3   (subsystem-limited)
//! ```
//!
//! The two branches meet at `n = a3` (both evaluate to `a1 * a3`), so the
//! model is continuous. The fit minimizes SSE over `(a1, a2, a3)`: for a
//! *fixed* breakpoint the two slopes have a closed-form least-squares
//! solution, so we search the breakpoint over a fine grid and solve the
//! inner problem exactly — more robust than a joint 3-parameter simplex.

use crate::linear::fit_proportional;

/// Fitted parameters of the two-line model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoLineFit {
    /// Slope of the core-limited regime (`MB/s` per thread).
    pub a1: f64,
    /// Slope of the subsystem-limited regime (`MB/s` per thread).
    pub a2: f64,
    /// Breakpoint between the regimes, in threads (may be fractional).
    pub a3: f64,
    /// Sum of squared errors at the optimum.
    pub sse: f64,
}

impl TwoLineFit {
    /// Evaluate the fitted bandwidth model at a (possibly fractional) thread
    /// count `n`.
    #[inline]
    pub fn eval(&self, n: f64) -> f64 {
        if n < self.a3 {
            self.a1 * n
        } else {
            self.a2 * n + self.a3 * (self.a1 - self.a2)
        }
    }

    /// Bandwidth at the saturation knee, `a1 * a3`.
    #[inline]
    pub fn knee_bandwidth(&self) -> f64 {
        self.a1 * self.a3
    }
}

fn sse_for_breakpoint(ns: &[f64], bs: &[f64], a1: f64, a2: f64, a3: f64) -> f64 {
    ns.iter()
        .zip(bs)
        .map(|(&n, &b)| {
            let pred = if n < a3 {
                a1 * n
            } else {
                a2 * n + a3 * (a1 - a2)
            };
            let r = pred - b;
            r * r
        })
        .sum()
}

/// Closed-form least squares for the two slopes given a fixed breakpoint.
///
/// With `a3` fixed the model is linear in `(a1, a2)`:
/// below the knee the basis is `(n, 0)`, at or above it is `(a3, n - a3)`.
fn solve_slopes(ns: &[f64], bs: &[f64], a3: f64) -> Option<(f64, f64)> {
    // Normal equations for a 2-parameter linear model.
    let (mut s11, mut s12, mut s22, mut s1y, mut s2y) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for (&n, &b) in ns.iter().zip(bs) {
        let (phi1, phi2) = if n < a3 { (n, 0.0) } else { (a3, n - a3) };
        s11 += phi1 * phi1;
        s12 += phi1 * phi2;
        s22 += phi2 * phi2;
        s1y += phi1 * b;
        s2y += phi2 * b;
    }
    let det = s11 * s22 - s12 * s12;
    if det.abs() < 1e-12 * (s11 * s22).max(1.0) {
        // Degenerate: all points on one side of the knee. Fit a single
        // proportional line for whichever side has data.
        if s22 == 0.0 && s11 > 0.0 {
            let a1 = s1y / s11;
            return Some((a1, a1));
        }
        return None;
    }
    let a1 = (s1y * s22 - s2y * s12) / det;
    let a2 = (s2y * s11 - s1y * s12) / det;
    Some((a1, a2))
}

/// Fit the two-line model to `(threads, bandwidth)` measurements.
///
/// The breakpoint is searched over a fine grid spanning the measured thread
/// range; for each candidate the slopes are solved exactly. Returns `None`
/// for fewer than three points (the model has three parameters).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn fit_two_line(threads: &[f64], bandwidths: &[f64]) -> Option<TwoLineFit> {
    assert_eq!(threads.len(), bandwidths.len(), "length mismatch");
    if threads.len() < 3 {
        return None;
    }
    // NaN samples would slip through the min/max fold below (`f64::min`
    // ignores NaN) and poison every slope solve, so refuse them outright.
    if !crate::linear::all_finite(threads) || !crate::linear::all_finite(bandwidths) {
        return None;
    }
    let min_n = threads.iter().cloned().fold(f64::INFINITY, f64::min);
    let max_n = threads.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !(min_n.is_finite() && max_n.is_finite()) || min_n == max_n {
        return None;
    }

    // Grid over candidate breakpoints. Sub-thread resolution matters: the
    // paper reports fractional knees (e.g. a3 = 6.39 for TRC).
    let steps = 400usize;
    let mut best: Option<TwoLineFit> = None;
    for i in 0..=steps {
        let a3 = min_n + (max_n - min_n) * (i as f64) / (steps as f64);
        if a3 <= 0.0 {
            continue;
        }
        let Some((a1, a2)) = solve_slopes(threads, bandwidths, a3) else {
            continue;
        };
        let sse = sse_for_breakpoint(threads, bandwidths, a1, a2, a3);
        if best.as_ref().is_none_or(|b| sse < b.sse) {
            best = Some(TwoLineFit { a1, a2, a3, sse });
        }
    }

    // Refine the winning breakpoint with a local golden-section pass.
    if let Some(b) = best {
        let span = (max_n - min_n) / steps as f64;
        let (mut lo, mut hi) = ((b.a3 - span).max(min_n), (b.a3 + span).min(max_n));
        for _ in 0..40 {
            let m1 = lo + (hi - lo) * 0.382;
            let m2 = lo + (hi - lo) * 0.618;
            let f = |a3: f64| {
                solve_slopes(threads, bandwidths, a3)
                    .map(|(a1, a2)| sse_for_breakpoint(threads, bandwidths, a1, a2, a3))
                    .unwrap_or(f64::INFINITY)
            };
            if f(m1) < f(m2) {
                hi = m2;
            } else {
                lo = m1;
            }
        }
        let a3 = 0.5 * (lo + hi);
        if let Some((a1, a2)) = solve_slopes(threads, bandwidths, a3) {
            let sse = sse_for_breakpoint(threads, bandwidths, a1, a2, a3);
            if sse < b.sse {
                return Some(TwoLineFit { a1, a2, a3, sse });
            }
        }
        return Some(b);
    }

    // Fallback: a single proportional line (degenerate but defined).
    fit_proportional(threads, bandwidths).map(|l| TwoLineFit {
        a1: l.slope,
        a2: l.slope,
        a3: max_n,
        sse: l.sse,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(a1: f64, a2: f64, a3: f64, max_threads: usize) -> (Vec<f64>, Vec<f64>) {
        let ns: Vec<f64> = (1..=max_threads).map(|n| n as f64).collect();
        let truth = TwoLineFit {
            a1,
            a2,
            a3,
            sse: 0.0,
        };
        let bs: Vec<f64> = ns.iter().map(|&n| truth.eval(n)).collect();
        (ns, bs)
    }

    #[test]
    fn model_is_continuous_at_breakpoint() {
        let fit = TwoLineFit {
            a1: 7000.0,
            a2: 1200.0,
            a3: 9.0,
            sse: 0.0,
        };
        let below = fit.eval(fit.a3 - 1e-9);
        let at = fit.eval(fit.a3);
        assert!((below - at).abs() < 1e-3);
        assert!((fit.knee_bandwidth() - 63_000.0).abs() < 1e-9);
    }

    #[test]
    fn recovers_exact_two_line_data() {
        let (ns, bs) = synth(6768.0, 369.0, 6.39, 40);
        let fit = fit_two_line(&ns, &bs).unwrap();
        assert!((fit.a1 - 6768.0).abs() / 6768.0 < 0.02, "a1={}", fit.a1);
        assert!((fit.a2 - 369.0).abs() / 369.0 < 0.05, "a2={}", fit.a2);
        assert!((fit.a3 - 6.39).abs() < 0.6, "a3={}", fit.a3);
    }

    #[test]
    fn recovers_negative_second_slope() {
        // CSP-1 and the hyperthreaded CSP-2 instance have a2 < 0: bandwidth
        // *declines* past the knee.
        let (ns, bs) = synth(18092.0, -62.8, 4.15, 16);
        let fit = fit_two_line(&ns, &bs).unwrap();
        assert!(fit.a2 < 0.0, "a2={}", fit.a2);
        assert!((fit.a1 - 18092.0).abs() / 18092.0 < 0.05);
    }

    #[test]
    fn tolerates_noise() {
        let (ns, bs) = synth(7790.0, 1264.0, 9.0, 36);
        let noisy: Vec<f64> = bs
            .iter()
            .enumerate()
            .map(|(i, &b)| b * (1.0 + if i % 2 == 0 { 0.01 } else { -0.01 }))
            .collect();
        let fit = fit_two_line(&ns, &noisy).unwrap();
        assert!((fit.a1 - 7790.0).abs() / 7790.0 < 0.1);
        assert!((fit.a3 - 9.0).abs() < 2.0);
    }

    #[test]
    fn too_few_points_is_none() {
        assert!(fit_two_line(&[1.0, 2.0], &[10.0, 20.0]).is_none());
    }

    #[test]
    fn non_finite_samples_return_none() {
        let ns: Vec<f64> = (1..=10).map(|n| n as f64).collect();
        let bs: Vec<f64> = ns.iter().map(|&n| 100.0 * n).collect();
        // NaN in the thread axis used to slip past the range check (the
        // min/max folds skip NaN) and poison every slope solve.
        let mut bad_ns = ns.clone();
        bad_ns[3] = f64::NAN;
        assert!(fit_two_line(&bad_ns, &bs).is_none());
        let mut bad_bs = bs.clone();
        bad_bs[7] = f64::NAN;
        assert!(fit_two_line(&ns, &bad_bs).is_none());
        assert!(fit_two_line(&[1.0, 2.0, f64::INFINITY], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn coincident_thread_counts_return_none() {
        // All-equal x: the breakpoint range is empty and no slope is
        // identifiable.
        assert!(fit_two_line(&[4.0, 4.0, 4.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn single_regime_data_degenerates_gracefully() {
        // Pure line through origin: both slopes should match, knee anywhere.
        let ns: Vec<f64> = (1..=10).map(|n| n as f64).collect();
        let bs: Vec<f64> = ns.iter().map(|&n| 100.0 * n).collect();
        let fit = fit_two_line(&ns, &bs).unwrap();
        for &n in &ns {
            assert!((fit.eval(n) - 100.0 * n).abs() < 1.0, "n={n}");
        }
    }

    #[test]
    fn eval_matches_paper_full_node_bandwidths() {
        // Table III TRC parameters must reproduce Table II's ~55,625 MB/s
        // at the full 40-core node.
        let trc = TwoLineFit {
            a1: 6768.24,
            a2: 369.16,
            a3: 6.39,
            sse: 0.0,
        };
        let b40 = trc.eval(40.0);
        assert!((b40 - 55_625.0).abs() < 150.0, "B(40)={b40}");
    }
}

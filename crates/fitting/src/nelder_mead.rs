//! Derivative-free Nelder-Mead simplex minimization.
//!
//! The load-imbalance model `z(n) = c1*ln(c2*(n-1) + 1) + 1` (paper Eq. 11)
//! and the message-event model (Eq. 15) are nonlinear in their parameters
//! and have no closed-form least-squares estimator, so the paper fits them
//! by direct SSE minimization. This module provides a standard Nelder-Mead
//! implementation with adaptive restart support sufficient for these
//! low-dimensional (2-parameter) problems.

/// Options controlling the simplex search.
#[derive(Debug, Clone, Copy)]
pub struct NelderMeadOptions {
    /// Maximum number of objective evaluations.
    pub max_evals: usize,
    /// Terminate when the simplex's objective spread falls below this.
    pub f_tol: f64,
    /// Terminate when the simplex's parameter spread falls below this.
    pub x_tol: f64,
    /// Relative size of the initial simplex around the starting point.
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        Self {
            max_evals: 4000,
            f_tol: 1e-12,
            x_tol: 1e-10,
            initial_step: 0.1,
        }
    }
}

/// Result of a Nelder-Mead minimization.
#[derive(Debug, Clone)]
pub struct NelderMeadResult {
    /// Best parameter vector found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub fx: f64,
    /// Number of objective evaluations used.
    pub evals: usize,
    /// Whether a tolerance criterion (rather than the eval cap) stopped the
    /// search.
    pub converged: bool,
}

/// Minimize `f` starting from `x0` with the standard Nelder-Mead moves
/// (reflection 1, expansion 2, contraction 0.5, shrink 0.5).
///
/// # Panics
/// Panics if `x0` is empty.
pub fn nelder_mead<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    x0: &[f64],
    options: NelderMeadOptions,
) -> NelderMeadResult {
    assert!(!x0.is_empty(), "empty starting point");
    let dim = x0.len();
    let mut evals = 0usize;
    let eval = |f: &mut F, x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(x);
        if v.is_nan() {
            f64::INFINITY
        } else {
            v
        }
    };

    // Build the initial simplex: x0 plus one vertex per coordinate.
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(dim + 1);
    simplex.push(x0.to_vec());
    for i in 0..dim {
        let mut v = x0.to_vec();
        let step = if v[i] != 0.0 {
            options.initial_step * v[i].abs()
        } else {
            options.initial_step
        };
        v[i] += step;
        simplex.push(v);
    }
    let mut values: Vec<f64> = simplex
        .iter()
        .map(|v| eval(&mut f, v, &mut evals))
        .collect();

    let mut converged = false;
    while evals < options.max_evals {
        // Order vertices by objective value.
        let mut order: Vec<usize> = (0..=dim).collect();
        order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
        let best = order[0];
        let worst = order[dim];
        let second_worst = order[dim - 1];

        // Convergence checks.
        let f_spread = values[worst] - values[best];
        let x_spread = simplex
            .iter()
            .flat_map(|v| v.iter().zip(&simplex[best]).map(|(a, b)| (a - b).abs()))
            .fold(0.0f64, f64::max);
        // Both spreads must be small: two vertices straddling a minimum can
        // have equal objective values while the simplex is still wide.
        if f_spread.abs() <= options.f_tol && x_spread <= options.x_tol {
            converged = true;
            break;
        }

        // Centroid of all vertices except the worst.
        let mut centroid = vec![0.0; dim];
        for (idx, v) in simplex.iter().enumerate() {
            if idx != worst {
                for (c, &vi) in centroid.iter_mut().zip(v) {
                    *c += vi;
                }
            }
        }
        for c in &mut centroid {
            *c /= dim as f64;
        }

        let lerp = |a: &[f64], b: &[f64], t: f64| -> Vec<f64> {
            a.iter().zip(b).map(|(&ai, &bi)| ai + t * (bi - ai)).collect()
        };

        // Reflection.
        let reflected = lerp(&centroid, &simplex[worst], -1.0);
        let f_reflected = eval(&mut f, &reflected, &mut evals);

        if f_reflected < values[best] {
            // Expansion.
            let expanded = lerp(&centroid, &simplex[worst], -2.0);
            let f_expanded = eval(&mut f, &expanded, &mut evals);
            if f_expanded < f_reflected {
                simplex[worst] = expanded;
                values[worst] = f_expanded;
            } else {
                simplex[worst] = reflected;
                values[worst] = f_reflected;
            }
        } else if f_reflected < values[second_worst] {
            simplex[worst] = reflected;
            values[worst] = f_reflected;
        } else {
            // Contraction (outside if the reflected point improved on the
            // worst vertex, inside otherwise).
            let towards = if f_reflected < values[worst] {
                &reflected
            } else {
                &simplex[worst]
            };
            let contracted = lerp(&centroid, towards, 0.5);
            let f_contracted = eval(&mut f, &contracted, &mut evals);
            if f_contracted < values[worst].min(f_reflected) {
                simplex[worst] = contracted;
                values[worst] = f_contracted;
            } else {
                // Shrink every vertex towards the best.
                let best_vertex = simplex[best].clone();
                for (idx, v) in simplex.iter_mut().enumerate() {
                    if idx != best {
                        *v = lerp(&best_vertex, v, 0.5);
                        values[idx] = eval(&mut f, v, &mut evals);
                    }
                }
            }
        }
    }

    let (best_idx, _) = values
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty simplex");
    NelderMeadResult {
        x: simplex[best_idx].clone(),
        fx: values[best_idx],
        evals,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_bowl() {
        let r = nelder_mead(
            |x| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2),
            &[0.0, 0.0],
            NelderMeadOptions::default(),
        );
        assert!((r.x[0] - 3.0).abs() < 1e-4, "x0 = {}", r.x[0]);
        assert!((r.x[1] + 1.0).abs() < 1e-4, "x1 = {}", r.x[1]);
        assert!(r.converged);
    }

    #[test]
    fn minimizes_rosenbrock() {
        let r = nelder_mead(
            |x| {
                let a = 1.0 - x[0];
                let b = x[1] - x[0] * x[0];
                a * a + 100.0 * b * b
            },
            &[-1.2, 1.0],
            NelderMeadOptions {
                max_evals: 20_000,
                ..Default::default()
            },
        );
        assert!((r.x[0] - 1.0).abs() < 1e-3, "x = {:?}", r.x);
        assert!((r.x[1] - 1.0).abs() < 1e-3, "x = {:?}", r.x);
    }

    #[test]
    fn one_dimensional_problem() {
        let r = nelder_mead(
            |x| (x[0] - 42.0).powi(2),
            &[0.0],
            NelderMeadOptions::default(),
        );
        assert!(
            (r.x[0] - 42.0).abs() < 1e-3,
            "x={:?} fx={} evals={} converged={}",
            r.x,
            r.fx,
            r.evals,
            r.converged
        );
    }

    #[test]
    fn nan_objective_is_treated_as_infinite() {
        // Objective undefined (NaN) for x < 0: optimizer must still converge
        // to the boundary-adjacent minimum at 1.
        let r = nelder_mead(
            |x| {
                if x[0] < 0.0 {
                    f64::NAN
                } else {
                    (x[0] - 1.0).powi(2)
                }
            },
            &[5.0],
            NelderMeadOptions::default(),
        );
        assert!((r.x[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn respects_eval_cap() {
        let r = nelder_mead(
            |x| (x[0] - 3.0).powi(2),
            &[1000.0],
            NelderMeadOptions {
                max_evals: 10,
                f_tol: 0.0,
                x_tol: 0.0,
                ..Default::default()
            },
        );
        assert!(r.evals <= 12); // initial simplex + a step may slightly exceed
        assert!(!r.converged);
    }

    #[test]
    #[should_panic(expected = "empty starting point")]
    fn empty_start_panics() {
        let _ = nelder_mead(|_| 0.0, &[], NelderMeadOptions::default());
    }
}

//! Goodness-of-fit and summary statistics.
//!
//! These are the measures used across the evaluation: SSE drives every fit
//! in the paper ("adjusting the parameters ... to minimize the sum of square
//! errors"), R² reports fit quality for the microbenchmark curves, and MAPE
//! is the error measure tracked by the iterative-refinement loop. Mean and
//! standard deviation back the noise-variability study (paper Table IV).

/// Sum of squared errors between predictions and observations.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn sse(predicted: &[f64], observed: &[f64]) -> f64 {
    assert_eq!(predicted.len(), observed.len(), "length mismatch");
    predicted
        .iter()
        .zip(observed)
        .map(|(&p, &o)| {
            let r = p - o;
            r * r
        })
        .sum()
}

/// Root-mean-square error. Returns 0 for empty input.
pub fn rmse(predicted: &[f64], observed: &[f64]) -> f64 {
    if predicted.is_empty() {
        return 0.0;
    }
    (sse(predicted, observed) / predicted.len() as f64).sqrt()
}

/// Coefficient of determination R² = 1 - SSE/SStot.
///
/// Returns `None` when the observations have zero variance (R² undefined).
pub fn r_squared(predicted: &[f64], observed: &[f64]) -> Option<f64> {
    assert_eq!(predicted.len(), observed.len(), "length mismatch");
    if observed.is_empty() {
        return None;
    }
    let mean_obs = mean(observed);
    let ss_tot: f64 = observed
        .iter()
        .map(|&o| {
            let d = o - mean_obs;
            d * d
        })
        .sum();
    if ss_tot == 0.0 {
        return None;
    }
    Some(1.0 - sse(predicted, observed) / ss_tot)
}

/// Mean absolute percentage error, in percent.
///
/// Observations equal to zero are skipped (their percentage error is
/// undefined). Returns 0 when no valid observation remains.
pub fn mape(predicted: &[f64], observed: &[f64]) -> f64 {
    assert_eq!(predicted.len(), observed.len(), "length mismatch");
    let mut total = 0.0;
    let mut count = 0usize;
    for (&p, &o) in predicted.iter().zip(observed) {
        if o != 0.0 {
            total += ((p - o) / o).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        100.0 * total / count as f64
    }
}

/// Arithmetic mean. Returns 0 for empty input.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation (n-1 denominator). Returns 0 for fewer than two
/// values.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values
        .iter()
        .map(|&v| {
            let d = v - m;
            d * d
        })
        .sum::<f64>()
        / (values.len() - 1) as f64;
    var.sqrt()
}

/// Coefficient of variation (σ/μ), the "Variation Coefficient" of paper
/// Table IV. Returns 0 when the mean is zero.
pub fn coefficient_of_variation(values: &[f64]) -> f64 {
    let m = mean(values);
    if m == 0.0 {
        0.0
    } else {
        std_dev(values) / m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sse_of_exact_predictions_is_zero() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(sse(&v, &v), 0.0);
    }

    #[test]
    fn sse_counts_squared_residuals() {
        assert_eq!(sse(&[1.0, 2.0], &[0.0, 4.0]), 1.0 + 4.0);
    }

    #[test]
    fn rmse_matches_hand_computation() {
        let r = rmse(&[0.0, 0.0], &[3.0, 4.0]);
        assert!((r - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn r_squared_is_one_for_perfect_fit() {
        let obs = [1.0, 2.0, 5.0];
        assert!((r_squared(&obs, &obs).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r_squared_is_zero_for_mean_predictor() {
        let obs = [1.0, 2.0, 3.0];
        let pred = [2.0, 2.0, 2.0];
        assert!(r_squared(&pred, &obs).unwrap().abs() < 1e-12);
    }

    #[test]
    fn r_squared_undefined_for_constant_observations() {
        assert!(r_squared(&[1.0, 2.0], &[5.0, 5.0]).is_none());
    }

    #[test]
    fn mape_skips_zero_observations() {
        // Only the second point contributes: |(3-2)/2| = 50%.
        assert!((mape(&[1.0, 3.0], &[0.0, 2.0]) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn mean_and_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        // Sample std dev of this classic data set is sqrt(32/7).
        assert!((std_dev(&v) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn cv_is_ratio() {
        let v = [9.0, 11.0];
        let expected = std_dev(&v) / 10.0;
        assert!((coefficient_of_variation(&v) - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(rmse(&[], &[]), 0.0);
        assert_eq!(mape(&[], &[]), 0.0);
    }
}

//! Property tests for the fitting toolkit (`hemocloud_rt::check`):
//! least-squares optimality and model-recovery invariants for arbitrary
//! inputs.

use hemocloud_fitting::linear::{fit_line, fit_line_fixed_intercept};
use hemocloud_fitting::metrics::{mape, r_squared, sse};
use hemocloud_fitting::models::{fit_imbalance, ImbalanceModel};
use hemocloud_fitting::two_line::{fit_two_line, TwoLineFit};
use hemocloud_rt::check::{self, Config};
use hemocloud_rt::rng::Rng;

fn random_points(rng: &mut Rng, x_lo: f64, x_hi: f64, min_len: usize, max_len: usize) -> Vec<(f64, f64)> {
    let len = rng.range_usize(min_len, max_len);
    (0..len)
        .map(|_| (rng.range_f64(x_lo, x_hi), rng.range_f64(-10.0, 10.0)))
        .collect()
}

#[test]
fn fit_line_is_no_worse_than_any_probe_line() {
    check::run(
        "fit_line_is_no_worse_than_any_probe_line",
        Config::cases(48),
        |rng| {
            let points = random_points(rng, -10.0, 10.0, 3, 20);
            let probe_slope = rng.range_f64(-5.0, 5.0);
            let probe_intercept = rng.range_f64(-5.0, 5.0);
            let xs: Vec<f64> = points.iter().map(|&(x, _)| x).collect();
            let ys: Vec<f64> = points.iter().map(|&(_, y)| y).collect();
            if !xs.iter().any(|&x| (x - xs[0]).abs() > 1e-9) {
                return; // vacuous: degenerate x spread
            }
            let fit = fit_line(&xs, &ys).unwrap();
            let probe: Vec<f64> = xs
                .iter()
                .map(|&x| probe_slope * x + probe_intercept)
                .collect();
            assert!(
                fit.sse <= sse(&probe, &ys) + 1e-9,
                "LS fit beaten by a probe line"
            );
        },
    );
}

#[test]
fn pinned_fit_passes_through_the_pin() {
    check::run("pinned_fit_passes_through_the_pin", Config::cases(48), |rng| {
        let points = random_points(rng, 0.1, 10.0, 2, 20);
        let pin = rng.range_f64(-5.0, 5.0);
        let xs: Vec<f64> = points.iter().map(|&(x, _)| x).collect();
        let ys: Vec<f64> = points.iter().map(|&(_, y)| y).collect();
        let fit = fit_line_fixed_intercept(&xs, &ys, pin).unwrap();
        assert!((fit.eval(0.0) - pin).abs() < 1e-12);
    });
}

#[test]
fn r_squared_never_exceeds_one_for_ls_fits() {
    check::run(
        "r_squared_never_exceeds_one_for_ls_fits",
        Config::cases(48),
        |rng| {
            let points = random_points(rng, -10.0, 10.0, 3, 20);
            let xs: Vec<f64> = points.iter().map(|&(x, _)| x).collect();
            let ys: Vec<f64> = points.iter().map(|&(_, y)| y).collect();
            if !xs.iter().any(|&x| (x - xs[0]).abs() > 1e-9) {
                return; // vacuous
            }
            if !ys.iter().any(|&y| (y - ys[0]).abs() > 1e-9) {
                return; // vacuous
            }
            let fit = fit_line(&xs, &ys).unwrap();
            let pred: Vec<f64> = xs.iter().map(|&x| fit.eval(x)).collect();
            if let Some(r2) = r_squared(&pred, &ys) {
                assert!(r2 <= 1.0 + 1e-12);
                // An LS fit with intercept can never do worse than the
                // mean predictor.
                assert!(r2 >= -1e-9, "r2 = {r2}");
            }
        },
    );
}

#[test]
fn two_line_fit_is_continuous_everywhere() {
    check::run(
        "two_line_fit_is_continuous_everywhere",
        Config::cases(48),
        |rng| {
            let a1 = rng.range_f64(100.0, 10_000.0);
            let a2 = rng.range_f64(-100.0, 2_000.0);
            let a3 = rng.range_f64(1.5, 30.0);
            let f = TwoLineFit { a1, a2, a3, sse: 0.0 };
            let eps = 1e-7;
            let below = f.eval(a3 - eps);
            let above = f.eval(a3 + eps);
            assert!((below - above).abs() < 1e-2 * a1.abs().max(1.0));
        },
    );
}

#[test]
fn two_line_fit_never_beaten_by_truth_on_its_own_data() {
    check::run(
        "two_line_fit_never_beaten_by_truth_on_its_own_data",
        Config::cases(48),
        |rng| {
            // Fit SSE on noiseless two-line data must be ~0 (not worse
            // than the generating parameters).
            let a1 = rng.range_f64(1_000.0, 20_000.0);
            let a2 = rng.range_f64(0.0, 2_000.0);
            let a3 = rng.range_f64(2.0, 15.0);
            let truth = TwoLineFit { a1, a2, a3, sse: 0.0 };
            let ns: Vec<f64> = (1..=24).map(|n| n as f64).collect();
            let bs: Vec<f64> = ns.iter().map(|&n| truth.eval(n)).collect();
            let fit = fit_two_line(&ns, &bs).unwrap();
            let scale: f64 = bs.iter().map(|b| b * b).sum();
            assert!(fit.sse <= 1e-4 * scale, "sse {} vs scale {scale}", fit.sse);
        },
    );
}

#[test]
fn imbalance_fit_tracks_its_own_model() {
    check::run("imbalance_fit_tracks_its_own_model", Config::cases(48), |rng| {
        let c1 = rng.range_f64(0.01, 0.8);
        let c2 = rng.range_f64(0.01, 3.0);
        let truth = ImbalanceModel { c1, c2, sse: 0.0 };
        let ns: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 64, 128, 256];
        let zs: Vec<f64> = ns.iter().map(|&n| truth.eval(n)).collect();
        let fit = fit_imbalance(&ns, &zs).unwrap();
        let pred: Vec<f64> = ns.iter().map(|&n| fit.eval(n)).collect();
        assert!(mape(&pred, &zs) < 3.0, "MAPE {}", mape(&pred, &zs));
    });
}

//! Property tests for the fitting toolkit: least-squares optimality and
//! model-recovery invariants for arbitrary inputs.

use hemocloud_fitting::linear::{fit_line, fit_line_fixed_intercept};
use hemocloud_fitting::metrics::{mape, r_squared, sse};
use hemocloud_fitting::models::{fit_imbalance, ImbalanceModel};
use hemocloud_fitting::two_line::{fit_two_line, TwoLineFit};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fit_line_is_no_worse_than_any_probe_line(
        points in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 3..20),
        probe_slope in -5.0f64..5.0,
        probe_intercept in -5.0f64..5.0,
    ) {
        let xs: Vec<f64> = points.iter().map(|&(x, _)| x).collect();
        let ys: Vec<f64> = points.iter().map(|&(_, y)| y).collect();
        prop_assume!(xs.iter().any(|&x| (x - xs[0]).abs() > 1e-9));
        let fit = fit_line(&xs, &ys).unwrap();
        let probe: Vec<f64> = xs.iter().map(|&x| probe_slope * x + probe_intercept).collect();
        prop_assert!(fit.sse <= sse(&probe, &ys) + 1e-9, "LS fit beaten by a probe line");
    }

    #[test]
    fn pinned_fit_passes_through_the_pin(
        points in proptest::collection::vec((0.1f64..10.0, -10.0f64..10.0), 2..20),
        pin in -5.0f64..5.0,
    ) {
        let xs: Vec<f64> = points.iter().map(|&(x, _)| x).collect();
        let ys: Vec<f64> = points.iter().map(|&(_, y)| y).collect();
        let fit = fit_line_fixed_intercept(&xs, &ys, pin).unwrap();
        prop_assert!((fit.eval(0.0) - pin).abs() < 1e-12);
    }

    #[test]
    fn r_squared_never_exceeds_one_for_ls_fits(
        points in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 3..20),
    ) {
        let xs: Vec<f64> = points.iter().map(|&(x, _)| x).collect();
        let ys: Vec<f64> = points.iter().map(|&(_, y)| y).collect();
        prop_assume!(xs.iter().any(|&x| (x - xs[0]).abs() > 1e-9));
        prop_assume!(ys.iter().any(|&y| (y - ys[0]).abs() > 1e-9));
        let fit = fit_line(&xs, &ys).unwrap();
        let pred: Vec<f64> = xs.iter().map(|&x| fit.eval(x)).collect();
        if let Some(r2) = r_squared(&pred, &ys) {
            prop_assert!(r2 <= 1.0 + 1e-12);
            // An LS fit with intercept can never do worse than the mean
            // predictor.
            prop_assert!(r2 >= -1e-9, "r2 = {r2}");
        }
    }

    #[test]
    fn two_line_fit_is_continuous_everywhere(
        a1 in 100.0f64..10_000.0,
        a2 in -100.0f64..2_000.0,
        a3 in 1.5f64..30.0,
    ) {
        let f = TwoLineFit { a1, a2, a3, sse: 0.0 };
        let eps = 1e-7;
        let below = f.eval(a3 - eps);
        let above = f.eval(a3 + eps);
        prop_assert!((below - above).abs() < 1e-2 * a1.abs().max(1.0));
    }

    #[test]
    fn two_line_fit_never_beaten_by_truth_on_its_own_data(
        a1 in 1_000.0f64..20_000.0,
        a2 in 0.0f64..2_000.0,
        a3 in 2.0f64..15.0,
    ) {
        // Fit SSE on noiseless two-line data must be ~0 (not worse than
        // the generating parameters).
        let truth = TwoLineFit { a1, a2, a3, sse: 0.0 };
        let ns: Vec<f64> = (1..=24).map(|n| n as f64).collect();
        let bs: Vec<f64> = ns.iter().map(|&n| truth.eval(n)).collect();
        let fit = fit_two_line(&ns, &bs).unwrap();
        let scale: f64 = bs.iter().map(|b| b * b).sum();
        prop_assert!(fit.sse <= 1e-4 * scale, "sse {} vs scale {scale}", fit.sse);
    }

    #[test]
    fn imbalance_fit_tracks_its_own_model(
        c1 in 0.01f64..0.8,
        c2 in 0.01f64..3.0,
    ) {
        let truth = ImbalanceModel { c1, c2, sse: 0.0 };
        let ns: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 64, 128, 256];
        let zs: Vec<f64> = ns.iter().map(|&n| truth.eval(n)).collect();
        let fit = fit_imbalance(&ns, &zs).unwrap();
        let pred: Vec<f64> = ns.iter().map(|&n| fit.eval(n)).collect();
        prop_assert!(mape(&pred, &zs) < 3.0, "MAPE {}", mape(&pred, &zs));
    }
}

//! Run provenance for persisted benchmark artifacts.
//!
//! `BENCH_lbm.json` and `CAMPAIGN_sched.json` are committed and compared
//! across PRs; a number without the commit and toolchain that produced it
//! is unreviewable. These helpers shell out to `git`/`rustc` and degrade
//! to `"unknown"` when either is unavailable (e.g. an unpacked source
//! tarball), so the benches never fail on missing provenance.

use std::process::Command;

fn first_line_of(cmd: &str, args: &[&str]) -> Option<String> {
    let out = Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    let line = text.lines().next()?.trim().to_string();
    if line.is_empty() {
        None
    } else {
        Some(line)
    }
}

/// The current commit (short hash), or `"unknown"` outside a git checkout.
pub fn git_rev() -> String {
    first_line_of("git", &["rev-parse", "--short=12", "HEAD"])
        .unwrap_or_else(|| "unknown".to_string())
}

/// The compiler version line (`rustc -V`), or `"unknown"`.
pub fn rustc_version() -> String {
    first_line_of("rustc", &["-V"]).unwrap_or_else(|| "unknown".to_string())
}

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provenance_strings_are_single_nonempty_lines() {
        for s in [git_rev(), rustc_version()] {
            assert!(!s.is_empty());
            assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn rustc_version_is_detected_in_a_build_environment() {
        // The bench binaries are built by rustc, so it must be present.
        let v = rustc_version();
        assert!(v.starts_with("rustc "), "unexpected: {v}");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}

//! Shared helpers for the per-table/figure regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md §4 for the index); this library holds
//! the formatting and workload plumbing they share.

pub mod provenance;
pub mod report;
pub mod workloads;

pub use report::{print_series, print_table, Series};

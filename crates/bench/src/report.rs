//! Plain-text table and series rendering for the regeneration binaries.

/// A named series of `(x, y)` points — one curve of a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Curve label (e.g. a platform abbreviation).
    pub label: String,
    /// The points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Construct from a label and points.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.into(),
            points,
        }
    }
}

/// Print a figure as aligned columns: the x values in the first column and
/// one column per series.
pub fn print_series(title: &str, x_label: &str, y_label: &str, series: &[Series]) {
    println!("\n=== {title} ===");
    println!("({y_label} vs {x_label})");
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x))
        .collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup();

    print!("{:>12}", x_label);
    for s in series {
        print!("{:>18}", s.label);
    }
    println!();
    for &x in &xs {
        print!("{:>12}", fmt_x(x));
        for s in series {
            match s.points.iter().find(|&&(px, _)| px == x) {
                Some(&(_, y)) => print!("{y:>18.3}"),
                None => print!("{:>18}", "-"),
            }
        }
        println!();
    }
}

/// Format an x coordinate without losing information: the previous
/// `{x:>12.0}` rounded fractional x values (non-power-of-two message
/// sizes, per-core bandwidth points) to integers, so two distinct rows
/// could print identically. Uses Rust's shortest round-trip float
/// formatting, falling back to scientific notation only when that would
/// overflow the column.
fn fmt_x(x: f64) -> String {
    let s = format!("{x}");
    if s.len() <= 12 {
        s
    } else {
        format!("{x:.4e}")
    }
}

/// Print a table from a header row and string rows, aligned.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let print_row = |cells: &[String]| {
        for (i, cell) in cells.iter().enumerate().take(ncols) {
            print!("{:>w$}  ", cell, w = widths[i]);
        }
        println!();
    };
    print_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    print_row(
        &widths
            .iter()
            .map(|&w| "-".repeat(w))
            .collect::<Vec<_>>(),
    );
    for row in rows {
        print_row(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_construction() {
        let s = Series::new("TRC", vec![(1.0, 2.0)]);
        assert_eq!(s.label, "TRC");
        assert_eq!(s.points.len(), 1);
    }

    #[test]
    fn fractional_x_values_stay_distinct() {
        // Regression: `{x:>12.0}` printed 16.25 and 16.75 both as "16".
        assert_ne!(fmt_x(16.25), fmt_x(16.75));
        assert_eq!(fmt_x(16.25), "16.25");
        assert_eq!(fmt_x(16.75), "16.75");
        // Whole values keep their compact integer rendering.
        assert_eq!(fmt_x(16.0), "16");
        assert_eq!(fmt_x(1048576.0), "1048576");
        // Values too wide for the column degrade to scientific notation
        // rather than misaligning the table.
        assert_eq!(fmt_x(0.3333333333333333), "3.3333e-1");
        assert!(fmt_x(1.0 / 3.0).len() <= 12);
    }

    #[test]
    fn print_series_with_fractional_x_does_not_panic() {
        print_series(
            "fractional",
            "MiB",
            "GB/s",
            &[Series::new("a", vec![(0.5, 1.0), (1.5, 2.0), (2.25, 3.0)])],
        );
    }

    #[test]
    fn printers_do_not_panic() {
        print_series(
            "t",
            "x",
            "y",
            &[
                Series::new("a", vec![(1.0, 2.0), (2.0, 3.0)]),
                Series::new("b", vec![(2.0, 4.0)]),
            ],
        );
        print_table(
            "t",
            &["col1", "c2"],
            &[vec!["x".into(), "yyyy".into()], vec!["1".into(), "2".into()]],
        );
    }
}

//! The standard workloads the regeneration binaries share.
//!
//! The paper runs "identical, high-resolution steady bulk flow simulations
//! ... in each geometry with the same number of cores on all computational
//! platforms"; these constructors pin the geometry resolutions and rank
//! sweeps used across the figure binaries so every experiment sees the
//! same inputs.

use hemocloud_geometry::anatomy::{AortaSpec, CerebralSpec, CylinderSpec};
use hemocloud_geometry::voxel::VoxelGrid;

/// The evaluation geometries at matched (figure-scale) point counts.
///
/// Resolutions are chosen so each geometry lands near 300k fluid points —
/// matched closely enough that the per-geometry differences in the figures
/// come from geometry *structure* (communication surface, wall fraction,
/// balance difficulty), not raw size.
pub fn evaluation_geometries() -> Vec<(&'static str, VoxelGrid)> {
    vec![
        ("Cylinder", CylinderSpec::default().with_resolution(40).build()),
        ("Aorta", AortaSpec::default().with_resolution(40).build()),
        (
            "Cerebral",
            CerebralSpec::default()
                .with_generations(6)
                .with_resolution(28)
                .build(),
        ),
    ]
}

/// Smaller variants for quick runs and tests.
pub fn quick_geometries() -> Vec<(&'static str, VoxelGrid)> {
    vec![
        ("Cylinder", CylinderSpec::default().with_resolution(16).build()),
        ("Aorta", AortaSpec::default().with_resolution(12).build()),
        (
            "Cerebral",
            CerebralSpec::default()
                .with_generations(4)
                .with_resolution(8)
                .build(),
        ),
    ]
}

/// The rank sweep used by the strong-scaling figures.
pub fn rank_sweep() -> Vec<usize> {
    vec![8, 16, 32, 64, 128, 256, 512, 1024, 2048]
}

/// Whether the environment asked for quick (reduced) workloads via
/// `HEMOCLOUD_QUICK=1`.
pub fn quick_mode() -> bool {
    std::env::var("HEMOCLOUD_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// Evaluation geometries, honoring quick mode.
pub fn geometries() -> Vec<(&'static str, VoxelGrid)> {
    if quick_mode() {
        quick_geometries()
    } else {
        evaluation_geometries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemocloud_geometry::stats::GeometryStats;

    #[test]
    fn quick_geometries_have_expected_ordering() {
        let geos = quick_geometries();
        assert_eq!(geos.len(), 3);
        let stats: Vec<GeometryStats> =
            geos.iter().map(|(_, g)| GeometryStats::measure(g)).collect();
        // Cylinder densest, cerebral most wall-heavy.
        assert!(stats[0].fluid_fraction > stats[1].fluid_fraction);
        assert!(stats[2].wall_fraction() > stats[0].wall_fraction());
    }

    #[test]
    fn rank_sweep_reaches_2048() {
        assert_eq!(*rank_sweep().last().unwrap(), 2048);
    }
}

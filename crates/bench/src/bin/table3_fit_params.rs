//! Regenerates paper **Table III**: microbenchmark curve-fit parameters
//! (two-line memory model a1/a2/a3 and internodal linear communication
//! model b/l) for every system, via the full characterize pipeline.
//!
//! Run: `cargo run --release -p hemocloud-bench --bin table3_fit_params`

use hemocloud_bench::print_table;
use hemocloud_cluster::platform::Platform;
use hemocloud_core::characterize::characterize;

const SEED: u64 = 2023;

fn main() {
    // Paper Table III rows: TRC, CSP-2, CSP-2 EC, CSP-2 Hyp., CSP-1.
    let platforms = [
        Platform::trc(),
        Platform::csp2(),
        Platform::csp2_ec(),
        Platform::csp2_hyperthreaded(),
        Platform::csp1(),
    ];
    let mut rows = Vec::new();
    for p in &platforms {
        let c = characterize(p, SEED);
        // The paper reports interconnect fits only for the multi-node
        // studies (TRC / CSP-2 / CSP-2 EC); mirror its N/A convention.
        let multi_node_study = matches!(p.abbrev, "TRC" | "CSP-2" | "CSP-2 EC");
        let (b, l) = if multi_node_study {
            (
                format!("{:.2}", c.internodal_fit.bandwidth_mb_s),
                format!("{:.2}", c.internodal_fit.latency_us),
            )
        } else {
            ("N/A".to_string(), "N/A".to_string())
        };
        rows.push(vec![
            p.abbrev.to_string(),
            format!("{:.2}", c.memory_fit.a1),
            format!("{:.2}", c.memory_fit.a2),
            format!("{:.2}", c.memory_fit.a3),
            b,
            l,
            format!(
                "{}{}",
                p.cores_per_node,
                if p.abbrev == "CSP-2 Hyp." { "*" } else { "" }
            ),
        ]);
    }
    print_table(
        "Table III: microbenchmark curve-fit parameters (Eq. 8 and Eq. 12)",
        &["System", "a1", "a2", "a3", "b_inter", "l_inter", "Cores"],
        &rows,
    );
    println!("\n*denotes hyperthreading (one thread per vCPU).");
    println!("Paper reference: TRC 6768.24/369.16/6.39, b 5066.57, l 2.01;");
    println!("CSP-2 7790.02/1264.80/9.00, b 1804.84, l 23.59; CSP-2 EC 7605.85/1269.95/11.00, b 2016.77, l 20.94;");
    println!("CSP-2 Hyp. 8629.29/-93.43/9.87; CSP-1 18092.64/-62.79/4.15");
}

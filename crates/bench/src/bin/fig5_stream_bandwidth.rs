//! Regenerates paper **Fig. 5**: STREAM Copy bandwidth vs. OpenMP thread
//! count with two-line fits (Eq. 8) for every platform, including the
//! hyperthreaded CSP-2 instance.
//!
//! Run: `cargo run --release -p hemocloud-bench --bin fig5_stream_bandwidth`

use hemocloud_bench::{print_series, print_table, Series};
use hemocloud_cluster::platform::Platform;
use hemocloud_cluster::stream_bench::{stream_sweep, to_fit_arrays};
use hemocloud_fitting::metrics::r_squared;
use hemocloud_fitting::two_line::fit_two_line;

const SEED: u64 = 2023;

fn main() {
    let mut platforms = Platform::all();
    platforms.push(Platform::csp2_hyperthreaded());

    let mut measured = Vec::new();
    let mut fitted = Vec::new();
    let mut rows = Vec::new();
    for p in &platforms {
        let sweep = stream_sweep(p, SEED);
        let (ns, bs) = to_fit_arrays(&sweep);
        let fit = fit_two_line(&ns, &bs).expect("fittable sweep");
        let preds: Vec<f64> = ns.iter().map(|&n| fit.eval(n)).collect();
        let r2 = r_squared(&preds, &bs).unwrap_or(f64::NAN);
        measured.push(Series::new(
            p.abbrev,
            sweep
                .iter()
                .map(|s| (s.threads as f64, s.bandwidth_mb_s))
                .collect(),
        ));
        fitted.push(Series::new(
            format!("{} fit", p.abbrev),
            ns.iter().map(|&n| (n, fit.eval(n))).collect(),
        ));
        rows.push(vec![
            p.abbrev.to_string(),
            format!("{:.2}", fit.a1),
            format!("{:.2}", fit.a2),
            format!("{:.2}", fit.a3),
            format!("{:.4}", r2),
        ]);
    }

    print_series(
        "Fig. 5: STREAM Copy bandwidth vs OpenMP threads (measured)",
        "threads",
        "MB/s",
        &measured,
    );
    print_series(
        "Fig. 5: two-line fits (Eq. 8)",
        "threads",
        "MB/s",
        &fitted,
    );
    print_table(
        "Fig. 5 fit parameters",
        &["System", "a1 (MB/s/thr)", "a2 (MB/s/thr)", "a3 (thr)", "R^2"],
        &rows,
    );
}

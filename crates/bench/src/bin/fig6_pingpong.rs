//! Regenerates paper **Fig. 6**: PingPong communication times over a
//! message-size sweep with linear fits (Eq. 12) — latency pinned to the
//! zero-byte time, bandwidth fit over all points.
//!
//! Run: `cargo run --release -p hemocloud-bench --bin fig6_pingpong`

use hemocloud_bench::{print_series, print_table, Series};
use hemocloud_cluster::network::LinkKind;
use hemocloud_cluster::pingpong::{default_message_sizes, fit_pingpong, pingpong_sweep};
use hemocloud_cluster::platform::Platform;

const SEED: u64 = 2023;

fn main() {
    let platforms = [Platform::trc(), Platform::csp2(), Platform::csp2_ec()];
    let sizes = default_message_sizes();

    let mut measured = Vec::new();
    let mut fit_rows = Vec::new();
    for p in &platforms {
        for (kind, kname) in [
            (LinkKind::Internodal, "inter"),
            (LinkKind::Intranodal, "intra"),
        ] {
            let sweep = pingpong_sweep(p, kind, &sizes, SEED);
            let fit = fit_pingpong(&sweep).expect("fittable sweep");
            measured.push(Series::new(
                format!("{} {kname}", p.abbrev),
                sweep.iter().map(|s| (s.bytes as f64, s.time_us)).collect(),
            ));
            fit_rows.push(vec![
                p.abbrev.to_string(),
                kname.to_string(),
                format!("{:.2}", fit.bandwidth_mb_s),
                format!("{:.2}", fit.latency_us),
            ]);
        }
    }

    print_series(
        "Fig. 6: PingPong one-way times (µs) vs message size (bytes)",
        "bytes",
        "µs",
        &measured,
    );
    print_table(
        "Fig. 6 linear fits (Eq. 12; latency = zero-byte time)",
        &["System", "Link", "b (MB/s)", "l (µs)"],
        &fit_rows,
    );
    println!("\nPaper reference (internodal): TRC b=5066.57 l=2.01; CSP-2 b=1804.84 l=23.59; CSP-2 EC b=2016.77 l=20.94");
}

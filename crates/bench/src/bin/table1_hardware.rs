//! Regenerates paper **Table I**: hardware details for all tested
//! instances.
//!
//! Run: `cargo run --release -p hemocloud-bench --bin table1_hardware`

use hemocloud_bench::print_table;
use hemocloud_cluster::platform::Platform;

fn main() {
    let platforms = Platform::all();
    let rows: Vec<Vec<String>> = vec![
        row("Abbreviation", &platforms, |p| p.abbrev.to_string()),
        row("CPU", &platforms, |p| p.cpu.to_string()),
        row("CPU Clock (GHz)", &platforms, |p| format!("{:.2}", p.clock_ghz)),
        row("Core Count", &platforms, |p| p.total_cores.to_string()),
        row("Cores per Node", &platforms, |p| p.cores_per_node.to_string()),
        row("Memory per Node (GB)", &platforms, |p| {
            format!("{:.0}", p.memory_per_node_gb)
        }),
        row("Interconnect (Gbit/s)", &platforms, |p| {
            format!("{:.0}", p.interconnect_gbit)
        }),
        row("Price ($/node-h, synthetic)", &platforms, |p| {
            format!("{:.2}", p.price_per_node_hour)
        }),
    ];
    let mut header: Vec<&str> = vec!["System"];
    let names: Vec<&str> = platforms.iter().map(|p| p.name).collect();
    header.extend(names);
    print_table(
        "Table I: hardware details for all tested instances",
        &header,
        &rows,
    );
    println!(
        "\nNote: CSP-2 and CSP-2 EC report ~3.0 GHz per hardware hyperthread and"
    );
    println!("~3.4 GHz single-core with TurboBoost, as in the paper's footnote.");
}

fn row(
    label: &str,
    platforms: &[Platform],
    f: impl Fn(&Platform) -> String,
) -> Vec<String> {
    let mut r = vec![label.to_string()];
    r.extend(platforms.iter().map(f));
    r
}

//! Regenerates paper **Table II**: STREAM-fit sustainable memory
//! bandwidths at one thread per physical core vs. published node maxima,
//! and the percentage difference.
//!
//! Run: `cargo run --release -p hemocloud-bench --bin table2_bandwidth`

use hemocloud_bench::print_table;
use hemocloud_cluster::platform::Platform;
use hemocloud_cluster::stream_bench::{stream_sweep, to_fit_arrays};
use hemocloud_fitting::two_line::fit_two_line;

const SEED: u64 = 2023;

fn main() {
    // The paper's Table II columns: TRC, CSP-1, CSP-2, CSP-2 EC.
    let platforms = [
        Platform::trc(),
        Platform::csp1(),
        Platform::csp2(),
        Platform::csp2_ec(),
    ];
    let mut published = vec!["Published (MB/s)".to_string()];
    let mut fitted = vec!["STREAM fit (MB/s)".to_string()];
    let mut diff = vec!["Difference".to_string()];
    for p in &platforms {
        let (ns, bs) = to_fit_arrays(&stream_sweep(p, SEED));
        let fit = fit_two_line(&ns, &bs).expect("fittable sweep");
        let sustained = fit.eval(p.cores_per_node as f64);
        published.push(format!("{:.0}", p.published_bandwidth_mb_s));
        fitted.push(format!("~{sustained:.0}"));
        diff.push(format!(
            "{:+.2}%",
            100.0 * (sustained - p.published_bandwidth_mb_s) / p.published_bandwidth_mb_s
        ));
    }
    let mut header = vec!["Bandwidth Type"];
    header.extend(platforms.iter().map(|p| p.abbrev));
    print_table(
        "Table II: fitted sustainable vs published node memory bandwidth",
        &header,
        &[published, fitted, diff],
    );
    println!("\nPaper reference: TRC -27.57%, CSP-1 +9.23%, CSP-2 -35.92%, CSP-2 EC -29.07%");
}

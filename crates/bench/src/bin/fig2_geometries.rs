//! Regenerates paper **Fig. 2**: the three arterial geometries, reported
//! as voxel censuses (we print the statistics that drive the performance
//! model rather than rendering meshes).
//!
//! Run: `cargo run --release -p hemocloud-bench --bin fig2_geometries`
//! (set `HEMOCLOUD_QUICK=1` for reduced resolutions)

use hemocloud_bench::print_table;
use hemocloud_bench::workloads::geometries;
use hemocloud_geometry::stats::GeometryStats;

fn main() {
    let mut rows = Vec::new();
    for (name, grid) in geometries() {
        let s = GeometryStats::measure(&grid);
        let (nx, ny, nz) = grid.dims();
        rows.push(vec![
            name.to_string(),
            format!("{nx}x{ny}x{nz}"),
            s.fluid_points.to_string(),
            s.bulk_points.to_string(),
            s.wall_points.to_string(),
            format!("{:.3}", s.fluid_fraction),
            format!("{:.2}", s.bulk_wall_ratio),
            format!("{:.3}", s.wall_fraction()),
        ]);
    }
    print_table(
        "Fig. 2: arterial geometry census (cylinder = dense/high-comm, aorta = typical, cerebral = wall-heavy/low-comm)",
        &[
            "Geometry",
            "Grid",
            "Fluid pts",
            "Bulk",
            "Wall",
            "Fluid frac",
            "Bulk/Wall",
            "Wall frac",
        ],
        &rows,
    );
}

//! Fabric-contention record: run the seeded fabric demo campaign — ten
//! identical 2-node jobs contending pairwise on a spread topology's
//! oversubscribed trunks — and persist its [`CampaignReport`] JSON as
//! `CAMPAIGN_fabric.json`, the committed evidence that routed contention
//! is deterministic, exactly accounted, and calibratable.
//!
//! * `FABRIC_SEED=<u64>` picks the campaign seed (default 42 — the
//!   committed `CAMPAIGN_fabric.json` uses this).
//! * `FABRIC_OUT=<path>` redirects the JSON (default:
//!   `CAMPAIGN_fabric.json` in the current directory).
//! * `OBS_OUT=<path>` writes the campaign's metrics snapshot — including
//!   the `fabric.pool0.link.*` per-link byte counter families — as
//!   deterministic JSON, which `scripts/verify.sh` diffs across runs.
//!
//! The binary exits non-zero unless every acceptance property holds:
//!
//! 1. every job completes fault-free (the byte reconciliation needs
//!    uncut slices);
//! 2. the per-link delivered-byte counters sum **exactly** to the Eq. 9
//!    message-graph total (integer equality, no tolerance);
//! 3. the report is byte-identical across 1/2/4 event-queue shards;
//! 4. a co-scheduled job runs measurably slower than the same job
//!    isolated on the same pool at the same seed;
//! 5. the calibrated placement MAPE beats the uncalibrated one — the
//!    refinement loop closes the contention-induced gap.
//!
//! [`CampaignReport`]: hemocloud_sched::CampaignReport

use hemocloud_bench::provenance;
use hemocloud_cluster::exec::{Overheads, PreparedRun};
use hemocloud_cluster::platform::Platform;
use hemocloud_cluster::topology::{CommModel, TopologyVariant};
use hemocloud_core::workload::Workload;
use hemocloud_geometry::anatomy::CylinderSpec;
use hemocloud_obs::{Render, Sample, Snapshot};
use hemocloud_sched::{
    fabric_demo_config, fabric_demo_jobs, fabric_demo_pools, run_fabric_demo, Campaign,
};

/// Sum a `fabric.pool0.link.*` counter family out of the snapshot.
fn link_family_total(snap: &Snapshot, prefix: &str) -> u64 {
    let mut total = 0u64;
    let mut i = 0usize;
    while let Some(Sample::Counter(v)) = snap.get(&format!("{prefix}.{i}")) {
        total += v;
        i += 1;
    }
    total
}

fn main() {
    let seed: u64 = std::env::var("FABRIC_SEED")
        .ok()
        .map(|v| v.parse().expect("FABRIC_SEED must be a u64"))
        .unwrap_or(42);
    let out = std::env::var("FABRIC_OUT").unwrap_or_else(|_| "CAMPAIGN_fabric.json".to_string());

    let (report, obs) = run_fabric_demo(seed);
    let mut failures = Vec::new();

    // 1. Clean completion: honest jobs, faults off, so the byte ledger
    //    covers every declared step.
    if report.completed != report.jobs || report.faults != 0 || report.retries != 0 {
        failures.push(format!(
            "expected {} clean completions, got {} completed / {} faults / {} retries",
            report.jobs, report.completed, report.faults, report.retries
        ));
    }
    for rec in &report.placements {
        if rec.topology != "spread" {
            failures.push(format!("placement {} ran '{}', not 'spread'", rec.job, rec.topology));
        }
    }

    // 2. Exact Eq. 9 reconciliation: rebuild the demo's one prepared
    //    shape and price a single step's internodal flows independently.
    let grid = CylinderSpec::default().with_resolution(10).build();
    let workload = Workload::harvey(&grid, 1);
    let prepared = PreparedRun::new_with_comm(
        &Platform::csp2_small(),
        &grid,
        &workload.kernel,
        16,
        &Overheads::default(),
        CommModel::Routed(TopologyVariant::Spread),
    )
    .expect("demo shape is feasible");
    let per_step_bytes: u64 = prepared.flows(&[0, 1], 0).iter().map(|f| f.bytes as u64).sum();
    let eq9_bytes: u64 = fabric_demo_jobs()
        .iter()
        .map(|j| j.workload.steps * per_step_bytes)
        .sum();
    let delivered = link_family_total(&obs, "fabric.pool0.link.delivered_bytes");
    let forwarded = link_family_total(&obs, "fabric.pool0.link.forwarded_bytes");
    if delivered != eq9_bytes {
        failures.push(format!(
            "per-link delivered bytes {delivered} != Eq. 9 total {eq9_bytes}"
        ));
    }
    if forwarded <= delivered {
        failures.push(format!(
            "forwarded {forwarded} not > delivered {delivered}: cross-rack hops missing"
        ));
    }

    // 3. Shard invariance: the shared-fabric contention context must not
    //    observe event-queue layout.
    let run_sharded = |shards: usize| {
        let mut config = fabric_demo_config(seed);
        config.shards = shards;
        let mut campaign = Campaign::new(config, fabric_demo_pools());
        for job in fabric_demo_jobs() {
            campaign.submit(job);
        }
        campaign.run().to_json()
    };
    let reference = report.to_json();
    for shards in [2usize, 4] {
        if run_sharded(shards) != reference {
            failures.push(format!("report changed at {shards} shards"));
        }
    }

    // 4. Contention slowdown: the same first job, alone on the same pool
    //    at the same seed, shares its noise stream — any difference is
    //    trunk contention.
    let mut solo = Campaign::new(fabric_demo_config(seed), fabric_demo_pools());
    solo.submit(fabric_demo_jobs().remove(0));
    let solo_report = solo.run();
    let solo_job = &solo_report.job_reports[0];
    let demo_job = report
        .job_reports
        .iter()
        .find(|j| j.name == solo_job.name)
        .expect("job 0 present in demo report");
    let slowdown = demo_job.run_seconds / solo_job.run_seconds;
    if !(slowdown > 1.01) {
        failures.push(format!(
            "co-scheduled run {:.3} s vs isolated {:.3} s: slowdown {slowdown:.4} not > 1.01",
            demo_job.run_seconds, solo_job.run_seconds
        ));
    }

    // 5. Refinement under contention.
    let (cal, uncal) = (
        report.mape_calibrated_pct,
        report.mape_first_quartile_uncalibrated_pct,
    );
    match (cal, uncal) {
        (Some(c), Some(u)) if c < u => {}
        _ => failures.push(format!(
            "refinement failed under contention: calibrated MAPE {cal:?} !< uncalibrated {uncal:?}"
        )),
    }

    let git_rev = provenance::json_escape(&provenance::git_rev());
    let rustc = provenance::json_escape(&provenance::rustc_version());
    let json = report.to_json_with_provenance(&[
        ("git_rev", &git_rev),
        ("rustc", &rustc),
        ("fabric_topology", "spread"),
        ("fabric_eq9_bytes", &eq9_bytes.to_string()),
        ("fabric_delivered_bytes", &delivered.to_string()),
        ("fabric_forwarded_bytes", &forwarded.to_string()),
        ("fabric_isolated_run_s", &format!("{:.6}", solo_job.run_seconds)),
        ("fabric_contended_run_s", &format!("{:.6}", demo_job.run_seconds)),
        ("fabric_contention_slowdown", &format!("{slowdown:.6}")),
    ]);
    std::fs::write(&out, &json).expect("write fabric campaign JSON");

    println!(
        "fabric demo seed {seed}: {} jobs -> {} completed on '{}' topology",
        report.jobs,
        report.completed,
        report.placements.first().map_or("?", |r| r.topology.as_str())
    );
    println!(
        "  Eq. 9 bytes {eq9_bytes} == delivered {delivered} (forwarded {forwarded}), \
         contention slowdown {slowdown:.3}x"
    );
    let mape = |v: Option<f64>| v.map_or("n/a".to_string(), |v| format!("{v:.1}%"));
    println!(
        "  placement MAPE under contention: uncalibrated Q1 {} -> calibrated {}",
        mape(uncal),
        mape(cal)
    );
    println!("  wrote {out}");

    if let Ok(obs_path) = std::env::var("OBS_OUT") {
        let obs_json = obs.to_json(Render::Deterministic);
        std::fs::write(&obs_path, &obs_json).unwrap_or_else(|e| panic!("writing {obs_path}: {e}"));
        println!("  wrote {obs_path}");
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FABRIC INVARIANT VIOLATION: {f}");
        }
        std::process::exit(1);
    }
}

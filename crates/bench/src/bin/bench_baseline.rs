//! The repo's perf trajectory baseline: measure the real LBM solver step
//! and the real STREAM kernels on this host through `hemocloud_rt::bench`
//! and persist the numbers to `BENCH_lbm.json` so every PR has comparable
//! throughput data (the paper's whole premise — Eqs. 6/9 — is that these
//! two numbers are linked by memory bandwidth).
//!
//! Beyond the headline solver number, the baseline now sweeps every
//! runtime kernel configuration of the sparse solver (AB/AA × AoS/SoA)
//! crossed with three traversal configurations (natural, morton, tuned)
//! at f64, plus the four f32-storage configs at natural order, and
//! records, per row: the resolved SIMD instruction path (`"avx2"`,
//! `"scalar-lanes"`, or `"scalar"` — `RT_SIMD` overrides it
//! process-wide), best-of-3 measured MFLUPS, the Eq. 9 *modeled* bytes
//! per update, the *implied* bytes per update (measured update time ×
//! the STREAM bandwidth whose shape matches the propagation pattern —
//! Triad for AB pull, the Copy/Triad mean for AA's alternating pair),
//! and their ratio `measured_over_modeled`, computed once and reused
//! everywhere — so the committed JSON shows the AB→AA speedup, the
//! traversal effect, the vectorization effect, and how tight the byte
//! model tracks the machine (`"best"` ranks the f64 rows only, keeping
//! the headline comparable across baselines). It also runs the AA/AB
//! moment-equivalence smoke (AA natural-order moments vs AB post-stream
//! moments), a bitwise default-vs-tuned-traversal equality check, a
//! bitwise forced-scalar-vs-forced-vector equality check over every
//! kernel config, an f32-vs-f64 macroscopic accuracy bound, and a
//! `KernelSelect::Auto` provenance sweep — and refuses to write a
//! baseline where any disagrees.
//!
//! * `RT_BENCH_FAST=1` shrinks the mesh, array sizes, and sample counts
//!   so CI can smoke-run it in seconds (`scripts/verify.sh` does).
//! * `BENCH_OUT=<path>` redirects the JSON (default: `BENCH_lbm.json` in
//!   the current directory).
//! * `OBS_OUT=<path>` additionally writes the metrics snapshot of a
//!   fixed-step instrumented pass (pool + solver + ranked-halo counters)
//!   as deterministic JSON — byte-identical across two identical runs at
//!   the same `RT_POOL_THREADS`, which `scripts/verify.sh` diffs. The
//!   snapshot is captured before the auto-calibrated timing sweeps so
//!   their wall-clock-dependent iteration counts cannot leak into it.
//!
//! The binary exits non-zero if any throughput it measured is non-finite
//! or non-positive, so the verify gate cannot silently record garbage.

use hemocloud_bench::provenance;
use hemocloud_geometry::anatomy::CylinderSpec;
use hemocloud_geometry::stats::GeometryStats;
use hemocloud_lbm::access_profile::{average_solid_links, AccessProfile};
use hemocloud_lbm::kernel::{
    KernelConfig, KernelSelect, Layout, Precision, Propagation, SimdPath, StreamReference,
};
use hemocloud_lbm::mesh::FluidMesh;
use hemocloud_lbm::ranked::{RankAssignment, RankedSolver};
use hemocloud_lbm::solver::{AutotuneReport, Solver, SolverConfig};
use hemocloud_lbm::traversal::TraversalConfig;
use hemocloud_microbench::stream::{stream_kernel, StreamKernel, StreamMeasurement};
use hemocloud_rt::bench::sample_stats;
use hemocloud_rt::{par, pool};

fn fast_mode() -> bool {
    std::env::var("RT_BENCH_FAST").is_ok_and(|v| v != "0")
}

/// One measured (kernel × traversal) configuration of the sparse solver.
struct KernelRow {
    config: KernelConfig,
    traversal: TraversalConfig,
    /// Instruction path the dispatcher resolved for this row
    /// (`"avx2"`, `"scalar-lanes"`, or `"scalar"`) — provenance for the
    /// committed numbers; overridable process-wide via `RT_SIMD`.
    simd: &'static str,
    mflups: f64,
    ns_per_update: f64,
    /// Eq. 9 bytes per fluid-point update for this config on this mesh.
    modeled_bytes_per_update: f64,
    /// The STREAM kernel whose shape matches this row's propagation
    /// pattern (Triad for AB pull; Copy/Triad mean for AA's pair).
    stream_ref: StreamReference,
    /// Update time × the matching STREAM bandwidth: the bytes the memory
    /// system could have moved in the time one update took.
    implied_bytes_per_update: f64,
    /// `implied / modeled` — computed once here, used by the JSON, the
    /// table, and the verify gate, so the three can never disagree.
    measured_over_modeled: f64,
}

struct Baseline {
    threads: usize,
    mesh_cells: usize,
    mflups: f64,
    ns_per_step: f64,
    stream: Vec<StreamMeasurement>,
    kernels: Vec<KernelRow>,
    /// Max component-wise moment difference between the AA solver's
    /// natural-order readout and the AB solver's post-stream readout.
    aa_ab_moment_max_diff: f64,
    /// Whether the tuned-traversal solver (morton + blocking + prefetch +
    /// stealing) produced bit-identical distributions to the default
    /// natural-order solver over the instrumented pass.
    traversal_bitwise_equal: bool,
    /// Whether the forced-vector solver produced bit-identical f64
    /// distributions to the forced-scalar solver, for every kernel
    /// configuration — the vectorization contract, witnessed in the
    /// committed record and grep-gated by `scripts/verify.sh`.
    simd_bitwise_equal: bool,
    /// Max macroscopic-moment difference between the f32-storage solver
    /// and its f64 twin after the fixed check run — the single-precision
    /// accuracy witness.
    f32_f64_moment_max_diff: f64,
    /// Construction-time autotune sweep of the default kernel
    /// (`KernelSelect::Auto`): every timed candidate plus the winner.
    autotune: Option<AutotuneReport>,
    pool_spawned: usize,
    pool_jobs: u64,
    /// Global-registry snapshot captured after the fixed-step instrumented
    /// pass and *before* any auto-calibrated timing sweep, so its counts
    /// are byte-identical across identical runs at the same worker count.
    obs: hemocloud_obs::Snapshot,
}

/// The four kernel configurations the sparse solver executes.
fn sparse_configs() -> [KernelConfig; 4] {
    [
        KernelConfig::sparse(Propagation::Ab, Layout::Aos),
        KernelConfig::sparse(Propagation::Ab, Layout::Soa),
        KernelConfig::sparse(Propagation::Aa, Layout::Aos),
        KernelConfig::sparse(Propagation::Aa, Layout::Soa),
    ]
}

/// Max component-wise difference between AA natural-order moments and AB
/// post-stream moments after `steps` (even) steps from the shared rest
/// start — the fast correctness smoke for the in-place kernel.
fn aa_ab_moment_max_diff(mesh: &FluidMesh, steps: u64) -> f64 {
    assert!(steps % 2 == 0, "AA readout needs an even step count");
    let mut ab = Solver::new(mesh.clone(), SolverConfig::default());
    let mut aa = Solver::new(
        mesh.clone(),
        SolverConfig {
            kernel: KernelConfig::sparse(Propagation::Aa, Layout::Soa),
            ..Default::default()
        },
    );
    for _ in 0..steps {
        ab.step();
        aa.step();
    }
    let mut max_diff = 0.0f64;
    for cell in 0..mesh.len() {
        let (r0, x0, y0, z0) = ab.post_stream_macroscopics(cell);
        let (r1, x1, y1, z1) = aa.macroscopics(cell);
        for d in [r0 - r1, x0 - x1, y0 - y1, z0 - z1] {
            max_diff = max_diff.max(d.abs());
        }
    }
    max_diff
}

/// `true` iff, for every kernel configuration, `steps` (even) steps under
/// `SimdPath::Vector` produce bit-identical f64 distributions to the same
/// run under `SimdPath::Scalar` — the tentpole guarantee of the explicit
/// vectorization, checked here on the real bench geometry so the committed
/// JSON is a durable witness.
fn simd_bitwise_equal(mesh: &FluidMesh, steps: u64) -> bool {
    assert!(steps % 2 == 0, "AA comparison needs an even step count");
    sparse_configs().iter().all(|&kernel| {
        let run = |simd: SimdPath| {
            let mut s = Solver::new(
                mesh.clone(),
                SolverConfig {
                    kernel,
                    simd,
                    ..Default::default()
                },
            );
            s.run(steps);
            s
        };
        let scalar = run(SimdPath::Scalar);
        let vector = run(SimdPath::Vector);
        scalar.distributions() == vector.distributions()
    })
}

/// Max component-wise macroscopic difference between an f32-storage solver
/// and its f64 twin (same AB/SoA kernel, same steps) — the accuracy bound
/// single precision must hold to earn its halved resident footprint.
fn f32_f64_moment_max_diff(mesh: &FluidMesh, steps: u64) -> f64 {
    let run = |precision: Precision| {
        let mut s = Solver::new(
            mesh.clone(),
            SolverConfig {
                kernel: KernelConfig::sparse_with_precision(
                    Propagation::Ab,
                    Layout::Soa,
                    precision,
                ),
                ..Default::default()
            },
        );
        s.run(steps);
        s
    };
    let double = run(Precision::Double);
    let single = run(Precision::Single);
    let mut max_diff = 0.0f64;
    for cell in 0..mesh.len() {
        let (r0, x0, y0, z0) = double.macroscopics(cell);
        let (r1, x1, y1, z1) = single.macroscopics(cell);
        for d in [r0 - r1, x0 - x1, y0 - y1, z0 - z1] {
            max_diff = max_diff.max(d.abs());
        }
    }
    max_diff
}

fn measure() -> Baseline {
    let fast = fast_mode();

    // Shared geometry for every solver measurement.
    let resolution = if fast { 10 } else { 20 };
    let grid = CylinderSpec::default().with_resolution(resolution).build();
    let stats = GeometryStats::measure(&grid);
    let mesh = FluidMesh::build(&grid);
    let mesh_cells = mesh.len();
    let avg_links = average_solid_links(&mesh);

    // Deterministic instrumented pass, run FIRST: a fixed-step solver run
    // forced through the worker pool plus a 4-rank halo exchange, recorded
    // in the process-global registry. The timing sweep below auto-calibrates
    // its iteration counts from wall-clock probes, so its step totals are
    // not reproducible run-to-run; the observability snapshot is captured
    // here, from this fixed workload, before anything adaptive touches the
    // registry — which is what makes `OBS_OUT` byte-identical across two
    // identical runs at the same `RT_POOL_THREADS`.
    let (obs, traversal_bitwise_equal) = {
        let obs_steps = if fast { 12 } else { 32 };
        let mut solver = Solver::new(
            mesh.clone(),
            SolverConfig {
                parallel_threshold: 0, // always exercise the pool path
                ..Default::default()
            },
        );
        solver.run(obs_steps);
        // Same workload under the full locality package (morton + blocks +
        // prefetch + stealing): must be bit-identical — the traversal
        // knobs reorder work, never arithmetic. Stealing also puts the
        // deterministic `pool.chunks` counter into the snapshot.
        let mut tuned = Solver::new(
            mesh.clone(),
            SolverConfig {
                parallel_threshold: 0,
                traversal: TraversalConfig::tuned(),
                ..Default::default()
            },
        );
        tuned.run(obs_steps);
        let bitwise_equal = solver.distributions() == tuned.distributions();
        // Contiguous 4-slab ownership: fixed halo traffic per step, so the
        // lbm.ranked.* byte/message counters land in the snapshot too.
        let ranks = 4usize;
        let per = mesh_cells.div_ceil(ranks);
        let owner: Vec<u32> = (0..mesh_cells).map(|c| (c / per) as u32).collect();
        let mut ranked = RankedSolver::new(
            mesh.clone(),
            RankAssignment::new(owner, ranks),
            SolverConfig::default(),
        );
        ranked.step();
        ranked.step();
        (hemocloud_obs::global().snapshot(), bitwise_equal)
    };

    // STREAM Copy + Triad at full host width, cache-busting sizes. The
    // pair feeds the per-pattern implied-bytes references below.
    let threads = par::max_threads();
    let elements = if fast { 1 << 21 } else { 1 << 24 };
    let reps = if fast { 2 } else { 5 };
    let stream = vec![
        stream_kernel(StreamKernel::Copy, threads, elements, reps),
        stream_kernel(StreamKernel::Triad, threads, elements, reps),
    ];
    let copy_gb_s = stream[0].bandwidth_mb_s / 1e3;
    let triad_gb_s = stream[1].bandwidth_mb_s / 1e3;

    // Sweep every runtime kernel config × three traversal configs at f64,
    // plus the four f32-storage configs at natural order. Steps are timed
    // in pairs so AA (whose even/odd steps do different work and must end
    // in natural order) is measured over a full cycle, and AB identically
    // for fairness. Each row is best-of-3: after the warm-up pass, the
    // timed sampling repeats three times and the fastest attempt wins —
    // the minimum is the attempt least disturbed by the host, which is
    // the right statistic for a bandwidth-bound kernel on a shared box.
    // Row 0 stays the HARVEY default (AB/AoS/natural) so the headline is
    // comparable across baselines.
    let traversals = [
        TraversalConfig::natural(),
        TraversalConfig::morton(),
        TraversalConfig::tuned(),
    ];
    let mut rows: Vec<(KernelConfig, TraversalConfig)> = Vec::new();
    for config in sparse_configs() {
        for traversal in traversals {
            rows.push((config, traversal));
        }
    }
    for config in sparse_configs() {
        rows.push((
            KernelConfig::sparse_with_precision(
                config.propagation,
                config.layout,
                Precision::Single,
            ),
            TraversalConfig::natural(),
        ));
    }
    let attempts = 3; // best-of-3 per row
    let samples = if fast { 2 } else { 4 };
    let mut kernels: Vec<KernelRow> = Vec::new();
    for (config, traversal) in rows {
        let mut solver = Solver::new(
            mesh.clone(),
            SolverConfig {
                kernel: config,
                traversal,
                ..Default::default()
            },
        );
        let simd = solver.simd_label();
        solver.run(2); // warm: touch every resident array
        let mut best_ns = f64::INFINITY;
        for _ in 0..attempts {
            let st = sample_stats(samples, |b| {
                b.iter(|| {
                    solver.step();
                    solver.step();
                })
            });
            best_ns = best_ns.min(st.median_ns);
        }
        let ns_per_update = best_ns / 2.0 / mesh_cells as f64;
        let profile = AccessProfile::for_kernel(&config, avg_links);
        let modeled_bytes_per_update = profile.bytes_per_point(&stats);
        let stream_ref = config.propagation.stream_reference();
        let implied_bytes_per_update = stream_ref.gb_s(copy_gb_s, triad_gb_s) * ns_per_update;
        kernels.push(KernelRow {
            config,
            traversal,
            simd,
            mflups: 1e3 / ns_per_update,
            ns_per_update,
            modeled_bytes_per_update,
            stream_ref,
            implied_bytes_per_update,
            measured_over_modeled: implied_bytes_per_update / modeled_bytes_per_update,
        });
    }

    // Headline solver numbers = the HARVEY default config's row.
    let ab_row = &kernels[0];
    let mflups = ab_row.mflups;
    let ns_per_step = ab_row.ns_per_update * mesh_cells as f64;

    let moment_diff = aa_ab_moment_max_diff(&mesh, 8);
    let simd_equal = simd_bitwise_equal(&mesh, if fast { 6 } else { 12 });
    let f32_diff = f32_f64_moment_max_diff(&mesh, if fast { 20 } else { 50 });

    // Autotune provenance: a `KernelSelect::Auto` construction on the
    // default kernel, recording every timed `simd × traversal` candidate
    // and the winner. The choice is wall-clock only — all candidates
    // compute identical bits — so this is provenance, not physics.
    let autotune = Solver::new(
        mesh.clone(),
        SolverConfig {
            select: KernelSelect::Auto,
            ..Default::default()
        },
    )
    .autotune_report()
    .cloned();

    let pool = pool::global();
    Baseline {
        threads,
        mesh_cells,
        mflups,
        ns_per_step,
        stream,
        kernels,
        aa_ab_moment_max_diff: moment_diff,
        traversal_bitwise_equal,
        simd_bitwise_equal: simd_equal,
        f32_f64_moment_max_diff: f32_diff,
        autotune,
        pool_spawned: pool.spawned_threads(),
        pool_jobs: pool.jobs_run(),
        obs,
    }
}

fn to_json(b: &Baseline) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"lbm_baseline\",\n");
    s.push_str(&format!(
        "  \"provenance\": {{\"git_rev\": \"{}\", \"rustc\": \"{}\", \"kernel_config\": \"{}\"}},\n",
        provenance::json_escape(&provenance::git_rev()),
        provenance::json_escape(&provenance::rustc_version()),
        provenance::json_escape(&KernelConfig::harvey().name()),
    ));
    s.push_str(&format!("  \"fast_mode\": {},\n", fast_mode()));
    s.push_str(&format!("  \"threads\": {},\n", b.threads));
    s.push_str(&format!("  \"mesh_cells\": {},\n", b.mesh_cells));
    s.push_str("  \"solver\": {\n");
    s.push_str(&format!("    \"mflups\": {:.3},\n", b.mflups));
    s.push_str(&format!("    \"ns_per_step\": {:.1}\n", b.ns_per_step));
    s.push_str("  },\n");
    s.push_str("  \"kernels\": [\n");
    for (i, k) in b.kernels.iter().enumerate() {
        let comma = if i + 1 < b.kernels.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"config\": \"{}\", \"traversal\": \"{}\", \"simd\": \"{}\", \"mflups\": {:.3}, \"ns_per_update\": {:.3}, \"modeled_bytes_per_update\": {:.3}, \"stream_ref\": \"{}\", \"implied_bytes_per_update\": {:.3}, \"measured_over_modeled\": {:.4}}}{comma}\n",
            k.config.name(),
            k.traversal.name(),
            k.simd,
            k.mflups,
            k.ns_per_update,
            k.modeled_bytes_per_update,
            k.stream_ref.label(),
            k.implied_bytes_per_update,
            k.measured_over_modeled,
        ));
    }
    s.push_str("  ],\n");
    // `best` ranks the f64 rows only: the f32 rows trade precision for
    // bandwidth and would otherwise win by construction, breaking the
    // cross-baseline comparability of the headline ratio.
    if let Some(best) = b
        .kernels
        .iter()
        .filter(|k| k.config.precision == Precision::Double)
        .max_by(|a, c| a.mflups.total_cmp(&c.mflups))
    {
        s.push_str(&format!(
            "  \"best\": {{\"config\": \"{}\", \"traversal\": \"{}\", \"simd\": \"{}\", \"stealing\": {}, \"mflups\": {:.3}, \"measured_over_modeled\": {:.4}}},\n",
            best.config.name(),
            best.traversal.name(),
            best.simd,
            best.traversal.stealing,
            best.mflups,
            best.measured_over_modeled,
        ));
    }
    if let Some(auto) = &b.autotune {
        s.push_str("  \"autotune\": {\n");
        s.push_str(&format!(
            "    \"simd\": \"{}\", \"traversal\": \"{}\",\n",
            auto.simd.label(),
            auto.traversal.name(),
        ));
        s.push_str("    \"candidates\": [\n");
        for (i, c) in auto.candidates.iter().enumerate() {
            let comma = if i + 1 < auto.candidates.len() { "," } else { "" };
            s.push_str(&format!(
                "      {{\"simd\": \"{}\", \"traversal\": \"{}\", \"seconds\": {:.6}}}{comma}\n",
                c.simd.label(),
                c.traversal,
                c.seconds,
            ));
        }
        s.push_str("    ]\n");
        s.push_str("  },\n");
    }
    s.push_str(&format!(
        "  \"traversal_bitwise_equal\": {},\n",
        b.traversal_bitwise_equal
    ));
    s.push_str(&format!(
        "  \"simd_bitwise_equal\": {},\n",
        b.simd_bitwise_equal
    ));
    s.push_str(&format!(
        "  \"aa_ab_moment_max_diff\": {:e},\n",
        b.aa_ab_moment_max_diff
    ));
    s.push_str(&format!(
        "  \"f32_f64_moment_max_diff\": {:e},\n",
        b.f32_f64_moment_max_diff
    ));
    s.push_str("  \"stream\": [\n");
    for (i, m) in b.stream.iter().enumerate() {
        let comma = if i + 1 < b.stream.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"threads\": {}, \"elements\": {}, \"gb_s\": {:.3}}}{comma}\n",
            m.kernel.name(),
            m.threads,
            m.elements,
            m.bandwidth_mb_s / 1e3,
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"pool\": {\n");
    s.push_str(&format!("    \"spawned_threads\": {},\n", b.pool_spawned));
    s.push_str(&format!("    \"jobs_run\": {}\n", b.pool_jobs));
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

fn main() {
    let baseline = measure();

    let mut failures = Vec::new();
    if !(baseline.mflups.is_finite() && baseline.mflups > 0.0) {
        failures.push(format!("solver mflups {}", baseline.mflups));
    }
    for m in &baseline.stream {
        if !(m.bandwidth_mb_s.is_finite() && m.bandwidth_mb_s > 0.0) {
            failures.push(format!("stream {} {}", m.kernel.name(), m.bandwidth_mb_s));
        }
    }
    for k in &baseline.kernels {
        if !(k.mflups.is_finite() && k.mflups > 0.0)
            || !(k.modeled_bytes_per_update.is_finite() && k.modeled_bytes_per_update > 0.0)
            || !(k.implied_bytes_per_update.is_finite() && k.implied_bytes_per_update > 0.0)
            || !(k.measured_over_modeled.is_finite() && k.measured_over_modeled > 0.0)
        {
            failures.push(format!(
                "kernel row {} ({}) has bad numbers",
                k.config.name(),
                k.traversal.name()
            ));
        }
    }
    if !(baseline.aa_ab_moment_max_diff <= 1e-12) {
        failures.push(format!(
            "AA/AB moment divergence {} exceeds 1e-12",
            baseline.aa_ab_moment_max_diff
        ));
    }
    if !baseline.traversal_bitwise_equal {
        failures.push(
            "tuned traversal diverged bitwise from the default-order solver".to_string(),
        );
    }
    if !baseline.simd_bitwise_equal {
        failures.push(
            "vectorized solver diverged bitwise from the scalar solver".to_string(),
        );
    }
    if !(baseline.f32_f64_moment_max_diff <= 1e-3) {
        failures.push(format!(
            "f32 storage diverged from f64 by {} (bound 1e-3)",
            baseline.f32_f64_moment_max_diff
        ));
    }
    match &baseline.autotune {
        Some(auto) if auto.candidates.len() >= 4 => {}
        Some(auto) => failures.push(format!(
            "autotune sweep timed only {} candidates",
            auto.candidates.len()
        )),
        None => failures.push("autotune sweep produced no report".to_string()),
    }

    let json = to_json(&baseline);
    let path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_lbm.json".to_string());
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));

    println!(
        "bench_baseline: {} cells, {} threads -> {:.2} MFLUPS; STREAM {}",
        baseline.mesh_cells,
        baseline.threads,
        baseline.mflups,
        baseline
            .stream
            .iter()
            .map(|m| format!("{} {:.2} GB/s", m.kernel.name(), m.bandwidth_mb_s / 1e3))
            .collect::<Vec<_>>()
            .join(", "),
    );
    for k in &baseline.kernels {
        println!(
            "bench_baseline: {:<22} {:<24} {:<12} {:>8.2} MFLUPS  modeled {:>6.1} B/update  implied {:>6.1} B/update vs {} (x{:.2})",
            k.config.name(),
            k.traversal.name(),
            k.simd,
            k.mflups,
            k.modeled_bytes_per_update,
            k.implied_bytes_per_update,
            k.stream_ref.label(),
            k.measured_over_modeled,
        );
    }
    if let Some(auto) = &baseline.autotune {
        println!(
            "bench_baseline: autotune picked {} / {} from {} candidates",
            auto.simd.label(),
            auto.traversal.name(),
            auto.candidates.len(),
        );
    }
    println!(
        "bench_baseline: AA/AB moment max diff {:.2e}; tuned traversal bitwise equal: {}",
        baseline.aa_ab_moment_max_diff, baseline.traversal_bitwise_equal
    );
    println!(
        "bench_baseline: SIMD bitwise equal: {}; f32 vs f64 moment max diff {:.2e}",
        baseline.simd_bitwise_equal, baseline.f32_f64_moment_max_diff
    );
    println!("bench_baseline: wrote {path}");

    // Deterministic metrics snapshot: counters and sample counts from the
    // fixed-step instrumented pass (wall-clock sample values are demoted
    // to counts, so the render is reproducible per worker count). The
    // snapshot was captured before the auto-calibrated sweeps, whose
    // timing-dependent step totals would otherwise leak into it.
    let snapshot = &baseline.obs;
    println!(
        "bench_baseline: metrics snapshot ({} entries):",
        snapshot.entries().len()
    );
    print!("{}", snapshot.to_text(hemocloud_obs::Render::Deterministic));
    if let Ok(obs_path) = std::env::var("OBS_OUT") {
        let obs_json = snapshot.to_json(hemocloud_obs::Render::Deterministic);
        std::fs::write(&obs_path, &obs_json).unwrap_or_else(|e| panic!("writing {obs_path}: {e}"));
        println!("bench_baseline: wrote {obs_path}");
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("bench_baseline: ERROR: {f}");
        }
        std::process::exit(1);
    }
}

//! The repo's perf trajectory baseline: measure the real LBM solver step
//! and the real STREAM kernels on this host through `hemocloud_rt::bench`
//! and persist the numbers to `BENCH_lbm.json` so every PR has comparable
//! throughput data (the paper's whole premise — Eqs. 6/9 — is that these
//! two numbers are linked by memory bandwidth).
//!
//! * `RT_BENCH_FAST=1` shrinks the mesh, array sizes, and sample counts
//!   so CI can smoke-run it in seconds (`scripts/verify.sh` does).
//! * `BENCH_OUT=<path>` redirects the JSON (default: `BENCH_lbm.json` in
//!   the current directory).
//!
//! The binary exits non-zero if any throughput it measured is non-finite
//! or non-positive, so the verify gate cannot silently record garbage.

use hemocloud_geometry::anatomy::CylinderSpec;
use hemocloud_lbm::mesh::FluidMesh;
use hemocloud_lbm::solver::{Solver, SolverConfig};
use hemocloud_microbench::stream::{stream_kernel, StreamKernel, StreamMeasurement};
use hemocloud_rt::bench::sample_stats;
use hemocloud_rt::{par, pool};

fn fast_mode() -> bool {
    std::env::var("RT_BENCH_FAST").is_ok_and(|v| v != "0")
}

struct Baseline {
    threads: usize,
    mesh_cells: usize,
    mflups: f64,
    ns_per_step: f64,
    stream: Vec<StreamMeasurement>,
    pool_spawned: usize,
    pool_jobs: u64,
}

fn measure() -> Baseline {
    let fast = fast_mode();

    // Solver MFLUPS on a cylinder sized like the kernel benches.
    let resolution = if fast { 10 } else { 20 };
    let grid = CylinderSpec::default().with_resolution(resolution).build();
    let mesh = FluidMesh::build(&grid);
    let mesh_cells = mesh.len();
    let mut solver = Solver::new(mesh, SolverConfig::default());
    solver.run(2); // warm: touch both distribution arrays
    let stats = sample_stats(10, |b| b.iter(|| solver.step()));
    let ns_per_step = stats.median_ns;
    let mflups = mesh_cells as f64 / (ns_per_step * 1e-9) / 1e6;

    // STREAM Copy + Triad at full host width, cache-busting sizes.
    let threads = par::max_threads();
    let elements = if fast { 1 << 21 } else { 1 << 24 };
    let reps = if fast { 2 } else { 5 };
    let stream = vec![
        stream_kernel(StreamKernel::Copy, threads, elements, reps),
        stream_kernel(StreamKernel::Triad, threads, elements, reps),
    ];

    let pool = pool::global();
    Baseline {
        threads,
        mesh_cells,
        mflups,
        ns_per_step,
        stream,
        pool_spawned: pool.spawned_threads(),
        pool_jobs: pool.jobs_run(),
    }
}

fn to_json(b: &Baseline) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"lbm_baseline\",\n");
    s.push_str(&format!("  \"fast_mode\": {},\n", fast_mode()));
    s.push_str(&format!("  \"threads\": {},\n", b.threads));
    s.push_str(&format!("  \"mesh_cells\": {},\n", b.mesh_cells));
    s.push_str("  \"solver\": {\n");
    s.push_str(&format!("    \"mflups\": {:.3},\n", b.mflups));
    s.push_str(&format!("    \"ns_per_step\": {:.1}\n", b.ns_per_step));
    s.push_str("  },\n");
    s.push_str("  \"stream\": [\n");
    for (i, m) in b.stream.iter().enumerate() {
        let comma = if i + 1 < b.stream.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"threads\": {}, \"elements\": {}, \"gb_s\": {:.3}}}{comma}\n",
            m.kernel.name(),
            m.threads,
            m.elements,
            m.bandwidth_mb_s / 1e3,
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"pool\": {\n");
    s.push_str(&format!("    \"spawned_threads\": {},\n", b.pool_spawned));
    s.push_str(&format!("    \"jobs_run\": {}\n", b.pool_jobs));
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

fn main() {
    let baseline = measure();

    let mut ok = baseline.mflups.is_finite() && baseline.mflups > 0.0;
    for m in &baseline.stream {
        ok &= m.bandwidth_mb_s.is_finite() && m.bandwidth_mb_s > 0.0;
    }

    let json = to_json(&baseline);
    let path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_lbm.json".to_string());
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));

    println!(
        "bench_baseline: {} cells, {} threads -> {:.2} MFLUPS; STREAM {}",
        baseline.mesh_cells,
        baseline.threads,
        baseline.mflups,
        baseline
            .stream
            .iter()
            .map(|m| format!("{} {:.2} GB/s", m.kernel.name(), m.bandwidth_mb_s / 1e3))
            .collect::<Vec<_>>()
            .join(", "),
    );
    println!("bench_baseline: wrote {path}");

    if !ok {
        eprintln!("bench_baseline: ERROR: non-finite or non-positive throughput measured");
        std::process::exit(1);
    }
}

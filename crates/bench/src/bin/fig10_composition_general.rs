//! Regenerates paper **Fig. 10**: composition of maximum task runtimes per
//! core count as predicted by the **generalized** model — memory access
//! vs. communication bandwidth vs. communication latency — for HARVEY's
//! cylinder on CSP-2 (without EC).
//!
//! Run: `cargo run --release -p hemocloud-bench --bin fig10_composition_general`

use hemocloud_bench::print_table;
use hemocloud_bench::workloads::quick_mode;
use hemocloud_cluster::platform::Platform;
use hemocloud_core::characterize::characterize;
use hemocloud_core::general::GeneralModel;
use hemocloud_core::workload::Workload;
use hemocloud_geometry::anatomy::CylinderSpec;

const SEED: u64 = 2023;

fn main() {
    let platform = Platform::csp2();
    let character = characterize(&platform, SEED);
    let resolution = if quick_mode() { 16 } else { 48 };
    let cylinder = CylinderSpec::default().with_resolution(resolution).build();
    let workload = Workload::harvey(&cylinder, 100);
    let model = GeneralModel::from_characterization(&character, &workload);

    let mut rows = Vec::new();
    for ranks in [4usize, 8, 16, 36, 72, 108, 144] {
        let p = model.predict(ranks);
        let c = p.composition;
        let total = c.total_s();
        rows.push(vec![
            ranks.to_string(),
            format!("{:.1}", c.mem_s * 1e6),
            format!("{:.1}", c.comm_bandwidth_s * 1e6),
            format!("{:.1}", c.comm_latency_s * 1e6),
            format!("{:.1}", total * 1e6),
            format!("{:.0}%", 100.0 * c.comm_latency_s / total),
        ]);
    }
    print_table(
        "Fig. 10: generalized-model runtime composition, HARVEY cylinder on CSP-2",
        &[
            "Ranks",
            "Memory (µs)",
            "Comm bandwidth (µs)",
            "Comm latency (µs)",
            "Total (µs)",
            "Latency %",
        ],
        &rows,
    );
    println!("\nExpected shape: the bulk of internodal communication time is due to");
    println!("latency, not insufficient bandwidth — the paper's CSP-2 conclusion.");
}

//! Regenerates paper **Fig. 9**: composition of maximum task runtimes per
//! core count as predicted by the **direct** model — memory access vs.
//! intranodal vs. internodal communication — for HARVEY's cylinder on
//! CSP-2 (without EC).
//!
//! Run: `cargo run --release -p hemocloud-bench --bin fig9_composition_direct`

use hemocloud_bench::print_table;
use hemocloud_bench::workloads::quick_mode;
use hemocloud_cluster::platform::Platform;
use hemocloud_core::characterize::characterize;
use hemocloud_core::direct::DirectModel;
use hemocloud_core::workload::Workload;
use hemocloud_geometry::anatomy::CylinderSpec;

const SEED: u64 = 2023;

fn main() {
    let platform = Platform::csp2();
    let character = characterize(&platform, SEED);
    let resolution = if quick_mode() { 16 } else { 48 };
    let cylinder = CylinderSpec::default().with_resolution(resolution).build();
    let workload = Workload::harvey(&cylinder, 100);
    let model = DirectModel::new(character, workload);

    let mut rows = Vec::new();
    for ranks in [4usize, 8, 16, 36, 72, 108, 144] {
        if let Some(p) = model.predict(ranks) {
            let c = p.composition;
            let total = c.total_s();
            rows.push(vec![
                ranks.to_string(),
                format!("{:.1}", c.mem_s * 1e6),
                format!("{:.1}", c.intra_s * 1e6),
                format!("{:.1}", c.inter_s * 1e6),
                format!("{:.1}", total * 1e6),
                format!("{:.0}%", 100.0 * c.mem_s / total),
                format!("{:.0}%", 100.0 * c.inter_s / total),
            ]);
        }
    }
    print_table(
        "Fig. 9: direct-model runtime composition, HARVEY cylinder on CSP-2",
        &[
            "Ranks",
            "Memory (µs)",
            "Intranodal (µs)",
            "Internodal (µs)",
            "Total (µs)",
            "Mem %",
            "Inter %",
        ],
        &rows,
    );
    println!("\nExpected shape: memory dominates at low rank counts; internodal");
    println!("communication grows to dominate at high counts; intranodal stays");
    println!("negligible throughout (justifying the general model's neglect of it).");
}

//! Regenerates paper **Fig. 11**: heatmap of the relative value r_{B,A}
//! (Eq. 17) of computing infrastructures, using generalized-model
//! predictions of HARVEY running the aorta geometry on 2048 cores.
//!
//! 2048 cores exceeds every cloud allocation the paper tested — this is
//! exactly the generalized model's extrapolation role. The aorta census is
//! scaled to the paper's "high-resolution" regime (tens of millions of
//! fluid points) where memory time and latency trade off as in Fig. 11.
//!
//! Run: `cargo run --release -p hemocloud-bench --bin fig11_value_heatmap`

use hemocloud_bench::print_table;
use hemocloud_bench::workloads::quick_mode;
use hemocloud_cluster::platform::Platform;
use hemocloud_core::characterize::characterize;
use hemocloud_core::general::GeneralModel;
use hemocloud_core::value::{cost_weighted_matrix, relative_value_matrix};
use hemocloud_core::workload::Workload;
use hemocloud_geometry::anatomy::AortaSpec;

const SEED: u64 = 2023;
const RANKS: usize = 2048;
/// Target fluid points for the extrapolated high-resolution aorta.
const TARGET_POINTS: f64 = 2.75e7;

fn main() {
    let resolution = if quick_mode() { 12 } else { 28 };
    let aorta = AortaSpec::default().with_resolution(resolution).build();
    let base = Workload::harvey(&aorta, 100);
    let factor = (TARGET_POINTS / base.points() as f64).cbrt();
    let workload = base.scaled(factor);
    println!(
        "Aorta census: {} points voxelized, scaled x{:.2} linear -> {} points",
        base.points(),
        factor,
        workload.points()
    );

    let platforms = Platform::fig11_platforms();
    let mut entries = Vec::new();
    let mut cost_entries = Vec::new();
    for p in &platforms {
        let character = characterize(p, SEED);
        // Calibrate the empirical fits on the voxelized grid, then predict
        // with the scaled census.
        let calibrated = GeneralModel::from_characterization(&character, &base);
        let model = GeneralModel::with_models(
            &character,
            &workload,
            *calibrated.imbalance_model(),
            *calibrated.event_model(),
        );
        let prediction = model.predict(RANKS);
        let nodes = p.nodes_for_ranks(RANKS);
        let dollars_per_hour = nodes as f64 * p.price_per_node_hour;
        entries.push((p.abbrev.to_string(), prediction.mflups));
        cost_entries.push((p.abbrev.to_string(), prediction.mflups, dollars_per_hour));
        println!(
            "{:>9}: {:.1} MFLUPS predicted on {} nodes (${:.2}/h)",
            p.abbrev, prediction.mflups, nodes, dollars_per_hour
        );
    }

    let matrix = relative_value_matrix(&entries);
    let mut rows = Vec::new();
    for (b, label) in matrix.labels.iter().enumerate() {
        let mut row = vec![label.clone()];
        for a in 0..matrix.labels.len() {
            row.push(format!("{:.4}", matrix.get(b, a)));
        }
        rows.push(row);
    }
    let mut header: Vec<&str> = vec!["2048 Cores - Aorta"];
    header.extend(matrix.labels.iter().map(|s| s.as_str()));
    print_table(
        "Fig. 11: relative value r_{B,A} (row B vs column A), generalized model",
        &header,
        &rows,
    );
    println!("\nPaper reference: r(CSP-2, TRC)=1.2323, r(EC, TRC)=1.3733, r(EC, CSP-2)=1.1144");
    println!("Expected shape: CSP-2 EC > CSP-2 > TRC in raw throughput at this scale.");

    // Extension: the cost-weighted view the paper's Discussion proposes.
    let weighted = cost_weighted_matrix(&cost_entries);
    let mut rows = Vec::new();
    for (b, label) in weighted.labels.iter().enumerate() {
        let mut row = vec![label.clone()];
        for a in 0..weighted.labels.len() {
            row.push(format!("{:.4}", weighted.get(b, a)));
        }
        rows.push(row);
    }
    let mut header: Vec<&str> = vec!["Cost-weighted"];
    header.extend(weighted.labels.iter().map(|s| s.as_str()));
    print_table(
        "Extension: cost-weighted relative value (throughput per dollar; synthetic prices)",
        &header,
        &rows,
    );
}

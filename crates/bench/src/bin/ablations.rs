//! Ablation study for the design choices called out in DESIGN.md §5:
//!
//! 1. two-line vs. single proportional bandwidth fit;
//! 2. direct vs. generalized model accuracy;
//! 3. latency-pinned vs. free-intercept PingPong fits;
//! 4. RCB vs. block vs. slab decomposition;
//! 5. iterative refinement on vs. off.
//!
//! Run: `cargo run --release -p hemocloud-bench --bin ablations`

use hemocloud_bench::print_table;
use hemocloud_cluster::exec::{simulate_geometry, Overheads};
use hemocloud_cluster::network::LinkKind;
use hemocloud_cluster::pingpong::{default_message_sizes, fit_pingpong, pingpong_sweep};
use hemocloud_cluster::platform::Platform;
use hemocloud_cluster::stream_bench::{stream_sweep, to_fit_arrays};
use hemocloud_core::characterize::characterize;
use hemocloud_core::direct::DirectModel;
use hemocloud_core::general::GeneralModel;
use hemocloud_core::refine::ModelCalibrator;
use hemocloud_core::workload::Workload;
use hemocloud_decomp::halo::DecompAnalysis;
use hemocloud_decomp::partition::{BlockPartition, SlabPartition};
use hemocloud_decomp::rcb::RcbPartition;
use hemocloud_fitting::linear::{fit_line, fit_line_fixed_intercept, fit_proportional};
use hemocloud_fitting::metrics::mape;
use hemocloud_fitting::two_line::fit_two_line;
use hemocloud_geometry::anatomy::{CerebralSpec, CylinderSpec};
use hemocloud_lbm::kernel::KernelConfig;

const SEED: u64 = 2023;

fn main() {
    ablation_bandwidth_model();
    ablation_model_accuracy();
    ablation_latency_convention();
    ablation_decomposition();
    ablation_refinement();
}

/// Ablation 1 — Eq. 8's two-line model vs. a naive proportional line:
/// error in the full-node bandwidth estimate the models divide by.
fn ablation_bandwidth_model() {
    let mut rows = Vec::new();
    for p in Platform::all() {
        let (ns, bs) = to_fit_arrays(&stream_sweep(&p, SEED));
        let truth = p.full_node_bandwidth();
        let two = fit_two_line(&ns, &bs).unwrap().eval(p.cores_per_node as f64);
        let one = fit_proportional(&ns, &bs).unwrap().eval(p.cores_per_node as f64);
        rows.push(vec![
            p.abbrev.to_string(),
            format!("{truth:.0}"),
            format!("{two:.0} ({:+.1}%)", 100.0 * (two - truth) / truth),
            format!("{one:.0} ({:+.1}%)", 100.0 * (one - truth) / truth),
        ]);
    }
    print_table(
        "Ablation 1: full-node bandwidth estimate, two-line (Eq. 8) vs proportional fit",
        &["System", "Truth MB/s", "Two-line", "Single line"],
        &rows,
    );
}

/// Ablation 2 — direct vs. generalized model: MAPE against the simulated
/// testbed over a rank sweep.
fn ablation_model_accuracy() {
    let platform = Platform::csp2();
    let character = characterize(&platform, SEED);
    let grid = CylinderSpec::default().with_resolution(24).build();
    let workload = Workload::harvey(&grid, 100);
    let direct = DirectModel::new(character.clone(), workload.clone());
    let general = GeneralModel::from_characterization(&character, &workload);
    let overheads = Overheads::default();
    let cfg = KernelConfig::harvey();

    let ranks = [4usize, 8, 16, 36, 72, 108, 144];
    let mut measured = Vec::new();
    let mut d_pred = Vec::new();
    let mut g_pred = Vec::new();
    for &r in &ranks {
        let m = simulate_geometry(&platform, &grid, &cfg, r, 100, &overheads, SEED, 0.0).unwrap();
        measured.push(m.mflups);
        d_pred.push(direct.predict(r).unwrap().mflups);
        g_pred.push(general.predict(r).mflups);
    }
    print_table(
        "Ablation 2: model accuracy vs simulated testbed (HARVEY cylinder on CSP-2)",
        &["Model", "MAPE (%)", "needs decomposition?"],
        &[
            vec![
                "direct".into(),
                format!("{:.1}", mape(&d_pred, &measured)),
                "yes (re-decomposes per rank count)".into(),
            ],
            vec![
                "general".into(),
                format!("{:.1}", mape(&g_pred, &measured)),
                "no (closed form; extrapolates)".into(),
            ],
        ],
    );
}

/// Ablation 3 — the paper pins latency to the zero-byte time; a free
/// intercept fits large messages better but misprices small ones.
fn ablation_latency_convention() {
    let p = Platform::csp2();
    let samples = pingpong_sweep(&p, LinkKind::Internodal, &default_message_sizes(), SEED);
    let xs: Vec<f64> = samples.iter().map(|s| s.bytes as f64).collect();
    let ys: Vec<f64> = samples.iter().map(|s| s.time_us).collect();
    let pinned = fit_line_fixed_intercept(&xs, &ys, ys[0]).unwrap();
    let free = fit_line(&xs, &ys).unwrap();
    let small = 152.0 * 8.0; // one boundary point's distributions
    let rows = vec![
        vec![
            "pinned (paper)".into(),
            format!("{:.2}", pinned.intercept),
            format!("{:.2}", pinned.eval(small)),
            format!("{:.1}", pinned.eval(4_194_304.0)),
        ],
        vec![
            "free intercept".into(),
            format!("{:.2}", free.intercept),
            format!("{:.2}", free.eval(small)),
            format!("{:.1}", free.eval(4_194_304.0)),
        ],
        vec![
            "measured".into(),
            format!("{:.2}", ys[0]),
            "-".into(),
            format!("{:.1}", ys[ys.len() - 1]),
        ],
    ];
    print_table(
        "Ablation 3: latency convention (CSP-2 internodal; times in µs)",
        &["Fit", "latency", "t(1.2 kB halo)", "t(4 MB)"],
        &rows,
    );
    let fit = fit_pingpong(&samples).unwrap();
    println!(
        "The pinned convention keeps small halo messages honest ({:.2} µs \
         floor);\nlatency-dominated LBM exchanges are exactly that regime. b = {:.0} MB/s.",
        fit.latency_us, fit.bandwidth_mb_s
    );
}

/// Ablation 4 — RCB vs. block vs. slab decomposition on a sparse anatomy:
/// balance and halo volume.
fn ablation_decomposition() {
    let g = CerebralSpec::default()
        .with_generations(5)
        .with_resolution(14)
        .build();
    let n = 32usize;
    let rcb = DecompAnalysis::analyze(&g, &RcbPartition::new(&g, n));
    let block = DecompAnalysis::analyze(&g, &BlockPartition::new(g.dims(), n));
    let slab = DecompAnalysis::analyze(&g, &SlabPartition::new(g.dims(), n));
    let row = |name: &str, a: &DecompAnalysis| {
        vec![
            name.into(),
            format!("{:.2}", a.z_factor()),
            a.max_send_points().to_string(),
            a.max_messages().to_string(),
        ]
    };
    print_table(
        &format!(
            "Ablation 4: decomposition of the cerebral tree ({} fluid points, {n} tasks)",
            g.fluid_count()
        ),
        &["Strategy", "z (imbalance)", "max halo pts", "max peers"],
        &[
            row("RCB (used)", &rcb),
            row("block grid", &block),
            row("slab", &slab),
        ],
    );
}

/// Ablation 5 — refinement on vs. off: prediction error before and after
/// one calibration pass.
fn ablation_refinement() {
    let platform = Platform::csp2();
    let character = characterize(&platform, SEED);
    let grid = CylinderSpec::default().with_resolution(24).build();
    let workload = Workload::harvey(&grid, 100);
    let general = GeneralModel::from_characterization(&character, &workload);
    let overheads = Overheads::default();
    let cfg = KernelConfig::harvey();

    let mut calibrator = ModelCalibrator::new();
    for r in [4usize, 8, 16, 36, 72, 144] {
        let m = simulate_geometry(&platform, &grid, &cfg, r, 100, &overheads, SEED, 0.0).unwrap();
        calibrator.record(r, general.predict(r).step_time_s, m.step_time_s);
    }
    print_table(
        "Ablation 5: iterative refinement (general model, cylinder on CSP-2)",
        &["Variant", "MAPE (%)"],
        &[
            vec!["raw model".into(), format!("{:.1}", calibrator.raw_error_pct())],
            vec![
                format!("calibrated (k = {:.3})", calibrator.correction_factor()),
                format!("{:.1}", calibrator.calibrated_error_pct()),
            ],
        ],
    );
}

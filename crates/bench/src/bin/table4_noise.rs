//! Regenerates paper **Table IV**: HARVEY aorta performance statistics
//! from measurements at 6-hour intervals over 7 days — noise variability
//! on the dedicated (CSP-1) and on-demand (CSP-2 Small) clouds.
//!
//! Run: `cargo run --release -p hemocloud-bench --bin table4_noise`

use hemocloud_bench::print_table;
use hemocloud_bench::workloads::quick_mode;
use hemocloud_cluster::exec::{simulate, Overheads, WorkloadTiming};
use hemocloud_cluster::platform::Platform;
use hemocloud_fitting::metrics::{coefficient_of_variation, mean, std_dev};
use hemocloud_geometry::anatomy::AortaSpec;
use hemocloud_lbm::access_profile::AccessProfile;
use hemocloud_lbm::kernel::KernelConfig;

const SEED: u64 = 2023;

fn main() {
    let resolution = if quick_mode() { 14 } else { 40 };
    let aorta = AortaSpec::default().with_resolution(resolution).build();
    let cfg = KernelConfig::harvey();
    let overheads = Overheads::default();
    let avg_links = hemocloud_cluster::exec::measured_avg_solid_links(&aorta);
    let profile = AccessProfile::for_kernel(&cfg, avg_links);

    // 7 days at 6-hour intervals = 28 samples, as in the paper.
    let times: Vec<f64> = (0..28).map(|i| i as f64 * 6.0).collect();

    let cases: Vec<(Platform, Vec<usize>)> = vec![
        (Platform::csp1(), vec![16, 32, 48]),
        (Platform::csp2_small(), vec![16, 32, 64, 128]),
    ];

    let mut rows = Vec::new();
    for (platform, rank_list) in &cases {
        for &ranks in rank_list {
            // Decompose once; only the noise varies across the 7 days.
            let partition = hemocloud_decomp::rcb::RcbPartition::new(&aorta, ranks);
            let analysis =
                hemocloud_decomp::halo::DecompAnalysis::analyze(&aorta, &partition);
            let placement = hemocloud_decomp::placement::Placement::contiguous(
                ranks,
                platform.cores_per_node,
            );
            let task_bytes = hemocloud_decomp::halo::bytes_per_task(
                &aorta,
                &partition,
                profile.bulk_bytes,
                profile.wall_bytes,
            );
            let workload = WorkloadTiming {
                analysis: &analysis,
                placement: &placement,
                task_bytes: &task_bytes,
                comm_bytes_per_point: profile.boundary_point_bytes,
                steps: 100,
            };
            let samples: Vec<f64> = times
                .iter()
                .map(|&t| simulate(platform, &workload, &overheads, SEED, t).mflups)
                .collect();
            rows.push(vec![
                platform.abbrev.to_string(),
                ranks.to_string(),
                format!("{:.2}", mean(&samples)),
                format!("{:.2}", std_dev(&samples)),
                format!("{:.3}", coefficient_of_variation(&samples)),
            ]);
        }
    }
    print_table(
        "Table IV: HARVEY aorta performance, 6-hour intervals over 7 days (28 samples)",
        &[
            "System",
            "MPI Ranks",
            "Mean MFLUPS",
            "Standard Deviation",
            "Variation Coefficient",
        ],
        &rows,
    );
    println!("\nPaper reference CVs: 0.004-0.02 — noise variability is small and");
    println!("not significantly greater on the cloud than on a dedicated cluster.");
}

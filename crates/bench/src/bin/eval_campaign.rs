//! Campaign evaluation sweep: run the scheduler across the full grid of
//! seeds × geometries × platform mixes × fault rates × kernel
//! configurations with every invariant checker armed (DESIGN.md §17),
//! and persist the aggregated [`SweepReport`] as `EVAL_campaign.json` —
//! the committed evidence that the control loop's budget, SLO, billing,
//! guard and Eq. 9 promises hold everywhere in the swept space.
//!
//! * `EVAL_OUT=<path>` redirects the JSON (default: `EVAL_campaign.json`
//!   in the current directory).
//! * `RT_BENCH_FAST=1` runs the 16-cell smoke grid instead of the full
//!   120-cell grid — the CI gate; the committed artifact uses the full
//!   grid.
//!
//! The binary exits non-zero unless every acceptance property holds:
//!
//! 1. zero invariant violations across every cell (budget ceilings, SLO
//!    books, billed ≥ busy, guard-kill exactness, Eq. 9 byte equality,
//!    outcome conservation, finite statistics);
//! 2. the grid floor: ≥ 48 cells on the full grid, ≥ 2 seeds,
//!    ≥ 4 geometries (including stenosis and aneurysm), ≥ 2 mixes and
//!    ≥ 2 fault rates;
//! 3. the Eq. 9 reconciliation and the guard-exactness rebuild both
//!    actually ran (non-vacuous evaluation);
//! 4. the headline statistics — p50/p99 placement error, mean cost
//!    regret vs the noise-free oracle, utilization — exist and are
//!    finite;
//! 5. the rendered JSON carries no `nan`/`inf` token anywhere.
//!
//! [`SweepReport`]: hemocloud_sched::SweepReport

use hemocloud_bench::provenance;
use hemocloud_sched::{run_sweep, SweepGrid};

fn main() {
    let fast = std::env::var("RT_BENCH_FAST").is_ok();
    let out = std::env::var("EVAL_OUT").unwrap_or_else(|_| "EVAL_campaign.json".to_string());
    let (grid, grid_name) = if fast {
        (SweepGrid::smoke(), "smoke")
    } else {
        (SweepGrid::full(), "full")
    };

    let report = run_sweep(&grid);
    let mut failures = Vec::new();

    // 1. Zero violations, with each one surfaced for the log.
    for v in &report.violations {
        failures.push(format!("invariant violation: {v}"));
    }

    // 2. Grid floor (the full grid must stay a real sweep).
    if report.cells.len() != grid.cell_count() {
        failures.push(format!(
            "ran {} cells, grid declares {}",
            report.cells.len(),
            grid.cell_count()
        ));
    }
    if !fast {
        if report.cells.len() < 48 {
            failures.push(format!("full grid shrank to {} cells (< 48)", report.cells.len()));
        }
        if grid.seeds.len() < 2 || grid.geometries.len() < 4 || grid.mixes.len() < 2 {
            failures.push("full grid lost an axis (seeds/geometries/mixes floor)".to_string());
        }
        for required in ["sten8", "aneu8"] {
            if !grid.geometries.iter().any(|g| g.key == required) {
                failures.push(format!("full grid dropped required geometry {required}"));
            }
        }
    }
    if grid.fault_rates.len() < 2 {
        failures.push("grid needs at least two fault rates".to_string());
    }

    // 3. Non-vacuous checkers.
    if report.eq9_cells_checked == 0 {
        failures.push("Eq. 9 reconciliation never armed".to_string());
    }
    if report.guard_exact_checks == 0 {
        failures.push("guard-exactness rebuild never ran".to_string());
    }

    // 4. Headline statistics exist and are finite.
    let headline = [
        ("error_p50_pct", report.overall.error_p50_pct),
        ("error_p99_pct", report.overall.error_p99_pct),
        ("mean_regret_pct", report.overall.mean_regret_pct),
        ("mean_utilization", Some(report.overall.mean_utilization)),
    ];
    for (name, v) in headline {
        match v {
            Some(v) if v.is_finite() => {}
            other => failures.push(format!("overall {name} is {other:?}")),
        }
    }
    for a in &report.by_axis {
        for (name, v) in [
            ("error_p50_pct", a.error_p50_pct),
            ("error_p99_pct", a.error_p99_pct),
            ("mean_regret_pct", a.mean_regret_pct),
        ] {
            if let Some(v) = v {
                if !v.is_finite() {
                    failures.push(format!("axis {}={} {name} non-finite", a.axis, a.value));
                }
            }
        }
    }

    let git_rev = provenance::json_escape(&provenance::git_rev());
    let rustc = provenance::json_escape(&provenance::rustc_version());
    let fmt_opt = |v: Option<f64>| v.map_or("n/a".to_string(), |v| format!("{v:.4}"));
    let json = report.to_json_with_provenance(&[
        ("git_rev", &git_rev),
        ("rustc", &rustc),
        ("grid", grid_name),
        ("cells", &report.cells.len().to_string()),
        ("violations", &report.violations.len().to_string()),
        ("eq9_cells_checked", &report.eq9_cells_checked.to_string()),
        ("guard_exact_checks", &report.guard_exact_checks.to_string()),
        ("overall_error_p50_pct", &fmt_opt(report.overall.error_p50_pct)),
        ("overall_error_p99_pct", &fmt_opt(report.overall.error_p99_pct)),
        ("overall_mean_regret_pct", &fmt_opt(report.overall.mean_regret_pct)),
        (
            "overall_mean_utilization",
            &format!("{:.6}", report.overall.mean_utilization),
        ),
    ]);

    // 5. The artifact itself must be nan/inf-free.
    let lower = json.to_lowercase();
    for token in [": nan", ": -nan", ": inf", ": -inf"] {
        if lower.contains(token) {
            failures.push(format!("artifact contains '{token}'"));
        }
    }

    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));

    println!(
        "eval campaign ({grid_name} grid): {} cells, {} jobs, {} completed, {} violations",
        report.cells.len(),
        report.overall.jobs,
        report.overall.completed,
        report.violations.len()
    );
    println!(
        "  placement |error| p50 {} / p99 {} %, mean cost regret vs oracle {} %, mean utilization {:.3}",
        fmt_opt(report.overall.error_p50_pct),
        fmt_opt(report.overall.error_p99_pct),
        fmt_opt(report.overall.mean_regret_pct),
        report.overall.mean_utilization
    );
    println!(
        "  Eq. 9 reconciled on {} cells, guard limits rebuilt for {} kills",
        report.eq9_cells_checked, report.guard_exact_checks
    );
    println!("  wrote {out}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("EVAL INVARIANT VIOLATION: {f}");
        }
        std::process::exit(1);
    }
}

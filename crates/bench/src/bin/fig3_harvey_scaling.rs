//! Regenerates paper **Fig. 3**: strong scaling of HARVEY performance
//! (MFLUPS) for each geometry — (a) cylinder, (b) aorta, (c) cerebral —
//! across every infrastructure, at matched core counts.
//!
//! Run: `cargo run --release -p hemocloud-bench --bin fig3_harvey_scaling`
//! (set `HEMOCLOUD_QUICK=1` for reduced resolutions)

use hemocloud_bench::workloads::geometries;
use hemocloud_bench::{print_series, Series};
use hemocloud_cluster::exec::{simulate_geometry, Overheads};
use hemocloud_cluster::platform::Platform;
use hemocloud_lbm::kernel::KernelConfig;

const SEED: u64 = 2023;

fn main() {
    // Matched core counts across platforms, as in the paper's setup.
    let ranks = [8usize, 16, 32, 48, 64, 96, 128];
    let platforms = Platform::all();
    let cfg = KernelConfig::harvey();
    let overheads = Overheads::default();

    for (gi, (name, grid)) in geometries().into_iter().enumerate() {
        let mut series = Vec::new();
        for p in &platforms {
            let points: Vec<(f64, f64)> = ranks
                .iter()
                .filter_map(|&r| {
                    simulate_geometry(p, &grid, &cfg, r, 100, &overheads, SEED, 0.0)
                        .map(|run| (r as f64, run.mflups))
                })
                .collect();
            if !points.is_empty() {
                series.push(Series::new(p.abbrev, points));
            }
        }
        let panel = ['a', 'b', 'c'][gi.min(2)];
        print_series(
            &format!("Fig. 3{panel}: HARVEY strong scaling, {name} geometry"),
            "ranks",
            "MFLUPS",
            &series,
        );
    }
    println!("\nExpected shape: near-identical scaling across geometries; cloud large");
    println!("nodes (CSP-2/EC) meet or beat TRC thanks to higher node memory bandwidth;");
    println!("the cylinder's curve is the least smooth (highest communication load).");
}

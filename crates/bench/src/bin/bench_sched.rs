//! Scheduler-scale record: drive a committed synthetic campaign of up to
//! one million jobs through `hemocloud-sched` and persist the throughput
//! numbers to `BENCH_sched.json`, so every PR carries a comparable
//! events/sec trajectory alongside `BENCH_lbm.json` (ROADMAP item 2:
//! "scale the campaign" needs a number to hold it to).
//!
//! The campaign is synthetic but exercises every subsystem at scale:
//! four capacity-limited pools, 32 shared workloads over four vascular
//! geometries, batched arrivals (64 jobs share each submit tick, so the
//! batched-admission path actually batches), seeded node faults with
//! checkpoint-rollback retries, a sprinkle of guard-killed runaways and
//! admission-rejected doomed jobs, and bounded report logs
//! (`max_placement_log`) so memory stays flat while the MAPE accounting
//! stays exact.
//!
//! Besides timing, the binary *proves* the tentpole determinism claim on
//! every run: a smoke-sized subset is re-run at shard counts 1, 2, and 4
//! and the three reports must be byte-identical — the binary exits
//! non-zero (and refuses to write a baseline) otherwise.
//!
//! * `SCHED_JOBS=<n>` overrides the job count (default 1,000,000; with
//!   `RT_BENCH_FAST=1`, 20,000 so CI can smoke-run it in seconds).
//! * `SCHED_SHARDS=<n>` sets the headline run's shard count (default 4).
//! * `SCHED_SEED=<u64>` picks the campaign seed (default 42).
//! * `SCHED_OUT=<path>` redirects the JSON (default `BENCH_sched.json`).
//! * `SCHED_REPORT_OUT_PREFIX=<path>` additionally writes the per-shard
//!   determinism reports as `<prefix>.shard<N>.json` so `scripts/verify.sh`
//!   can `cmp` them independently.

use std::sync::Arc;
use std::time::Instant;

use hemocloud_bench::provenance;
use hemocloud_cluster::exec::Overheads;
use hemocloud_cluster::platform::Platform;
use hemocloud_core::dashboard::Objective;
use hemocloud_core::workload::Workload;
use hemocloud_geometry::anatomy::{AortaSpec, CerebralSpec, CylinderSpec};
use hemocloud_rt::rng::SplitMix64;
use hemocloud_sched::{Campaign, CampaignConfig, CampaignReport, JobSpec, PoolSpec};

fn fast_mode() -> bool {
    std::env::var("RT_BENCH_FAST").is_ok_and(|v| v != "0")
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .map(|v| v.parse().unwrap_or_else(|_| panic!("{name} must be a usize")))
        .unwrap_or(default)
}

/// The four pools the synthetic campaign runs against — wider than the
/// demo's so a million jobs drain in reasonable virtual time.
fn bench_pools() -> Vec<PoolSpec> {
    vec![
        PoolSpec {
            platform: Platform::trc(),
            nodes: 50,
            overheads: Overheads::default(),
            topology: None,
        },
        PoolSpec {
            platform: Platform::csp1(),
            nodes: 3,
            overheads: Overheads {
                lbm_bandwidth_efficiency: 0.80,
                ..Overheads::default()
            },
            topology: None,
        },
        PoolSpec {
            platform: Platform::csp2_small(),
            nodes: 16,
            overheads: Overheads {
                message_software_overhead_us: 2.5,
                ..Overheads::default()
            },
            topology: None,
        },
        PoolSpec {
            platform: Platform::csp2(),
            nodes: 4,
            overheads: Overheads {
                lbm_bandwidth_efficiency: 0.72,
                ..Overheads::default()
            },
            topology: None,
        },
    ]
}

fn bench_config(seed: u64, shards: usize) -> CampaignConfig {
    CampaignConfig {
        seed,
        characterization_seed: 2023,
        rank_options: vec![8, 16, 32, 36],
        slice_steps: 800_000,
        fault_rate_per_node_hour: 0.5,
        retry_backoff_s: 30.0,
        max_retry_backoff_s: 1800.0,
        min_calibration_obs: 6,
        prices: Default::default(),
        shards,
        // Bounded logs: the aggregates (MAPEs, costs, outcome counts) are
        // exact over all jobs regardless; only the per-row logs are capped.
        max_placement_log: 10_000,
        max_job_reports: 10_000,
    }
}

/// The 32 shared workloads: four geometry classes × eight step counts.
/// Jobs hold `Arc`s into this table — a million jobs, 32 grids.
fn bench_workloads() -> Vec<(String, Arc<Workload>)> {
    let geoms = vec![
        ("cyl6", CylinderSpec::default().with_resolution(6).build()),
        ("cyl8", CylinderSpec::default().with_resolution(8).build()),
        ("aorta6", AortaSpec::default().with_resolution(6).build()),
        (
            "cereb6",
            CerebralSpec::default()
                .with_resolution(6)
                .with_generations(3)
                .build(),
        ),
    ];
    let mut out = Vec::with_capacity(32);
    for (key, grid) in &geoms {
        for s in 0..8u64 {
            let steps = 150_000 + 50_000 * s;
            out.push((key.to_string(), Arc::new(Workload::harvey(grid, steps))));
        }
    }
    out
}

/// Deterministic synthetic job mix: honest jobs with batched arrivals,
/// ~0.5% runaways (3× hidden steps against a tight tolerance) and ~0.2%
/// doomed-budget jobs the admission filter must reject.
fn bench_jobs(n: usize, seed: u64) -> Vec<JobSpec> {
    let workloads = bench_workloads();
    let objectives = [
        Objective::MinCost,
        Objective::MaxThroughput,
        Objective::Deadline(24.0 * 3600.0),
    ];
    let mut sm = SplitMix64::new(seed ^ 0xBE9C_4A11);
    let mut jobs = Vec::with_capacity(n);
    for i in 0..n {
        let (key, workload) = &workloads[(sm.next_u64() % workloads.len() as u64) as usize];
        let runaway = i % 211 == 0;
        let doomed = !runaway && i % 503 == 0;
        jobs.push(JobSpec {
            name: format!(
                "{}-{i:07}-{key}",
                if runaway {
                    "runaway"
                } else if doomed {
                    "doomed"
                } else {
                    "job"
                }
            ),
            workload: Arc::clone(workload),
            model_key: key.clone(),
            objective: objectives[i % objectives.len()],
            tolerance: if runaway { 0.5 } else { 7.0 },
            // Doomed budget: below the cheapest conceivable per-second
            // bill for even the smallest workload, so admission must
            // reject (a cent would actually buy these short jobs).
            budget_dollars: if doomed { 1.0e-6 } else { 500.0 },
            max_retries: 3,
            checkpoint_steps: 400_000,
            hidden_steps_factor: if runaway { 3.0 } else { 1.0 },
            // 64 jobs share each submit tick: arrivals come in bursts the
            // batched-admission path sweeps in one dispatch.
            submit_s: (i / 64) as f64 * 30.0,
        });
    }
    jobs
}

fn run_campaign(jobs: &[JobSpec], seed: u64, shards: usize) -> CampaignReport {
    let mut campaign = Campaign::new(bench_config(seed, shards), bench_pools());
    for job in jobs {
        campaign.submit(job.clone());
    }
    campaign.run()
}

/// Peak resident set (VmHWM) in MiB from `/proc/self/status`; `None` off
/// Linux.
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

fn main() {
    let seed: u64 = std::env::var("SCHED_SEED")
        .ok()
        .map(|v| v.parse().expect("SCHED_SEED must be a u64"))
        .unwrap_or(42);
    let default_jobs = if fast_mode() { 20_000 } else { 1_000_000 };
    let n_jobs = env_usize("SCHED_JOBS", default_jobs);
    let shards = env_usize("SCHED_SHARDS", 4).max(1);
    let out = std::env::var("SCHED_OUT").unwrap_or_else(|_| "BENCH_sched.json".to_string());

    // Headline run first (the biggest allocation), so the recorded VmHWM
    // is the campaign's and the later smoke-sized determinism runs cannot
    // raise it.
    println!("bench_sched: {n_jobs} jobs, {shards} shards, seed {seed}");
    let jobs = bench_jobs(n_jobs, seed);
    let start = Instant::now();
    let report = run_campaign(&jobs, seed, shards);
    let elapsed = start.elapsed().as_secs_f64();
    let events_per_sec = report.events_processed as f64 / elapsed;
    let jobs_per_sec = report.jobs as f64 / elapsed;
    let peak_rss = peak_rss_mib();
    drop(jobs);

    println!(
        "  {} events in {elapsed:.2} s wall -> {:.0} events/s, {:.0} jobs/s",
        report.events_processed, events_per_sec, jobs_per_sec
    );
    println!(
        "  outcomes: {} completed, {} guard-killed, {} failed, {} rejected; {} faults / {} retries",
        report.completed, report.guard_kills, report.failed, report.rejected, report.faults,
        report.retries
    );
    println!(
        "  makespan {:.0} virtual s, total ${:.2}, peak RSS {}",
        report.makespan_s,
        report.total_cost_dollars,
        peak_rss.map_or("n/a".to_string(), |m| format!("{m:.0} MiB")),
    );

    // Determinism proof: a smoke-sized subset at shard counts 1, 2, 4
    // must render byte-identical reports.
    let det_jobs_n = n_jobs.min(20_000);
    let det_jobs = bench_jobs(det_jobs_n, seed);
    let shard_counts = [1usize, 2, 4];
    let renders: Vec<String> = shard_counts
        .iter()
        .map(|&s| run_campaign(&det_jobs, seed, s).to_json())
        .collect();
    let identical = renders.iter().all(|r| r == &renders[0]);
    println!(
        "  shard determinism ({det_jobs_n} jobs @ shards {shard_counts:?}): {}",
        if identical { "byte-identical" } else { "DIVERGED" }
    );
    if let Ok(prefix) = std::env::var("SCHED_REPORT_OUT_PREFIX") {
        for (s, render) in shard_counts.iter().zip(&renders) {
            let path = format!("{prefix}.shard{s}.json");
            std::fs::write(&path, render).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            println!("  wrote {path}");
        }
    }

    let mut failures = Vec::new();
    if !(events_per_sec.is_finite() && events_per_sec > 0.0) {
        failures.push(format!("non-finite or non-positive events/sec {events_per_sec}"));
    }
    if report.events_processed == 0 {
        failures.push("campaign processed zero events".to_string());
    }
    if !(report.makespan_s.is_finite() && report.makespan_s > 0.0) {
        failures.push(format!("non-finite or non-positive makespan {}", report.makespan_s));
    }
    if report.completed + report.guard_kills + report.failed + report.rejected != report.jobs {
        failures.push("job outcomes do not sum to the job count".to_string());
    }
    if report.completed == 0 {
        failures.push("no job completed".to_string());
    }
    if n_jobs >= 1_000 {
        // The mix plants a runaway every 211 jobs and a doomed-budget job
        // every 503: at this scale the guard and admission paths must fire.
        if report.guard_kills == 0 {
            failures.push("no guard kills despite planted runaways".to_string());
        }
        if report.rejected == 0 {
            failures.push("no rejections despite planted doomed-budget jobs".to_string());
        }
    }
    if !identical {
        failures.push(format!(
            "reports diverged across shard counts {shard_counts:?}"
        ));
    }

    let git_rev = provenance::json_escape(&provenance::git_rev());
    let rustc = provenance::json_escape(&provenance::rustc_version());
    let opt = |v: Option<f64>, decimals: usize| {
        v.filter(|v| v.is_finite())
            .map_or("null".to_string(), |v| format!("{v:.decimals$}"))
    };
    let mut s = String::with_capacity(2048);
    s.push_str("{\n");
    s.push_str("  \"report\": \"hemocloud_bench_sched\",\n");
    s.push_str(&format!(
        "  \"provenance\": {{\"git_rev\": \"{git_rev}\", \"rustc\": \"{rustc}\"}},\n"
    ));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!("  \"jobs\": {},\n", report.jobs));
    s.push_str(&format!("  \"shards\": {shards},\n"));
    s.push_str(&format!("  \"events_processed\": {},\n", report.events_processed));
    s.push_str(&format!("  \"elapsed_s\": {elapsed:.3},\n"));
    s.push_str(&format!("  \"events_per_sec\": {events_per_sec:.1},\n"));
    s.push_str(&format!("  \"jobs_per_sec\": {jobs_per_sec:.1},\n"));
    s.push_str(&format!("  \"peak_rss_mib\": {},\n", opt(peak_rss, 1)));
    s.push_str(&format!("  \"makespan_s\": {:.3},\n", report.makespan_s));
    s.push_str(&format!(
        "  \"total_cost_dollars\": {:.6},\n",
        report.total_cost_dollars
    ));
    s.push_str(&format!(
        "  \"outcomes\": {{\"completed\": {}, \"guard_kills\": {}, \"failed\": {}, \"rejected\": {}}},\n",
        report.completed, report.guard_kills, report.failed, report.rejected
    ));
    s.push_str(&format!(
        "  \"faults\": {}, \"retries\": {},\n",
        report.faults, report.retries
    ));
    s.push_str(&format!("  \"placements_total\": {},\n", report.placements_total));
    s.push_str(&format!(
        "  \"refinement\": {{\"mape_first_quartile_uncalibrated_pct\": {}, \"mape_calibrated_pct\": {}, \"error_p50_pct\": {}, \"error_p99_pct\": {}}},\n",
        opt(report.mape_first_quartile_uncalibrated_pct, 4),
        opt(report.mape_calibrated_pct, 4),
        opt(report.error_p50_pct, 4),
        opt(report.error_p99_pct, 4),
    ));
    s.push_str(&format!(
        "  \"shard_determinism\": {{\"jobs\": {det_jobs_n}, \"shard_counts\": [1, 2, 4], \"reports_identical\": {identical}}}\n"
    ));
    s.push_str("}\n");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("BENCH_SCHED INVARIANT VIOLATION: {f}");
        }
        std::process::exit(1);
    }
    std::fs::write(&out, &s).expect("write bench_sched JSON");
    println!("  wrote {out}");
}

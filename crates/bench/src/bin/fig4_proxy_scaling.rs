//! Regenerates paper **Fig. 4**: strong scaling of the lbm-proxy-app
//! kernels — SoA (unrolled) and AoS layouts — on each infrastructure, for
//! (a) the AA and (b) the AB propagation patterns.
//!
//! Run: `cargo run --release -p hemocloud-bench --bin fig4_proxy_scaling`

use hemocloud_bench::workloads::quick_mode;
use hemocloud_bench::{print_series, Series};
use hemocloud_cluster::exec::{simulate_geometry, Overheads};
use hemocloud_cluster::platform::Platform;
use hemocloud_geometry::anatomy::CylinderSpec;
use hemocloud_lbm::kernel::{KernelConfig, Layout, Propagation};

const SEED: u64 = 2023;

fn main() {
    let resolution = if quick_mode() { 16 } else { 48 };
    let cylinder = CylinderSpec::default().with_resolution(resolution).build();
    let ranks = [8usize, 16, 32, 48, 64, 96, 128];
    let platforms = Platform::all();
    let overheads = Overheads::default();

    for (panel, prop) in [('a', Propagation::Aa), ('b', Propagation::Ab)] {
        let mut series = Vec::new();
        for (lname, layout) in [("SOA", Layout::Soa), ("AOS", Layout::Aos)] {
            let cfg = KernelConfig::proxy(layout, prop, lname == "SOA");
            for p in &platforms {
                let points: Vec<(f64, f64)> = ranks
                    .iter()
                    .filter_map(|&r| {
                        simulate_geometry(p, &cylinder, &cfg, r, 100, &overheads, SEED, 0.0)
                            .map(|run| (r as f64, run.mflups))
                    })
                    .collect();
                if !points.is_empty() {
                    series.push(Series::new(format!("{} {lname}", p.abbrev), points));
                }
            }
        }
        let pname = if prop == Propagation::Aa { "AA" } else { "AB" };
        print_series(
            &format!("Fig. 4{panel}: lbm-proxy-app strong scaling, {pname} propagation"),
            "ranks",
            "MFLUPS",
            &series,
        );
    }
    println!("\nExpected shape: AA curves sit above AB (index-array traffic halves);");
    println!("scaling shape mirrors HARVEY's on each infrastructure.");
}

//! Regenerates paper **Fig. 8**: model predictions vs actual performance
//! for the lbm-proxy-app SoA kernels — AA and AB propagation, rolled and
//! unrolled inner loops — on CSP-2 (without EC).
//!
//! Run: `cargo run --release -p hemocloud-bench --bin fig8_model_vs_actual_proxy`

use hemocloud_bench::workloads::quick_mode;
use hemocloud_bench::{print_series, Series};
use hemocloud_cluster::exec::{simulate_geometry, Overheads};
use hemocloud_cluster::platform::Platform;
use hemocloud_core::characterize::characterize;
use hemocloud_core::direct::DirectModel;
use hemocloud_core::general::GeneralModel;
use hemocloud_core::workload::Workload;
use hemocloud_lbm::kernel::KernelConfig;

const SEED: u64 = 2023;

fn main() {
    let platform = Platform::csp2();
    let character = characterize(&platform, SEED);
    let resolution = if quick_mode() { 16 } else { 48 };
    let cylinder = hemocloud_geometry::anatomy::CylinderSpec::default()
        .with_resolution(resolution)
        .build();
    let ranks = [4usize, 8, 16, 36, 72, 108, 144];
    let overheads = Overheads::default();

    for (vname, cfg) in KernelConfig::fig8_variants() {
        let workload = Workload::proxy(&cylinder, cfg, 100);
        let direct = DirectModel::new(character.clone(), workload.clone());
        let general = GeneralModel::from_characterization(&character, &workload);

        let mut actual = Vec::new();
        let mut direct_pts = Vec::new();
        let mut general_pts = Vec::new();
        for &r in &ranks {
            if let Some(run) =
                simulate_geometry(&platform, &cylinder, &cfg, r, 100, &overheads, SEED, 0.0)
            {
                actual.push((r as f64, run.mflups));
            }
            if let Some(p) = direct.predict(r) {
                direct_pts.push((r as f64, p.mflups));
            }
            general_pts.push((r as f64, general.predict(r).mflups));
        }
        print_series(
            &format!("Fig. 8: proxy {vname} on CSP-2 — predictions vs actual"),
            "ranks",
            "MFLUPS",
            &[
                Series::new("actual", actual),
                Series::new("direct model", direct_pts),
                Series::new("general model", general_pts),
            ],
        );
    }
    println!("\nExpected shape: consistent overprediction; AA above AB.");
}

//! Regenerates paper **Fig. 7**: direct and generalized performance-model
//! predictions against actual (simulated-testbed) HARVEY performance for
//! all three geometries on CSP-2 (without EC).
//!
//! Run: `cargo run --release -p hemocloud-bench --bin fig7_model_vs_actual_harvey`

use hemocloud_bench::workloads::geometries;
use hemocloud_bench::{print_series, Series};
use hemocloud_cluster::exec::{simulate_geometry, Overheads};
use hemocloud_cluster::platform::Platform;
use hemocloud_core::characterize::characterize;
use hemocloud_core::direct::DirectModel;
use hemocloud_core::general::GeneralModel;
use hemocloud_core::workload::Workload;
use hemocloud_lbm::kernel::KernelConfig;

const SEED: u64 = 2023;

fn main() {
    let platform = Platform::csp2();
    let character = characterize(&platform, SEED);
    let ranks = [4usize, 8, 16, 36, 72, 108, 144];
    let overheads = Overheads::default();
    let cfg = KernelConfig::harvey();

    for (name, grid) in geometries() {
        let workload = Workload::harvey(&grid, 100);
        let direct = DirectModel::new(character.clone(), workload.clone());
        let general = GeneralModel::from_characterization(&character, &workload);

        let mut actual = Vec::new();
        let mut direct_pts = Vec::new();
        let mut general_pts = Vec::new();
        for &r in &ranks {
            if let Some(run) =
                simulate_geometry(&platform, &grid, &cfg, r, 100, &overheads, SEED, 0.0)
            {
                actual.push((r as f64, run.mflups));
            }
            if let Some(p) = direct.predict(r) {
                direct_pts.push((r as f64, p.mflups));
            }
            general_pts.push((r as f64, general.predict(r).mflups));
        }
        print_series(
            &format!("Fig. 7: {name} on CSP-2 — model predictions vs actual"),
            "ranks",
            "MFLUPS",
            &[
                Series::new("actual", actual),
                Series::new("direct model", direct_pts),
                Series::new("general model", general_pts),
            ],
        );
    }
    println!("\nExpected shape: both models overpredict by a consistent margin;");
    println!("direct predictions preserve the geometry ordering (cerebral best);");
    println!("the general model drifts for the cylinder at high rank counts.");
}

//! Campaign-scheduler record: run the seeded demo campaign end-to-end
//! and persist its [`CampaignReport`] JSON next to the perf baseline, so
//! every PR carries a comparable scheduling record alongside
//! `BENCH_lbm.json`.
//!
//! * `CAMPAIGN_SEED=<u64>` picks the campaign seed (default 42 — the
//!   committed `CAMPAIGN_sched.json` uses this).
//! * `CAMPAIGN_OUT=<path>` redirects the JSON (default:
//!   `CAMPAIGN_sched.json` in the current directory).
//! * `OBS_OUT=<path>` writes the campaign's metrics snapshot (its private
//!   virtual-clock registry merged with the process-global one) as
//!   deterministic JSON — byte-identical per seed, which
//!   `scripts/verify.sh` diffs across two runs.
//!
//! The binary exits non-zero if the report violates the campaign's
//! operational invariants (non-finite cost/makespan, empty placement log,
//! jobs unaccounted for, or — at the default seed — a refinement loop
//! that failed to reduce placement error), so the verify gate cannot
//! record a broken campaign.
//!
//! [`CampaignReport`]: hemocloud_sched::CampaignReport

use hemocloud_bench::provenance;
use hemocloud_sched::run_demo_with_obs;

fn main() {
    let seed: u64 = std::env::var("CAMPAIGN_SEED")
        .ok()
        .map(|v| v.parse().expect("CAMPAIGN_SEED must be a u64"))
        .unwrap_or(42);
    let out = std::env::var("CAMPAIGN_OUT").unwrap_or_else(|_| "CAMPAIGN_sched.json".to_string());

    let (report, obs) = run_demo_with_obs(seed);
    let git_rev = provenance::json_escape(&provenance::git_rev());
    let rustc = provenance::json_escape(&provenance::rustc_version());
    let json = report.to_json_with_provenance(&[("git_rev", &git_rev), ("rustc", &rustc)]);

    let mut failures = Vec::new();
    if !(report.makespan_s.is_finite() && report.makespan_s > 0.0) {
        failures.push(format!("non-finite or non-positive makespan {}", report.makespan_s));
    }
    if !(report.total_cost_dollars.is_finite() && report.total_cost_dollars > 0.0) {
        failures.push(format!(
            "non-finite or non-positive total cost {}",
            report.total_cost_dollars
        ));
    }
    if report.placements.is_empty() {
        failures.push("empty placement log".to_string());
    }
    if report.completed + report.guard_kills + report.failed + report.rejected != report.jobs {
        failures.push("job outcomes do not sum to the job count".to_string());
    }
    for p in &report.platforms {
        if !(p.utilization.is_finite() && p.utilization <= 1.0 + 1e-9) {
            failures.push(format!("{}: utilization {} out of range", p.platform, p.utilization));
        }
    }
    if seed == 42 {
        // The committed demo seed must demonstrate the full loop.
        if report.guard_kills < 1 {
            failures.push("demo seed produced no guard kills".to_string());
        }
        if report.retried_jobs_completed < 1 {
            failures.push("demo seed produced no successful fault retry".to_string());
        }
        match (
            report.mape_calibrated_pct,
            report.mape_first_quartile_uncalibrated_pct,
        ) {
            (Some(cal), Some(uncal)) if cal < uncal => {}
            (cal, uncal) => failures.push(format!(
                "refinement failed: calibrated MAPE {cal:?} !< uncalibrated Q1 MAPE {uncal:?}"
            )),
        }
    }

    std::fs::write(&out, &json).expect("write campaign JSON");
    println!(
        "campaign seed {seed}: {} jobs -> {} completed, {} guard-killed, {} failed, {} rejected",
        report.jobs, report.completed, report.guard_kills, report.failed, report.rejected
    );
    println!(
        "  faults {} / retries {} (jobs recovered: {}), makespan {:.0} s, total ${:.2}",
        report.faults, report.retries, report.retried_jobs_completed, report.makespan_s, report.total_cost_dollars
    );
    let mape = |v: Option<f64>| v.map_or("n/a".to_string(), |v| format!("{v:.1}%"));
    println!(
        "  placement MAPE: uncalibrated Q1 {} -> calibrated {}",
        mape(report.mape_first_quartile_uncalibrated_pct),
        mape(report.mape_calibrated_pct)
    );
    println!("  wrote {out}");

    // The campaign's private virtual-clock metrics, merged with anything
    // the process-global registry collected along the way (disjoint name
    // spaces: sched.* vs pool.*/lbm.*).
    let snapshot = obs.merged_with(hemocloud_obs::global().snapshot());
    println!("  metrics snapshot ({} entries):", snapshot.entries().len());
    print!("{}", snapshot.to_text(hemocloud_obs::Render::Deterministic));
    if let Ok(obs_path) = std::env::var("OBS_OUT") {
        let obs_json = snapshot.to_json(hemocloud_obs::Render::Deterministic);
        std::fs::write(&obs_path, &obs_json).unwrap_or_else(|e| panic!("writing {obs_path}: {e}"));
        println!("  wrote {obs_path}");
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("CAMPAIGN INVARIANT VIOLATION: {f}");
        }
        std::process::exit(1);
    }
}

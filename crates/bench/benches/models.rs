//! Benches of the modeling pipeline itself (`hemocloud_rt::bench`): how
//! expensive are characterization, fitting, decomposition analysis and
//! the two prediction models? (The dashboard's interactivity depends on
//! these.)

use hemocloud_cluster::platform::Platform;
use hemocloud_cluster::stream_bench::{stream_sweep, to_fit_arrays};
use hemocloud_core::characterize::characterize;
use hemocloud_core::direct::DirectModel;
use hemocloud_core::general::GeneralModel;
use hemocloud_core::workload::Workload;
use hemocloud_decomp::halo::DecompAnalysis;
use hemocloud_decomp::rcb::RcbPartition;
use hemocloud_fitting::models::fit_imbalance;
use hemocloud_fitting::two_line::fit_two_line;
use hemocloud_geometry::anatomy::CylinderSpec;
use hemocloud_rt::bench::Harness;

fn fitting(h: &mut Harness) {
    let platform = Platform::csp2();
    let (ns, bs) = to_fit_arrays(&stream_sweep(&platform, 1));
    h.bench_function("fit/two_line_36pt", |b| {
        b.iter(|| fit_two_line(&ns, &bs).unwrap())
    });

    let counts: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512];
    let zs: Vec<f64> = counts
        .iter()
        .map(|&n| 0.2 * ((0.5 * (n as f64 - 1.0)) + 1.0).ln() + 1.0)
        .collect();
    h.bench_function("fit/imbalance_nelder_mead", |b| {
        b.iter(|| fit_imbalance(&counts, &zs).unwrap())
    });
}

fn characterization(h: &mut Harness) {
    let platform = Platform::csp2();
    h.bench_function("characterize/csp2", |b| b.iter(|| characterize(&platform, 7)));
}

fn decomposition(h: &mut Harness) {
    let grid = CylinderSpec::default().with_resolution(24).build();
    let mut group = h.group("decomp");
    group.sample_size(10);
    for n in [8usize, 64] {
        group.bench_function(&format!("rcb/{n}"), |b| {
            b.iter(|| RcbPartition::new(&grid, n))
        });
        let p = RcbPartition::new(&grid, n);
        group.bench_function(&format!("analyze/{n}"), |b| {
            b.iter(|| DecompAnalysis::analyze(&grid, &p))
        });
    }
    group.finish();
}

fn predictions(h: &mut Harness) {
    let grid = CylinderSpec::default().with_resolution(16).build();
    let workload = Workload::harvey(&grid, 100);
    let character = characterize(&Platform::csp2(), 7);
    let direct = DirectModel::new(character.clone(), workload.clone());
    let general = GeneralModel::from_characterization(&character, &workload);
    let mut group = h.group("predict");
    group.sample_size(10);
    // The direct model re-decomposes per rank count; the general model is
    // closed-form — the cost gap is the ablation's "price of accuracy".
    group.bench_function("direct_72", |b| b.iter(|| direct.predict(72).unwrap()));
    group.bench_function("general_72", |b| b.iter(|| general.predict(72)));
    group.finish();
}

fn main() {
    let mut h = Harness::from_args();
    fitting(&mut h);
    characterization(&mut h);
    decomposition(&mut h);
    predictions(&mut h);
}

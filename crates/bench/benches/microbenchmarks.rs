//! Benches of the real host microbenchmarks (`hemocloud_rt::bench`): the
//! STREAM kernels (the paper's Fig. 5 methodology on this machine) and
//! the thread-pair PingPong.

use hemocloud_microbench::pingpong::pingpong_sweep;
use hemocloud_microbench::stream::{stream_kernel, StreamKernel};
use hemocloud_rt::bench::{Harness, Throughput};

/// Array length: 8 M doubles = 64 MB per array, beyond any host L3.
const ELEMENTS: usize = 8 * 1024 * 1024;

fn stream_kernels(h: &mut Harness) {
    let mut group = h.group("stream");
    group.sample_size(10);
    for kernel in [
        StreamKernel::Copy,
        StreamKernel::Scale,
        StreamKernel::Add,
        StreamKernel::Triad,
    ] {
        group.throughput(Throughput::Bytes(
            (kernel.bytes_per_element() * ELEMENTS) as u64,
        ));
        group.bench_function(kernel.name(), |b| {
            b.iter(|| stream_kernel(kernel, 2, ELEMENTS, 1));
        });
    }
    group.finish();
}

fn stream_thread_sweep(h: &mut Harness) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let mut group = h.group("stream_copy_threads");
    group.sample_size(10);
    group.throughput(Throughput::Bytes((16 * ELEMENTS) as u64));
    let mut threads = vec![1usize];
    if cores >= 2 {
        threads.push(2);
    }
    if cores >= 4 {
        threads.push(cores / 2);
        threads.push(cores);
    }
    threads.dedup();
    for t in threads {
        group.bench_function(&t.to_string(), |b| {
            b.iter(|| stream_kernel(StreamKernel::Copy, t, ELEMENTS, 1));
        });
    }
    group.finish();
}

fn pingpong(h: &mut Harness) {
    let mut group = h.group("pingpong");
    group.sample_size(10);
    for bytes in [0usize, 4096, 1 << 20] {
        group.bench_function(&bytes.to_string(), |b| {
            b.iter(|| pingpong_sweep(&[bytes], 50));
        });
    }
    group.finish();
}

fn main() {
    let mut h = Harness::from_args();
    stream_kernels(&mut h);
    stream_thread_sweep(&mut h);
    pingpong(&mut h);
}

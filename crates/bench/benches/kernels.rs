//! Benches of the *real* LBM kernels on this machine (`hemocloud_rt::bench`):
//! the measured counterpart of the paper's Fig. 4 kernel-variant scan
//! (AA/AB propagation × SoA/AoS layout × rolled/unrolled loops), plus the
//! HARVEY-style sparse solver step (serial and thread-parallel).

use hemocloud_geometry::anatomy::CylinderSpec;
use hemocloud_lbm::kernel::{KernelConfig, Layout, Propagation};
use hemocloud_lbm::mesh::FluidMesh;
use hemocloud_lbm::proxy::ProxyApp;
use hemocloud_lbm::solver::{Solver, SolverConfig};
use hemocloud_rt::bench::{Harness, Throughput};

fn proxy_variants(h: &mut Harness) {
    let diameter = 24;
    let length = 32;
    let mut group = h.group("proxy_step");
    group.sample_size(10);
    for prop in [Propagation::Aa, Propagation::Ab] {
        for layout in [Layout::Soa, Layout::Aos] {
            for unrolled in [true, false] {
                let cfg = KernelConfig::proxy(layout, prop, unrolled);
                let mut app = ProxyApp::new(diameter, length, cfg, 0.8, 1e-6);
                app.run(4); // warm
                group.throughput(Throughput::Elements(app.fluid_count() as u64));
                let label = format!(
                    "{}{}",
                    cfg.name().replace("/dense/f64", ""),
                    if unrolled { "+unroll" } else { "" }
                );
                group.bench_function(&label, |b| {
                    b.iter(|| app.step());
                });
            }
        }
    }
    group.finish();
}

fn harvey_solver_step(h: &mut Harness) {
    let grid = CylinderSpec::default().with_resolution(20).build();
    let mesh = FluidMesh::build(&grid);
    let mut group = h.group("harvey_step");
    group.sample_size(10);
    group.throughput(Throughput::Elements(mesh.len() as u64));
    for (name, parallel) in [("serial", false), ("parallel", true)] {
        let mut solver = Solver::new(
            mesh.clone(),
            SolverConfig {
                parallel,
                ..Default::default()
            },
        );
        solver.run(2);
        group.bench_function(name, |b| b.iter(|| solver.step()));
    }
    group.finish();
}

fn main() {
    let mut h = Harness::from_args();
    proxy_variants(&mut h);
    harvey_solver_step(&mut h);
}

//! Domain decomposition and its communication structure.
//!
//! The performance model's inputs (paper Eqs. 9-11, 13-15) all come from
//! how the voxel domain is split among tasks:
//!
//! * [`partition`] — block-grid and slab partitions of the bounding box,
//!   plus the fluid-cell ownership vectors the ranked solver consumes.
//! * [`halo`] — per-task fluid-point counts, boundary points, and the
//!   message graph (who sends how many points to whom) for a given
//!   partition: the *direct* model's raw data.
//! * [`imbalance`] — measured load-imbalance factors `z` over task-count
//!   sweeps and their Eq. 11 fits.
//! * [`events`] — maximum communication-event counts over (tasks, nodes)
//!   sweeps and their Eq. 15 fits.
//! * [`placement`] — mapping tasks onto nodes, which splits messages into
//!   intranodal and internodal.

pub mod events;
pub mod halo;
pub mod imbalance;
pub mod partition;
pub mod placement;
pub mod rcb;

pub use halo::DecompAnalysis;
pub use partition::{BlockPartition, BoxRegion, SlabPartition};
pub use placement::Placement;
pub use rcb::RcbPartition;

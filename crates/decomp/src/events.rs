//! Communication-event counting and the Eq. 15 fit.
//!
//! The generalized model needs the maximum number of *internodal* messages
//! a task participates in per step, as a function of task and node counts.
//! [`count_max_events`] measures it for a real decomposition+placement;
//! [`event_sweep`] collects the `(n_tasks, n_nodes, events)` samples the
//! paper fits Eq. 15 against.

use crate::halo::DecompAnalysis;
use crate::partition::BlockPartition;
use crate::placement::Placement;
use hemocloud_fitting::models::{fit_events, EventModel};
use hemocloud_geometry::voxel::VoxelGrid;

/// Maximum number of internodal send events of any task, counting each
/// send and its matching receive (LBM halo exchanges are bidirectional —
/// the factor-of-two convention of paper Eq. 13).
pub fn count_max_events(analysis: &DecompAnalysis, placement: &Placement) -> usize {
    analysis
        .messages
        .iter()
        .enumerate()
        .map(|(task, msgs)| {
            2 * msgs
                .keys()
                .filter(|&&peer| placement.is_internodal(task, peer))
                .count()
        })
        .max()
        .unwrap_or(0)
}

/// One sweep sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventSample {
    /// Task count.
    pub n_tasks: usize,
    /// Node count (contiguous placement).
    pub n_nodes: usize,
    /// Measured maximum internodal events per task per step.
    pub max_events: usize,
}

/// Measure maximum event counts over task-count sweeps at a fixed
/// tasks-per-node, using block partitions and contiguous placement.
pub fn event_sweep(
    grid: &VoxelGrid,
    task_counts: &[usize],
    tasks_per_node: usize,
) -> Vec<EventSample> {
    let dims = grid.dims();
    task_counts
        .iter()
        .filter_map(|&n| {
            let (a, b, c) = crate::partition::factorize3(n, dims);
            if a > dims.0 || b > dims.1 || c > dims.2 {
                return None;
            }
            let p = BlockPartition::new(dims, n);
            let analysis = DecompAnalysis::analyze(grid, &p);
            let placement = Placement::contiguous(n, tasks_per_node);
            Some(EventSample {
                n_tasks: n,
                n_nodes: placement.n_nodes(),
                max_events: count_max_events(&analysis, &placement),
            })
        })
        .collect()
}

/// Measure maximum event counts over task-count sweeps using RCB
/// partitions and contiguous placement — matching the decomposition the
/// solver and timing engine use.
pub fn event_sweep_rcb(
    grid: &VoxelGrid,
    task_counts: &[usize],
    tasks_per_node: usize,
) -> Vec<EventSample> {
    let fluid = grid.fluid_count();
    task_counts
        .iter()
        .filter(|&&n| n >= 1 && n <= fluid)
        .map(|&n| {
            let p = crate::rcb::RcbPartition::new(grid, n);
            let analysis = DecompAnalysis::analyze(grid, &p);
            let placement = Placement::contiguous(n, tasks_per_node);
            EventSample {
                n_tasks: n,
                n_nodes: placement.n_nodes(),
                max_events: count_max_events(&analysis, &placement),
            }
        })
        .collect()
}

/// Fit the Eq. 15 event model to sweep samples.
pub fn fit_event_sweep(samples: &[EventSample]) -> Option<EventModel> {
    let triples: Vec<(usize, usize, f64)> = samples
        .iter()
        .map(|s| (s.n_tasks, s.n_nodes, s.max_events as f64))
        .collect();
    fit_events(&triples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemocloud_geometry::anatomy::CylinderSpec;
    use hemocloud_geometry::voxel::{CellType, VoxelGrid};

    #[test]
    fn all_tasks_on_one_node_is_zero_events() {
        let g = VoxelGrid::filled(8, 8, 8, 1.0, CellType::Bulk);
        let p = BlockPartition::new(g.dims(), 8);
        let analysis = DecompAnalysis::analyze(&g, &p);
        let placement = Placement::contiguous(8, 8);
        assert_eq!(count_max_events(&analysis, &placement), 0);
    }

    #[test]
    fn events_double_count_send_and_receive() {
        // Two slabs on two nodes: each task exchanges with one peer, so 2
        // events (one send + one receive).
        let g = VoxelGrid::filled(8, 8, 8, 1.0, CellType::Bulk);
        let p = crate::partition::SlabPartition::new(g.dims(), 2);
        let analysis = DecompAnalysis::analyze(&g, &p);
        let placement = Placement::contiguous(2, 1);
        assert_eq!(count_max_events(&analysis, &placement), 2);
    }

    #[test]
    fn sweep_monotone_in_tasks_at_fixed_node_size() {
        let g = CylinderSpec::default().with_resolution(10).build();
        let samples = event_sweep(&g, &[4, 16, 64], 4);
        assert_eq!(samples.len(), 3);
        assert!(samples[2].max_events >= samples[0].max_events);
        assert!(samples[2].max_events > 0);
    }

    #[test]
    fn fit_reproduces_sweep_shape() {
        let g = CylinderSpec::default().with_resolution(10).build();
        let samples = event_sweep(&g, &[2, 4, 8, 16, 32, 64], 4);
        let model = fit_event_sweep(&samples).expect("fit");
        // The fitted curve must grow with task count like the measurements.
        let lo = model.eval(4, 1);
        let hi = model.eval(64, 16);
        assert!(hi >= lo, "events model not increasing: {lo} vs {hi}");
        // And stay in the right order of magnitude at the measured points.
        for s in &samples {
            if s.max_events > 0 {
                let pred = model.eval(s.n_tasks, s.n_nodes);
                assert!(
                    pred > 0.2 * s.max_events as f64 && pred < 5.0 * s.max_events as f64,
                    "n={} nodes={}: pred {pred} vs measured {}",
                    s.n_tasks,
                    s.n_nodes,
                    s.max_events
                );
            }
        }
    }
}

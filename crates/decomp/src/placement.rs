//! Task-to-node placement.
//!
//! Whether a message is intranodal (shared memory) or internodal
//! (interconnect) depends on where its endpoint tasks live. The paper
//! assumes node-based allocation — "the user is allocated all cores on a
//! node" — with ranks filling nodes contiguously; [`Placement`] models
//! that and classifies messages.

/// Assignment of tasks to nodes.
#[derive(Debug, Clone)]
pub struct Placement {
    node_of: Vec<usize>,
    n_nodes: usize,
}

impl Placement {
    /// Contiguous block placement: the first `tasks_per_node` tasks on node
    /// 0, the next on node 1, and so on (MPI's default rank order).
    ///
    /// # Panics
    /// Panics if `tasks_per_node` is 0.
    pub fn contiguous(n_tasks: usize, tasks_per_node: usize) -> Self {
        assert!(tasks_per_node > 0, "empty nodes");
        let node_of: Vec<usize> = (0..n_tasks).map(|t| t / tasks_per_node).collect();
        let n_nodes = n_tasks.div_ceil(tasks_per_node);
        Self { node_of, n_nodes }
    }

    /// Round-robin placement (rank `t` on node `t mod n_nodes`) — the
    /// pessimal layout for nearest-neighbor codes, used as an ablation.
    ///
    /// # Panics
    /// Panics if `n_nodes` is 0.
    pub fn round_robin(n_tasks: usize, n_nodes: usize) -> Self {
        assert!(n_nodes > 0, "zero nodes");
        let node_of = (0..n_tasks).map(|t| t % n_nodes).collect();
        Self { node_of, n_nodes }
    }

    /// Node of a task.
    #[inline]
    pub fn node_of(&self, task: usize) -> usize {
        self.node_of[task]
    }

    /// Number of nodes in use.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.node_of.len()
    }

    /// Whether a message between two tasks crosses nodes.
    #[inline]
    pub fn is_internodal(&self, a: usize, b: usize) -> bool {
        self.node_of[a] != self.node_of[b]
    }

    /// Physical node of a task, given a map from this placement's local
    /// node indices (`0..n_nodes`) to physical node ids on a shared pool
    /// — e.g. the ids a `NodePool` allocation handed out. A route-aware
    /// fabric addresses endpoints by physical id, so internodal messages
    /// go through this map before they become flows.
    ///
    /// # Panics
    /// Panics when `node_map` has fewer entries than the placement has
    /// nodes.
    #[inline]
    pub fn physical_node_of(&self, task: usize, node_map: &[usize]) -> usize {
        assert!(
            node_map.len() >= self.n_nodes,
            "node map covers {} nodes, placement uses {}",
            node_map.len(),
            self.n_nodes
        );
        node_map[self.node_of[task]]
    }

    /// Tasks resident on each node.
    pub fn tasks_per_node(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_nodes];
        for &n in &self.node_of {
            counts[n] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_fills_nodes_in_order() {
        let p = Placement::contiguous(10, 4);
        assert_eq!(p.n_nodes(), 3);
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(3), 0);
        assert_eq!(p.node_of(4), 1);
        assert_eq!(p.node_of(9), 2);
        assert_eq!(p.tasks_per_node(), vec![4, 4, 2]);
    }

    #[test]
    fn round_robin_spreads() {
        let p = Placement::round_robin(6, 3);
        assert_eq!(p.tasks_per_node(), vec![2, 2, 2]);
        assert!(p.is_internodal(0, 1));
        assert!(!p.is_internodal(0, 3));
    }

    #[test]
    fn intranodal_messages_detected() {
        let p = Placement::contiguous(8, 4);
        assert!(!p.is_internodal(0, 3));
        assert!(p.is_internodal(3, 4));
    }

    #[test]
    fn exact_fill() {
        let p = Placement::contiguous(8, 4);
        assert_eq!(p.n_nodes(), 2);
        assert_eq!(p.n_tasks(), 8);
    }

    #[test]
    fn physical_node_mapping_relabels_local_nodes() {
        let p = Placement::contiguous(8, 4);
        // Local nodes {0, 1} allocated physical ids {5, 9} on a pool.
        assert_eq!(p.physical_node_of(0, &[5, 9]), 5);
        assert_eq!(p.physical_node_of(3, &[5, 9]), 5);
        assert_eq!(p.physical_node_of(4, &[5, 9]), 9);
        // A longer map is fine; only the first n_nodes entries are used.
        assert_eq!(p.physical_node_of(7, &[5, 9, 11]), 9);
    }

    #[test]
    #[should_panic(expected = "node map covers")]
    fn short_node_map_panics() {
        let p = Placement::contiguous(8, 4);
        p.physical_node_of(0, &[3]);
    }
}

//! Load-imbalance sweeps and the Eq. 11 fit.
//!
//! The paper derives its imbalance parameters `c1, c2` "from fits of
//! Eq. 11 to prior HARVEY decomposition data ... wherein each task's memory
//! accesses were counted for a sweep of task counts". [`imbalance_sweep`]
//! performs exactly that sweep on a geometry; [`fit_sweep`] produces the
//! fitted [`ImbalanceModel`].

use crate::halo::DecompAnalysis;
use crate::partition::BlockPartition;
use hemocloud_fitting::models::{fit_imbalance, ImbalanceModel};
use hemocloud_geometry::voxel::VoxelGrid;

/// One sample of a sweep: task count and its measured `z`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImbalanceSample {
    /// Number of tasks the domain was split into.
    pub n_tasks: usize,
    /// Measured deviation from perfect balance (paper Eq. 10).
    pub z: f64,
}

/// Measure `z` over a sweep of task counts using block partitions.
///
/// Task counts whose process grid would exceed the domain are skipped (a
/// 2048-way split of a 20³ grid is meaningless).
pub fn imbalance_sweep(grid: &VoxelGrid, task_counts: &[usize]) -> Vec<ImbalanceSample> {
    let dims = grid.dims();
    task_counts
        .iter()
        .filter_map(|&n| {
            let (a, b, c) = crate::partition::factorize3(n, dims);
            if a > dims.0 || b > dims.1 || c > dims.2 {
                return None;
            }
            let p = BlockPartition::new(dims, n);
            let analysis = DecompAnalysis::analyze(grid, &p);
            Some(ImbalanceSample {
                n_tasks: n,
                z: analysis.z_factor(),
            })
        })
        .collect()
}

/// Measure `z` over a sweep of task counts using fluid-balanced RCB
/// partitions — the decomposition the HARVEY-analog solver actually uses.
/// Task counts exceeding the fluid-point count are skipped.
pub fn imbalance_sweep_rcb(grid: &VoxelGrid, task_counts: &[usize]) -> Vec<ImbalanceSample> {
    let fluid = grid.fluid_count();
    task_counts
        .iter()
        .filter(|&&n| n >= 1 && n <= fluid)
        .map(|&n| {
            let p = crate::rcb::RcbPartition::new(grid, n);
            let analysis = DecompAnalysis::analyze(grid, &p);
            ImbalanceSample {
                n_tasks: n,
                z: analysis.z_factor(),
            }
        })
        .collect()
}

/// Fit the Eq. 11 model to a sweep.
pub fn fit_sweep(samples: &[ImbalanceSample]) -> Option<ImbalanceModel> {
    let ns: Vec<usize> = samples.iter().map(|s| s.n_tasks).collect();
    let zs: Vec<f64> = samples.iter().map(|s| s.z).collect();
    fit_imbalance(&ns, &zs)
}

/// The default task-count sweep used for model calibration: powers of two
/// through 512 plus a few odd counts to exercise ragged cuts.
pub fn default_sweep() -> Vec<usize> {
    vec![1, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemocloud_geometry::anatomy::{CerebralSpec, CylinderSpec};
    use hemocloud_geometry::voxel::{CellType, VoxelGrid};

    #[test]
    fn full_cube_stays_balanced() {
        // A solid cube of fluid splits evenly: z stays near 1 for divisors
        // of the axis lengths.
        let g = VoxelGrid::filled(16, 16, 16, 1.0, CellType::Bulk);
        let samples = imbalance_sweep(&g, &[1, 2, 4, 8]);
        for s in &samples {
            assert!(s.z < 1.05, "n={} z={}", s.n_tasks, s.z);
        }
    }

    #[test]
    fn sweep_skips_oversubscription() {
        let g = VoxelGrid::filled(4, 4, 4, 1.0, CellType::Bulk);
        let samples = imbalance_sweep(&g, &[1, 2, 4096]);
        assert_eq!(samples.len(), 2);
    }

    #[test]
    fn anatomy_imbalance_grows_with_tasks() {
        let g = CylinderSpec::default().with_resolution(10).build();
        let samples = imbalance_sweep(&g, &[1, 8, 64]);
        assert!(samples[0].z <= samples[2].z + 1e-9);
        assert!(samples[2].z > 1.1, "z(64) = {}", samples[2].z);
    }

    #[test]
    fn fit_tracks_measured_sweep() {
        let g = CerebralSpec::default()
            .with_generations(4)
            .with_resolution(6)
            .build();
        let samples = imbalance_sweep(&g, &[1, 2, 4, 8, 16, 32, 64]);
        let model = fit_sweep(&samples).expect("fit");
        // The fit should track the measured z within ~35% everywhere (the
        // log model is an approximation the paper accepts).
        for s in &samples {
            let pred = model.eval(s.n_tasks);
            assert!(
                (pred - s.z).abs() / s.z < 0.35,
                "n={}: pred {pred} vs measured {}",
                s.n_tasks,
                s.z
            );
        }
    }
}

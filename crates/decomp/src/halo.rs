//! Per-task communication structure of a decomposed geometry.
//!
//! For a given partition of a voxel grid, this module measures everything
//! the *direct* performance model needs (paper §II-D):
//!
//! * fluid points per task (memory-side load, Eq. 9's outer sum);
//! * boundary points per task and the exact message graph — for every
//!   ordered task pair, how many boundary points' distributions cross it
//!   (halo message sizes, Eq. 5);
//! * the per-task message count (communication events, the measured
//!   counterpart of Eq. 15).
//!
//! A fluid point is a *boundary point toward task B* if any of its D3Q19
//! neighbors is a fluid point owned by B. Each such point contributes
//! `n_point_comm_bytes` to the A→B message, sent once per timestep.

use crate::partition::Ownership;
use hemocloud_geometry::classify::D3Q19_DIRECTIONS;
use hemocloud_geometry::voxel::VoxelGrid;
use std::collections::BTreeMap;

/// Full communication census of one decomposition.
#[derive(Debug, Clone)]
pub struct DecompAnalysis {
    /// Number of tasks in the partition.
    pub n_tasks: usize,
    /// Fluid points owned by each task.
    pub points_per_task: Vec<usize>,
    /// Points on each task that border at least one other task.
    pub boundary_points_per_task: Vec<usize>,
    /// `messages[a]` maps peer task `b` to the number of boundary points
    /// task `a` sends to `b` each step.
    pub messages: Vec<BTreeMap<usize, usize>>,
    /// Total fluid points in the geometry.
    pub total_points: usize,
}

impl DecompAnalysis {
    /// Analyze `grid` under `partition`.
    pub fn analyze<P: Ownership>(grid: &VoxelGrid, partition: &P) -> Self {
        let n_tasks = partition.task_count();
        let mut points = vec![0usize; n_tasks];
        let mut boundary = vec![0usize; n_tasks];
        let mut messages: Vec<BTreeMap<usize, usize>> = vec![BTreeMap::new(); n_tasks];
        let mut total = 0usize;

        for (x, y, z, c) in grid.iter_cells() {
            if !c.is_fluid() {
                continue;
            }
            total += 1;
            let me = partition.owner(x, y, z);
            points[me] += 1;

            // Which foreign tasks does this point border?
            let mut peers: Vec<usize> = Vec::new();
            for &(dx, dy, dz) in &D3Q19_DIRECTIONS {
                if grid.get_offset(x, y, z, dx, dy, dz).is_fluid() {
                    let nx = (x as i64 + dx as i64) as usize;
                    let ny = (y as i64 + dy as i64) as usize;
                    let nz = (z as i64 + dz as i64) as usize;
                    let owner = partition.owner(nx, ny, nz);
                    if owner != me && !peers.contains(&owner) {
                        peers.push(owner);
                    }
                }
            }
            if !peers.is_empty() {
                boundary[me] += 1;
                for peer in peers {
                    *messages[me].entry(peer).or_insert(0) += 1;
                }
            }
        }

        Self {
            n_tasks,
            points_per_task: points,
            boundary_points_per_task: boundary,
            messages,
            total_points: total,
        }
    }

    /// Load-imbalance factor `z`: the maximum per-task point count divided
    /// by the perfectly balanced share (paper Eq. 10 rearranged). Tasks
    /// owning no fluid still count toward the denominator — an empty task
    /// is wasted capacity, exactly what `z` measures.
    pub fn z_factor(&self) -> f64 {
        let max = *self.points_per_task.iter().max().unwrap_or(&0);
        if self.total_points == 0 {
            return 1.0;
        }
        let ideal = self.total_points as f64 / self.n_tasks as f64;
        max as f64 / ideal
    }

    /// Maximum number of boundary points on any task.
    pub fn max_boundary_points(&self) -> usize {
        *self
            .boundary_points_per_task
            .iter()
            .max()
            .unwrap_or(&0)
    }

    /// Maximum number of messages sent by any task (its neighbor count).
    pub fn max_messages(&self) -> usize {
        self.messages.iter().map(|m| m.len()).max().unwrap_or(0)
    }

    /// Maximum total points any task sends per step (sum over its
    /// messages): the halo volume of the worst task.
    pub fn max_send_points(&self) -> usize {
        self.messages
            .iter()
            .map(|m| m.values().sum::<usize>())
            .max()
            .unwrap_or(0)
    }

    /// Check the message graph is symmetric in peers: A sends to B iff B
    /// sends to A (sizes may differ at ragged fluid boundaries only by the
    /// points each side counts; peer sets must match exactly).
    pub fn is_peer_symmetric(&self) -> bool {
        for (a, msgs) in self.messages.iter().enumerate() {
            for &b in msgs.keys() {
                if !self.messages[b].contains_key(&a) {
                    return false;
                }
            }
        }
        true
    }
}

/// Per-task memory-access byte totals (the direct model's Eq. 9 sums):
/// every fluid point contributes `bulk_bytes` or `wall_bytes` depending on
/// whether it touches solid. Inlet/outlet cells count as wall points (they
/// also skip remote reads).
pub fn bytes_per_task<P: Ownership>(
    grid: &VoxelGrid,
    partition: &P,
    bulk_bytes: f64,
    wall_bytes: f64,
) -> Vec<f64> {
    use hemocloud_geometry::voxel::CellType;
    let mut bytes = vec![0.0; partition.task_count()];
    for (x, y, z, c) in grid.iter_cells() {
        if !c.is_fluid() {
            continue;
        }
        let task = partition.owner(x, y, z);
        bytes[task] += match c {
            CellType::Bulk => bulk_bytes,
            _ => wall_bytes,
        };
    }
    bytes
}

/// Per-task *resident-memory* byte totals: every fluid point owned by a
/// task contributes `point_bytes` of storage (distribution arrays plus the
/// streaming-index row — the kernel's `resident_bytes_per_point`, not its
/// per-step traffic). This is what capacity planning compares against a
/// node's memory, and it depends on the propagation pattern: AA kernels
/// never allocate the second distribution array, so their footprint is
/// computed from a smaller `point_bytes` than AB's — the accounting can no
/// longer silently assume two arrays.
pub fn resident_bytes_per_task<P: Ownership>(
    grid: &VoxelGrid,
    partition: &P,
    point_bytes: f64,
) -> Vec<f64> {
    let mut bytes = vec![0.0; partition.task_count()];
    for (x, y, z, c) in grid.iter_cells() {
        if !c.is_fluid() {
            continue;
        }
        bytes[partition.owner(x, y, z)] += point_bytes;
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{BlockPartition, SlabPartition};
    use hemocloud_geometry::anatomy::CylinderSpec;
    use hemocloud_geometry::voxel::{CellType, VoxelGrid};

    fn full_box(n: usize) -> VoxelGrid {
        VoxelGrid::filled(n, n, n, 1.0, CellType::Bulk)
    }

    #[test]
    fn single_task_has_no_messages() {
        let g = full_box(6);
        let p = BlockPartition::new(g.dims(), 1);
        let a = DecompAnalysis::analyze(&g, &p);
        assert_eq!(a.max_messages(), 0);
        assert_eq!(a.max_boundary_points(), 0);
        assert_eq!(a.z_factor(), 1.0);
        assert_eq!(a.points_per_task, vec![216]);
    }

    #[test]
    fn two_slabs_exchange_one_face() {
        let g = full_box(8);
        let p = SlabPartition::new(g.dims(), 2);
        let a = DecompAnalysis::analyze(&g, &p);
        assert_eq!(a.n_tasks, 2);
        assert_eq!(a.points_per_task, vec![256, 256]);
        // Each slab's boundary is one 8×8 face.
        assert_eq!(a.boundary_points_per_task, vec![64, 64]);
        assert_eq!(a.messages[0][&1], 64);
        assert_eq!(a.messages[1][&0], 64);
        assert_eq!(a.max_messages(), 1);
    }

    #[test]
    fn eight_blocks_have_seven_peers_each() {
        // 2×2×2 blocks of a full cube: every block touches the other 7
        // (faces, edges and corners all carry D3Q19 edge directions —
        // corners only via shared edge-diagonal paths, so check ≥3).
        let g = full_box(8);
        let p = BlockPartition::new(g.dims(), 8);
        let a = DecompAnalysis::analyze(&g, &p);
        for m in &a.messages {
            assert!(m.len() >= 3, "block with {} peers", m.len());
        }
        assert!(a.is_peer_symmetric());
    }

    #[test]
    fn message_totals_are_pairwise_equal_on_uniform_cube() {
        let g = full_box(8);
        let p = BlockPartition::new(g.dims(), 8);
        let a = DecompAnalysis::analyze(&g, &p);
        for (t, msgs) in a.messages.iter().enumerate() {
            for (&peer, &pts) in msgs {
                assert_eq!(
                    a.messages[peer][&t], pts,
                    "asymmetric exchange {t} <-> {peer}"
                );
            }
        }
    }

    #[test]
    fn z_grows_on_sparse_geometry() {
        // A cylinder split into blocks: corner blocks catch little fluid,
        // so z > 1.
        let g = CylinderSpec::default().with_resolution(12).build();
        let p = BlockPartition::new(g.dims(), 8);
        let a = DecompAnalysis::analyze(&g, &p);
        assert!(a.z_factor() > 1.0, "z = {}", a.z_factor());
        let total: usize = a.points_per_task.iter().sum();
        assert_eq!(total, a.total_points);
    }

    #[test]
    fn slab_beats_block_on_message_count_but_not_volume() {
        // Slabs have at most 2 peers but huge faces; blocks have more peers
        // with smaller total halo at high task counts.
        let g = full_box(16);
        let slab = DecompAnalysis::analyze(&g, &SlabPartition::new(g.dims(), 8));
        let block = DecompAnalysis::analyze(&g, &BlockPartition::new(g.dims(), 8));
        assert!(slab.max_messages() <= 2);
        assert!(block.max_messages() > slab.max_messages());
        assert!(
            block.max_send_points() < slab.max_send_points(),
            "block {} vs slab {}",
            block.max_send_points(),
            slab.max_send_points()
        );
    }

    #[test]
    fn bytes_per_task_weights_cell_types() {
        let mut g = VoxelGrid::filled(4, 4, 4, 1.0, CellType::Bulk);
        g.set(0, 0, 0, CellType::Wall);
        let p = BlockPartition::new(g.dims(), 1);
        let bytes = bytes_per_task(&g, &p, 10.0, 3.0);
        assert_eq!(bytes, vec![63.0 * 10.0 + 3.0]);
    }

    #[test]
    fn bytes_per_task_totals_are_partition_invariant() {
        let g = CylinderSpec::default().with_resolution(10).build();
        let p1 = BlockPartition::new(g.dims(), 1);
        let p8 = BlockPartition::new(g.dims(), 8);
        let t1: f64 = bytes_per_task(&g, &p1, 380.0, 320.0).iter().sum();
        let t8: f64 = bytes_per_task(&g, &p8, 380.0, 320.0).iter().sum();
        assert!((t1 - t8).abs() < 1e-6);
    }

    #[test]
    fn resident_bytes_count_every_fluid_point_once() {
        let g = CylinderSpec::default().with_resolution(10).build();
        let p = BlockPartition::new(g.dims(), 8);
        let a = DecompAnalysis::analyze(&g, &p);
        let resident = resident_bytes_per_task(&g, &p, 228.0);
        assert_eq!(resident.len(), 8);
        let total: f64 = resident.iter().sum();
        assert!((total - a.total_points as f64 * 228.0).abs() < 1e-6);
        // Per task, the footprint is exactly points × point_bytes.
        for (task, &b) in resident.iter().enumerate() {
            assert_eq!(b, a.points_per_task[task] as f64 * 228.0);
        }
    }

    #[test]
    fn resident_bytes_scale_linearly_with_point_cost() {
        // The AB→AA memory saving flows straight through: a kernel whose
        // per-point footprint is 228/380 of AB's yields per-task footprints
        // scaled by the same ratio on every task.
        let g = CylinderSpec::default().with_resolution(10).build();
        let p = BlockPartition::new(g.dims(), 4);
        let ab = resident_bytes_per_task(&g, &p, 380.0);
        let aa = resident_bytes_per_task(&g, &p, 228.0);
        for (a, b) in ab.iter().zip(&aa) {
            assert!((b / a - 228.0 / 380.0).abs() < 1e-12);
        }
    }

    #[test]
    fn resident_bytes_pinned_for_single_precision_kernels() {
        // The f32 storage points the lbm kernels now actually allocate:
        //   AB f32: 2 arrays × 19 × 4 B + 19 × 4 B index = 228 B/point
        //   AA f32: 1 array  × 19 × 4 B + 19 × 4 B index = 152 B/point
        // (`KernelConfig::resident_bytes_per_point` values; decomp takes
        // them as plain numbers, so pin the end-to-end totals here.)
        let g = full_box(6);
        let p = BlockPartition::new(g.dims(), 2);
        let ab_f32 = resident_bytes_per_task(&g, &p, 228.0);
        let aa_f32 = resident_bytes_per_task(&g, &p, 152.0);
        let points = 6.0 * 6.0 * 6.0;
        assert_eq!(ab_f32.iter().sum::<f64>(), points * 228.0);
        assert_eq!(aa_f32.iter().sum::<f64>(), points * 152.0);
        // Same byte totals as AA/AB double scaled by 4/8 on the array
        // part: AB f32 == AA f64 (228), and AA f32 sits strictly below.
        let aa_f64 = resident_bytes_per_task(&g, &p, 228.0);
        assert_eq!(ab_f32, aa_f64);
        for (s, d) in aa_f32.iter().zip(&aa_f64) {
            assert!(s < d);
        }
    }

    #[test]
    fn peer_symmetry_on_anatomy() {
        let g = CylinderSpec::default().with_resolution(10).build();
        let p = BlockPartition::new(g.dims(), 6);
        let a = DecompAnalysis::analyze(&g, &p);
        assert!(a.is_peer_symmetric());
    }
}

//! Spatial partitions of the voxel bounding box.
//!
//! HARVEY decomposes its domain into near-cubic blocks; the paper's
//! generalized model assumes exactly this ("the sub-cube assigned to each
//! task", Eq. 13). [`BlockPartition`] factorizes the task count into a 3-D
//! process grid proportioned to the domain; [`SlabPartition`] (1-D cuts)
//! is kept as the ablation baseline — it balances equally well but
//! communicates far more at scale.

use hemocloud_geometry::voxel::VoxelGrid;

/// Anything that assigns voxels to tasks.
pub trait Ownership {
    /// Task owning voxel `(x, y, z)`.
    fn owner(&self, x: usize, y: usize, z: usize) -> usize;
    /// Total number of tasks.
    fn task_count(&self) -> usize;
}

impl Ownership for BlockPartition {
    fn owner(&self, x: usize, y: usize, z: usize) -> usize {
        self.owner_of(x, y, z)
    }
    fn task_count(&self) -> usize {
        self.n_tasks()
    }
}

impl Ownership for SlabPartition {
    fn owner(&self, x: usize, y: usize, z: usize) -> usize {
        self.owner_of(x, y, z)
    }
    fn task_count(&self) -> usize {
        self.n_tasks()
    }
}

/// A half-open axis-aligned box `[x0,x1) × [y0,y1) × [z0,z1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoxRegion {
    /// x range start (inclusive).
    pub x0: usize,
    /// x range end (exclusive).
    pub x1: usize,
    /// y range start.
    pub y0: usize,
    /// y range end.
    pub y1: usize,
    /// z range start.
    pub z0: usize,
    /// z range end.
    pub z1: usize,
}

impl BoxRegion {
    /// Voxel count of the region.
    pub fn volume(&self) -> usize {
        (self.x1 - self.x0) * (self.y1 - self.y0) * (self.z1 - self.z0)
    }

    /// Whether the region contains `(x, y, z)`.
    #[inline]
    pub fn contains(&self, x: usize, y: usize, z: usize) -> bool {
        (self.x0..self.x1).contains(&x)
            && (self.y0..self.y1).contains(&y)
            && (self.z0..self.z1).contains(&z)
    }
}

/// Factor `n` into three factors `(a, b, c)` with `a·b·c = n`, chosen to
/// make per-task blocks of an `dims`-proportioned domain as close to cubic
/// as possible (minimizing predicted block surface area).
pub fn factorize3(n: usize, dims: (usize, usize, usize)) -> (usize, usize, usize) {
    assert!(n > 0);
    let (nx, ny, nz) = (dims.0 as f64, dims.1 as f64, dims.2 as f64);
    let mut best = (n, 1, 1);
    let mut best_surface = f64::INFINITY;
    for a in 1..=n {
        if !n.is_multiple_of(a) {
            continue;
        }
        let m = n / a;
        for b in 1..=m {
            if !m.is_multiple_of(b) {
                continue;
            }
            let c = m / b;
            // Surface area of one block of an (nx/a, ny/b, nz/c) grid.
            let (sx, sy, sz) = (nx / a as f64, ny / b as f64, nz / c as f64);
            let surface = 2.0 * (sx * sy + sy * sz + sx * sz);
            if surface < best_surface {
                best_surface = surface;
                best = (a, b, c);
            }
        }
    }
    best
}

/// Split `[0, len)` into `parts` near-equal half-open intervals.
fn cuts(len: usize, parts: usize) -> Vec<(usize, usize)> {
    (0..parts)
        .map(|i| (i * len / parts, (i + 1) * len / parts))
        .collect()
}

/// A 3-D block-grid partition.
#[derive(Debug, Clone)]
pub struct BlockPartition {
    dims: (usize, usize, usize),
    grid: (usize, usize, usize),
    x_cuts: Vec<(usize, usize)>,
    y_cuts: Vec<(usize, usize)>,
    z_cuts: Vec<(usize, usize)>,
}

impl BlockPartition {
    /// Partition a `dims` domain among `n_tasks` tasks.
    ///
    /// # Panics
    /// Panics when `n_tasks` is 0 or when any factor exceeds its axis
    /// extent (more cuts than voxels).
    pub fn new(dims: (usize, usize, usize), n_tasks: usize) -> Self {
        let grid = factorize3(n_tasks, dims);
        assert!(
            grid.0 <= dims.0 && grid.1 <= dims.1 && grid.2 <= dims.2,
            "process grid {grid:?} exceeds domain {dims:?}"
        );
        Self {
            dims,
            grid,
            x_cuts: cuts(dims.0, grid.0),
            y_cuts: cuts(dims.1, grid.1),
            z_cuts: cuts(dims.2, grid.2),
        }
    }

    /// The process-grid shape `(px, py, pz)`.
    pub fn grid(&self) -> (usize, usize, usize) {
        self.grid
    }

    /// Number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.grid.0 * self.grid.1 * self.grid.2
    }

    /// Task index owning voxel `(x, y, z)`.
    #[inline]
    pub fn owner_of(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.dims.0 && y < self.dims.1 && z < self.dims.2);
        let ix = self.x_cuts.partition_point(|&(_, end)| end <= x);
        let iy = self.y_cuts.partition_point(|&(_, end)| end <= y);
        let iz = self.z_cuts.partition_point(|&(_, end)| end <= z);
        ix + self.grid.0 * (iy + self.grid.1 * iz)
    }

    /// The box of a task.
    pub fn region(&self, task: usize) -> BoxRegion {
        let ix = task % self.grid.0;
        let iy = (task / self.grid.0) % self.grid.1;
        let iz = task / (self.grid.0 * self.grid.1);
        BoxRegion {
            x0: self.x_cuts[ix].0,
            x1: self.x_cuts[ix].1,
            y0: self.y_cuts[iy].0,
            y1: self.y_cuts[iy].1,
            z0: self.z_cuts[iz].0,
            z1: self.z_cuts[iz].1,
        }
    }

    /// Ownership of each *fluid* cell of `grid`, in fluid-compaction order
    /// (memory-order scan — the same order `FluidMesh::build` uses), ready
    /// for the ranked solver.
    pub fn assign_fluid_cells(&self, grid: &VoxelGrid) -> Vec<u32> {
        let mut owner = Vec::new();
        for (x, y, z, c) in grid.iter_cells() {
            if c.is_fluid() {
                owner.push(self.owner_of(x, y, z) as u32);
            }
        }
        owner
    }
}

/// A 1-D slab partition along the longest axis (the ablation baseline).
#[derive(Debug, Clone)]
pub struct SlabPartition {
    dims: (usize, usize, usize),
    axis: usize,
    cuts: Vec<(usize, usize)>,
}

impl SlabPartition {
    /// Partition `dims` into `n_tasks` slabs along the longest axis.
    ///
    /// # Panics
    /// Panics when `n_tasks` is 0 or exceeds the longest axis length.
    pub fn new(dims: (usize, usize, usize), n_tasks: usize) -> Self {
        assert!(n_tasks > 0);
        let extents = [dims.0, dims.1, dims.2];
        let axis = (0..3).max_by_key(|&a| extents[a]).expect("three axes");
        assert!(
            n_tasks <= extents[axis],
            "more slabs than voxels along axis {axis}"
        );
        Self {
            dims,
            axis,
            cuts: cuts(extents[axis], n_tasks),
        }
    }

    /// Number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.cuts.len()
    }

    /// The slab axis (0 = x, 1 = y, 2 = z).
    pub fn axis(&self) -> usize {
        self.axis
    }

    /// Task index owning voxel `(x, y, z)`.
    #[inline]
    pub fn owner_of(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.dims.0 && y < self.dims.1 && z < self.dims.2);
        let v = [x, y, z][self.axis];
        self.cuts.partition_point(|&(_, end)| end <= v)
    }

    /// Ownership of each fluid cell, in fluid-compaction order.
    pub fn assign_fluid_cells(&self, grid: &VoxelGrid) -> Vec<u32> {
        let mut owner = Vec::new();
        for (x, y, z, c) in grid.iter_cells() {
            if c.is_fluid() {
                owner.push(self.owner_of(x, y, z) as u32);
            }
        }
        owner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemocloud_geometry::voxel::{CellType, VoxelGrid};

    #[test]
    fn factorize3_products_are_exact() {
        for n in [1usize, 2, 3, 4, 6, 8, 12, 16, 36, 64, 100, 128, 2048] {
            let (a, b, c) = factorize3(n, (100, 100, 100));
            assert_eq!(a * b * c, n, "n = {n}");
        }
    }

    #[test]
    fn factorize3_prefers_cubic_blocks_on_cubic_domains() {
        let (a, b, c) = factorize3(8, (64, 64, 64));
        let mut f = [a, b, c];
        f.sort_unstable();
        assert_eq!(f, [2, 2, 2]);
        let (a, b, c) = factorize3(64, (64, 64, 64));
        let mut f = [a, b, c];
        f.sort_unstable();
        assert_eq!(f, [4, 4, 4]);
    }

    #[test]
    fn factorize3_follows_domain_anisotropy() {
        // A long-z domain should take its cuts along z.
        let (a, b, c) = factorize3(4, (10, 10, 1000));
        assert_eq!((a, b), (1, 1));
        assert_eq!(c, 4);
    }

    #[test]
    fn block_partition_tiles_exactly() {
        let p = BlockPartition::new((13, 7, 9), 6);
        let total: usize = (0..p.n_tasks()).map(|t| p.region(t).volume()).sum();
        assert_eq!(total, 13 * 7 * 9);
        // Every voxel's owner region contains it.
        for z in 0..9 {
            for y in 0..7 {
                for x in 0..13 {
                    let t = p.owner_of(x, y, z);
                    assert!(p.region(t).contains(x, y, z), "({x},{y},{z}) -> {t}");
                }
            }
        }
    }

    #[test]
    fn block_regions_are_disjoint() {
        let p = BlockPartition::new((8, 8, 8), 8);
        for t1 in 0..8 {
            for t2 in (t1 + 1)..8 {
                let r1 = p.region(t1);
                let r2 = p.region(t2);
                let overlap = r1.x0.max(r2.x0) < r1.x1.min(r2.x1)
                    && r1.y0.max(r2.y0) < r1.y1.min(r2.y1)
                    && r1.z0.max(r2.z0) < r1.z1.min(r2.z1);
                assert!(!overlap, "{t1} and {t2} overlap");
            }
        }
    }

    #[test]
    fn slab_cuts_longest_axis() {
        let p = SlabPartition::new((4, 100, 8), 10);
        assert_eq!(p.axis(), 1);
        assert_eq!(p.owner_of(0, 0, 0), 0);
        assert_eq!(p.owner_of(0, 99, 0), 9);
    }

    #[test]
    fn fluid_assignment_matches_compaction_order() {
        let mut g = VoxelGrid::filled(4, 4, 4, 1.0, CellType::Bulk);
        g.set(0, 0, 0, CellType::Solid);
        let p = BlockPartition::new((4, 4, 4), 4);
        let owner = p.assign_fluid_cells(&g);
        assert_eq!(owner.len(), 63);
        // The first fluid cell in memory order is (1,0,0).
        assert_eq!(owner[0] as usize, p.owner_of(1, 0, 0));
    }

    #[test]
    fn single_task_owns_everything() {
        let p = BlockPartition::new((5, 5, 5), 1);
        for z in 0..5 {
            for y in 0..5 {
                for x in 0..5 {
                    assert_eq!(p.owner_of(x, y, z), 0);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds domain")]
    fn oversubscribed_partition_panics() {
        let _ = BlockPartition::new((2, 2, 2), 1024);
    }
}

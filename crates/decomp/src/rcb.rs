//! Recursive coordinate bisection (RCB): fluid-balanced partitioning.
//!
//! HARVEY load-balances *fluid points*, not bounding-box volume; a naive
//! block grid assigns near-empty corner blocks on sparse anatomies (the
//! cerebral tree especially) and its imbalance factor explodes. RCB
//! recursively splits the current box along its longest axis at the plane
//! that divides the *fluid count* in proportion to the task split,
//! producing box-shaped subdomains (the generalized model's sub-cube
//! assumption still holds) with near-perfect balance.
//!
//! The block partition remains available as the ablation baseline
//! (DESIGN.md §5, "Block vs. slab decomposition" extends to RCB).

use crate::partition::{BoxRegion, Ownership};
use hemocloud_geometry::voxel::VoxelGrid;

/// A fluid-balanced RCB partition. Ownership is materialized per voxel for
/// O(1) queries.
#[derive(Debug, Clone)]
pub struct RcbPartition {
    dims: (usize, usize, usize),
    owner: Vec<u32>,
    n_tasks: usize,
    regions: Vec<BoxRegion>,
}

impl RcbPartition {
    /// Partition `grid` into `n_tasks` fluid-balanced boxes.
    ///
    /// # Panics
    /// Panics when `n_tasks` is 0 or exceeds the fluid-point count.
    pub fn new(grid: &VoxelGrid, n_tasks: usize) -> Self {
        assert!(n_tasks > 0, "zero tasks");
        assert!(
            n_tasks <= grid.fluid_count(),
            "more tasks than fluid points"
        );
        let dims = grid.dims();
        let mut owner = vec![0u32; grid.len()];
        let mut regions = vec![
            BoxRegion {
                x0: 0,
                x1: 0,
                y0: 0,
                y1: 0,
                z0: 0,
                z1: 0,
            };
            n_tasks
        ];
        let whole = BoxRegion {
            x0: 0,
            x1: dims.0,
            y0: 0,
            y1: dims.1,
            z0: 0,
            z1: dims.2,
        };
        bisect(grid, whole, 0, n_tasks, &mut owner, &mut regions);
        Self {
            dims,
            owner,
            n_tasks,
            regions,
        }
    }

    /// The box assigned to a task.
    pub fn region(&self, task: usize) -> BoxRegion {
        self.regions[task]
    }

    /// Number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.n_tasks
    }

    /// Task owning voxel `(x, y, z)`.
    #[inline]
    pub fn owner_of(&self, x: usize, y: usize, z: usize) -> usize {
        self.owner[x + self.dims.0 * (y + self.dims.1 * z)] as usize
    }

    /// Ownership of each fluid cell, in fluid-compaction order (the order
    /// `FluidMesh::build` uses).
    pub fn assign_fluid_cells(&self, grid: &VoxelGrid) -> Vec<u32> {
        grid.cells()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_fluid())
            .map(|(i, _)| self.owner[i])
            .collect()
    }
}

impl Ownership for RcbPartition {
    fn owner(&self, x: usize, y: usize, z: usize) -> usize {
        self.owner_of(x, y, z)
    }
    fn task_count(&self) -> usize {
        self.n_tasks
    }
}

/// Fluid counts per slice of `region` along `axis`.
fn slice_counts(grid: &VoxelGrid, region: &BoxRegion, axis: usize) -> Vec<usize> {
    let len = match axis {
        0 => region.x1 - region.x0,
        1 => region.y1 - region.y0,
        _ => region.z1 - region.z0,
    };
    let mut counts = vec![0usize; len];
    for z in region.z0..region.z1 {
        for y in region.y0..region.y1 {
            for x in region.x0..region.x1 {
                if grid.get(x, y, z).is_fluid() {
                    let s = match axis {
                        0 => x - region.x0,
                        1 => y - region.y0,
                        _ => z - region.z0,
                    };
                    counts[s] += 1;
                }
            }
        }
    }
    counts
}

/// Recursively assign `[task0, task0 + n_tasks)` within `region`.
fn bisect(
    grid: &VoxelGrid,
    region: BoxRegion,
    task0: usize,
    n_tasks: usize,
    owner: &mut [u32],
    regions: &mut [BoxRegion],
) {
    if n_tasks == 1 {
        let (nx, ny) = (grid.nx(), grid.ny());
        for z in region.z0..region.z1 {
            for y in region.y0..region.y1 {
                for x in region.x0..region.x1 {
                    owner[x + nx * (y + ny * z)] = task0 as u32;
                }
            }
        }
        regions[task0] = region;
        return;
    }

    let n_left = n_tasks / 2;
    let n_right = n_tasks - n_left;

    // Try every axis with at least two slices; take the cut whose left
    // fluid share lands closest to the target n_left/n_tasks fraction.
    // Slice granularity makes long axes usually — but not always — best,
    // so measuring beats the classic longest-axis heuristic on lumpy
    // anatomies.
    let extents = [
        region.x1 - region.x0,
        region.y1 - region.y0,
        region.z1 - region.z0,
    ];
    let mut best: Option<(usize, usize, f64)> = None; // (axis, cut, error)
    #[allow(clippy::needless_range_loop)] // `axis` doubles as the result value
    for axis in 0..3 {
        if extents[axis] < 2 {
            continue;
        }
        let counts = slice_counts(grid, &region, axis);
        let total: usize = counts.iter().sum();
        let want = total as f64 * n_left as f64 / n_tasks as f64;
        let mut acc = 0usize;
        for (i, &c) in counts.iter().enumerate().take(counts.len() - 1) {
            acc += c;
            let err = (acc as f64 - want).abs();
            if best.as_ref().is_none_or(|&(_, _, e)| err < e) {
                best = Some((axis, i + 1, err));
            }
        }
    }
    let (axis, cut, _) = best.expect("splittable region");

    let (mut left, mut right) = (region, region);
    match axis {
        0 => {
            left.x1 = region.x0 + cut;
            right.x0 = region.x0 + cut;
        }
        1 => {
            left.y1 = region.y0 + cut;
            right.y0 = region.y0 + cut;
        }
        _ => {
            left.z1 = region.z0 + cut;
            right.z0 = region.z0 + cut;
        }
    }
    bisect(grid, left, task0, n_left, owner, regions);
    bisect(grid, right, task0 + n_left, n_right, owner, regions);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::halo::DecompAnalysis;
    use crate::partition::BlockPartition;
    use hemocloud_geometry::anatomy::{CerebralSpec, CylinderSpec};
    use hemocloud_geometry::voxel::{CellType, VoxelGrid};

    #[test]
    fn tiles_the_grid_exactly() {
        let g = VoxelGrid::filled(8, 9, 10, 1.0, CellType::Bulk);
        let p = RcbPartition::new(&g, 6);
        let total: usize = (0..6).map(|t| p.region(t).volume()).sum();
        assert_eq!(total, 8 * 9 * 10);
        for z in 0..10 {
            for y in 0..9 {
                for x in 0..8 {
                    let t = p.owner_of(x, y, z);
                    assert!(p.region(t).contains(x, y, z));
                }
            }
        }
    }

    #[test]
    fn balances_a_uniform_cube() {
        let g = VoxelGrid::filled(16, 16, 16, 1.0, CellType::Bulk);
        let p = RcbPartition::new(&g, 8);
        let a = DecompAnalysis::analyze(&g, &p);
        assert!(a.z_factor() < 1.01, "z = {}", a.z_factor());
    }

    #[test]
    fn balances_sparse_anatomy_far_better_than_blocks() {
        let g = CerebralSpec::default()
            .with_generations(4)
            .with_resolution(8)
            .build();
        let rcb = DecompAnalysis::analyze(&g, &RcbPartition::new(&g, 32));
        let block = DecompAnalysis::analyze(&g, &BlockPartition::new(g.dims(), 32));
        assert!(
            rcb.z_factor() < 1.4,
            "RCB z = {} should be near 1",
            rcb.z_factor()
        );
        assert!(
            rcb.z_factor() < 0.6 * block.z_factor(),
            "RCB {} vs block {}",
            rcb.z_factor(),
            block.z_factor()
        );
    }

    #[test]
    fn works_for_odd_task_counts() {
        let g = CylinderSpec::default().with_resolution(10).build();
        for n in [3usize, 5, 7, 13] {
            let p = RcbPartition::new(&g, n);
            let a = DecompAnalysis::analyze(&g, &p);
            assert_eq!(a.points_per_task.iter().sum::<usize>(), g.fluid_count());
            assert!(a.z_factor() < 1.8, "n={n}: z={}", a.z_factor());
        }
    }

    #[test]
    fn fluid_assignment_is_compaction_ordered() {
        let mut g = VoxelGrid::filled(4, 4, 4, 1.0, CellType::Bulk);
        g.set(0, 0, 0, CellType::Solid);
        let p = RcbPartition::new(&g, 2);
        let owner = p.assign_fluid_cells(&g);
        assert_eq!(owner.len(), 63);
        assert_eq!(owner[0] as usize, p.owner_of(1, 0, 0));
    }

    #[test]
    #[should_panic(expected = "more tasks than fluid")]
    fn oversubscription_panics() {
        let mut g = VoxelGrid::solid(3, 3, 3, 1.0);
        g.set(1, 1, 1, CellType::Bulk);
        let _ = RcbPartition::new(&g, 2);
    }
}

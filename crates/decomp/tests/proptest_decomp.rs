//! Property tests for the partition machinery (`hemocloud_rt::check`):
//! tiling, ownership and balance invariants over arbitrary domains and
//! task counts.

use hemocloud_decomp::halo::DecompAnalysis;
use hemocloud_decomp::partition::{factorize3, BlockPartition, SlabPartition};
use hemocloud_decomp::placement::Placement;
use hemocloud_decomp::rcb::RcbPartition;
use hemocloud_geometry::voxel::{CellType, VoxelGrid};
use hemocloud_rt::check::{self, Config};

#[test]
fn factorize3_is_exact_and_within_bounds() {
    check::run(
        "factorize3_is_exact_and_within_bounds",
        Config::cases(48),
        |rng| {
            let n = rng.range_usize(1, 2049);
            let dx = rng.range_usize(4, 64);
            let dy = rng.range_usize(4, 64);
            let dz = rng.range_usize(4, 64);
            let (a, b, c) = factorize3(n, (dx, dy, dz));
            assert_eq!(a * b * c, n);
        },
    );
}

#[test]
fn block_partition_tiles_any_domain() {
    check::run("block_partition_tiles_any_domain", Config::cases(48), |rng| {
        let dx = rng.range_usize(2, 12);
        let dy = rng.range_usize(2, 12);
        let dz = rng.range_usize(2, 12);
        let n = rng.range_usize(1, 9);
        let (a, b, c) = factorize3(n, (dx, dy, dz));
        if !(a <= dx && b <= dy && c <= dz) {
            return; // vacuous case (the prop_assume! analog)
        }
        let p = BlockPartition::new((dx, dy, dz), n);
        let mut counts = vec![0usize; n];
        for z in 0..dz {
            for y in 0..dy {
                for x in 0..dx {
                    let t = p.owner_of(x, y, z);
                    assert!(t < n);
                    assert!(p.region(t).contains(x, y, z));
                    counts[t] += 1;
                }
            }
        }
        assert_eq!(counts.iter().sum::<usize>(), dx * dy * dz);
        for (t, &cnt) in counts.iter().enumerate() {
            assert_eq!(cnt, p.region(t).volume());
        }
    });
}

#[test]
fn slab_owners_are_monotone_along_the_axis() {
    check::run(
        "slab_owners_are_monotone_along_the_axis",
        Config::cases(48),
        |rng| {
            let dx = rng.range_usize(2, 10);
            let dy = rng.range_usize(2, 10);
            let dz = rng.range_usize(2, 30);
            let n = rng.range_usize(1, 8);
            let dims = (dx, dy, dz);
            let longest = dx.max(dy).max(dz);
            if n > longest {
                return; // vacuous case
            }
            let p = SlabPartition::new(dims, n);
            let mut prev = 0usize;
            for v in 0..longest {
                let (x, y, z) = match p.axis() {
                    0 => (v, 0, 0),
                    1 => (0, v, 0),
                    _ => (0, 0, v),
                };
                let t = p.owner_of(x, y, z);
                assert!(t >= prev, "owners must be non-decreasing along the slab axis");
                prev = t;
            }
            assert_eq!(prev, n - 1, "last slab owned by last task");
        },
    );
}

#[test]
fn rcb_balances_dense_boxes_tightly() {
    check::run("rcb_balances_dense_boxes_tightly", Config::cases(48), |rng| {
        let dx = rng.range_usize(4, 12);
        let dy = rng.range_usize(4, 12);
        let dz = rng.range_usize(4, 12);
        let n = rng.range_usize(1, 9);
        let g = VoxelGrid::filled(dx, dy, dz, 1.0, CellType::Bulk);
        let p = RcbPartition::new(&g, n);
        let a = DecompAnalysis::analyze(&g, &p);
        // On a dense box the worst task holds at most ~1 slice more than
        // ideal; bound loosely.
        assert!(a.z_factor() < 1.8, "z = {}", a.z_factor());
        assert_eq!(a.points_per_task.iter().sum::<usize>(), dx * dy * dz);
    });
}

#[test]
fn placement_partitions_tasks_exactly() {
    check::run("placement_partitions_tasks_exactly", Config::cases(48), |rng| {
        let n_tasks = rng.range_usize(1, 200);
        let per_node = rng.range_usize(1, 64);
        let p = Placement::contiguous(n_tasks, per_node);
        assert_eq!(p.tasks_per_node().iter().sum::<usize>(), n_tasks);
        assert!(p.tasks_per_node().iter().all(|&c| c <= per_node));
        // Tasks on the same node are never internodal.
        for t in 1..n_tasks {
            if p.node_of(t) == p.node_of(t - 1) {
                assert!(!p.is_internodal(t, t - 1));
            } else {
                assert!(p.is_internodal(t, t - 1));
            }
        }
    });
}

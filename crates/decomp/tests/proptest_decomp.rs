//! Property tests for the partition machinery: tiling, ownership and
//! balance invariants over arbitrary domains and task counts.

use hemocloud_decomp::halo::DecompAnalysis;
use hemocloud_decomp::partition::{factorize3, BlockPartition, SlabPartition};
use hemocloud_decomp::placement::Placement;
use hemocloud_decomp::rcb::RcbPartition;
use hemocloud_geometry::voxel::{CellType, VoxelGrid};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn factorize3_is_exact_and_within_bounds(n in 1usize..2049, dx in 4usize..64, dy in 4usize..64, dz in 4usize..64) {
        let (a, b, c) = factorize3(n, (dx, dy, dz));
        prop_assert_eq!(a * b * c, n);
    }

    #[test]
    fn block_partition_tiles_any_domain(
        dx in 2usize..12, dy in 2usize..12, dz in 2usize..12,
        n in 1usize..9,
    ) {
        let (a, b, c) = factorize3(n, (dx, dy, dz));
        prop_assume!(a <= dx && b <= dy && c <= dz);
        let p = BlockPartition::new((dx, dy, dz), n);
        let mut counts = vec![0usize; n];
        for z in 0..dz {
            for y in 0..dy {
                for x in 0..dx {
                    let t = p.owner_of(x, y, z);
                    prop_assert!(t < n);
                    prop_assert!(p.region(t).contains(x, y, z));
                    counts[t] += 1;
                }
            }
        }
        prop_assert_eq!(counts.iter().sum::<usize>(), dx * dy * dz);
        for (t, &cnt) in counts.iter().enumerate() {
            prop_assert_eq!(cnt, p.region(t).volume());
        }
    }

    #[test]
    fn slab_owners_are_monotone_along_the_axis(
        dx in 2usize..10, dy in 2usize..10, dz in 2usize..30,
        n in 1usize..8,
    ) {
        let dims = (dx, dy, dz);
        let longest = dx.max(dy).max(dz);
        prop_assume!(n <= longest);
        let p = SlabPartition::new(dims, n);
        let mut prev = 0usize;
        for v in 0..longest {
            let (x, y, z) = match p.axis() {
                0 => (v, 0, 0),
                1 => (0, v, 0),
                _ => (0, 0, v),
            };
            let t = p.owner_of(x, y, z);
            prop_assert!(t >= prev, "owners must be non-decreasing along the slab axis");
            prev = t;
        }
        prop_assert_eq!(prev, n - 1, "last slab owned by last task");
    }

    #[test]
    fn rcb_balances_dense_boxes_tightly(
        dx in 4usize..12, dy in 4usize..12, dz in 4usize..12,
        n in 1usize..9,
    ) {
        let g = VoxelGrid::filled(dx, dy, dz, 1.0, CellType::Bulk);
        let p = RcbPartition::new(&g, n);
        let a = DecompAnalysis::analyze(&g, &p);
        // On a dense box the worst task holds at most ~1 slice more than
        // ideal; bound loosely.
        prop_assert!(a.z_factor() < 1.8, "z = {}", a.z_factor());
        prop_assert_eq!(a.points_per_task.iter().sum::<usize>(), dx * dy * dz);
    }

    #[test]
    fn placement_partitions_tasks_exactly(
        n_tasks in 1usize..200,
        per_node in 1usize..64,
    ) {
        let p = Placement::contiguous(n_tasks, per_node);
        prop_assert_eq!(p.tasks_per_node().iter().sum::<usize>(), n_tasks);
        prop_assert!(p.tasks_per_node().iter().all(|&c| c <= per_node));
        // Tasks on the same node are never internodal.
        for t in 1..n_tasks {
            if p.node_of(t) == p.node_of(t - 1) {
                prop_assert!(!p.is_internodal(t, t - 1));
            } else {
                prop_assert!(p.is_internodal(t, t - 1));
            }
        }
    }
}

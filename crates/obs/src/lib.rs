//! # hemocloud-obs
//!
//! Zero-dependency, deterministic metrics + tracing for the hemocloud
//! workspace. The paper's whole method is *measured* performance feeding
//! a model (Eqs. 6-16) and a cost dashboard (Eq. 17); this crate is the
//! measurement substrate the runtime, solver, and campaign scheduler
//! record into, with one hard requirement the usual telemetry stacks do
//! not have: **two identical seeded runs must export byte-for-byte
//! identical snapshots**, so the verify gate can diff them.
//!
//! The design splits into four pieces:
//!
//! * [`clock`] — a pluggable [`Clock`] trait. Real runs use the
//!   monotonic [`WallClock`]; the discrete-event scheduler injects a
//!   [`ManualClock`] driven by its *virtual* event time (wall time in a
//!   simulated campaign would be meaningless and nondeterministic);
//!   tests use a `ManualClock` they advance by hand.
//! * [`metric`] — lock-free instruments ([`Counter`], [`Gauge`],
//!   [`Histogram`], [`SpanTotal`]) built on atomics so `rt::pool`
//!   workers can record from the hot path without taking a lock.
//! * [`registry`] — a lock-sharded name → instrument map. Only
//!   get-or-create takes a (sharded) lock; recording goes through the
//!   returned `Arc` handle.
//! * [`snapshot`] — merges every shard into one sorted map and renders
//!   it as text or JSON. The [`Render::Deterministic`] mode omits
//!   anything interleaving- or wall-clock-dependent (see below);
//!   [`Render::Full`] adds the diagnostic wall-time statistics.
//!
//! ## The determinism contract
//!
//! A snapshot is reproducible across runs *at the same worker count*
//! because every exported quantity is order-independent:
//!
//! * counter adds commute (atomic `u64` adds);
//! * value-histogram bucket counts, `count`, `min`, and `max` depend
//!   only on the *multiset* of recorded samples, never on interleaving
//!   (the f64 `sum` does not — it is rendered only in [`Render::Full`]);
//! * wall-clock-derived samples ([`HistogramKind::WallTime`], and spans
//!   timed by a nondeterministic clock) export only their sample
//!   *count* in deterministic renders — the count is fixed by the
//!   program (one sample per pool run, per solver step, ...) while the
//!   values are not;
//! * gauges must only be set from single-threaded deterministic code
//!   (last-write-wins is racy otherwise) — the workspace only sets them
//!   from the scheduler's serial event loop.
//!
//! No timestamp, hostname, or environment detail is ever recorded
//! unless the caller injects it.

pub mod clock;
pub mod metric;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use clock::{Clock, ManualClock, WallClock};
pub use metric::{Counter, Gauge, Histogram, HistogramKind, SpanTotal};
pub use registry::{global, Registry};
pub use snapshot::{Render, Sample, Snapshot};
pub use span::SpanGuard;

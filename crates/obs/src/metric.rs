//! Lock-free instruments: counters, gauges, fixed-bucket histograms,
//! and span totals.
//!
//! All instruments record through atomics so `rt::pool` workers can hit
//! them from the hot path without locks. Each one is careful about
//! *which* of its statistics are interleaving-independent — that set is
//! what deterministic snapshots export (see [`crate::snapshot`]).

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomically `bits += v` treating the cell as `f64` bits.
///
/// f64 addition commutes but does not associate, so a concurrently
/// accumulated sum depends on interleaving — callers must treat these
/// sums as nondeterministic unless all writers are serial.
fn atomic_f64_add(bits: &AtomicU64, v: f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Atomically fold `v` into the cell with `pick` (min or max). The
/// result depends only on the multiset of recorded values, never on
/// order, so it *is* deterministic.
fn atomic_f64_fold(bits: &AtomicU64, v: f64, pick: fn(f64, f64) -> f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let folded = pick(f64::from_bits(cur), v);
        if folded.to_bits() == cur {
            return;
        }
        match bits.compare_exchange_weak(cur, folded.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A monotonically increasing `u64` counter. Adds commute, so the total
/// is deterministic for a fixed set of recorded increments regardless
/// of thread interleaving.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge.
///
/// Concurrent `set`s race (whichever lands last wins), so the
/// determinism contract is on the *caller*: only set gauges from
/// serial, deterministic code — in this workspace that is the
/// scheduler's event loop and end-of-run summaries.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// What a histogram's samples are derived from — this decides how much
/// of it a deterministic snapshot may export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramKind {
    /// Samples are pure function-of-input values (byte counts, virtual
    /// durations): bucket counts, `count`, `min`, and `max` are all
    /// order-independent and export deterministically.
    Value,
    /// Samples are wall-clock measurements: only the sample *count* is
    /// reproducible across runs; everything else is diagnostic and
    /// exports only in full renders.
    WallTime,
}

/// A fixed-bucket histogram.
///
/// Bucket `i` counts samples `v <= bounds[i]` (first matching bound);
/// one implicit overflow bucket catches the rest. Bounds are fixed at
/// construction so two runs always agree on the bucketing. Non-finite
/// samples are counted into the overflow bucket and excluded from
/// `min`/`max`/`sum`, so one NaN cannot poison the statistics.
#[derive(Debug)]
pub struct Histogram {
    kind: HistogramKind,
    bounds: Vec<f64>,
    /// `bounds.len() + 1` cells; the last is the overflow bucket.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// A histogram with the given upper bounds (must be finite and
    /// strictly increasing).
    ///
    /// # Panics
    /// On unsorted or non-finite bounds.
    pub fn new(kind: HistogramKind, bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing: {bounds:?}"
        );
        Self {
            kind,
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// The histogram's sample provenance.
    pub fn kind(&self) -> HistogramKind {
        self.kind
    }

    /// The configured bucket upper bounds (exclusive of the overflow
    /// bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Record one sample.
    pub fn record(&self, v: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        if !v.is_finite() {
            // Overflow bucket; keep min/max/sum finite.
            self.counts[self.bounds.len()].fetch_add(1, Ordering::Relaxed);
            return;
        }
        let bucket = self.bounds.partition_point(|&b| b < v);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        atomic_f64_fold(&self.min_bits, v, f64::min);
        atomic_f64_fold(&self.max_bits, v, f64::max);
        atomic_f64_add(&self.sum_bits, v);
    }

    /// Total samples recorded (including non-finite ones).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (`bounds.len() + 1` entries, overflow last).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Smallest finite sample, or `+inf` when none were recorded.
    pub fn min(&self) -> f64 {
        f64::from_bits(self.min_bits.load(Ordering::Relaxed))
    }

    /// Largest finite sample, or `-inf` when none were recorded.
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// Sum of finite samples. Interleaving-dependent under concurrent
    /// recording (f64 adds do not associate) — full renders only.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }
}

/// Accumulated time under one span name: invocation count plus total
/// elapsed seconds.
///
/// `deterministic` records which kind of clock fed it — virtual-clock
/// spans (the scheduler) export fully, wall-clock spans export only
/// their count in deterministic renders.
#[derive(Debug)]
pub struct SpanTotal {
    deterministic: bool,
    count: AtomicU64,
    total_s_bits: AtomicU64,
}

impl SpanTotal {
    /// An empty total; `deterministic` declares the feeding clock.
    pub fn new(deterministic: bool) -> Self {
        Self {
            deterministic,
            count: AtomicU64::new(0),
            total_s_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Whether this span's durations come from a deterministic clock.
    pub fn is_deterministic(&self) -> bool {
        self.deterministic
    }

    /// Record one completed span of `elapsed_s` seconds.
    pub fn record_s(&self, elapsed_s: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.total_s_bits, elapsed_s.max(0.0));
    }

    /// Completed-span count.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Total elapsed seconds across all completions.
    pub fn total_s(&self) -> f64 {
        f64::from_bits(self.total_s_bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_last_write_wins() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(3.25);
        assert_eq!(g.get(), 3.25);
    }

    #[test]
    fn histogram_buckets_count_min_max() {
        let h = Histogram::new(HistogramKind::Value, &[1.0, 10.0]);
        for v in [0.5, 1.0, 5.0, 100.0] {
            h.record(v);
        }
        // `v <= bound` bucketing: 0.5 and 1.0 land in bucket 0.
        assert_eq!(h.bucket_counts(), vec![2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 100.0);
        assert_eq!(h.sum(), 106.5);
    }

    #[test]
    fn histogram_nonfinite_goes_to_overflow_without_poisoning() {
        let h = Histogram::new(HistogramKind::Value, &[1.0]);
        h.record(0.5);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert_eq!(h.bucket_counts(), vec![1, 2]);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 0.5);
        assert_eq!(h.sum(), 0.5);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(HistogramKind::Value, &[2.0, 1.0]);
    }

    #[test]
    fn span_total_accumulates() {
        let s = SpanTotal::new(true);
        s.record_s(1.5);
        s.record_s(2.5);
        assert_eq!(s.count(), 2);
        assert_eq!(s.total_s(), 4.0);
        assert!(s.is_deterministic());
    }

    #[test]
    fn concurrent_counter_and_histogram_are_exact() {
        use std::sync::Arc;
        let c = Arc::new(Counter::new());
        let h = Arc::new(Histogram::new(HistogramKind::Value, &[8.0]));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (c, h) = (Arc::clone(&c), Arc::clone(&h));
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.record((i % 16) as f64);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
        // Per thread, residues 0..=7 occur 63 times and 8..=15 occur 62
        // (1000 = 62*16 + 8), so samples <= 8.0 number 8*63 + 62 = 566.
        assert_eq!(h.bucket_counts(), vec![4 * 566, 4000 - 4 * 566]);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 15.0);
    }
}

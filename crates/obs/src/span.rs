//! Nested span tracking.
//!
//! Each thread keeps a stack of open span names; a span opened while
//! others are open records under the "/"-joined path (so
//! `campaign/slice` is time inside `slice` while `campaign` is open on
//! the same thread). The stack is thread-local — spans do not follow
//! work across `rt::pool` workers, which keeps the bookkeeping
//! lock-free and the paths unambiguous.

use std::cell::RefCell;
use std::sync::Arc;

use crate::clock::Clock;
use crate::metric::SpanTotal;

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Push `name` onto this thread's span stack; returns the full
/// "/"-joined path including `name`.
pub(crate) fn push(name: &str) -> String {
    SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        stack.push(path.clone());
        path
    })
}

pub(crate) fn pop() {
    SPAN_STACK.with(|stack| {
        stack.borrow_mut().pop();
    });
}

/// RAII guard for one open span: created by
/// [`Registry::scope`](crate::registry::Registry::scope), records the
/// elapsed clock time into its [`SpanTotal`] on drop and pops the
/// thread's span stack. Drop in LIFO order.
#[derive(Debug)]
pub struct SpanGuard<'c> {
    total: Arc<SpanTotal>,
    clock: &'c dyn Clock,
    start_s: f64,
}

impl<'c> SpanGuard<'c> {
    pub(crate) fn new(total: Arc<SpanTotal>, clock: &'c dyn Clock) -> Self {
        Self {
            total,
            clock,
            start_s: clock.now_s(),
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.total.record_s(self.clock.now_s() - self.start_s);
        pop();
    }
}

impl std::fmt::Debug for dyn Clock + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Clock(deterministic={})", self.is_deterministic())
    }
}

//! Pluggable time sources.
//!
//! Everything in this crate that needs "now" takes a `&dyn Clock`, so
//! the same span/timing machinery serves three regimes:
//!
//! * [`WallClock`] — monotonic wall time for real benchmark runs.
//!   Readings are *not* reproducible across runs, so snapshots flag
//!   anything derived from it as nondeterministic.
//! * [`ManualClock`] driven by the scheduler — `hemocloud-sched` is a
//!   discrete-event simulation; its only meaningful time is the virtual
//!   event clock, and metrics recorded against it are exactly
//!   reproducible for a given seed.
//! * [`ManualClock`] in tests — advanced by hand to pin span durations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic time source reporting seconds since an arbitrary origin.
pub trait Clock: Send + Sync {
    /// Seconds since this clock's origin. Must be non-decreasing.
    fn now_s(&self) -> f64;

    /// Whether readings are reproducible across identical runs.
    ///
    /// Metrics derived from a nondeterministic clock are demoted to
    /// count-only in [`Render::Deterministic`] snapshots.
    ///
    /// [`Render::Deterministic`]: crate::snapshot::Render::Deterministic
    fn is_deterministic(&self) -> bool;
}

/// Monotonic wall clock anchored at construction time.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose origin is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_s(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }

    fn is_deterministic(&self) -> bool {
        false
    }
}

/// A clock that only moves when told to — the scheduler syncs it to the
/// virtual event time, tests advance it by hand.
///
/// The reading is stored as `f64` bits in an `AtomicU64` so `now_s` is
/// lock-free; writers are expected to be serial (the event loop), which
/// is what makes the readings deterministic.
#[derive(Debug)]
pub struct ManualClock {
    bits: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at `start_s` seconds.
    ///
    /// # Panics
    /// If `start_s` is non-finite or negative.
    pub fn new(start_s: f64) -> Self {
        assert!(
            start_s.is_finite() && start_s >= 0.0,
            "bad clock start {start_s}"
        );
        Self {
            bits: AtomicU64::new(start_s.to_bits()),
        }
    }

    /// Move the clock to `t_s`. Time must not run backwards.
    ///
    /// # Panics
    /// If `t_s` is non-finite or earlier than the current reading.
    pub fn set_s(&self, t_s: f64) {
        let now = f64::from_bits(self.bits.load(Ordering::Acquire));
        assert!(
            t_s.is_finite() && t_s >= now,
            "manual clock moved backwards: {now} -> {t_s}"
        );
        self.bits.store(t_s.to_bits(), Ordering::Release);
    }

    /// Advance the clock by `dt_s` seconds.
    pub fn advance_s(&self, dt_s: f64) {
        assert!(dt_s.is_finite() && dt_s >= 0.0, "bad clock advance {dt_s}");
        let now = f64::from_bits(self.bits.load(Ordering::Acquire));
        self.set_s(now + dt_s);
    }
}

impl Default for ManualClock {
    fn default() -> Self {
        Self::new(0.0)
    }
}

impl Clock for ManualClock {
    fn now_s(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }

    fn is_deterministic(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic_and_nondeterministic() {
        let c = WallClock::new();
        let a = c.now_s();
        let b = c.now_s();
        assert!(b >= a && a >= 0.0);
        assert!(!c.is_deterministic());
    }

    #[test]
    fn manual_clock_set_and_advance() {
        let c = ManualClock::new(1.5);
        assert_eq!(c.now_s(), 1.5);
        c.advance_s(2.5);
        assert_eq!(c.now_s(), 4.0);
        c.set_s(10.0);
        assert_eq!(c.now_s(), 10.0);
        assert!(c.is_deterministic());
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn manual_clock_rejects_backwards_time() {
        let c = ManualClock::new(5.0);
        c.set_s(4.0);
    }

    #[test]
    #[should_panic(expected = "bad clock advance")]
    fn manual_clock_rejects_nan_advance() {
        ManualClock::new(0.0).advance_s(f64::NAN);
    }
}

//! Snapshot rendering: one sorted map of instrument samples, exported
//! as text or JSON with no timestamps, no hashing order, and no
//! environment leakage — byte-for-byte reproducible in
//! [`Render::Deterministic`] mode.
//!
//! Floats render with Rust's shortest-roundtrip `{:?}` formatting,
//! which is fully determined by the value's bits. Non-finite values
//! render as `NaN`/`inf` on purpose: the verify gate greps snapshots
//! for exactly those tokens, so a non-finite metric fails loudly
//! instead of being silently prettified.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metric::HistogramKind;

/// How much of a snapshot to export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Render {
    /// Only interleaving- and wall-clock-independent statistics: two
    /// identical seeded runs at the same worker count produce identical
    /// bytes. Wall-time histograms and wall-clock spans export only
    /// their sample counts; f64 sums are omitted.
    Deterministic,
    /// Everything, including wall-time statistics and f64 sums — for
    /// human diagnosis, not for diffing.
    Full,
}

impl Render {
    fn label(self) -> &'static str {
        match self {
            Render::Deterministic => "deterministic",
            Render::Full => "full",
        }
    }
}

/// One instrument's sampled state.
#[derive(Debug, Clone, PartialEq)]
pub enum Sample {
    /// A counter's total.
    Counter(u64),
    /// A gauge's last value.
    Gauge(f64),
    /// A histogram's full state; `counts` has one overflow cell beyond
    /// `bounds`.
    Histogram {
        /// Sample provenance (decides deterministic exportability).
        kind: HistogramKind,
        /// Bucket upper bounds.
        bounds: Vec<f64>,
        /// Per-bucket counts, overflow last.
        counts: Vec<u64>,
        /// Total samples.
        count: u64,
        /// Smallest finite sample (`+inf` when none).
        min: f64,
        /// Largest finite sample (`-inf` when none).
        max: f64,
        /// Interleaving-dependent f64 sum.
        sum: f64,
    },
    /// A span total.
    Span {
        /// Whether the feeding clock was deterministic.
        deterministic: bool,
        /// Completed spans.
        count: u64,
        /// Total elapsed seconds.
        total_s: f64,
    },
}

/// Shortest-roundtrip float formatting — deterministic for given bits.
fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

fn fmt_f64_list(vs: &[f64]) -> String {
    let items: Vec<String> = vs.iter().map(|&v| fmt_f64(v)).collect();
    format!("[{}]", items.join(", "))
}

fn fmt_u64_list(vs: &[u64]) -> String {
    let items: Vec<String> = vs.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(", "))
}

/// A point-in-time copy of a [`Registry`](crate::registry::Registry),
/// sorted by instrument name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    entries: BTreeMap<String, Sample>,
}

impl Snapshot {
    pub(crate) fn from_entries(entries: BTreeMap<String, Sample>) -> Self {
        Self { entries }
    }

    /// All samples, sorted by name.
    pub fn entries(&self) -> &BTreeMap<String, Sample> {
        &self.entries
    }

    /// Look up one sample by instrument name.
    pub fn get(&self, name: &str) -> Option<&Sample> {
        self.entries.get(name)
    }

    /// A counter's value, when `name` is a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.entries.get(name) {
            Some(Sample::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Merge `other` into this snapshot (e.g. the scheduler's private
    /// registry alongside the process-global one).
    ///
    /// # Panics
    /// On a name collision — the workspace namespaces instruments by
    /// layer (`pool.`, `lbm.`, `sched.`), so a collision is a bug.
    pub fn merged_with(mut self, other: Snapshot) -> Snapshot {
        for (name, sample) in other.entries {
            let prior = self.entries.insert(name.clone(), sample);
            assert!(prior.is_none(), "obs snapshot merge collision on {name:?}");
        }
        self
    }

    /// Render as one instrument per line, sorted by name.
    pub fn to_text(&self, render: Render) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# obs snapshot ({})", render.label());
        for (name, sample) in &self.entries {
            match sample {
                Sample::Counter(v) => {
                    let _ = writeln!(out, "counter {name} {v}");
                }
                Sample::Gauge(v) => {
                    let _ = writeln!(out, "gauge {name} {}", fmt_f64(*v));
                }
                Sample::Histogram {
                    kind,
                    bounds,
                    counts,
                    count,
                    min,
                    max,
                    sum,
                } => {
                    let wall = *kind == HistogramKind::WallTime;
                    if wall && render == Render::Deterministic {
                        let _ = writeln!(out, "histogram(wall) {name} count={count}");
                        continue;
                    }
                    let tag = if wall { "histogram(wall)" } else { "histogram" };
                    let _ = write!(out, "{tag} {name} count={count}");
                    if *count > counts[bounds.len()] {
                        // At least one finite sample: min/max are real.
                        let _ = write!(out, " min={} max={}", fmt_f64(*min), fmt_f64(*max));
                    }
                    if render == Render::Full {
                        let _ = write!(out, " sum={}", fmt_f64(*sum));
                    }
                    let _ = writeln!(
                        out,
                        " bounds={} counts={}",
                        fmt_f64_list(bounds),
                        fmt_u64_list(counts)
                    );
                }
                Sample::Span {
                    deterministic,
                    count,
                    total_s,
                } => {
                    if !deterministic && render == Render::Deterministic {
                        let _ = writeln!(out, "span(wall) {name} count={count}");
                    } else {
                        let tag = if *deterministic { "span" } else { "span(wall)" };
                        let _ = writeln!(
                            out,
                            "{tag} {name} count={count} total_s={}",
                            fmt_f64(*total_s)
                        );
                    }
                }
            }
        }
        out
    }

    /// Render as a JSON object with sorted keys — the same hand-rolled
    /// deterministic style the bench and campaign records use.
    pub fn to_json(&self, render: Render) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"render\": \"{}\",", render.label());
        out.push_str("  \"metrics\": {\n");
        let last = self.entries.len().saturating_sub(1);
        for (i, (name, sample)) in self.entries.iter().enumerate() {
            let _ = write!(out, "    \"{name}\": ");
            match sample {
                Sample::Counter(v) => {
                    let _ = write!(out, "{{\"type\": \"counter\", \"value\": {v}}}");
                }
                Sample::Gauge(v) => {
                    let _ = write!(out, "{{\"type\": \"gauge\", \"value\": {}}}", fmt_f64(*v));
                }
                Sample::Histogram {
                    kind,
                    bounds,
                    counts,
                    count,
                    min,
                    max,
                    sum,
                } => {
                    let wall = *kind == HistogramKind::WallTime;
                    let kind_label = if wall { "wall_time" } else { "value" };
                    let _ = write!(
                        out,
                        "{{\"type\": \"histogram\", \"kind\": \"{kind_label}\", \"count\": {count}"
                    );
                    if !(wall && render == Render::Deterministic) {
                        if *count > counts[bounds.len()] {
                            let _ = write!(
                                out,
                                ", \"min\": {}, \"max\": {}",
                                fmt_f64(*min),
                                fmt_f64(*max)
                            );
                        }
                        if render == Render::Full {
                            let _ = write!(out, ", \"sum\": {}", fmt_f64(*sum));
                        }
                        let _ = write!(
                            out,
                            ", \"bounds\": {}, \"counts\": {}",
                            fmt_f64_list(bounds),
                            fmt_u64_list(counts)
                        );
                    }
                    out.push('}');
                }
                Sample::Span {
                    deterministic,
                    count,
                    total_s,
                } => {
                    let _ = write!(
                        out,
                        "{{\"type\": \"span\", \"deterministic\": {deterministic}, \"count\": {count}"
                    );
                    if *deterministic || render == Render::Full {
                        let _ = write!(out, ", \"total_s\": {}", fmt_f64(*total_s));
                    }
                    out.push('}');
                }
            }
            out.push_str(if i == last { "\n" } else { ",\n" });
        }
        out.push_str("  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::HistogramKind;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("pool.jobs").add(7);
        r.gauge("sched.mape_pct").set(12.25);
        let h = r.histogram("lbm.halo_bytes", HistogramKind::Value, &[100.0, 1000.0]);
        h.record(152.0);
        h.record(152.0);
        let w = r.histogram("pool.run_seconds", HistogramKind::WallTime, &[0.001, 0.1]);
        w.record(0.0125);
        r.record_span_s("sched.event.arrive", 3.5, true);
        r.record_span_s("wall.span", 0.25, false);
        r
    }

    #[test]
    fn deterministic_text_hides_wall_values() {
        let text = sample_registry().snapshot().to_text(Render::Deterministic);
        assert!(text.contains("counter pool.jobs 7"));
        assert!(text.contains("gauge sched.mape_pct 12.25"));
        assert!(text.contains("histogram lbm.halo_bytes count=2 min=152.0 max=152.0"));
        // Wall histogram: count only, no min/max/buckets.
        assert!(text.contains("histogram(wall) pool.run_seconds count=1\n"));
        assert!(!text.contains("0.0125"));
        // Deterministic span keeps its total; wall span keeps only count.
        assert!(text.contains("span sched.event.arrive count=1 total_s=3.5"));
        assert!(text.contains("span(wall) wall.span count=1\n"));
        assert!(!text.contains("0.25"));
    }

    #[test]
    fn full_render_exposes_everything() {
        let text = sample_registry().snapshot().to_text(Render::Full);
        assert!(text.contains("0.0125"));
        assert!(text.contains("sum=304.0"));
        assert!(text.contains("span(wall) wall.span count=1 total_s=0.25"));
    }

    #[test]
    fn json_is_sorted_and_parsable_shape() {
        let json = sample_registry().snapshot().to_json(Render::Deterministic);
        let lbm = json.find("lbm.halo_bytes").unwrap();
        let pool = json.find("pool.jobs").unwrap();
        let sched = json.find("sched.event.arrive").unwrap();
        assert!(lbm < pool && pool < sched, "keys must be sorted");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"render\": \"deterministic\""));
    }

    #[test]
    fn empty_histogram_renders_without_nonfinite_min_max() {
        let r = Registry::new();
        r.histogram("empty", HistogramKind::Value, &[1.0]);
        let json = r.snapshot().to_json(Render::Deterministic);
        assert!(json.contains("\"count\": 0"));
        assert!(!json.contains("inf"));
    }

    #[test]
    fn identical_ops_produce_identical_bytes() {
        let a = sample_registry().snapshot();
        let b = sample_registry().snapshot();
        assert_eq!(
            a.to_text(Render::Deterministic),
            b.to_text(Render::Deterministic)
        );
        assert_eq!(
            a.to_json(Render::Deterministic),
            b.to_json(Render::Deterministic)
        );
    }

    #[test]
    fn merged_with_combines_disjoint_namespaces() {
        let a = sample_registry().snapshot();
        let r = Registry::new();
        r.counter("sched.faults").add(3);
        let merged = a.merged_with(r.snapshot());
        assert_eq!(merged.counter("pool.jobs"), Some(7));
        assert_eq!(merged.counter("sched.faults"), Some(3));
    }

    #[test]
    #[should_panic(expected = "merge collision")]
    fn merged_with_rejects_collisions() {
        let r = Registry::new();
        r.counter("pool.jobs").inc();
        let _ = sample_registry().snapshot().merged_with(r.snapshot());
    }

    #[test]
    fn snapshot_determinism_across_threads() {
        // The satellite property test: the same multiset of operations
        // performed from N racing threads must export the same bytes
        // as any other interleaving (here: a second identical run).
        let run = || {
            let r = std::sync::Arc::new(Registry::new());
            let handles: Vec<_> = (0..8)
                .map(|t| {
                    let r = std::sync::Arc::clone(&r);
                    std::thread::spawn(move || {
                        let c = r.counter("t.ops");
                        let h = r.histogram("t.values", HistogramKind::Value, &[4.0, 16.0]);
                        for i in 0..500u64 {
                            c.add(1 + t % 2);
                            h.record(((i * 7 + t) % 32) as f64);
                        }
                        r.record_span_s("t.span", 0.5, true);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            r.snapshot().to_json(Render::Deterministic)
        };
        assert_eq!(run(), run());
    }
}

//! The lock-sharded name → instrument registry.
//!
//! Get-or-create takes one shard lock (name-hashed, so unrelated
//! instruments never contend); the returned `Arc` handle records
//! lock-free thereafter. Callers on hot paths fetch their handles once
//! (e.g. at `Solver::new`) and never touch the registry again.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::clock::Clock;
use crate::metric::{Counter, Gauge, Histogram, HistogramKind, SpanTotal};
use crate::snapshot::{Sample, Snapshot};
use crate::span::SpanGuard;

/// Enough shards that the pool's worker count never queues on
/// get-or-create; snapshots visit all of them in index order.
const SHARD_COUNT: usize = 16;

/// One registered instrument.
#[derive(Debug, Clone)]
pub(crate) enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    Span(Arc<SpanTotal>),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
            Metric::Span(_) => "span",
        }
    }
}

/// A named collection of instruments.
///
/// The workspace keeps one process-wide registry ([`global`]) for the
/// runtime and solver layers, and the scheduler owns a private one per
/// campaign (its metrics live on the virtual clock and must not mix
/// with wall-clock process metrics). Tests use private registries to
/// stay isolated under `cargo test`'s thread-level parallelism.
#[derive(Debug, Default)]
pub struct Registry {
    shards: [Mutex<BTreeMap<String, Metric>>; SHARD_COUNT],
}

/// FNV-1a; any stable hash works, `DefaultHasher` is explicitly not
/// guaranteed stable across Rust releases.
fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % SHARD_COUNT as u64) as usize
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut shard = self.shards[shard_of(name)].lock().expect("obs shard poisoned");
        shard
            .entry(name.to_string())
            .or_insert_with(make)
            .clone()
    }

    /// Get or create the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument type.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("obs metric {name:?} is a {}, not a counter", other.type_name()),
        }
    }

    /// Get or create an indexed family of counters named
    /// `{prefix}.{0}` … `{prefix}.{count-1}` — one handle per member,
    /// fetched in one pass so hot loops can index instead of formatting
    /// names per event (the sharded scheduler keeps one per event lane).
    ///
    /// # Panics
    /// If any member name is already registered as a different
    /// instrument type.
    pub fn counter_family(&self, prefix: &str, count: usize) -> Vec<Arc<Counter>> {
        (0..count)
            .map(|i| self.counter(&format!("{prefix}.{i}")))
            .collect()
    }

    /// Get or create the gauge `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument type.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("obs metric {name:?} is a {}, not a gauge", other.type_name()),
        }
    }

    /// Get or create the histogram `name`. The `kind` and `bounds` of
    /// the first registration win; later callers get the existing
    /// instrument (bounds are part of the instrument's identity, so
    /// disagreeing call sites would otherwise split the data).
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument type.
    pub fn histogram(&self, name: &str, kind: HistogramKind, bounds: &[f64]) -> Arc<Histogram> {
        match self.get_or_insert(name, || {
            Metric::Histogram(Arc::new(Histogram::new(kind, bounds)))
        }) {
            Metric::Histogram(h) => h,
            other => panic!(
                "obs metric {name:?} is a {}, not a histogram",
                other.type_name()
            ),
        }
    }

    /// Get or create the span total `name`; `deterministic` declares
    /// the clock feeding it (first registration wins).
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument type.
    pub fn span_total(&self, name: &str, deterministic: bool) -> Arc<SpanTotal> {
        match self.get_or_insert(name, || Metric::Span(Arc::new(SpanTotal::new(deterministic)))) {
            Metric::Span(s) => s,
            other => panic!("obs metric {name:?} is a {}, not a span", other.type_name()),
        }
    }

    /// Record one completed span of `elapsed_s` seconds under `name` —
    /// the manual alternative to [`Registry::scope`] for callers that
    /// already measured the duration (the scheduler's event loop
    /// attributes virtual-time deltas this way).
    pub fn record_span_s(&self, name: &str, elapsed_s: f64, deterministic: bool) {
        self.span_total(name, deterministic).record_s(elapsed_s);
    }

    /// Open a nested span named `name`, timed by `clock`. The returned
    /// RAII guard records into a span total whose name is the
    /// "/"-joined path of the enclosing open spans *on this thread*
    /// (e.g. `campaign/slice/exchange`); drop it to record. Guards must
    /// drop in LIFO order (the natural order for scoped guards).
    pub fn scope<'c>(&self, name: &str, clock: &'c dyn Clock) -> SpanGuard<'c> {
        let path = crate::span::push(name);
        let total = self.span_total(&path, clock.is_deterministic());
        SpanGuard::new(total, clock)
    }

    /// Snapshot every instrument into one sorted, renderable map.
    pub fn snapshot(&self) -> Snapshot {
        let mut entries = BTreeMap::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("obs shard poisoned");
            for (name, metric) in shard.iter() {
                let sample = match metric {
                    Metric::Counter(c) => Sample::Counter(c.get()),
                    Metric::Gauge(g) => Sample::Gauge(g.get()),
                    Metric::Histogram(h) => Sample::Histogram {
                        kind: h.kind(),
                        bounds: h.bounds().to_vec(),
                        counts: h.bucket_counts(),
                        count: h.count(),
                        min: h.min(),
                        max: h.max(),
                        sum: h.sum(),
                    },
                    Metric::Span(s) => Sample::Span {
                        deterministic: s.is_deterministic(),
                        count: s.count(),
                        total_s: s.total_s(),
                    },
                };
                entries.insert(name.clone(), sample);
            }
        }
        Snapshot::from_entries(entries)
    }
}

/// The process-wide registry the runtime and solver layers record into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn get_or_create_returns_the_same_instrument() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(r.counter("x").get(), 3);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn type_conflicts_panic() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn histogram_first_registration_wins() {
        let r = Registry::new();
        let a = r.histogram("h", HistogramKind::Value, &[1.0, 2.0]);
        let b = r.histogram("h", HistogramKind::WallTime, &[9.0]);
        assert_eq!(b.bounds(), a.bounds());
        assert_eq!(b.kind(), HistogramKind::Value);
    }

    #[test]
    fn scoped_spans_nest_into_paths() {
        let r = Registry::new();
        let clock = ManualClock::new(0.0);
        {
            let _outer = r.scope("campaign", &clock);
            clock.advance_s(1.0);
            {
                let _inner = r.scope("slice", &clock);
                clock.advance_s(2.0);
            }
            clock.advance_s(0.5);
        }
        let inner = r.span_total("campaign/slice", true);
        assert_eq!(inner.count(), 1);
        assert_eq!(inner.total_s(), 2.0);
        let outer = r.span_total("campaign", true);
        assert_eq!(outer.count(), 1);
        assert_eq!(outer.total_s(), 3.5);
    }

    #[test]
    fn counter_family_is_indexed_and_shared() {
        let r = Registry::new();
        let fam = r.counter_family("sched.lane.pops", 3);
        assert_eq!(fam.len(), 3);
        fam[1].add(7);
        assert_eq!(r.counter("sched.lane.pops.1").get(), 7);
        assert_eq!(r.counter("sched.lane.pops.0").get(), 0);
    }

    #[test]
    fn record_span_s_accumulates_under_one_name() {
        let r = Registry::new();
        r.record_span_s("sched.event.arrive", 2.0, true);
        r.record_span_s("sched.event.arrive", 3.0, true);
        let s = r.span_total("sched.event.arrive", true);
        assert_eq!(s.count(), 2);
        assert_eq!(s.total_s(), 5.0);
    }
}

//! # hemocloud-fabric
//!
//! Route-aware interconnect modeling for the cluster simulator. The
//! paper prices every message with one scalar latency/bandwidth pair per
//! platform (Eq. 12), which makes the 2.01 µs vs 23.59 µs internodal
//! latency gap the *only* network effect the model can express. This
//! crate adds what that model cannot: explicit node/switch topologies
//! with per-link bandwidth, per-message routes, and contention between
//! concurrent transfers — including transfers owned by *different
//! campaign jobs* whose placements share links.
//!
//! Two layers:
//!
//! * [`topology`] — a [`Topology`] trait
//!   (`get_route(from, to) -> &[LinkId]`) with three concrete shapes:
//!   [`FatTree`] (configurable radix/levels, the TRC InfiniBand
//!   fabric), [`PlacementGroup`] (one non-blocking switch — the CSP
//!   "cluster placement group" guarantee), and [`Spread`] (racks behind
//!   oversubscribed trunk links — CSP spread placement).
//! * [`fabric`] — a deterministic discrete-time store-and-forward
//!   engine: inject one exchange's worth of messages ([`fabric::Flow`]s,
//!   in practice the Eq. 9 halo message graph), forward each hop-by-hop
//!   along its route, charge per-link serialization at that link's
//!   bandwidth, and fair-share every link among the flows currently
//!   serializing on it. Completion order is deterministic
//!   (`(time, link, flow seq)`), the whole engine is pure sequential
//!   float arithmetic, and per-link byte counters are exact: delivered
//!   bytes sum to exactly the injected message-graph bytes.
//!
//! Zero dependencies; everything is seed-free and replayable — the same
//! flow list against the same topology produces bit-identical results on
//! every run, worker count, and shard count.

pub mod fabric;
pub mod topology;

pub use fabric::{exchange, ExchangeOutcome, Flow};
pub use topology::{FatTree, Link, LinkId, LinkRates, NodeId, PlacementGroup, Spread, Topology};

//! Deterministic discrete-time store-and-forward message fabric.
//!
//! [`exchange`] simulates one exchange phase: every [`Flow`] (in
//! practice one directed halo message from the Eq. 9 message graph)
//! traverses its route hop-by-hop. On each hop a flow first pays the
//! link's propagation latency, then serializes its full payload at that
//! link's bandwidth. A link serializing `k` flows at once gives each a
//! fair share `bandwidth / k`; shares are recomputed every time any flow
//! anywhere finishes a phase, so contention is piecewise-constant
//! max-min fair sharing per link.
//!
//! Determinism: the engine is pure sequential float arithmetic over the
//! input order — no clocks, no randomness, no hashing. The event loop
//! advances to the earliest phase completion; simultaneous completions
//! are resolved in `(time, link, flow seq)` order, where `seq` is the
//! flow's index in the input slice. The same flow list against the same
//! topology is bit-identical on every run, worker count, and shard
//! count.
//!
//! Byte accounting is exact: a flow's bytes are added to a link's
//! forwarded counter only when its serialization on that link completes,
//! and to the final link's delivered counter on delivery — so with
//! integral byte values, `sum(link_delivered_bytes) ==
//! sum(flow.bytes)` holds exactly (the Eq. 9 cross-check).

use crate::topology::{LinkId, NodeId, Topology};

/// One message to push through the fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flow {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Payload bytes. Non-finite or negative values are clamped to 0
    /// (debug builds assert first) — same hygiene as
    /// `cluster::network::message_time_s`.
    pub bytes: f64,
    /// Caller-defined label (job/task ids); the fabric never reads it.
    pub tag: u64,
}

/// Result of one [`exchange`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExchangeOutcome {
    /// Delivery time of each flow, seconds, in input order. Flows with
    /// `src == dst` deliver at 0 without touching any link.
    pub delivery_s: Vec<f64>,
    /// Bytes that finished serializing on each link (every hop counts).
    pub link_forwarded_bytes: Vec<f64>,
    /// Bytes delivered by each link as the *final* hop of a route.
    pub link_delivered_bytes: Vec<f64>,
    /// Seconds each link spent serializing at least one flow.
    pub link_busy_s: Vec<f64>,
    /// Completion time of the whole exchange (max delivery).
    pub span_s: f64,
}

/// Per-flow progress through its route.
#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Paying the current hop's propagation latency (seconds left).
    Latency(f64),
    /// Serializing on the current hop's link (bytes left).
    Xfer(f64),
    Done,
}

/// Run one exchange of `flows` over `topo`. See the module docs for the
/// contention and determinism rules.
pub fn exchange<T: Topology + ?Sized>(topo: &T, flows: &[Flow]) -> ExchangeOutcome {
    let links = topo.links();
    let n_links = links.len();
    let mut forwarded = vec![0.0; n_links];
    let mut delivered = vec![0.0; n_links];
    let mut busy = vec![0.0; n_links];
    let mut delivery = vec![0.0; flows.len()];

    // Resolve routes and sanitized payloads up front.
    let mut routes: Vec<&[LinkId]> = Vec::with_capacity(flows.len());
    let mut bytes: Vec<f64> = Vec::with_capacity(flows.len());
    for f in flows {
        assert!(
            f.src < topo.n_nodes() && f.dst < topo.n_nodes(),
            "flow endpoint out of range"
        );
        debug_assert!(
            f.bytes.is_finite() && f.bytes >= 0.0,
            "flow bytes must be finite and non-negative, got {}",
            f.bytes
        );
        let b = if f.bytes.is_finite() { f.bytes.max(0.0) } else { 0.0 };
        routes.push(topo.get_route(f.src, f.dst));
        bytes.push(b);
    }

    // hop index + phase per flow; flows on empty routes are born Done.
    let mut hop = vec![0usize; flows.len()];
    let mut phase: Vec<Phase> = routes
        .iter()
        .map(|r| {
            if r.is_empty() {
                Phase::Done
            } else {
                Phase::Latency(links[r[0]].latency_s())
            }
        })
        .collect();
    // Flows currently serializing per link (the fair-share divisor).
    let mut occ = vec![0u32; n_links];
    let mut active = phase.iter().filter(|p| !matches!(p, Phase::Done)).count();

    let mut t = 0.0f64;
    while active > 0 {
        // Earliest phase completion across all flows, under the shares
        // implied by the current occupancy.
        let mut dt = f64::INFINITY;
        for (i, p) in phase.iter().enumerate() {
            let cand = match *p {
                Phase::Done => continue,
                Phase::Latency(rem) => rem,
                Phase::Xfer(rem) => {
                    let link = routes[i][hop[i]];
                    rem * occ[link] as f64 / links[link].bytes_per_s()
                }
            };
            if cand < dt {
                dt = cand;
            }
        }
        debug_assert!(dt.is_finite() && dt >= 0.0);

        // Charge busy time under the pre-advance occupancy.
        if dt > 0.0 {
            for (l, b) in busy.iter_mut().enumerate() {
                if occ[l] > 0 {
                    *b += dt;
                }
            }
        }
        t += dt;

        // Advance every flow; collect completions as (link, seq) so
        // simultaneous events resolve in (time, link, seq) order.
        let mut completions: Vec<(LinkId, usize)> = Vec::new();
        for i in 0..phase.len() {
            match phase[i] {
                Phase::Done => {}
                Phase::Latency(rem) => {
                    let left = rem - dt;
                    if rem == dt || left <= 0.0 {
                        completions.push((routes[i][hop[i]], i));
                    } else {
                        phase[i] = Phase::Latency(left);
                    }
                }
                Phase::Xfer(rem) => {
                    let link = routes[i][hop[i]];
                    let share = links[link].bytes_per_s() / occ[link] as f64;
                    let cand = rem * occ[link] as f64 / links[link].bytes_per_s();
                    let left = (rem - dt * share).max(0.0);
                    if cand == dt || left <= 0.0 {
                        completions.push((link, i));
                    } else {
                        phase[i] = Phase::Xfer(left);
                    }
                }
            }
        }
        completions.sort_unstable();
        debug_assert!(!completions.is_empty(), "fabric event loop must progress");

        for (link, i) in completions {
            match phase[i] {
                Phase::Done => unreachable!(),
                Phase::Latency(_) => {
                    // Wire latency paid: start serializing on this link.
                    phase[i] = Phase::Xfer(bytes[i]);
                    occ[link] += 1;
                }
                Phase::Xfer(_) => {
                    forwarded[link] += bytes[i];
                    occ[link] -= 1;
                    hop[i] += 1;
                    if hop[i] == routes[i].len() {
                        delivered[link] += bytes[i];
                        delivery[i] = t;
                        phase[i] = Phase::Done;
                        active -= 1;
                    } else {
                        phase[i] = Phase::Latency(links[routes[i][hop[i]]].latency_s());
                    }
                }
            }
        }
    }

    let span_s = delivery.iter().fold(0.0f64, |a, &b| a.max(b));
    ExchangeOutcome {
        delivery_s: delivery,
        link_forwarded_bytes: forwarded,
        link_delivered_bytes: delivered,
        link_busy_s: busy,
        span_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{LinkRates, PlacementGroup, Spread};

    const RATES: LinkRates = LinkRates {
        bandwidth_mb_s: 1000.0, // 1e9 B/s
        hop_latency_us: 1.0,
    };

    fn flow(src: usize, dst: usize, bytes: f64) -> Flow {
        Flow {
            src,
            dst,
            bytes,
            tag: 0,
        }
    }

    #[test]
    fn single_flow_pays_latency_and_serialization_per_hop() {
        let t = PlacementGroup::new(2, RATES);
        let out = exchange(&t, &[flow(0, 1, 1_000_000.0)]);
        // Two hops, each 1 µs latency + 1 MB at 1 GB/s = 1 ms.
        let expect = 2.0 * (1.0e-6 + 1.0e6 / 1.0e9);
        assert!((out.delivery_s[0] - expect).abs() < 1e-12);
        assert_eq!(out.span_s, out.delivery_s[0]);
    }

    #[test]
    fn two_flows_on_the_same_path_halve_the_share() {
        let t = PlacementGroup::new(2, RATES);
        let b = 1_000_000.0;
        let out = exchange(&t, &[flow(0, 1, b), flow(0, 1, b)]);
        // Phase-aligned: both serialize together on both hops at bw/2.
        let expect = 2.0 * (1.0e-6 + 2.0 * b / 1.0e9);
        for d in &out.delivery_s {
            assert!((d - expect).abs() < 1e-12, "{d} vs {expect}");
        }
        // Contention slows the pair down vs a lone flow.
        let solo = exchange(&t, &[flow(0, 1, b)]).delivery_s[0];
        assert!(out.delivery_s[0] > solo);
    }

    #[test]
    fn disjoint_flows_do_not_interact() {
        let t = PlacementGroup::new(4, RATES);
        let solo = exchange(&t, &[flow(0, 1, 5e5)]).delivery_s[0];
        let out = exchange(&t, &[flow(0, 1, 5e5), flow(2, 3, 9e5)]);
        assert_eq!(out.delivery_s[0], solo);
    }

    #[test]
    fn byte_counters_are_exact_and_conserved() {
        let t = Spread::new(6, 2, 0.5, RATES);
        let flows: Vec<Flow> = (0..6)
            .flat_map(|a| (0..6).filter(move |&b| b != a).map(move |b| flow(a, b, ((a * 7 + b) * 1024) as f64)))
            .collect();
        let out = exchange(&t, &flows);
        let total: f64 = flows.iter().map(|f| f.bytes).sum();
        assert_eq!(out.link_delivered_bytes.iter().sum::<f64>(), total);
        // Forwarded bytes per link == sum of bytes of flows routed over it.
        let mut expect = vec![0.0; t.links().len()];
        for f in &flows {
            for &l in t.get_route(f.src, f.dst) {
                expect[l] += f.bytes;
            }
        }
        assert_eq!(out.link_forwarded_bytes, expect);
    }

    #[test]
    fn intranode_flows_deliver_instantly() {
        let t = PlacementGroup::new(2, RATES);
        let out = exchange(&t, &[flow(1, 1, 1e9)]);
        assert_eq!(out.delivery_s[0], 0.0);
        assert!(out.link_delivered_bytes.iter().all(|&b| b == 0.0));
    }

    #[test]
    fn zero_and_negative_bytes_are_clamped() {
        let t = PlacementGroup::new(2, RATES);
        let out = exchange(&t, &[flow(0, 1, 0.0)]);
        // Zero payload still pays per-hop latency.
        assert!((out.delivery_s[0] - 2.0e-6).abs() < 1e-15);
        #[cfg(not(debug_assertions))]
        {
            let neg = exchange(&t, &[flow(0, 1, -5.0)]);
            assert_eq!(neg.link_delivered_bytes.iter().sum::<f64>(), 0.0);
        }
    }

    #[test]
    fn reruns_are_bit_identical() {
        let t = Spread::new(5, 2, 0.7, RATES);
        let flows: Vec<Flow> = (0..5)
            .flat_map(|a| (0..5).filter(move |&b| b != a).map(move |b| flow(a, b, 1.0 + (a * 31 + b * 17) as f64 * 123.25)))
            .collect();
        let a = exchange(&t, &flows);
        let b = exchange(&t, &flows);
        assert_eq!(a, b);
    }

    #[test]
    fn trunk_contention_from_a_second_tenant_slows_delivery() {
        // Nodes 0,1 belong to "job A" (racks 0 and 1); nodes 2,3 to
        // "job B". Cross-rack flows of both jobs share the same trunk
        // pair, so adding B's traffic must slow A down.
        let t = Spread::new(4, 2, 1.0, RATES);
        let a_flows = [flow(0, 1, 2e6), flow(1, 0, 2e6)];
        let isolated = exchange(&t, &a_flows);
        let mut both = a_flows.to_vec();
        both.push(flow(2, 3, 2e6));
        both.push(flow(3, 2, 2e6));
        let contended = exchange(&t, &both);
        assert!(contended.delivery_s[0] > isolated.delivery_s[0]);
        assert!(contended.span_s > isolated.span_s);
    }
}

//! Interconnect topologies: explicit node/switch graphs with per-link
//! bandwidth and precomputed routes.
//!
//! A topology is a directed multigraph over *vertices* (compute nodes
//! first, then switches) whose edges are [`Link`]s, plus a route table:
//! `get_route(from, to)` returns the ordered list of link ids a message
//! traverses from node `from` to node `to`. Routes are precomputed at
//! construction (node counts are pool-sized, ≤ a few dozen), so route
//! lookup is allocation-free and the fabric engine can borrow routes for
//! the whole exchange.
//!
//! Three concrete shapes cover the paper's platforms:
//!
//! * [`FatTree`] — the TRC InfiniBand fabric: a k-ary Clos with
//!   configurable radix and 2 or 3 levels, full bisection (every tier
//!   has as many up-ports as down-ports), deterministic spine selection.
//! * [`PlacementGroup`] — the CSP "cluster placement group" guarantee:
//!   every node one hop from a single non-blocking switch.
//! * [`Spread`] — CSP spread placement: consecutive node ids scatter
//!   round-robin across racks, and all cross-rack traffic squeezes
//!   through one trunk link pair per rack whose capacity is a
//!   configurable fraction of node bandwidth (the oversubscription).
//!
//! All route tables are symmetric in length (`|route(a,b)| ==
//! |route(b,a)|`), loop-free, and empty for `a == b`.

/// Index of a compute node (0-based, `< n_nodes`).
pub type NodeId = usize;

/// Index into [`Topology::links`].
pub type LinkId = usize;

/// Bandwidth/latency to assign to node-facing links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkRates {
    /// Per-link bandwidth, MB/s (== bytes/µs).
    pub bandwidth_mb_s: f64,
    /// Per-hop wire latency, µs.
    pub hop_latency_us: f64,
}

/// One directed edge of the interconnect graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Source vertex (node id, or switch vertex id `>= n_nodes`).
    pub from: usize,
    /// Destination vertex.
    pub to: usize,
    /// Serialization bandwidth of this link, MB/s.
    pub bandwidth_mb_s: f64,
    /// Propagation latency of this hop, µs.
    pub latency_us: f64,
}

impl Link {
    /// Bandwidth in bytes per second.
    pub fn bytes_per_s(&self) -> f64 {
        self.bandwidth_mb_s * 1e6
    }

    /// Latency in seconds.
    pub fn latency_s(&self) -> f64 {
        self.latency_us * 1e-6
    }
}

/// A routed interconnect: links plus a per-node-pair route table.
pub trait Topology {
    /// Number of compute nodes attached to the fabric.
    fn n_nodes(&self) -> usize;

    /// Every directed link in the graph, indexed by [`LinkId`].
    fn links(&self) -> &[Link];

    /// Ordered links a message traverses from node `from` to node `to`.
    /// Empty when `from == to` (intranode traffic never enters the
    /// fabric).
    fn get_route(&self, from: NodeId, to: NodeId) -> &[LinkId];

    /// Human-readable variant name for reports ("fat-tree", …).
    fn name(&self) -> &'static str;
}

/// Shared storage for the concrete topologies: the link list, a
/// (from-vertex, to-vertex) → link index, and the dense route table.
#[derive(Debug, Clone)]
struct Graph {
    n_nodes: usize,
    links: Vec<Link>,
    edge: std::collections::BTreeMap<(usize, usize), LinkId>,
    /// Route for `(a, b)` at `a * n_nodes + b`.
    routes: Vec<Vec<LinkId>>,
}

impl Graph {
    fn new(n_nodes: usize) -> Self {
        assert!(n_nodes >= 1, "topology needs at least one node");
        Self {
            n_nodes,
            links: Vec::new(),
            edge: std::collections::BTreeMap::new(),
            routes: vec![Vec::new(); n_nodes * n_nodes],
        }
    }

    fn add_link(&mut self, from: usize, to: usize, bandwidth_mb_s: f64, latency_us: f64) -> LinkId {
        assert!(
            bandwidth_mb_s > 0.0 && bandwidth_mb_s.is_finite(),
            "link bandwidth must be positive and finite"
        );
        assert!(
            latency_us >= 0.0 && latency_us.is_finite(),
            "link latency must be non-negative and finite"
        );
        let id = self.links.len();
        self.links.push(Link {
            from,
            to,
            bandwidth_mb_s,
            latency_us,
        });
        let prev = self.edge.insert((from, to), id);
        assert!(prev.is_none(), "duplicate link {from}->{to}");
        id
    }

    fn link_between(&self, from: usize, to: usize) -> LinkId {
        self.edge[&(from, to)]
    }

    fn set_route(&mut self, a: NodeId, b: NodeId, route: Vec<LinkId>) {
        let n = self.n_nodes;
        self.routes[a * n + b] = route;
    }

    fn route(&self, a: NodeId, b: NodeId) -> &[LinkId] {
        assert!(a < self.n_nodes && b < self.n_nodes, "node id out of range");
        &self.routes[a * self.n_nodes + b]
    }
}

fn div_ceil(a: usize, b: usize) -> usize {
    (a + b - 1) / b
}

/// k-ary fat tree (folded Clos), 2 or 3 levels, full bisection.
///
/// With radix `k`, each leaf switch serves `k/2` nodes and carries `k/2`
/// uplinks. Two levels: leaves ↔ spines. Three levels: leaves are
/// grouped into pods of `k/2`, each pod has `k/2` aggregation switches,
/// and spines connect pods. Spine/aggregation selection for a pair is
/// deterministic and symmetric: `(leaf_a + leaf_b) mod width` (and
/// `(pod_a + pod_b) mod width` for spines), so route lengths are
/// symmetric and the same pair always shares the same path — the
/// deterministic analogue of static routing.
#[derive(Debug, Clone)]
pub struct FatTree {
    graph: Graph,
    radix: usize,
    levels: usize,
    nodes_per_leaf: usize,
}

impl FatTree {
    /// Build a fat tree over `n_nodes` nodes with switch radix `radix`
    /// (≥ 2) and `levels` ∈ {2, 3}. All links run at `rates`.
    pub fn new(n_nodes: usize, radix: usize, levels: usize, rates: LinkRates) -> Self {
        assert!(radix >= 2, "fat-tree radix must be >= 2");
        assert!(
            levels == 2 || levels == 3,
            "fat-tree supports 2 or 3 levels"
        );
        let width = (radix / 2).max(1); // nodes/leaf, leaves/pod, uplink fan-out
        let n_leaves = div_ceil(n_nodes, width);
        let mut g = Graph::new(n_nodes);
        let bw = rates.bandwidth_mb_s;
        let lat = rates.hop_latency_us;

        let leaf_v = |l: usize| n_nodes + l;
        let leaf_of = |n: usize| n / width;

        // Node ↔ leaf links.
        for n in 0..n_nodes {
            g.add_link(n, leaf_v(leaf_of(n)), bw, lat);
            g.add_link(leaf_v(leaf_of(n)), n, bw, lat);
        }

        if levels == 2 {
            let n_spines = width;
            let spine_v = |s: usize| n_nodes + n_leaves + s;
            for l in 0..n_leaves {
                for s in 0..n_spines {
                    g.add_link(leaf_v(l), spine_v(s), bw, lat);
                    g.add_link(spine_v(s), leaf_v(l), bw, lat);
                }
            }
            for a in 0..n_nodes {
                for b in 0..n_nodes {
                    if a == b {
                        continue;
                    }
                    let (la, lb) = (leaf_of(a), leaf_of(b));
                    let up = g.link_between(a, leaf_v(la));
                    let down = g.link_between(leaf_v(lb), b);
                    let route = if la == lb {
                        vec![up, down]
                    } else {
                        let s = (la + lb) % n_spines;
                        vec![
                            up,
                            g.link_between(leaf_v(la), spine_v(s)),
                            g.link_between(spine_v(s), leaf_v(lb)),
                            down,
                        ]
                    };
                    g.set_route(a, b, route);
                }
            }
        } else {
            let n_pods = div_ceil(n_leaves, width);
            let n_aggs = width; // per pod
            let n_spines = width;
            let agg_v = |p: usize, i: usize| n_nodes + n_leaves + p * n_aggs + i;
            let spine_v = |s: usize| n_nodes + n_leaves + n_pods * n_aggs + s;
            let pod_of = |l: usize| l / width;
            for l in 0..n_leaves {
                let p = pod_of(l);
                for i in 0..n_aggs {
                    g.add_link(leaf_v(l), agg_v(p, i), bw, lat);
                    g.add_link(agg_v(p, i), leaf_v(l), bw, lat);
                }
            }
            for p in 0..n_pods {
                for i in 0..n_aggs {
                    for s in 0..n_spines {
                        g.add_link(agg_v(p, i), spine_v(s), bw, lat);
                        g.add_link(spine_v(s), agg_v(p, i), bw, lat);
                    }
                }
            }
            for a in 0..n_nodes {
                for b in 0..n_nodes {
                    if a == b {
                        continue;
                    }
                    let (la, lb) = (leaf_of(a), leaf_of(b));
                    let up = g.link_between(a, leaf_v(la));
                    let down = g.link_between(leaf_v(lb), b);
                    let route = if la == lb {
                        vec![up, down]
                    } else {
                        let (pa, pb) = (pod_of(la), pod_of(lb));
                        let i = (la + lb) % n_aggs;
                        if pa == pb {
                            vec![
                                up,
                                g.link_between(leaf_v(la), agg_v(pa, i)),
                                g.link_between(agg_v(pa, i), leaf_v(lb)),
                                down,
                            ]
                        } else {
                            let s = (pa + pb) % n_spines;
                            vec![
                                up,
                                g.link_between(leaf_v(la), agg_v(pa, i)),
                                g.link_between(agg_v(pa, i), spine_v(s)),
                                g.link_between(spine_v(s), agg_v(pb, i)),
                                g.link_between(agg_v(pb, i), leaf_v(lb)),
                                down,
                            ]
                        }
                    };
                    g.set_route(a, b, route);
                }
            }
        }

        Self {
            graph: g,
            radix,
            levels,
            nodes_per_leaf: width,
        }
    }

    /// Switch radix this tree was built with.
    pub fn radix(&self) -> usize {
        self.radix
    }

    /// Number of switch tiers (2 or 3).
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Leaf switch serving node `n`.
    pub fn leaf_of(&self, n: NodeId) -> usize {
        n / self.nodes_per_leaf
    }
}

impl Topology for FatTree {
    fn n_nodes(&self) -> usize {
        self.graph.n_nodes
    }
    fn links(&self) -> &[Link] {
        &self.graph.links
    }
    fn get_route(&self, from: NodeId, to: NodeId) -> &[LinkId] {
        self.graph.route(from, to)
    }
    fn name(&self) -> &'static str {
        "fat-tree"
    }
}

/// One non-blocking switch: every node pair is exactly one switch hop
/// apart and only the endpoints' own up/down links are ever shared.
#[derive(Debug, Clone)]
pub struct PlacementGroup {
    graph: Graph,
}

impl PlacementGroup {
    /// Build a placement group over `n_nodes` nodes at `rates`.
    pub fn new(n_nodes: usize, rates: LinkRates) -> Self {
        let mut g = Graph::new(n_nodes);
        let switch = n_nodes;
        for n in 0..n_nodes {
            g.add_link(n, switch, rates.bandwidth_mb_s, rates.hop_latency_us);
            g.add_link(switch, n, rates.bandwidth_mb_s, rates.hop_latency_us);
        }
        for a in 0..n_nodes {
            for b in 0..n_nodes {
                if a == b {
                    continue;
                }
                let route = vec![g.link_between(a, switch), g.link_between(switch, b)];
                g.set_route(a, b, route);
            }
        }
        Self { graph: g }
    }
}

impl Topology for PlacementGroup {
    fn n_nodes(&self) -> usize {
        self.graph.n_nodes
    }
    fn links(&self) -> &[Link] {
        &self.graph.links
    }
    fn get_route(&self, from: NodeId, to: NodeId) -> &[LinkId] {
        self.graph.route(from, to)
    }
    fn name(&self) -> &'static str {
        "placement-group"
    }
}

/// Spread placement: racks behind oversubscribed trunks.
///
/// Node `n` lives in rack `n % n_racks` — consecutive node ids scatter
/// across racks, which is exactly the availability-first placement a
/// cloud "spread" policy produces. Same-rack traffic crosses only the
/// rack's top-of-rack switch; cross-rack traffic additionally traverses
/// the source rack's trunk uplink and the destination rack's trunk
/// downlink, each running at `trunk_capacity × node bandwidth`. Every
/// cross-rack flow in the rack shares those two trunks — the
/// oversubscription that makes spread placement cheap and slow.
#[derive(Debug, Clone)]
pub struct Spread {
    graph: Graph,
    n_racks: usize,
}

impl Spread {
    /// Build a spread topology: `n_racks` racks (≥ 1), trunk links at
    /// `trunk_capacity` (> 0) times node bandwidth.
    pub fn new(n_nodes: usize, n_racks: usize, trunk_capacity: f64, rates: LinkRates) -> Self {
        assert!(n_racks >= 1, "spread needs at least one rack");
        assert!(
            trunk_capacity > 0.0 && trunk_capacity.is_finite(),
            "trunk capacity must be positive and finite"
        );
        let mut g = Graph::new(n_nodes);
        let tor_v = |r: usize| n_nodes + r;
        let core = n_nodes + n_racks;
        let rack_of = |n: usize| n % n_racks;
        for n in 0..n_nodes {
            g.add_link(n, tor_v(rack_of(n)), rates.bandwidth_mb_s, rates.hop_latency_us);
            g.add_link(tor_v(rack_of(n)), n, rates.bandwidth_mb_s, rates.hop_latency_us);
        }
        let trunk_bw = rates.bandwidth_mb_s * trunk_capacity;
        for r in 0..n_racks {
            g.add_link(tor_v(r), core, trunk_bw, rates.hop_latency_us);
            g.add_link(core, tor_v(r), trunk_bw, rates.hop_latency_us);
        }
        for a in 0..n_nodes {
            for b in 0..n_nodes {
                if a == b {
                    continue;
                }
                let (ra, rb) = (rack_of(a), rack_of(b));
                let up = g.link_between(a, tor_v(ra));
                let down = g.link_between(tor_v(rb), b);
                let route = if ra == rb {
                    vec![up, down]
                } else {
                    vec![
                        up,
                        g.link_between(tor_v(ra), core),
                        g.link_between(core, tor_v(rb)),
                        down,
                    ]
                };
                g.set_route(a, b, route);
            }
        }
        Self { graph: g, n_racks }
    }

    /// Rack holding node `n`.
    pub fn rack_of(&self, n: NodeId) -> usize {
        n % self.n_racks
    }

    /// Number of racks.
    pub fn n_racks(&self) -> usize {
        self.n_racks
    }
}

impl Topology for Spread {
    fn n_nodes(&self) -> usize {
        self.graph.n_nodes
    }
    fn links(&self) -> &[Link] {
        &self.graph.links
    }
    fn get_route(&self, from: NodeId, to: NodeId) -> &[LinkId] {
        self.graph.route(from, to)
    }
    fn name(&self) -> &'static str {
        "spread"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RATES: LinkRates = LinkRates {
        bandwidth_mb_s: 1000.0,
        hop_latency_us: 1.0,
    };

    /// Route chains vertex-to-vertex from `a` to `b` with no repeats.
    fn check_route(topo: &dyn Topology, a: NodeId, b: NodeId) {
        let route = topo.get_route(a, b);
        if a == b {
            assert!(route.is_empty(), "self-route must be empty");
            return;
        }
        assert!(!route.is_empty(), "distinct nodes must be connected");
        let links = topo.links();
        assert_eq!(links[route[0]].from, a);
        assert_eq!(links[*route.last().unwrap()].to, b);
        for w in route.windows(2) {
            assert_eq!(links[w[0]].to, links[w[1]].from, "route must chain");
        }
        let mut seen = std::collections::BTreeSet::new();
        for &l in route {
            assert!(seen.insert(l), "route repeats link {l}");
        }
        assert_eq!(
            route.len(),
            topo.get_route(b, a).len(),
            "route lengths must be symmetric"
        );
    }

    #[test]
    fn placement_group_is_one_hop() {
        let t = PlacementGroup::new(5, RATES);
        for a in 0..5 {
            for b in 0..5 {
                check_route(&t, a, b);
                if a != b {
                    assert_eq!(t.get_route(a, b).len(), 2);
                }
            }
        }
        assert_eq!(t.links().len(), 10);
    }

    #[test]
    fn fat_tree_two_level_route_shapes() {
        // radix 4 → 2 nodes/leaf, 2 spines.
        let t = FatTree::new(6, 4, 2, RATES);
        for a in 0..6 {
            for b in 0..6 {
                check_route(&t, a, b);
            }
        }
        assert_eq!(t.get_route(0, 1).len(), 2, "same leaf");
        assert_eq!(t.get_route(0, 2).len(), 4, "cross leaf via spine");
        assert_eq!(t.leaf_of(0), t.leaf_of(1));
        assert_ne!(t.leaf_of(0), t.leaf_of(2));
    }

    #[test]
    fn fat_tree_three_level_route_shapes() {
        // radix 4 → 2 nodes/leaf, pods of 2 leaves: nodes 0-3 pod 0,
        // 4-7 pod 1.
        let t = FatTree::new(8, 4, 3, RATES);
        for a in 0..8 {
            for b in 0..8 {
                check_route(&t, a, b);
            }
        }
        assert_eq!(t.get_route(0, 1).len(), 2, "same leaf");
        assert_eq!(t.get_route(0, 2).len(), 4, "same pod via agg");
        assert_eq!(t.get_route(0, 4).len(), 6, "cross pod via spine");
    }

    #[test]
    fn spread_scatters_consecutive_nodes_across_racks() {
        let t = Spread::new(4, 2, 1.0, RATES);
        for a in 0..4 {
            for b in 0..4 {
                check_route(&t, a, b);
            }
        }
        // Consecutive ids land in different racks → cross-rack 4-link route.
        assert_eq!(t.rack_of(0), t.rack_of(2));
        assert_ne!(t.rack_of(0), t.rack_of(1));
        assert_eq!(t.get_route(0, 1).len(), 4);
        assert_eq!(t.get_route(0, 2).len(), 2);
        // Two distinct cross-rack pairs share the same trunk links — the
        // contention surface the demo leans on.
        let r01 = t.get_route(0, 1);
        let r23 = t.get_route(2, 3);
        assert_eq!(r01[1], r23[1], "shared trunk uplink");
        assert_eq!(r01[2], r23[2], "shared trunk downlink");
    }

    #[test]
    fn spread_trunk_capacity_scales_bandwidth() {
        let t = Spread::new(4, 2, 0.5, RATES);
        let trunk = t.get_route(0, 1)[1];
        assert_eq!(t.links()[trunk].bandwidth_mb_s, 500.0);
        let node_link = t.get_route(0, 1)[0];
        assert_eq!(t.links()[node_link].bandwidth_mb_s, 1000.0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = PlacementGroup::new(0, RATES);
    }
}

//! Property tests for topology routing and the fabric engine, in the
//! style of the PR 7 event-lane properties: seeded generation via
//! `rt::check`, replayable with `RT_CHECK_SEED`.

use hemocloud_fabric::{exchange, FatTree, Flow, LinkRates, PlacementGroup, Spread, Topology};
use hemocloud_rt::rng::Rng;
use hemocloud_rt::{check, float};

fn rates(rng: &mut Rng) -> LinkRates {
    LinkRates {
        bandwidth_mb_s: rng.range_f64(100.0, 10_000.0),
        hop_latency_us: rng.range_f64(0.1, 30.0),
    }
}

/// Random topology of a random variant, plus its node count.
fn random_topology(rng: &mut Rng) -> Box<dyn Topology> {
    let n_nodes = rng.range_usize(1, 24);
    match rng.range_usize(0, 4) {
        0 => Box::new(PlacementGroup::new(n_nodes, rates(rng))),
        1 => {
            let radix = 2 * rng.range_usize(1, 5);
            Box::new(FatTree::new(n_nodes, radix, 2, rates(rng)))
        }
        2 => {
            let radix = 2 * rng.range_usize(1, 5);
            Box::new(FatTree::new(n_nodes, radix, 3, rates(rng)))
        }
        _ => {
            let racks = rng.range_usize(1, 6);
            let capacity = rng.range_f64(0.25, 2.0);
            Box::new(Spread::new(n_nodes, racks, capacity, rates(rng)))
        }
    }
}

#[test]
fn routes_connect_endpoints_without_repeats() {
    check::run(
        "routes_connect_endpoints_without_repeats",
        check::Config::cases(16),
        |rng| {
            let topo = random_topology(rng);
            let links = topo.links();
            for a in 0..topo.n_nodes() {
                for b in 0..topo.n_nodes() {
                    let route = topo.get_route(a, b);
                    if a == b {
                        assert!(route.is_empty(), "{}: self-route not empty", topo.name());
                        continue;
                    }
                    assert!(!route.is_empty(), "{}: {a}->{b} unconnected", topo.name());
                    assert_eq!(links[route[0]].from, a, "{}: route must leave src", topo.name());
                    assert_eq!(
                        links[*route.last().unwrap()].to,
                        b,
                        "{}: route must reach dst",
                        topo.name()
                    );
                    for w in route.windows(2) {
                        assert_eq!(
                            links[w[0]].to, links[w[1]].from,
                            "{}: route must chain hop-to-hop",
                            topo.name()
                        );
                    }
                    let mut seen = std::collections::BTreeSet::new();
                    for &l in route {
                        assert!(seen.insert(l), "{}: repeated link on route", topo.name());
                    }
                }
            }
        },
    );
}

#[test]
fn route_lengths_are_symmetric() {
    check::run(
        "route_lengths_are_symmetric",
        check::Config::cases(16),
        |rng| {
            let topo = random_topology(rng);
            for a in 0..topo.n_nodes() {
                for b in 0..topo.n_nodes() {
                    assert_eq!(
                        topo.get_route(a, b).len(),
                        topo.get_route(b, a).len(),
                        "{}: asymmetric route length {a}<->{b}",
                        topo.name()
                    );
                }
            }
        },
    );
}

#[test]
fn exchange_conserves_bytes_and_is_deterministic() {
    check::run(
        "exchange_conserves_bytes_and_is_deterministic",
        check::Config::cases(16),
        |rng| {
            let topo = random_topology(rng);
            let n = topo.n_nodes();
            let n_flows = rng.range_usize(0, 40);
            // Integral byte payloads so float sums are exact.
            let flows: Vec<Flow> = (0..n_flows)
                .map(|i| Flow {
                    src: rng.range_usize(0, n),
                    dst: rng.range_usize(0, n),
                    bytes: rng.range_usize(0, 1 << 22) as f64,
                    tag: i as u64,
                })
                .collect();
            let out = exchange(topo.as_ref(), &flows);

            // Delivered bytes across links sum exactly to the injected
            // internode bytes (the Eq. 9 cross-check shape).
            let injected: f64 = flows
                .iter()
                .filter(|f| f.src != f.dst)
                .map(|f| f.bytes)
                .sum();
            assert_eq!(out.link_delivered_bytes.iter().sum::<f64>(), injected);

            // Forwarded bytes per link match the route table exactly.
            let mut expect = vec![0.0; topo.links().len()];
            for f in &flows {
                for &l in topo.get_route(f.src, f.dst) {
                    expect[l] += f.bytes;
                }
            }
            assert_eq!(out.link_forwarded_bytes, expect);

            // Deliveries are finite, non-negative, and bounded by span.
            for &d in &out.delivery_s {
                assert!(d.is_finite() && d >= 0.0 && d <= out.span_s);
            }

            // Bit-identical on rerun.
            assert_eq!(out, exchange(topo.as_ref(), &flows));
        },
    );
}

#[test]
fn extra_tenants_never_speed_up_a_lone_flow_pair_on_shared_trunks() {
    // Focused monotonicity check on the contention surface the demo
    // uses: a spread topology where a second tenant's cross-rack flows
    // share the victim's trunk links.
    check::run(
        "extra_tenants_never_speed_up_a_lone_flow_pair_on_shared_trunks",
        check::Config::cases(16),
        |rng| {
            let n_nodes = 4;
            let topo = Spread::new(n_nodes, 2, rng.range_f64(0.25, 1.5), rates(rng));
            let b = rng.range_usize(1, 1 << 22) as f64;
            let victim = [
                Flow { src: 0, dst: 1, bytes: b, tag: 0 },
                Flow { src: 1, dst: 0, bytes: b, tag: 1 },
            ];
            let isolated = exchange(&topo, &victim);
            let mut crowded = victim.to_vec();
            for i in 0..rng.range_usize(1, 4) {
                crowded.push(Flow {
                    src: 2,
                    dst: 3,
                    bytes: rng.range_usize(1, 1 << 22) as f64,
                    tag: 10 + i as u64,
                });
            }
            let contended = exchange(&topo, &crowded);
            for i in 0..victim.len() {
                // Extra events subdivide the remaining-bytes arithmetic
                // differently, so a flow untouched by the tenants can
                // drift by a few ULPs — anything beyond that would be a
                // genuine (impossible) speedup.
                assert!(
                    contended.delivery_s[i] >= isolated.delivery_s[i]
                        || float::approx_eq_ulps(contended.delivery_s[i], isolated.delivery_s[i], 8),
                    "tenant traffic sped up the victim: {} < {}",
                    contended.delivery_s[i],
                    isolated.delivery_s[i]
                );
            }
        },
    );
}

//! Explicit float-comparison helpers for tests and invariant checks.
//!
//! Scattered ad-hoc pins like `(a - b).abs() < 1e-15` encode two silent
//! assumptions: that the values are O(1) so an absolute tolerance means
//! anything, and that `1e-15` is "one ULP-ish" — which is false the moment
//! the compared quantity is `1e-6` seconds or `1e9` bytes. These helpers
//! make the tolerance model explicit: either an *absolute* bound chosen
//! for the unit at hand, or a *ULP* bound that scales with the magnitude
//! of the values being compared.
//!
//! Everything here is total: NaN compares unequal under every predicate
//! (distance is `u64::MAX`), infinities are equal only to themselves.

/// Number of representable `f64` values between `a` and `b`.
///
/// Maps each float onto the lexicographically ordered integer line
/// (sign-magnitude → offset binary) and returns the absolute difference.
/// `0.0` and `-0.0` are 0 apart; any comparison involving NaN returns
/// `u64::MAX`; `ulps_between(MAX, INFINITY)` is 1 (they are adjacent
/// representable values).
pub fn ulps_between(a: f64, b: f64) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    // Order-preserving map from f64 bit patterns to u64: positives land
    // at 2^63 + magnitude, negatives at 2^63 - magnitude, so the integer
    // order matches the float order and +0.0 coincides with -0.0.
    fn ordered(x: f64) -> u64 {
        let bits = x.to_bits();
        let magnitude = bits & !(1u64 << 63);
        if bits >> 63 == 1 {
            (1u64 << 63) - magnitude
        } else {
            (1u64 << 63) | magnitude
        }
    }
    let (a, b) = (ordered(a), ordered(b));
    a.max(b) - a.min(b)
}

/// True when `a` and `b` are within `max_ulps` representable values of
/// each other. NaN is never close to anything, including itself.
pub fn approx_eq_ulps(a: f64, b: f64, max_ulps: u64) -> bool {
    ulps_between(a, b) <= max_ulps
}

/// True when `|a - b| <= tol`. NaN is never close to anything; equal
/// infinities are close (their difference is 0 via exact equality).
pub fn approx_eq_abs(a: f64, b: f64, tol: f64) -> bool {
    if a == b {
        return true; // covers equal infinities, where a - b would be NaN
    }
    (a - b).abs() <= tol
}

/// Combined predicate: absolute tolerance for values near zero, ULP
/// tolerance for everything else. This is the right default for "these
/// two computations should agree to rounding error" pins regardless of
/// the magnitude of the quantity under test.
pub fn approx_eq(a: f64, b: f64, abs_tol: f64, max_ulps: u64) -> bool {
    approx_eq_abs(a, b, abs_tol) || approx_eq_ulps(a, b, max_ulps)
}

/// Panics with a diagnostic unless [`approx_eq`] holds. For tests.
#[track_caller]
pub fn assert_close(a: f64, b: f64, abs_tol: f64, max_ulps: u64) {
    assert!(
        approx_eq(a, b, abs_tol, max_ulps),
        "floats not close: {a:?} vs {b:?} (|diff| = {:e}, {} ULPs; allowed abs {abs_tol:e}, {max_ulps} ULPs)",
        (a - b).abs(),
        ulps_between(a, b),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulps_distance_basics() {
        assert_eq!(ulps_between(1.0, 1.0), 0);
        assert_eq!(ulps_between(0.0, -0.0), 0);
        assert_eq!(ulps_between(1.0, f64::from_bits(1.0f64.to_bits() + 1)), 1);
        // Across zero: smallest positive to smallest negative subnormal is 2.
        let tiny = f64::from_bits(1);
        assert_eq!(ulps_between(tiny, -tiny), 2);
        assert_eq!(ulps_between(f64::MAX, f64::INFINITY), 1);
    }

    #[test]
    fn nan_is_never_close() {
        assert_eq!(ulps_between(f64::NAN, f64::NAN), u64::MAX);
        assert!(!approx_eq_ulps(f64::NAN, 1.0, u64::MAX - 1));
        assert!(!approx_eq_abs(f64::NAN, f64::NAN, f64::INFINITY));
        assert!(!approx_eq(f64::NAN, 0.0, 1.0, 1000));
    }

    #[test]
    fn infinities_equal_only_themselves() {
        assert!(approx_eq_abs(f64::INFINITY, f64::INFINITY, 0.0));
        assert!(!approx_eq_abs(f64::INFINITY, f64::NEG_INFINITY, f64::MAX));
        assert_eq!(ulps_between(f64::INFINITY, f64::INFINITY), 0);
    }

    #[test]
    fn ulp_tolerance_scales_with_magnitude() {
        // 1e-15 absolute slop is ~5 ULPs at 1.0 but ~4.5e9 ULPs at 1e-6·1e-9
        // scales; a 4-ULP bound holds at any magnitude.
        for scale in [1e-12, 1e-6, 1.0, 1e6, 1e12] {
            let a = scale * (0.1 + 0.2);
            let b = scale * 0.3;
            assert!(approx_eq_ulps(a, b, 4), "scale {scale:e}");
        }
    }

    #[test]
    fn assert_close_accepts_rounding_error() {
        assert_close(0.1 + 0.2, 0.3, 0.0, 1);
        assert_close(1.0e-30, 0.0, 1e-20, 0);
    }

    #[test]
    #[should_panic(expected = "floats not close")]
    fn assert_close_rejects_real_differences() {
        assert_close(1.0, 1.0001, 1e-9, 16);
    }
}

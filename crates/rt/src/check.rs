//! A minimal property-testing harness (the in-tree `proptest`
//! replacement).
//!
//! A property is a closure taking a seeded [`Rng`] and
//! panicking (via the normal `assert!` family) when the invariant fails.
//! [`run`] executes it for a configurable number of cases, each with a
//! deterministic per-case seed derived from the suite seed; when a case
//! panics, the harness prints the failing case's seed and the environment
//! variables that replay exactly that case, then re-raises the panic so
//! the test still fails loudly.
//!
//! There is no shrinking: instead, failing seeds found historically are
//! committed as explicit named regression tests next to the property (see
//! e.g. the `regression_` tests in `tests/properties.rs`), which is both
//! hermetic and more readable than `.proptest-regressions` sidecar files.
//!
//! Replay controls (read at each `run` call):
//! * `RT_CHECK_SEED` — run only the single case with this case seed;
//! * `RT_CHECK_CASES` — override the number of generated cases.

use crate::rng::{Rng, SplitMix64};

/// Configuration for one property run.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases.
    pub cases: u32,
    /// Suite seed; per-case seeds derive from it.
    pub seed: u64,
}

impl Config {
    /// `cases` generated cases from the default suite seed.
    pub fn cases(cases: u32) -> Self {
        Self { cases, ..Self::default() }
    }

    /// Replace the suite seed.
    pub fn with_seed(self, seed: u64) -> Self {
        Self { seed, ..self }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cases: 32,
            seed: 0x686d_6f63_6c6f_7564, // "hmocloud"
        }
    }
}

/// Deterministic seed of case `index` under suite seed `suite_seed`.
pub fn case_seed(suite_seed: u64, index: u32) -> u64 {
    let mut sm = SplitMix64::new(suite_seed ^ ((index as u64) << 32 | index as u64));
    sm.next_u64()
}

/// Run the property `body` for `config.cases` seeded cases.
///
/// `name` appears in the replay banner; use the test function's name. The
/// body gets a fresh deterministically-seeded [`Rng`] per case and should
/// draw all generated inputs from it. To discard a vacuous case (the
/// `prop_assume!` analog), simply `return` early.
pub fn run<F>(name: &str, config: Config, body: F)
where
    F: Fn(&mut Rng),
{
    if let Ok(seed) = std::env::var("RT_CHECK_SEED") {
        let seed: u64 = seed.parse().expect("RT_CHECK_SEED must be a u64");
        run_case(name, u32::MAX, seed, &body);
        return;
    }
    let cases = std::env::var("RT_CHECK_CASES")
        .ok()
        .and_then(|c| c.parse().ok())
        .unwrap_or(config.cases);
    for index in 0..cases {
        run_case(name, index, case_seed(config.seed, index), &body);
    }
}

fn run_case<F>(name: &str, index: u32, seed: u64, body: &F)
where
    F: Fn(&mut Rng),
{
    // AssertUnwindSafe: the panic is re-raised immediately below, so no
    // code observes state a partially-run case may have left behind.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut rng = Rng::new(seed);
        body(&mut rng);
    }));
    if let Err(panic) = result {
        let which = if index == u32::MAX {
            "replayed case".to_string()
        } else {
            format!("case {index}")
        };
        eprintln!(
            "\nrt::check: property '{name}' FAILED at {which} (case seed {seed}).\n\
             rt::check: replay just this case with: RT_CHECK_SEED={seed} cargo test {name}\n"
        );
        std::panic::resume_unwind(panic);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn runs_the_configured_number_of_cases() {
        let count = AtomicU32::new(0);
        run("count_cases", Config::cases(17), |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 17);
    }

    #[test]
    fn case_seeds_are_deterministic_and_distinct() {
        let a: Vec<u64> = (0..100).map(|i| case_seed(1, i)).collect();
        let b: Vec<u64> = (0..100).map(|i| case_seed(1, i)).collect();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "duplicate case seeds");
    }

    #[test]
    fn distinct_suite_seeds_give_distinct_cases() {
        assert_ne!(case_seed(1, 0), case_seed(2, 0));
    }

    #[test]
    fn failing_case_panics_through() {
        let result = std::panic::catch_unwind(|| {
            run("always_fails", Config::cases(3), |_| {
                panic!("property violated");
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn properties_see_reproducible_streams() {
        // Two identical runs observe identical generated inputs.
        let record = |out: &std::sync::Mutex<Vec<u64>>| {
            let out = out;
            run("record", Config::cases(8), |rng| {
                out.lock().unwrap().push(rng.next_u64());
            });
        };
        let a = std::sync::Mutex::new(Vec::new());
        let b = std::sync::Mutex::new(Vec::new());
        record(&a);
        record(&b);
        assert_eq!(*a.lock().unwrap(), *b.lock().unwrap());
    }
}

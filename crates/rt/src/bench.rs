//! A tiny criterion-style timing harness for `harness = false` benches.
//!
//! Mirrors the small slice of criterion's API the workspace uses — named
//! groups, per-benchmark throughput, `Bencher::iter` — so the bench
//! sources read the same, while staying dependency-free. Each benchmark
//! warms up, then takes `sample_size` wall-clock samples of an
//! auto-calibrated iteration batch and reports min/median/mean plus
//! throughput at the median.
//!
//! Binaries filter by substring: `cargo bench -- harvey` runs only
//! benchmarks whose `group/name` id contains `harvey`. `--list` prints
//! ids without running. `RT_BENCH_FAST=1` shrinks warmup and measuring
//! time so CI can smoke-run every bench in seconds.

use std::time::{Duration, Instant};

/// Re-exported for convenience in bench bodies.
pub use std::hint::black_box;

/// Units for reporting work done per iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many elements (reported as Melem/s).
    Elements(u64),
    /// Iterations process this many bytes (reported as GiB/s).
    Bytes(u64),
}

/// Top-level harness: owns the CLI filter and prints the report.
pub struct Harness {
    filter: Option<String>,
    list_only: bool,
}

impl Harness {
    /// Parse `std::env::args` (skipping cargo-bench's `--bench` flag).
    pub fn from_args() -> Self {
        let mut filter = None;
        let mut list_only = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--profile-time" => {}
                "--list" => list_only = true,
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Self { filter, list_only }
    }

    /// Begin a named benchmark group.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Run a free-standing benchmark (equivalent to a one-entry group).
    pub fn bench_function<F>(&mut self, id: &str, body: F)
    where
        F: FnMut(&mut Bencher),
    {
        let (group, name) = match id.split_once('/') {
            Some((g, n)) => (g.to_string(), n.to_string()),
            None => (id.to_string(), String::new()),
        };
        let mut g = self.group(&group);
        g.bench_function(&name, body);
        g.finish();
    }

    fn should_run(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

impl Default for Harness {
    fn default() -> Self {
        Self::from_args()
    }
}

/// A named group of related benchmarks sharing throughput settings.
pub struct Group<'a> {
    harness: &'a Harness,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl Group<'_> {
    /// Number of timed samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Report throughput per iteration alongside time.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure one benchmark. `name` may be empty for single-function
    /// groups.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = if name.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, name)
        };
        if !self.harness.should_run(&id) {
            return;
        }
        if self.harness.list_only {
            println!("{id}");
            return;
        }
        let stats = measure(self.sample_size, fast_mode(), &mut body);
        report(&id, &stats, self.throughput);
    }

    /// End the group (symmetry with criterion; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the bench body; call [`Bencher::iter`] with the code under
/// test.
pub struct Bencher {
    mode: BencherMode,
}

enum BencherMode {
    /// Calibration: count how many iterations fit in the probe window.
    Calibrate { iters: u64, deadline: Instant },
    /// Measurement: run exactly `iters` iterations, record elapsed time.
    Measure { iters: u64, elapsed: Duration },
}

impl Bencher {
    /// Run the closure under timing. The harness decides how many times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match &mut self.mode {
            BencherMode::Calibrate { iters, deadline } => {
                while Instant::now() < *deadline {
                    black_box(f());
                    *iters += 1;
                }
            }
            BencherMode::Measure { iters, elapsed } => {
                let start = Instant::now();
                for _ in 0..*iters {
                    black_box(f());
                }
                *elapsed = start.elapsed();
            }
        }
    }
}

/// Summary statistics of one benchmark, nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Median ns/iter over the samples.
    pub median_ns: f64,
    /// Fastest sample's ns/iter.
    pub min_ns: f64,
    /// Mean ns/iter over the samples.
    pub mean_ns: f64,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
}

fn fast_mode() -> bool {
    std::env::var("RT_BENCH_FAST").is_ok_and(|v| v != "0")
}

/// Measure a closure outside the [`Harness`] CLI plumbing and return the
/// raw [`Stats`] instead of printing them. Honors `RT_BENCH_FAST` exactly
/// like [`Harness`]-driven benches; used by regeneration binaries (e.g.
/// `bench_baseline`) that persist numbers to disk.
pub fn sample_stats<F>(sample_size: usize, mut body: F) -> Stats
where
    F: FnMut(&mut Bencher),
{
    measure(sample_size.max(2), fast_mode(), &mut body)
}

fn measure<F>(sample_size: usize, fast: bool, body: &mut F) -> Stats
where
    F: FnMut(&mut Bencher),
{
    let (warmup, target_sample) = if fast {
        (Duration::from_millis(20), Duration::from_millis(20))
    } else {
        (Duration::from_millis(300), Duration::from_millis(100))
    };

    // Warmup doubles as calibration: count iterations in the window.
    let mut b = Bencher {
        mode: BencherMode::Calibrate { iters: 0, deadline: Instant::now() + warmup },
    };
    body(&mut b);
    let calibrated = match b.mode {
        BencherMode::Calibrate { iters, .. } => iters.max(1),
        _ => unreachable!(),
    };
    let per_iter = warmup.as_secs_f64() / calibrated as f64;
    let iters_per_sample = ((target_sample.as_secs_f64() / per_iter).ceil() as u64).max(1);

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            mode: BencherMode::Measure { iters: iters_per_sample, elapsed: Duration::ZERO },
        };
        body(&mut b);
        let elapsed = match b.mode {
            BencherMode::Measure { elapsed, .. } => elapsed,
            _ => unreachable!(),
        };
        per_iter_ns.push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median_ns = if per_iter_ns.len() % 2 == 1 {
        per_iter_ns[per_iter_ns.len() / 2]
    } else {
        0.5 * (per_iter_ns[per_iter_ns.len() / 2 - 1] + per_iter_ns[per_iter_ns.len() / 2])
    };
    Stats {
        median_ns,
        min_ns: per_iter_ns[0],
        mean_ns: per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64,
        iters_per_sample,
        samples: per_iter_ns.len(),
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(id: &str, stats: &Stats, throughput: Option<Throughput>) {
    let rate = throughput.map(|t| {
        let per_sec = 1e9 / stats.median_ns;
        match t {
            Throughput::Elements(n) => {
                format!("  {:.2} Melem/s", n as f64 * per_sec / 1e6)
            }
            Throughput::Bytes(n) => {
                format!("  {:.2} GiB/s", n as f64 * per_sec / (1024.0 * 1024.0 * 1024.0))
            }
        }
    });
    println!(
        "{id:<44} median {:>10}  min {:>10}  mean {:>10}{}   ({} samples × {} iters)",
        human_time(stats.median_ns),
        human_time(stats.min_ns),
        human_time(stats.mean_ns),
        rate.unwrap_or_default(),
        stats.samples,
        stats.iters_per_sample,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_stats<F: FnMut(&mut Bencher)>(mut body: F) -> Stats {
        measure(5, true, &mut body)
    }

    #[test]
    fn measures_a_trivial_closure() {
        let stats = fast_stats(|b| b.iter(|| black_box(1u64 + 1)));
        assert!(stats.median_ns > 0.0);
        assert!(stats.min_ns <= stats.median_ns);
        assert_eq!(stats.samples, 5);
        assert!(stats.iters_per_sample >= 1);
    }

    #[test]
    fn slower_work_measures_slower() {
        let fast = fast_stats(|b| b.iter(|| black_box((0..10u64).sum::<u64>())));
        let slow = fast_stats(|b| {
            b.iter(|| black_box((0..100_000u64).fold(0u64, |a, x| a ^ x.wrapping_mul(31))))
        });
        assert!(
            slow.median_ns > 5.0 * fast.median_ns,
            "slow {} vs fast {}",
            slow.median_ns,
            fast.median_ns
        );
    }

    #[test]
    fn filter_matches_substring() {
        let h = Harness { filter: Some("harvey".into()), list_only: false };
        assert!(h.should_run("harvey_step/serial"));
        assert!(!h.should_run("stream/Copy"));
        let all = Harness { filter: None, list_only: false };
        assert!(all.should_run("anything"));
    }
}

//! Chunked data-parallelism — compatibility wrappers over [`crate::pool`].
//!
//! [`par_chunks_mut`] is the replacement for rayon's
//! `par_chunks_mut(..).enumerate().for_each(..)` in the LBM
//! collide-stream: the destination array is split into contiguous,
//! non-overlapping chunks, each worker owns a disjoint run of whole
//! chunks, and the closure sees `(chunk_index, chunk)` exactly as the
//! serial loop would. Because the pull-scheme update writes only its own
//! chunk and reads only the (shared, immutable) source array, the
//! parallel schedule is race-free by construction and bit-identical to
//! the serial one — there is no floating-point reassociation anywhere.
//!
//! Historically these functions spawned fresh scoped threads per call;
//! they now delegate to the process-wide persistent [`crate::pool`], so a
//! run of thousands of `Solver::step()` calls costs at most
//! `max_threads() - 1` thread spawns total. `threads` arguments denote
//! *logical* workers (chunk-run partitions), which the pool executes on
//! however many OS threads it owns — the partition, enumeration order,
//! and results are unchanged.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Number of worker threads a parallel region will use: the host's
/// available parallelism, unless `RT_POOL_THREADS=<n>` (n ≥ 1) pins the
/// logical width of the process-wide pool — the verify gate uses this
/// to reproduce runs at fixed worker counts. Read once and cached (the
/// global pool is sized from it exactly once anyway).
///
/// # Panics
/// If `RT_POOL_THREADS` is set to anything but a positive integer.
pub fn max_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| match std::env::var("RT_POOL_THREADS") {
        Ok(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| panic!("RT_POOL_THREADS must be a positive integer, got {v:?}")),
        Err(_) => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
    })
}

/// Apply `f(chunk_index, chunk)` to every `chunk_size`-sized chunk of
/// `data` (the last chunk may be shorter), distributing chunks over up to
/// [`max_threads`] scoped threads.
///
/// Guarantees:
/// * every chunk is processed exactly once;
/// * `chunk_index` counts chunks from the start of `data`, matching
///   `data.chunks_mut(chunk_size).enumerate()`;
/// * results are bitwise identical to the serial loop for any `f` that is
///   a pure function of its inputs (the schedule only partitions work, it
///   never reorders arithmetic within a chunk);
/// * panics in `f` propagate to the caller.
///
/// Empty input is a no-op. With one available thread, or when there are
/// fewer chunks than threads would pay for, the work runs inline on the
/// caller's thread.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    crate::pool::global().par_chunks_mut(data, chunk_size, f);
}

/// [`par_chunks_mut`] with an explicit logical worker count (≥ 1).
/// Exposed so callers (and tests) can pin the schedule regardless of the
/// host's available parallelism.
///
/// Chunk runs are distributed balanced: `n_chunks % threads` workers get
/// one extra chunk, so every requested worker receives work whenever
/// `n_chunks >= threads` (the old ceil-based split could leave trailing
/// workers idle: 5 chunks on 4 threads gave 2+2+1+0).
pub fn par_chunks_mut_with_threads<T, F>(data: &mut [T], chunk_size: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    crate::pool::global().par_chunks_mut_workers(data, chunk_size, threads, f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slice_is_a_noop() {
        let mut data: Vec<u64> = Vec::new();
        par_chunks_mut(&mut data, 4, |_, _| panic!("must not be called"));
    }

    #[test]
    fn single_chunk_runs_inline() {
        let mut data = vec![1u64, 2, 3];
        par_chunks_mut(&mut data, 8, |i, chunk| {
            assert_eq!(i, 0);
            for v in chunk {
                *v *= 10;
            }
        });
        assert_eq!(data, vec![10, 20, 30]);
    }

    #[test]
    fn chunk_indices_match_serial_enumeration() {
        let chunk = 19;
        let mut data = vec![0u64; 19 * 1037];
        par_chunks_mut_with_threads(&mut data, chunk, 4, |i, c| {
            for v in c {
                *v = i as u64;
            }
        });
        for (i, c) in data.chunks(chunk).enumerate() {
            assert!(c.iter().all(|&v| v == i as u64), "chunk {i} mislabeled");
        }
    }

    #[test]
    fn ragged_tail_chunk_is_processed() {
        let mut data = vec![1u32; 10];
        let mut sizes = Vec::new();
        par_chunks_mut(&mut data, 4, |i, c| {
            let _ = i;
            c.iter_mut().for_each(|v| *v += 1);
        });
        assert!(data.iter().all(|&v| v == 2));
        // Serial reference enumeration: 4 + 4 + 2.
        for c in data.chunks(4) {
            sizes.push(c.len());
        }
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn matches_serial_reference_computation() {
        let n = 8192;
        let src: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let work = |i: usize, c: &mut [f64]| {
            for (j, v) in c.iter_mut().enumerate() {
                let k = i * 7 + j;
                *v = src[k % n] * 1.5 + (k as f64).sqrt();
            }
        };
        let mut serial = vec![0.0f64; n];
        for (i, c) in serial.chunks_mut(7).enumerate() {
            work(i, c);
        }
        for threads in [1, 2, 3, 8] {
            let mut parallel = vec![0.0f64; n];
            par_chunks_mut_with_threads(&mut parallel, 7, threads, work);
            assert_eq!(
                serial, parallel,
                "parallel result diverged from serial at {threads} threads"
            );
        }
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_size_rejected() {
        let mut data = vec![0u8; 4];
        par_chunks_mut(&mut data, 0, |_, _| {});
    }

    #[test]
    fn all_requested_workers_receive_work() {
        // Regression: the old ceil-based split (`chunks_per_worker =
        // ceil(n_chunks / threads)`) undersubscribed — 5 chunks on 4
        // threads gave runs of 2+2+1+0, idling the 4th worker. The
        // balanced partition must feed every requested worker whenever
        // `n_chunks >= threads`.
        for (n_chunks, threads) in [(5usize, 4usize), (7, 3), (9, 8), (12, 12), (101, 7)] {
            for w in 0..threads {
                let (_, count) = crate::pool::balanced_runs(n_chunks, threads, w);
                assert!(
                    count >= 1,
                    "worker {w} idle with {n_chunks} chunks on {threads} threads"
                );
            }
        }
        // And the wrapper still visits every element exactly once under
        // the balanced schedule of the regression shape (5 chunks / 4
        // threads).
        let mut data = vec![0u32; 5 * 3];
        par_chunks_mut_with_threads(&mut data, 3, 4, |_, c| {
            c.iter_mut().for_each(|v| *v += 1)
        });
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            let mut data = vec![0u8; 64];
            par_chunks_mut_with_threads(&mut data, 1, 4, |i, _| {
                if i == 63 {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err());
    }
}

//! Portable explicit-SIMD lane layer for the vectorized LBM kernels.
//!
//! The fused collide-stream is vectorized **across cells** — one cell per
//! lane — so the only arithmetic the lane types need is elementwise
//! add/sub/mul/div. Those four operations are IEEE-754 correctly rounded
//! *per lane* on every backend here (`vaddpd`/`vsubpd`/`vmulpd`/`vdivpd`
//! round exactly like their scalar counterparts, and the plain-array
//! fallback literally is the scalar operation), and nothing in this module
//! ever emits a fused multiply-add or reassociates a sum. A kernel written
//! against [`Lane`] therefore computes, lane by lane, the *bit-identical*
//! result of the scalar kernel — the property the solver's
//! SIMD-vs-scalar oracles pin.
//!
//! Three implementations of [`Lane`] exist:
//!
//! * the scalar floats themselves (`f32`/`f64`, `WIDTH = 1`) — so a
//!   lane-generic kernel instantiated at `V = f64` *is* the scalar kernel;
//! * [`ArrLane`], a plain fixed-size array that compiles on every target
//!   (LLVM usually auto-vectorizes its elementwise loops);
//! * [`F64x4`]/[`F32x8`], `core::arch::x86_64` AVX2 register types —
//!   compiled only when the build target enables AVX2 (e.g. under the
//!   workspace's pinned `-C target-cpu=native`), aliased to [`ArrLane`]
//!   otherwise.
//!
//! Which lane type the solvers pick at runtime is decided **once** per
//! process by [`backend`]: the `RT_SIMD` environment variable
//! (`scalar | avx2 | auto`, mirroring `RT_POOL_THREADS`) if set, else
//! `is_x86_feature_detected!("avx2")`. Requesting `avx2` on a host (or a
//! build) without AVX2 falls back to the portable backend instead of
//! failing, so verify scripts can force either path anywhere.

use std::sync::OnceLock;

/// A pack of `WIDTH` elements of `T` supporting elementwise arithmetic.
///
/// Contract (what the bit-identity argument rests on):
///
/// * `+ - * /` are elementwise and IEEE-754 correctly rounded per lane —
///   lane `i` of `a + b` is bitwise `a[i] + b[i]` as scalars;
/// * no implementation fuses, reassociates, or reorders operations;
/// * `load`/`store` move bits verbatim from/to the first `WIDTH` slots.
pub trait Lane<T: Copy>:
    Copy
    + Send
    + Sync
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
{
    /// Number of elements per lane value.
    const WIDTH: usize;
    /// Broadcast one element to every lane.
    fn splat(v: T) -> Self;
    /// Load lanes from `src[..WIDTH]` (panics if shorter).
    fn load(src: &[T]) -> Self;
    /// Store lanes to `dst[..WIDTH]` (panics if shorter).
    fn store(self, dst: &mut [T]);
}

/// A float type the vector kernels can be instantiated over, naming its
/// portable and accelerated lane types. The element is itself a
/// `WIDTH = 1` [`Lane`], so scalar kernels are the `V = Self`
/// instantiation of the same generic code.
pub trait Element: Copy + Send + Sync + Lane<Self> + 'static {
    /// Natural vector width on a 256-bit register (4 for f64, 8 for f32).
    const LANES: usize;
    /// Portable plain-array lane — compiles on every target.
    type Wide: Lane<Self>;
    /// Accelerated lane: AVX2-backed when the build target has AVX2,
    /// otherwise an alias of [`Element::Wide`].
    type Accel: Lane<Self>;
}

macro_rules! scalar_lane {
    ($t:ty) => {
        impl Lane<$t> for $t {
            const WIDTH: usize = 1;
            #[inline(always)]
            fn splat(v: $t) -> Self {
                v
            }
            #[inline(always)]
            fn load(src: &[$t]) -> Self {
                src[0]
            }
            #[inline(always)]
            fn store(self, dst: &mut [$t]) {
                dst[0] = self;
            }
        }
    };
}

scalar_lane!(f32);
scalar_lane!(f64);

impl Element for f64 {
    const LANES: usize = 4;
    type Wide = ArrLane<f64, 4>;
    type Accel = F64x4;
}

impl Element for f32 {
    const LANES: usize = 8;
    type Wide = ArrLane<f32, 8>;
    type Accel = F32x8;
}

/// Plain-array lane: `W` elements updated by elementwise scalar ops. The
/// portable fallback — correct (and bit-identical to scalar) everywhere,
/// and usually auto-vectorized by LLVM on targets with vector units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrLane<T, const W: usize>(pub [T; W]);

macro_rules! arr_lane_op {
    ($trait:ident, $method:ident) => {
        impl<T, const W: usize> std::ops::$trait for ArrLane<T, W>
        where
            T: Copy + std::ops::$trait<Output = T>,
        {
            type Output = Self;
            #[inline(always)]
            fn $method(self, rhs: Self) -> Self {
                Self(std::array::from_fn(|i| self.0[i].$method(rhs.0[i])))
            }
        }
    };
}

arr_lane_op!(Add, add);
arr_lane_op!(Sub, sub);
arr_lane_op!(Mul, mul);
arr_lane_op!(Div, div);

impl<T, const W: usize> Lane<T> for ArrLane<T, W>
where
    T: Copy
        + Send
        + Sync
        + std::ops::Add<Output = T>
        + std::ops::Sub<Output = T>
        + std::ops::Mul<Output = T>
        + std::ops::Div<Output = T>,
{
    const WIDTH: usize = W;
    #[inline(always)]
    fn splat(v: T) -> Self {
        Self([v; W])
    }
    #[inline(always)]
    fn load(src: &[T]) -> Self {
        Self(std::array::from_fn(|i| src[i]))
    }
    #[inline(always)]
    fn store(self, dst: &mut [T]) {
        dst[..W].copy_from_slice(&self.0);
    }
}

#[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
mod avx2_lanes {
    use super::Lane;
    use core::arch::x86_64::*;

    /// Four f64 lanes in one AVX ymm register. Only built when the target
    /// statically enables AVX2, so the intrinsic calls are safe; runtime
    /// selection via [`super::backend`] keeps them off unsupported hosts.
    /// Only `vaddpd`/`vsubpd`/`vmulpd`/`vdivpd` are used — per-lane IEEE
    /// rounding, no FMA contraction — so each lane computes scalar bits.
    #[derive(Clone, Copy)]
    pub struct F64x4(__m256d);

    impl std::ops::Add for F64x4 {
        type Output = Self;
        #[inline(always)]
        fn add(self, rhs: Self) -> Self {
            Self(unsafe { _mm256_add_pd(self.0, rhs.0) })
        }
    }
    impl std::ops::Sub for F64x4 {
        type Output = Self;
        #[inline(always)]
        fn sub(self, rhs: Self) -> Self {
            Self(unsafe { _mm256_sub_pd(self.0, rhs.0) })
        }
    }
    impl std::ops::Mul for F64x4 {
        type Output = Self;
        #[inline(always)]
        fn mul(self, rhs: Self) -> Self {
            Self(unsafe { _mm256_mul_pd(self.0, rhs.0) })
        }
    }
    impl std::ops::Div for F64x4 {
        type Output = Self;
        #[inline(always)]
        fn div(self, rhs: Self) -> Self {
            Self(unsafe { _mm256_div_pd(self.0, rhs.0) })
        }
    }

    impl Lane<f64> for F64x4 {
        const WIDTH: usize = 4;
        #[inline(always)]
        fn splat(v: f64) -> Self {
            Self(unsafe { _mm256_set1_pd(v) })
        }
        #[inline(always)]
        fn load(src: &[f64]) -> Self {
            assert!(src.len() >= 4);
            // Safety: bounds just checked; unaligned load is permitted.
            Self(unsafe { _mm256_loadu_pd(src.as_ptr()) })
        }
        #[inline(always)]
        fn store(self, dst: &mut [f64]) {
            assert!(dst.len() >= 4);
            // Safety: bounds just checked; unaligned store is permitted.
            unsafe { _mm256_storeu_pd(dst.as_mut_ptr(), self.0) }
        }
    }

    /// Eight f32 lanes in one AVX ymm register — same contract as
    /// [`F64x4`].
    #[derive(Clone, Copy)]
    pub struct F32x8(__m256);

    impl std::ops::Add for F32x8 {
        type Output = Self;
        #[inline(always)]
        fn add(self, rhs: Self) -> Self {
            Self(unsafe { _mm256_add_ps(self.0, rhs.0) })
        }
    }
    impl std::ops::Sub for F32x8 {
        type Output = Self;
        #[inline(always)]
        fn sub(self, rhs: Self) -> Self {
            Self(unsafe { _mm256_sub_ps(self.0, rhs.0) })
        }
    }
    impl std::ops::Mul for F32x8 {
        type Output = Self;
        #[inline(always)]
        fn mul(self, rhs: Self) -> Self {
            Self(unsafe { _mm256_mul_ps(self.0, rhs.0) })
        }
    }
    impl std::ops::Div for F32x8 {
        type Output = Self;
        #[inline(always)]
        fn div(self, rhs: Self) -> Self {
            Self(unsafe { _mm256_div_ps(self.0, rhs.0) })
        }
    }

    impl Lane<f32> for F32x8 {
        const WIDTH: usize = 8;
        #[inline(always)]
        fn splat(v: f32) -> Self {
            Self(unsafe { _mm256_set1_ps(v) })
        }
        #[inline(always)]
        fn load(src: &[f32]) -> Self {
            assert!(src.len() >= 8);
            // Safety: bounds just checked; unaligned load is permitted.
            Self(unsafe { _mm256_loadu_ps(src.as_ptr()) })
        }
        #[inline(always)]
        fn store(self, dst: &mut [f32]) {
            assert!(dst.len() >= 8);
            // Safety: bounds just checked; unaligned store is permitted.
            unsafe { _mm256_storeu_ps(dst.as_mut_ptr(), self.0) }
        }
    }
}

#[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
pub use avx2_lanes::{F32x8, F64x4};

/// Without compile-time AVX2 the accelerated lanes alias the portable
/// arrays, and [`backend`] never reports [`Backend::Avx2`].
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx2")))]
pub type F64x4 = ArrLane<f64, 4>;
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx2")))]
pub type F32x8 = ArrLane<f32, 8>;

/// Which lane implementation backs the vector kernels this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable plain-array lanes ([`ArrLane`]).
    Scalar,
    /// AVX2 register lanes ([`F64x4`]/[`F32x8`]).
    Avx2,
}

impl Backend {
    /// Short label for benchmark/observability provenance.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
        }
    }
}

/// Parse an `RT_SIMD` override. `None` means auto-detect.
///
/// # Panics
/// On any value other than `scalar`, `avx2`, or `auto`.
fn parse_override(v: &str) -> Option<Backend> {
    match v {
        "scalar" => Some(Backend::Scalar),
        "avx2" => Some(Backend::Avx2),
        "auto" => None,
        other => panic!("RT_SIMD must be scalar|avx2|auto, got {other:?}"),
    }
}

/// What the hardware (and this build) can actually run.
fn detect() -> Backend {
    #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
    {
        if std::is_x86_feature_detected!("avx2") {
            return Backend::Avx2;
        }
    }
    Backend::Scalar
}

/// The process-wide SIMD backend, selected once (then cached): the
/// `RT_SIMD` env override if set, else AVX2 when both the build target and
/// the running CPU support it. An `avx2` request that detection (or the
/// build) cannot honor degrades to [`Backend::Scalar`] so forcing either
/// path works on any host.
///
/// # Panics
/// If `RT_SIMD` is set to anything but `scalar`, `avx2`, or `auto`.
pub fn backend() -> Backend {
    static BACKEND: OnceLock<Backend> = OnceLock::new();
    *BACKEND.get_or_init(|| match std::env::var("RT_SIMD") {
        Ok(v) => match parse_override(&v) {
            Some(Backend::Scalar) => Backend::Scalar,
            // Honor the request only as far as the hardware allows.
            Some(Backend::Avx2) | None => detect(),
        },
        Err(_) => detect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f64_cases() -> Vec<f64> {
        vec![0.0, -0.0, 1.0, -1.5, 1.0 / 3.0, 1e-300, 1e300, 0.1234567890123]
    }

    #[test]
    fn scalar_lane_is_the_identity_wrapper() {
        assert_eq!(<f64 as Lane<f64>>::WIDTH, 1);
        let v = <f64 as Lane<f64>>::splat(2.5);
        assert_eq!(v, 2.5);
        let mut out = [0.0f64];
        (v * v + v).store(&mut out);
        assert_eq!(out[0], 2.5 * 2.5 + 2.5);
    }

    #[test]
    fn arr_lane_ops_match_scalar_bitwise() {
        let xs = f64_cases();
        for (i, &a) in xs.iter().enumerate() {
            for &b in &xs[i..] {
                let va = ArrLane::<f64, 4>::splat(a);
                let vb = ArrLane::<f64, 4>::splat(b);
                let mut out = [0.0f64; 4];
                for (op, scalar) in [
                    (va + vb, a + b),
                    (va - vb, a - b),
                    (va * vb, a * b),
                    (va / vb, a / b),
                ] {
                    op.store(&mut out);
                    for &o in &out {
                        assert_eq!(o.to_bits(), scalar.to_bits(), "{a} ? {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn accel_lane_ops_match_scalar_bitwise_per_lane() {
        // The foundation of the vector kernels' bit-identity claim: each
        // lane of an accelerated op carries exactly the scalar result.
        let src = [0.1, 1.0 / 3.0, -7.25, 1e-12];
        let other = [3.0, -0.5, 1e3, 0.7];
        let a = F64x4::load(&src);
        let b = F64x4::load(&other);
        let mut out = [0.0f64; 4];
        ((a + b) * a - b / a).store(&mut out);
        for i in 0..4 {
            let want = (src[i] + other[i]) * src[i] - other[i] / src[i];
            assert_eq!(out[i].to_bits(), want.to_bits(), "lane {i}");
        }

        let src8: [f32; 8] = [0.1, 0.25, -3.5, 1e-6, 9.0, -0.125, 2.5, 1.0 / 3.0];
        let a = F32x8::load(&src8);
        let b = F32x8::splat(1.5f32);
        let mut out8 = [0.0f32; 8];
        ((a * b) + (a - b) / b).store(&mut out8);
        for i in 0..8 {
            let want = (src8[i] * 1.5f32) + (src8[i] - 1.5f32) / 1.5f32;
            assert_eq!(out8[i].to_bits(), want.to_bits(), "lane {i}");
        }
    }

    #[test]
    fn load_store_roundtrip_moves_bits_verbatim() {
        let src = [f64::MIN_POSITIVE, -0.0, f64::MAX, 42.0];
        let mut dst = [0.0f64; 4];
        F64x4::load(&src).store(&mut dst);
        for i in 0..4 {
            assert_eq!(src[i].to_bits(), dst[i].to_bits());
        }
        let w = ArrLane::<f32, 8>::splat(-0.0f32);
        let mut out = [1.0f32; 8];
        w.store(&mut out);
        assert!(out.iter().all(|v| v.to_bits() == (-0.0f32).to_bits()));
    }

    #[test]
    fn element_widths_are_consistent() {
        assert_eq!(<f64 as Element>::LANES, 4);
        assert_eq!(<f32 as Element>::LANES, 8);
        assert_eq!(<<f64 as Element>::Wide as Lane<f64>>::WIDTH, 4);
        assert_eq!(<<f32 as Element>::Wide as Lane<f32>>::WIDTH, 8);
        assert_eq!(<<f64 as Element>::Accel as Lane<f64>>::WIDTH, 4);
        assert_eq!(<<f32 as Element>::Accel as Lane<f32>>::WIDTH, 8);
    }

    #[test]
    fn override_parser_accepts_the_documented_values() {
        assert_eq!(parse_override("scalar"), Some(Backend::Scalar));
        assert_eq!(parse_override("avx2"), Some(Backend::Avx2));
        assert_eq!(parse_override("auto"), None);
    }

    #[test]
    #[should_panic(expected = "RT_SIMD must be")]
    fn override_parser_rejects_garbage() {
        let _ = parse_override("sse9");
    }

    #[test]
    fn backend_is_stable_and_labeled() {
        let b = backend();
        assert_eq!(b, backend(), "backend must be selected once");
        assert!(matches!(b.label(), "scalar" | "avx2"));
    }
}

//! Persistent worker pool for the LBM hot path.
//!
//! The paper's performance model treats the collide-stream kernel as
//! memory-bandwidth-bound (Eqs. 6/9); that only holds when threading
//! overhead is amortized. Spawning and joining OS threads inside every
//! `Solver::step()` — what [`crate::par`] did on scoped threads — costs
//! tens of microseconds per step and has nothing to do with bandwidth, so
//! it distorts every MFLUPS number the models are validated against. This
//! module replaces it with a pool of parked worker threads that is spawned
//! once and reused for the lifetime of the process.
//!
//! ## Execution model
//!
//! A job is a pure task `f(run_index)` executed for every run index in
//! `0..n_runs`. *Runs* are logical workers: the partition of the data is
//! decided by the requested worker count, not by how many OS threads the
//! pool happens to own, so a job asking for 8 workers produces the exact
//! same 8 contiguous chunk runs — and therefore bit-identical results —
//! whether the host has 1 core or 64. Pool threads (plus the submitting
//! caller, which always participates) claim run indices from a shared
//! counter under the pool mutex and execute them.
//!
//! ## Wakeup protocol
//!
//! All coordination state lives in one `Mutex<State>` with two condvars:
//!
//! * workers park on `work` and wake when a job with unclaimed runs is
//!   published;
//! * the caller publishes the job under the lock, notifies `work`, then
//!   claims runs itself; once every run is claimed it parks on `done`
//!   until the last in-flight run completes (`pending == 0`).
//!
//! The caller does not return until `pending == 0`, which is what makes
//! the lifetime erasure sound: the task is passed as a reference, its
//! borrow provably outlives every worker's use of it.
//!
//! ## Determinism
//!
//! [`Pool::par_chunks_mut`] splits the destination slice into contiguous
//! runs of whole chunks (balanced: `n_chunks % workers` runs get one
//! extra chunk) and hands each run to one logical worker. Within a run,
//! chunks are visited in serial order with their serial `chunk_index`; no
//! arithmetic is reordered, no partial chunks are created. For any `f`
//! that is a pure function of `(chunk_index, chunk)`, results are bitwise
//! identical to the serial loop regardless of worker count or which OS
//! thread executes which run.
//!
//! ## Panics
//!
//! A panic inside a task is caught on the worker, stored, and re-raised
//! on the caller *after* the job fully drains — so the pool (and the
//! borrow) is never left in a torn state, and the pool remains usable for
//! subsequent jobs.

use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

use hemocloud_obs::{Counter, Histogram, HistogramKind};

/// A raw pointer that may cross thread boundaries. Used to hand disjoint
/// sub-slices of one allocation to pool workers; the caller is
/// responsible for ensuring the ranges touched by different workers do
/// not overlap (the pool's own helpers uphold this by construction).
pub struct SendPtr<T>(pub *mut T);

// Manual impls: the derived ones would needlessly bound `T: Copy`.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// Safety: SendPtr is a plain address; sending it between threads is safe
// as long as the *uses* are disjoint, which every constructor in this
// module guarantees by partitioning index ranges.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// A shared view of one mutable slice that many logical workers may read
/// and write **concurrently**, under an owner-computes contract the caller
/// upholds: the job associates every *item* (e.g. a mesh cell) with a set
/// of element indices, the per-item sets are pairwise disjoint, and each
/// worker only touches the slots of the items it owns.
///
/// This is the primitive behind sparse-mesh kernels whose writes are
/// scattered but provably disjoint — the AA propagation pattern's odd step
/// writes each cell's post-collision values into *neighbor* rows, and a
/// SoA layout strides one cell's 19 values across the whole array, so no
/// contiguous sub-slice partition exists. [`Pool::par_owner_mut`] hands
/// every worker the same `DisjointMut` plus a contiguous *item* range;
/// disjointness of the per-item slot sets makes that race-free even though
/// the element ranges interleave.
///
/// Accessors are `unsafe`: the bounds check is a `debug_assert!` and the
/// no-two-workers-share-a-slot obligation cannot be checked at runtime at
/// all. Soundness is argued once per kernel (see
/// `hemocloud_lbm::solver`'s AA safety notes), not per access.
pub struct DisjointMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// Safety: the view is just an address + length; concurrent use is sound
// under the documented disjointness contract, which every caller of
// `par_owner_mut` must uphold (and the serial constructor trivially does).
unsafe impl<T: Send> Send for DisjointMut<'_, T> {}
unsafe impl<T: Send> Sync for DisjointMut<'_, T> {}

impl<'a, T: Copy> DisjointMut<'a, T> {
    /// Wrap a slice. Holding the view borrows the slice mutably for its
    /// whole lifetime, so no safe alias can observe the torn intermediate
    /// states of an in-flight job.
    pub fn new(data: &'a mut [T]) -> Self {
        Self {
            ptr: data.as_mut_ptr(),
            len: data.len(),
            _marker: PhantomData,
        }
    }

    /// Number of elements in the underlying slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read element `i`.
    ///
    /// # Safety
    /// `i < len()`, and no other worker may write slot `i` during the
    /// current job (slot `i` belongs to one of the caller's items).
    #[inline(always)]
    pub unsafe fn read(&self, i: usize) -> T {
        debug_assert!(i < self.len, "DisjointMut read out of bounds: {i}");
        unsafe { *self.ptr.add(i) }
    }

    /// Write element `i`.
    ///
    /// # Safety
    /// `i < len()`, and no other worker may read or write slot `i` during
    /// the current job (slot `i` belongs to one of the caller's items).
    #[inline(always)]
    pub unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len, "DisjointMut write out of bounds: {i}");
        unsafe { self.ptr.add(i).write(value) }
    }

    /// Base pointer of the underlying slice. Intended for *address
    /// computation only* (e.g. issuing software prefetches for slots a few
    /// iterations ahead); dereferencing it is subject to the same
    /// disjointness contract as [`DisjointMut::read`]/[`write`](DisjointMut::write).
    #[inline(always)]
    pub fn as_ptr(&self) -> *const T {
        self.ptr
    }
}

/// Lifetime-erased task pointer stored in the shared job slot. Valid only
/// while the submitting `run()` call is blocked, which [`Pool::run`]
/// enforces by draining the job before returning.
struct RawTask(*const (dyn Fn(usize) + Sync + 'static));

// Safety: the pointee is `Sync` (shared calls from many threads are fine)
// and the pointer itself is only dereferenced while the owning borrow is
// provably alive (see module docs on the wakeup protocol).
unsafe impl Send for RawTask {}

/// Handles into the global [`hemocloud_obs`] registry, fetched once at
/// pool construction so the hot path records lock-free. Every pool in a
/// process aggregates into the same `pool.*` instruments; the counts
/// are deterministic for a fixed program (one `pool.jobs` per submitted
/// job, one `pool.run_seconds`/`pool.queue_wait_seconds` sample per
/// claimed run), while the timing *values* are wall-clock and therefore
/// export count-only in deterministic snapshots.
struct PoolMetrics {
    jobs: Arc<Counter>,
    runs: Arc<Counter>,
    panics: Arc<Counter>,
    spawned: Arc<Counter>,
    /// Chunks enumerated by the stealing scheduler. Deterministic: the
    /// chunk count is a pure function of `(n_items, chunk_items)`, so it
    /// is safe to snapshot — unlike *steal* counts, which depend on the
    /// OS schedule and are therefore reported per-call via [`StealStats`]
    /// and never registered.
    chunks: Arc<Counter>,
    queue_wait_s: Arc<Histogram>,
    run_s: Arc<Histogram>,
}

impl PoolMetrics {
    fn new() -> Self {
        let reg = hemocloud_obs::global();
        Self {
            jobs: reg.counter("pool.jobs"),
            runs: reg.counter("pool.runs"),
            panics: reg.counter("pool.panics"),
            spawned: reg.counter("pool.spawned_threads"),
            chunks: reg.counter("pool.chunks"),
            queue_wait_s: reg.histogram(
                "pool.queue_wait_seconds",
                HistogramKind::WallTime,
                &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0],
            ),
            run_s: reg.histogram(
                "pool.run_seconds",
                HistogramKind::WallTime,
                &[1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0],
            ),
        }
    }
}

struct State {
    /// Current job's task, present only while a job is in flight.
    task: Option<RawTask>,
    /// Number of runs (logical workers) in the current job.
    n_runs: usize,
    /// Next unclaimed run index.
    next_run: usize,
    /// Runs claimed but not yet completed, plus runs not yet claimed.
    pending: usize,
    /// First panic payload raised by any run of the current job.
    panic: Option<Box<dyn std::any::Any + Send + 'static>>,
    /// When the current job was published — queue-wait samples measure
    /// claim time against this.
    epoch: Option<Instant>,
    /// Set by `Drop` to retire the workers.
    shutdown: bool,
}

/// Lock a mutex, stripping poison: a panicking job unwinds through the
/// caller while guards are held, but the protocol only unwinds *after*
/// the job has fully drained and the slot was cleared, so the protected
/// state is always consistent.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn wait<'a, T>(
    condvar: &Condvar,
    guard: std::sync::MutexGuard<'a, T>,
) -> std::sync::MutexGuard<'a, T> {
    condvar
        .wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here waiting for a job with unclaimed runs.
    work: Condvar,
    /// The caller parks here waiting for the last run to complete.
    done: Condvar,
    metrics: PoolMetrics,
}

/// Execute one claimed run with its timing + panic instrumentation:
/// records the queue wait (publish → claim) and run time, bumps the
/// panic counter on unwind, and returns the caught result.
fn timed_run(
    shared: &Shared,
    epoch: Option<Instant>,
    task: impl FnOnce(),
) -> Result<(), Box<dyn std::any::Any + Send + 'static>> {
    let claimed = Instant::now();
    if let Some(epoch) = epoch {
        shared
            .metrics
            .queue_wait_s
            .record(claimed.duration_since(epoch).as_secs_f64());
    }
    let result = catch_unwind(AssertUnwindSafe(task));
    shared.metrics.run_s.record(claimed.elapsed().as_secs_f64());
    if result.is_err() {
        shared.metrics.panics.inc();
    }
    result
}

/// A persistent pool of parked worker threads executing chunked
/// data-parallel jobs with serial-identical results. See the module docs
/// for the execution model and determinism argument.
pub struct Pool {
    shared: Arc<Shared>,
    /// Serializes job submission: the pool runs one job at a time.
    submit: Mutex<()>,
    /// Logical width: default worker count for jobs (background threads
    /// plus the participating caller).
    threads: usize,
    /// Background OS threads actually spawned (== `threads - 1`).
    spawned: usize,
    jobs: AtomicU64,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Create a pool of logical width `threads` (≥ 1): `threads - 1`
    /// parked background workers plus the submitting caller. A width-1
    /// pool spawns nothing and runs every job inline.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "pool width must be positive");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                task: None,
                n_runs: 0,
                next_run: 0,
                pending: 0,
                panic: None,
                epoch: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            metrics: PoolMetrics::new(),
        });
        let spawned = threads - 1;
        shared.metrics.spawned.add(spawned as u64);
        let handles = (0..spawned)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hemocloud-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self {
            shared,
            submit: Mutex::new(()),
            threads,
            spawned,
            jobs: AtomicU64::new(0),
            handles,
        }
    }

    /// Logical width of the pool (background workers + caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Background OS threads this pool has spawned over its entire
    /// lifetime. Constant after construction: the whole point of the pool
    /// is that running more jobs never spawns more threads.
    pub fn spawned_threads(&self) -> usize {
        self.spawned
    }

    /// Total jobs executed so far (parallel and inline).
    pub fn jobs_run(&self) -> u64 {
        self.jobs.load(Ordering::Relaxed)
    }

    /// Execute `task(run)` for every `run in 0..n_runs`, distributing runs
    /// over the pool's workers and the calling thread. Blocks until every
    /// run has completed. Panics in `task` propagate to the caller after
    /// the job drains; the pool stays usable.
    ///
    /// Not reentrant: `task` must not submit to the same pool.
    pub fn run(&self, n_runs: usize, task: &(dyn Fn(usize) + Sync)) {
        if n_runs == 0 {
            return;
        }
        self.jobs.fetch_add(1, Ordering::Relaxed);
        self.shared.metrics.jobs.inc();
        self.shared.metrics.runs.add(n_runs as u64);
        if n_runs == 1 || self.spawned == 0 {
            // Nothing to hand out (or nobody to hand it to): run inline.
            // No queue-wait sample — inline runs are never queued.
            for run in 0..n_runs {
                if let Err(payload) = timed_run(&self.shared, None, || task(run)) {
                    resume_unwind(payload);
                }
            }
            return;
        }

        let _submission = lock(&self.submit);
        // Erase the borrow's lifetime so the task can sit in the shared
        // slot; sound because this call does not return (and the slot is
        // cleared) until `pending == 0`.
        let raw: RawTask = {
            let ptr = task as *const (dyn Fn(usize) + Sync);
            RawTask(unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(ptr)
            })
        };
        {
            let mut g = lock(&self.shared.state);
            debug_assert!(g.task.is_none(), "pool job slot already occupied");
            g.task = Some(raw);
            g.n_runs = n_runs;
            g.next_run = 0;
            g.pending = n_runs;
            g.panic = None;
            g.epoch = Some(Instant::now());
        }
        self.shared.work.notify_all();

        // The caller is a worker too: claim runs until none are left,
        // then wait for stragglers.
        let mut g = lock(&self.shared.state);
        loop {
            if g.next_run < g.n_runs {
                let run = g.next_run;
                g.next_run += 1;
                let epoch = g.epoch;
                drop(g);
                let result = timed_run(&self.shared, epoch, || task(run));
                g = lock(&self.shared.state);
                if let Err(payload) = result {
                    if g.panic.is_none() {
                        g.panic = Some(payload);
                    }
                }
                g.pending -= 1;
            } else if g.pending > 0 {
                g = wait(&self.shared.done, g);
            } else {
                g.task = None;
                let panic = g.panic.take();
                drop(g);
                if let Some(payload) = panic {
                    resume_unwind(payload);
                }
                return;
            }
        }
    }

    /// Apply `f(chunk_index, chunk)` to every `chunk_size`-sized chunk of
    /// `data` (the last chunk may be shorter), using the pool's full
    /// logical width. Same guarantees as [`crate::par::par_chunks_mut`]:
    /// exact serial chunk enumeration, bit-identical results, panics
    /// propagate.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk_size: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        self.par_chunks_mut_workers(data, chunk_size, self.threads, f);
    }

    /// [`Pool::par_chunks_mut`] with an explicit logical worker count
    /// (≥ 1). The chunk-run partition is a pure function of
    /// `(data.len(), chunk_size, workers)` — see [`balanced_runs`] — so
    /// the schedule is reproducible on any host.
    pub fn par_chunks_mut_workers<T, F>(
        &self,
        data: &mut [T],
        chunk_size: usize,
        workers: usize,
        f: F,
    ) where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        assert!(workers > 0, "thread count must be positive");
        if data.is_empty() {
            return;
        }
        let n_chunks = data.len().div_ceil(chunk_size);
        let workers = workers.min(n_chunks);
        if workers <= 1 {
            for (i, chunk) in data.chunks_mut(chunk_size).enumerate() {
                f(i, chunk);
            }
            return;
        }

        let len = data.len();
        let ptr = SendPtr(data.as_mut_ptr());
        let task = move |w: usize| {
            // Rebind the wrapper so the closure captures `SendPtr` itself
            // (edition-2021 precise capture would otherwise grab the raw
            // `ptr.0` field, which is not `Sync`).
            let ptr = ptr;
            let (first_chunk, n_chunks_here) = balanced_runs(n_chunks, workers, w);
            let start = first_chunk * chunk_size;
            let end = ((first_chunk + n_chunks_here) * chunk_size).min(len);
            // Safety: runs tile `0..n_chunks` disjointly (balanced_runs),
            // so element ranges of different workers never overlap, and
            // `run()` keeps `data`'s borrow alive until every worker is
            // done.
            let run = unsafe { std::slice::from_raw_parts_mut(ptr.0.add(start), end - start) };
            for (i, chunk) in run.chunks_mut(chunk_size).enumerate() {
                f(first_chunk + i, chunk);
            }
        };
        self.run(workers, &task);
    }

    /// Owner-computes parallel-for over `n_items` logical items backed by
    /// one shared slice: item `i`'s computation may read and write
    /// arbitrary slots of `data`, provided the slot sets of distinct items
    /// are pairwise disjoint. Each logical worker receives a contiguous,
    /// ascending item range ([`balanced_runs`] over the pool's full width)
    /// plus a [`DisjointMut`] view of all of `data`.
    ///
    /// This is the scatter-capable sibling of [`Pool::par_chunks_mut`]:
    /// chunked jobs require each worker's *element* range to be
    /// contiguous, which AA in-place streaming (writes into neighbor rows)
    /// and SoA layouts (one item strided across the array) cannot satisfy.
    ///
    /// Guarantees, inherited from [`Pool::run`]:
    /// * **bit-identical to serial** — for an `f` that visits its items in
    ///   ascending order and computes each item purely from the pre-job
    ///   state and the item's own slots, any worker count produces exactly
    ///   the serial result, because the run partition is a pure function
    ///   of `(n_items, workers)` and no item's slots are touched by two
    ///   workers;
    /// * **panic propagation** — a panic in any run drains the job, then
    ///   re-raises on the caller; the pool stays usable.
    ///
    /// # Contract
    /// `f(items, view)` must only access slots belonging to items in
    /// `items`. The per-item slot sets must be pairwise disjoint across
    /// *all* items. Violations are data races (undefined behavior), which
    /// is why [`DisjointMut`]'s accessors are `unsafe`.
    pub fn par_owner_mut<T, F>(&self, data: &mut [T], n_items: usize, f: F)
    where
        T: Copy + Send,
        F: Fn(std::ops::Range<usize>, &DisjointMut<'_, T>) + Sync,
    {
        self.par_owner_mut_workers(data, n_items, self.threads, f);
    }

    /// [`Pool::par_owner_mut`] with an explicit logical worker count
    /// (≥ 1). A single worker runs inline on the caller without
    /// submitting a job — the serial reference path tests compare
    /// against.
    pub fn par_owner_mut_workers<T, F>(
        &self,
        data: &mut [T],
        n_items: usize,
        workers: usize,
        f: F,
    ) where
        T: Copy + Send,
        F: Fn(std::ops::Range<usize>, &DisjointMut<'_, T>) + Sync,
    {
        assert!(workers > 0, "worker count must be positive");
        if n_items == 0 {
            return;
        }
        let workers = workers.min(n_items);
        let view = DisjointMut::new(data);
        if workers <= 1 {
            f(0..n_items, &view);
            return;
        }
        let task = move |w: usize| {
            let (first, count) = balanced_runs(n_items, workers, w);
            f(first..first + count, &view);
        };
        self.run(workers, &task);
    }

    /// Owner-computes parallel-for with **chunk-granular work stealing**:
    /// the item range is cut into `chunk_items`-sized chunks, each logical
    /// worker starts with its [`balanced_runs`] interval of chunks, and a
    /// worker whose interval drains steals the upper half of another
    /// worker's remaining interval instead of idling. This is what keeps
    /// irregular per-item costs (sparse-mesh bulk/inlet/outlet loops) from
    /// round-robin-idling workers.
    ///
    /// **Determinism.** Results are bit-identical to the serial loop at
    /// any worker count, on any schedule, because the schedule only decides
    /// *which worker* executes a chunk, never *what* a chunk computes:
    /// chunks are disjoint contiguous item ranges, each visited internally
    /// in ascending serial order, and `f` must compute every item purely
    /// from pre-job state and the item's own (pairwise-disjoint) slots —
    /// the same contract as [`Pool::par_owner_mut`]. Under that contract
    /// every execution order of the chunks stores the same bits.
    ///
    /// **Serial bypass.** With `workers <= 1` (e.g. `RT_POOL_THREADS=1`)
    /// or a single chunk, the call degenerates to a plain ascending chunk
    /// loop on the caller: no job submission, no atomics, zero steals —
    /// the provably-serial reference order.
    ///
    /// Returns [`StealStats`]; the chunk count also lands on the
    /// deterministic `pool.chunks` counter, while steal counts are
    /// schedule-dependent and deliberately kept out of the registry.
    pub fn par_owner_mut_stealing_workers<T, F>(
        &self,
        data: &mut [T],
        n_items: usize,
        chunk_items: usize,
        workers: usize,
        f: F,
    ) -> StealStats
    where
        T: Copy + Send,
        F: Fn(std::ops::Range<usize>, &DisjointMut<'_, T>) + Sync,
    {
        assert!(chunk_items > 0, "chunk_items must be positive");
        assert!(workers > 0, "worker count must be positive");
        if n_items == 0 {
            return StealStats { chunks: 0, steals: 0 };
        }
        let n_chunks = n_items.div_ceil(chunk_items);
        assert!(
            n_chunks <= u32::MAX as usize,
            "chunk count must fit the packed u32 deque representation"
        );
        let workers = workers.min(n_chunks);
        self.shared.metrics.chunks.add(n_chunks as u64);
        let view = DisjointMut::new(data);
        let run_chunk = |c: usize, view: &DisjointMut<'_, T>| {
            let start = c * chunk_items;
            let end = (start + chunk_items).min(n_items);
            f(start..end, view);
        };
        if workers <= 1 {
            for c in 0..n_chunks {
                run_chunk(c, &view);
            }
            return StealStats {
                chunks: n_chunks as u64,
                steals: 0,
            };
        }

        // One packed interval slot per logical worker: bits 63..32 hold the
        // first unexecuted chunk, bits 31..0 one past the last. The slot is
        // empty when start >= end. Invariants that make every chunk run
        // exactly once:
        //  * at all times the live intervals are pairwise disjoint and,
        //    together with chunks already popped, tile `0..n_chunks`;
        //  * only the *owner* pops the front (CAS `(s,e) -> (s+1,e)`);
        //  * a thief removes the upper half (CAS `(s,e) -> (s,mid)`) and
        //    the interval `[mid,e)` travels to the thief's own — empty —
        //    slot via a plain store (nobody else ever writes a slot whose
        //    owner has drained it, and thieves skip empty slots);
        //  * no ABA: a successful CAS on the full packed value is always a
        //    valid split, because a drained chunk index can never re-enter
        //    any interval (intervals only ever shrink or move whole).
        // A worker retires when its own slot is empty and a full scan of
        // the others finds nothing to steal; slots of retired workers stay
        // empty forever, so no chunk is orphaned.
        let slots: Vec<AtomicU64> = (0..workers)
            .map(|w| {
                let (first, count) = balanced_runs(n_chunks, workers, w);
                AtomicU64::new(pack_interval(first as u32, (first + count) as u32))
            })
            .collect();
        let steals = AtomicU64::new(0);
        let task = |w: usize| {
            'work: loop {
                // Pop the front of our own interval.
                let mut cur = slots[w].load(Ordering::Acquire);
                loop {
                    let (s, e) = unpack_interval(cur);
                    if s >= e {
                        break;
                    }
                    match slots[w].compare_exchange_weak(
                        cur,
                        pack_interval(s + 1, e),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => {
                            run_chunk(s as usize, &view);
                            continue 'work;
                        }
                        Err(actual) => cur = actual,
                    }
                }
                // Own interval drained: scan the other slots for work.
                for off in 1..workers {
                    let v = (w + off) % workers;
                    let mut cur = slots[v].load(Ordering::Acquire);
                    loop {
                        let (s, e) = unpack_interval(cur);
                        if s >= e {
                            break;
                        }
                        // Upper half; a lone remaining chunk moves whole.
                        let mid = s + (e - s) / 2;
                        match slots[v].compare_exchange_weak(
                            cur,
                            pack_interval(s, mid),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        ) {
                            Ok(_) => {
                                slots[w].store(pack_interval(mid, e), Ordering::Release);
                                steals.fetch_add(1, Ordering::Relaxed);
                                continue 'work;
                            }
                            Err(actual) => cur = actual,
                        }
                    }
                }
                // Nothing owned, nothing stealable: retire.
                return;
            }
        };
        self.run(workers, &task);
        StealStats {
            chunks: n_chunks as u64,
            steals: steals.load(Ordering::Relaxed),
        }
    }
}

/// Per-call report from [`Pool::par_owner_mut_stealing_workers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealStats {
    /// Chunks the item range was cut into (pure function of the inputs,
    /// hence deterministic).
    pub chunks: u64,
    /// Successful steals. Schedule-dependent — zero on the serial bypass,
    /// nondeterministic under real concurrency, which is why this lives in
    /// the return value and not the metrics registry.
    pub steals: u64,
}

#[inline(always)]
fn pack_interval(start: u32, end: u32) -> u64 {
    (u64::from(start) << 32) | u64::from(end)
}

#[inline(always)]
fn unpack_interval(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut g = lock(&self.shared.state);
            g.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut g = lock(&shared.state);
    loop {
        if g.shutdown {
            return;
        }
        if g.task.is_some() && g.next_run < g.n_runs {
            let run = g.next_run;
            g.next_run += 1;
            let task = g.task.as_ref().unwrap().0;
            let epoch = g.epoch;
            drop(g);
            // Safety: the submitting caller blocks until `pending == 0`,
            // so the pointee outlives this call.
            let result = timed_run(shared, epoch, || unsafe { (*task)(run) });
            g = lock(&shared.state);
            if let Err(payload) = result {
                if g.panic.is_none() {
                    g.panic = Some(payload);
                }
            }
            g.pending -= 1;
            if g.pending == 0 {
                shared.done.notify_all();
            }
        } else {
            g = wait(&shared.work, g);
        }
    }
}

/// The balanced partition of `n_chunks` chunks over `workers` runs:
/// returns `(first_chunk, n_chunks)` of run `w`. The first
/// `n_chunks % workers` runs get one extra chunk, so every run is
/// non-empty whenever `n_chunks >= workers` — the ceil-based split the
/// scoped implementation used could leave trailing workers idle (5 chunks
/// on 4 threads gave runs of 2+2+1+0).
///
/// Total on every input: `n_chunks == 0` or `workers == 0` yields the
/// empty run `(0, 0)` (`workers == 0` used to divide by zero), and when
/// `n_chunks < workers` the first `n_chunks` runs get one chunk each
/// while the rest get `(n_chunks, 0)` — the runs still tile
/// `0..n_chunks` exactly.
pub fn balanced_runs(n_chunks: usize, workers: usize, w: usize) -> (usize, usize) {
    if n_chunks == 0 || workers == 0 {
        return (0, 0);
    }
    debug_assert!(w < workers);
    let base = n_chunks / workers;
    let extra = n_chunks % workers;
    let first = w * base + w.min(extra);
    let count = base + usize::from(w < extra);
    (first, count)
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// The process-wide shared pool, lazily initialized at the host's
/// available parallelism on first use. All hot-path callers
/// (`Solver::step`, `RankedSolver::step`, the STREAM microbenchmark, the
/// [`crate::par`] compatibility wrappers) share it, so an entire run
/// spawns at most `max_threads() - 1` OS threads total.
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| Pool::new(crate::par::max_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_runs_tile_exactly_and_feed_every_worker() {
        for n_chunks in 1..40usize {
            for workers in 1..=n_chunks {
                let mut next = 0usize;
                for w in 0..workers {
                    let (first, count) = balanced_runs(n_chunks, workers, w);
                    assert_eq!(first, next, "gap at worker {w} ({n_chunks}/{workers})");
                    assert!(count >= 1, "worker {w} idle with {n_chunks} chunks on {workers}");
                    next = first + count;
                }
                assert_eq!(next, n_chunks, "partition does not tile {n_chunks}/{workers}");
            }
        }
    }

    #[test]
    fn balanced_runs_edge_cases_are_total_and_still_tile() {
        // workers == 0 used to divide by zero; n_chunks == 0 must hand
        // out nothing; both degenerate to the empty run.
        for w in 0..4 {
            assert_eq!(balanced_runs(0, 0, w), (0, 0));
            assert_eq!(balanced_runs(7, 0, w), (0, 0));
            assert_eq!(balanced_runs(0, 4, w), (0, 0));
        }
        // n_chunks < workers: the first n_chunks runs get one chunk
        // each, the rest are empty, and the non-empty runs tile
        // 0..n_chunks in order with no gaps or overlaps.
        for n_chunks in 0..12usize {
            for workers in n_chunks + 1..24 {
                let mut next = 0usize;
                for w in 0..workers {
                    let (first, count) = balanced_runs(n_chunks, workers, w);
                    assert!(count <= 1, "{n_chunks}/{workers} gave run {w} count {count}");
                    if count == 1 {
                        assert_eq!(first, next, "gap at worker {w} ({n_chunks}/{workers})");
                        next = first + count;
                    }
                }
                assert_eq!(next, n_chunks, "partition does not tile {n_chunks}/{workers}");
            }
        }
    }

    #[test]
    fn five_chunks_on_four_workers_feeds_all_four() {
        // The regression the scoped implementation had: ceil(5/4) = 2 gave
        // runs of 2+2+1+0.
        let runs: Vec<_> = (0..4).map(|w| balanced_runs(5, 4, w)).collect();
        assert_eq!(runs, vec![(0, 2), (2, 1), (3, 1), (4, 1)]);
    }

    #[test]
    fn pool_width_one_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.spawned_threads(), 0);
        let mut data = vec![0u64; 17];
        pool.par_chunks_mut(&mut data, 4, |i, c| c.iter_mut().for_each(|v| *v = i as u64));
        for (i, c) in data.chunks(4).enumerate() {
            assert!(c.iter().all(|&v| v == i as u64));
        }
        // The single-worker fast path runs serially without submitting a
        // job at all.
        assert_eq!(pool.jobs_run(), 0);
    }

    #[test]
    fn results_match_serial_for_many_worker_counts() {
        let n = 4096;
        let src: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let work = |i: usize, c: &mut [f64]| {
            for (j, v) in c.iter_mut().enumerate() {
                let k = i * 11 + j;
                *v = src[k % n] * 0.75 + (k as f64).sqrt();
            }
        };
        let mut serial = vec![0.0f64; n];
        for (i, c) in serial.chunks_mut(11).enumerate() {
            work(i, c);
        }
        let pool = Pool::new(3);
        for workers in [1usize, 2, 3, 8, 64] {
            let mut parallel = vec![0.0f64; n];
            pool.par_chunks_mut_workers(&mut parallel, 11, workers, work);
            assert_eq!(serial, parallel, "diverged at {workers} logical workers");
        }
    }

    #[test]
    fn run_invokes_every_index_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let pool = Pool::new(4);
        let counts: Vec<AtomicU32> = (0..23).map(|_| AtomicU32::new(0)).collect();
        pool.run(23, &|run| {
            counts[run].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "run {i}");
        }
    }

    /// A strided "SoA transpose" through the owner-computes API: item `i`
    /// owns slots `{i, i + n, i + 2n}` — interleaved across workers, so no
    /// contiguous chunk partition exists, yet the per-item sets are
    /// disjoint.
    fn strided_fill(view: &DisjointMut<'_, f64>, items: std::ops::Range<usize>, n: usize) {
        for i in items {
            for lane in 0..3 {
                let prev = unsafe { view.read(lane * n + i) };
                unsafe { view.write(lane * n + i, prev + (i * 7 + lane) as f64) };
            }
        }
    }

    #[test]
    fn owner_mut_matches_serial_for_many_worker_counts() {
        let n = 1000;
        let mut serial = vec![0.5f64; 3 * n];
        {
            let view = DisjointMut::new(&mut serial);
            strided_fill(&view, 0..n, n);
        }
        let pool = Pool::new(3);
        for workers in [1usize, 2, 3, 8, 64] {
            let mut parallel = vec![0.5f64; 3 * n];
            pool.par_owner_mut_workers(&mut parallel, n, workers, |items, view| {
                strided_fill(view, items, n)
            });
            assert_eq!(serial, parallel, "diverged at {workers} logical workers");
        }
    }

    #[test]
    fn owner_mut_scattered_disjoint_writes_cover_every_item_once() {
        // Item i writes slot (i * 17) % n — a permutation of 0..n for n
        // coprime with 17, i.e. scattered-but-disjoint like the AA odd
        // step's neighbor writes.
        let n = 1021; // prime
        let pool = Pool::new(4);
        let mut data = vec![0u64; n];
        pool.par_owner_mut(&mut data, n, |items, view| {
            for i in items {
                unsafe { view.write(i * 17 % n, i as u64 + 1) };
            }
        });
        let mut seen = vec![false; n];
        for (slot, &v) in data.iter().enumerate() {
            assert!(v > 0, "slot {slot} never written");
            let i = (v - 1) as usize;
            assert_eq!(i * 17 % n, slot);
            assert!(!seen[i], "item {i} wrote twice");
            seen[i] = true;
        }
    }

    #[test]
    fn owner_mut_empty_and_single_item_run_inline() {
        let pool = Pool::new(2);
        let jobs_before = pool.jobs_run();
        let mut data = vec![0u8; 4];
        pool.par_owner_mut(&mut data, 0, |_, _| panic!("no items, no calls"));
        pool.par_owner_mut(&mut data, 1, |items, view| {
            assert_eq!(items, 0..1);
            for i in 0..view.len() {
                unsafe { view.write(i, 9) };
            }
        });
        assert_eq!(data, vec![9u8; 4]);
        assert_eq!(pool.jobs_run(), jobs_before, "inline paths must not submit jobs");
    }

    #[test]
    fn global_pool_is_shared_and_sized_to_the_host() {
        let p = global();
        assert_eq!(p.threads(), crate::par::max_threads());
        assert!(std::ptr::eq(p, global()));
    }

    #[test]
    fn stealing_matches_serial_for_many_worker_counts() {
        let n = 1000;
        let mut serial = vec![0.5f64; 3 * n];
        {
            let view = DisjointMut::new(&mut serial);
            strided_fill(&view, 0..n, n);
        }
        let pool = Pool::new(3);
        for workers in [1usize, 2, 3, 8, 64] {
            for chunk_items in [1usize, 7, 64, 333, 1000, 5000] {
                let mut parallel = vec![0.5f64; 3 * n];
                let stats = pool.par_owner_mut_stealing_workers(
                    &mut parallel,
                    n,
                    chunk_items,
                    workers,
                    |items, view| strided_fill(view, items, n),
                );
                assert_eq!(
                    serial, parallel,
                    "diverged at {workers} workers, chunk {chunk_items}"
                );
                assert_eq!(stats.chunks, n.div_ceil(chunk_items) as u64);
            }
        }
    }

    #[test]
    fn stealing_single_worker_is_a_pure_serial_bypass() {
        // The RT_POOL_THREADS=1 guarantee: one logical worker must visit
        // the chunks in ascending contiguous order on the caller thread,
        // with no job submission and no steals.
        let pool = Pool::new(4);
        let jobs_before = pool.jobs_run();
        let mut data = vec![0u32; 103];
        let order = Mutex::new(Vec::new());
        let stats = pool.par_owner_mut_stealing_workers(&mut data, 103, 10, 1, |items, view| {
            order.lock().unwrap().push(items.clone());
            for i in items {
                unsafe { view.write(i, i as u32 + 1) };
            }
        });
        assert_eq!(stats, StealStats { chunks: 11, steals: 0 });
        assert_eq!(pool.jobs_run(), jobs_before, "serial bypass must not submit a job");
        let order = order.into_inner().unwrap();
        assert_eq!(order.len(), 11);
        let mut next = 0usize;
        for (c, items) in order.iter().enumerate() {
            assert_eq!(items.start, next, "chunk {c} out of serial order");
            assert_eq!(items.len(), if c < 10 { 10 } else { 3 });
            next = items.end;
        }
        assert_eq!(next, 103);
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
    }

    #[test]
    fn stealing_chunk_larger_than_slice_degenerates_to_one_serial_chunk() {
        // chunk_items > n_items: one chunk, workers clamp to 1, and the
        // whole range arrives as a single serial call.
        let pool = Pool::new(3);
        let mut data = vec![0u8; 5];
        let calls = Mutex::new(Vec::new());
        let stats = pool.par_owner_mut_stealing_workers(&mut data, 5, 1000, 8, |items, view| {
            calls.lock().unwrap().push(items.clone());
            for i in items {
                unsafe { view.write(i, 7) };
            }
        });
        assert_eq!(stats, StealStats { chunks: 1, steals: 0 });
        assert_eq!(calls.into_inner().unwrap(), vec![0..5]);
        assert_eq!(data, vec![7u8; 5]);
    }

    #[test]
    fn stealing_zero_remainder_and_empty_inputs_partition_exactly() {
        let pool = Pool::new(3);
        // n_items divisible by chunk_items: every chunk is full-size.
        let n = 96usize;
        let mut data = vec![0u32; n];
        let sizes = Mutex::new(Vec::new());
        let stats = pool.par_owner_mut_stealing_workers(&mut data, n, 8, 4, |items, view| {
            sizes.lock().unwrap().push(items.len());
            for i in items {
                unsafe { view.write(i, 1) };
            }
        });
        assert_eq!(stats.chunks, 12);
        let sizes = sizes.into_inner().unwrap();
        assert_eq!(sizes.len(), 12);
        assert!(sizes.iter().all(|&s| s == 8), "zero-remainder chunks must all be full");
        assert!(data.iter().all(|&v| v == 1), "some item never visited");
        // Empty input: no chunks, no calls.
        let mut empty: Vec<u32> = Vec::new();
        let stats = pool.par_owner_mut_stealing_workers(&mut empty, 0, 8, 4, |_, _| {
            panic!("no items, no calls")
        });
        assert_eq!(stats, StealStats { chunks: 0, steals: 0 });
    }

    #[test]
    fn stealing_runs_every_chunk_exactly_once_under_contention() {
        // Scattered-but-disjoint writes (as in the AA odd step) with many
        // more chunks than workers, on a pool with real background
        // threads: every slot must be written exactly once no matter how
        // the intervals get split and re-split.
        let n = 1021; // prime, so i * 17 % n is a permutation
        let pool = Pool::new(4);
        for trial in 0..8 {
            let mut data = vec![0u64; n];
            let stats =
                pool.par_owner_mut_stealing_workers(&mut data, n, 3, 8, |items, view| {
                    for i in items {
                        unsafe { view.write(i * 17 % n, i as u64 + 1) };
                    }
                });
            assert_eq!(stats.chunks, n.div_ceil(3) as u64);
            let mut seen = vec![false; n];
            for (slot, &v) in data.iter().enumerate() {
                assert!(v > 0, "trial {trial}: slot {slot} never written");
                let i = (v - 1) as usize;
                assert_eq!(i * 17 % n, slot, "trial {trial}");
                assert!(!seen[i], "trial {trial}: item {i} executed twice");
                seen[i] = true;
            }
        }
    }

    #[test]
    fn interval_packing_roundtrips() {
        for &(s, e) in &[(0u32, 0u32), (0, 1), (3, 17), (u32::MAX - 1, u32::MAX)] {
            assert_eq!(unpack_interval(pack_interval(s, e)), (s, e));
        }
    }
}

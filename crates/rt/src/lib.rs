//! # hemocloud-rt
//!
//! Zero-dependency runtime support for the hemocloud workspace. The
//! reproduction must build and test hermetically — offline, from a clean
//! checkout, with nothing but a Rust toolchain — because the paper's
//! performance model (Eqs. 6-16) is only trustworthy if its benchmark and
//! test harness is deterministic and reproducible on any machine. This
//! crate replaces the four external crates the seed pulled from crates.io:
//!
//! * [`rng`] — a seedable SplitMix64/xoshiro256++ PRNG with uniform
//!   ranges and a Box-Muller `gaussian()` (replaces `rand`).
//! * [`pool`] — a persistent worker pool (parked threads, condvar
//!   wakeup, panic propagation) so the LBM hot path amortizes thread
//!   spawns over an entire run instead of paying them every step.
//! * [`par`] — the chunked parallel-for API, preserved as thin wrappers
//!   over the shared [`pool`]; keeps the race-free
//!   destination-partitioned LBM update (replaces `rayon`).
//! * [`check`] — a minimal property-testing harness with seeded case
//!   generation and failing-seed replay (replaces `proptest`).
//! * [`mod@bench`] — a tiny timing harness with warmup, sampling and
//!   median/min/throughput reporting (replaces `criterion`).
//! * [`float`] — explicit absolute/ULP float-comparison helpers so test
//!   pins state their tolerance model instead of ad-hoc `1e-15` literals.
//! * [`simd`] — a portable explicit-SIMD lane layer (AVX2 register lanes
//!   with a plain-array fallback, selected once per process) whose
//!   elementwise ops are bit-identical to scalar arithmetic per lane.

pub mod bench;
pub mod check;
pub mod float;
pub mod par;
pub mod pool;
pub mod rng;
pub mod simd;

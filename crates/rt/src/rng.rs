//! Seedable pseudo-random numbers without external crates.
//!
//! [`Rng`] is xoshiro256++ (Blackman & Vigna), seeded from a single `u64`
//! via SplitMix64 — the combination the xoshiro authors recommend. It is
//! deterministic across platforms and runs: the same seed always yields
//! the same stream, which is what the simulated-platform noise model and
//! the property-test harness both rely on.

/// SplitMix64: a tiny, statistically solid generator used to expand one
/// `u64` seed into the 256-bit xoshiro state (and to derive per-case
/// seeds in [`crate::check`]).
#[derive(Debug, Clone, Copy)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start the sequence at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++: the workspace's general-purpose PRNG.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed deterministically from a single `u64` (SplitMix64 expansion).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with full 53-bit mantissa resolution.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `bool`.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform `u64` in `[lo, hi)`, unbiased (Lemire's method with
    /// rejection).
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Widening multiply maps a u64 onto [0, span); reject the small
        // biased fringe so every value is exactly equally likely.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                low = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Standard normal via Box-Muller.
    pub fn gaussian(&mut self) -> f64 {
        loop {
            let u1 = self.next_f64();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let u2 = self.next_f64();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }

    /// Derive an independent child generator (for splitting one seed into
    /// per-task streams without correlated output).
    pub fn split(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "{same} collisions in 64 draws");
    }

    #[test]
    fn cross_run_determinism_pinned_values() {
        // Pin the first outputs of the reference seed: any change to the
        // seeding or update rule breaks noise-model and property-test
        // reproducibility across the whole workspace.
        let mut r = Rng::new(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330
            ]
        );
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn range_u64_covers_and_respects_bounds() {
        let mut r = Rng::new(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.range_u64(5, 15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some values never drawn: {seen:?}");
    }

    #[test]
    fn gaussian_mean_and_variance_at_fixed_seed() {
        // Statistical sanity: sample mean ≈ 0 and variance ≈ 1. The seed
        // is fixed, so this is deterministic, not flaky.
        let mut r = Rng::new(20_000);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn gaussian_tail_mass_is_plausible() {
        // ~4.55% of mass lies beyond |x| > 2 for a standard normal.
        let mut r = Rng::new(33);
        let n = 50_000;
        let beyond = (0..n).filter(|_| r.gaussian().abs() > 2.0).count();
        let frac = beyond as f64 / n as f64;
        assert!((0.03..0.06).contains(&frac), "tail fraction {frac}");
    }

    #[test]
    fn split_streams_are_uncorrelated() {
        let mut parent = Rng::new(9);
        let mut a = parent.split();
        let mut b = parent.split();
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }
}

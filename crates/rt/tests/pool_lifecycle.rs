//! Lifecycle tests of the persistent worker pool: serial equivalence
//! across worker counts, reuse without respawning, and panic recovery.

use hemocloud_rt::pool::{self, Pool};

fn reference_work(i: usize, c: &mut [f64]) {
    for (j, v) in c.iter_mut().enumerate() {
        let k = (i * 13 + j) as f64;
        *v = (k * 0.01).sin() * 2.5 + k.sqrt();
    }
}

#[test]
fn results_bit_identical_to_serial_across_worker_counts() {
    let n = 10_000;
    let chunk = 23;
    let mut serial = vec![0.0f64; n];
    for (i, c) in serial.chunks_mut(chunk).enumerate() {
        reference_work(i, c);
    }
    let pool = Pool::new(4);
    for workers in [1usize, 2, 3, 8] {
        let mut parallel = vec![0.0f64; n];
        pool.par_chunks_mut_workers(&mut parallel, chunk, workers, reference_work);
        assert_eq!(serial, parallel, "diverged at {workers} workers");
    }
}

#[test]
fn pool_is_reused_across_many_jobs_without_respawning() {
    let pool = Pool::new(3);
    let spawned_at_birth = pool.spawned_threads();
    assert_eq!(spawned_at_birth, 2);

    let mut data = vec![0u64; 1024];
    for _ in 0..120 {
        pool.par_chunks_mut(&mut data, 16, |_, c| {
            c.iter_mut().for_each(|v| *v += 1);
        });
    }
    assert!(data.iter().all(|&v| v == 120), "a job lost updates");
    assert_eq!(
        pool.spawned_threads(),
        spawned_at_birth,
        "pool respawned threads across jobs"
    );
    assert_eq!(pool.jobs_run(), 120);
}

#[test]
fn worker_panic_propagates_and_pool_survives() {
    let pool = Pool::new(4);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut data = vec![0u8; 64];
        pool.par_chunks_mut_workers(&mut data, 1, 8, |i, _| {
            if i == 63 {
                panic!("boom in run tail");
            }
        });
    }));
    assert!(result.is_err(), "panic did not propagate to the caller");

    // The pool must stay fully usable after the panic drained.
    let mut data = vec![1u32; 512];
    pool.par_chunks_mut(&mut data, 8, |_, c| {
        c.iter_mut().for_each(|v| *v *= 3);
    });
    assert!(data.iter().all(|&v| v == 3), "pool unusable after a panic");
    assert_eq!(
        pool.spawned_threads(),
        3,
        "panic recovery must not respawn workers"
    );
}

#[test]
fn owner_mut_panic_propagates_and_pool_survives() {
    let pool = Pool::new(4);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut data = vec![0u8; 64];
        pool.par_owner_mut_workers(&mut data, 64, 8, |items, _| {
            if items.contains(&63) {
                panic!("boom in owner tail");
            }
        });
    }));
    assert!(result.is_err(), "panic did not propagate to the caller");

    // The pool must stay fully usable for both job flavors afterwards.
    let mut data = vec![1u32; 512];
    pool.par_owner_mut(&mut data, 512, |items, view| {
        for i in items {
            let v = unsafe { view.read(i) };
            unsafe { view.write(i, v * 3) };
        }
    });
    assert!(data.iter().all(|&v| v == 3), "pool unusable after a panic");
    assert_eq!(pool.spawned_threads(), 3, "panic recovery must not respawn workers");
}

#[test]
fn owner_mut_is_bit_identical_across_worker_counts() {
    // The determinism contract the AA solver relies on: ascending item
    // order within runs + disjoint slot sets => serial-identical floats.
    let n = 5000;
    let stride_work = |items: std::ops::Range<usize>, view: &pool::DisjointMut<'_, f64>| {
        for i in items {
            // Item i owns slots {i, n + (i*31 % n)}: one dense, one
            // scattered lane (31 is coprime with 5000, so the scattered
            // lane is a permutation and the sets stay disjoint).
            let dense = (i as f64 * 0.37).sin();
            unsafe { view.write(i, dense) };
            unsafe { view.write(n + (i * 31 % n), dense * 0.5 + 1.0) };
        }
    };
    let mut serial = vec![0.0f64; 2 * n];
    {
        let view = pool::DisjointMut::new(&mut serial);
        stride_work(0..n, &view);
    }
    let p = Pool::new(4);
    for workers in [1usize, 2, 3, 8] {
        let mut parallel = vec![0.0f64; 2 * n];
        p.par_owner_mut_workers(&mut parallel, n, workers, stride_work);
        assert_eq!(serial, parallel, "diverged at {workers} workers");
    }
}

#[test]
fn global_pool_spawns_are_bounded_for_a_whole_run() {
    let pool = pool::global();
    let spawned = pool.spawned_threads();
    assert!(spawned < pool.threads(), "background workers exclude the caller");
    let mut data = vec![0.0f64; 4096];
    for _ in 0..150 {
        pool.par_chunks_mut(&mut data, 19, |i, c| {
            c.iter_mut().for_each(|v| *v += i as f64);
        });
    }
    assert_eq!(
        pool.spawned_threads(),
        spawned,
        "global pool spawned threads while running jobs"
    );
}

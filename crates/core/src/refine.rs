//! Iterative model refinement from observed runs.
//!
//! The paper: "Storing all measured performance along with the estimated
//! performance model prediction will be critical to iteratively refining
//! the performance models to correctly capture retrospective values as
//! well as predict future behavior with sufficient accuracy."
//!
//! [`ModelCalibrator`] is that store plus the simplest useful refinement:
//! a multiplicative efficiency factor fit by least squares through the
//! origin (measured time ≈ factor × predicted time). Because the
//! simulator's unmodeled overheads are *consistent* — the paper's own
//! observation — one scalar recovers most of the bias; the residual MAPE
//! quantifies what a richer model would have to explain.

use crate::composition::{Composition, Prediction};
use hemocloud_fitting::linear::ProportionalAccumulator;
use hemocloud_fitting::metrics::mape;

/// One observation: a model prediction and the measured outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Ranks the run used.
    pub ranks: usize,
    /// Predicted step time, seconds.
    pub predicted_step_s: f64,
    /// Measured step time, seconds.
    pub measured_step_s: f64,
}

/// A store of observations and the calibration fit over them.
///
/// The fit itself is **incremental**: every [`ModelCalibrator::record`]
/// folds the observation into running sums
/// ([`ProportionalAccumulator`]), so [`correction_factor`] is O(1) no
/// matter how many slices a campaign has recorded — and bitwise equal to
/// refitting the whole history, because the batch fit accumulates the
/// same sums in the same order. The observation *store* is a diagnostic
/// window: [`ModelCalibrator::bounded`] caps it (keeping the most recent
/// observations) so a million-slice campaign doesn't hold a million
/// `Observation`s; the fit always covers the full history regardless.
///
/// [`correction_factor`]: ModelCalibrator::correction_factor
#[derive(Debug, Clone)]
pub struct ModelCalibrator {
    observations: Vec<Observation>,
    /// Ring cursor into `observations` once the window is full.
    next_slot: usize,
    max_stored: usize,
    total: usize,
    fit: ProportionalAccumulator,
}

impl Default for ModelCalibrator {
    fn default() -> Self {
        Self {
            observations: Vec::new(),
            next_slot: 0,
            max_stored: usize::MAX,
            total: 0,
            fit: ProportionalAccumulator::new(),
        }
    }
}

impl ModelCalibrator {
    /// An empty calibrator retaining every observation.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty calibrator retaining at most `max_stored` observations
    /// (the most recent ones) for the diagnostic error metrics. The fit
    /// is exact over the *full* history either way.
    ///
    /// # Panics
    /// Panics on a zero window.
    pub fn bounded(max_stored: usize) -> Self {
        assert!(max_stored > 0, "zero-observation window");
        Self {
            max_stored,
            ..Self::default()
        }
    }

    /// Record an observation.
    ///
    /// # Panics
    /// Panics on non-positive times.
    pub fn record(&mut self, ranks: usize, predicted_step_s: f64, measured_step_s: f64) {
        assert!(
            predicted_step_s > 0.0 && measured_step_s > 0.0,
            "non-positive step time"
        );
        self.total += 1;
        self.fit.push(predicted_step_s, measured_step_s);
        let obs = Observation {
            ranks,
            predicted_step_s,
            measured_step_s,
        };
        if self.observations.len() < self.max_stored {
            self.observations.push(obs);
        } else {
            self.observations[self.next_slot] = obs;
            self.next_slot = (self.next_slot + 1) % self.max_stored;
        }
    }

    /// Number of observations **recorded** over the calibrator's lifetime
    /// (not the retained-window size — see [`ModelCalibrator::bounded`]).
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The retained observation window (all observations unless the
    /// calibrator is [`bounded`](ModelCalibrator::bounded); the ring
    /// order is oldest-slot-overwritten, not chronological).
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// The fitted efficiency factor `measured ≈ factor × predicted`,
    /// over the **full** recorded history in O(1). Returns 1 (identity)
    /// with no data or a degenerate fit.
    pub fn correction_factor(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.fit.slope().unwrap_or(1.0)
    }

    /// Apply the calibration to a raw predicted step time.
    pub fn corrected_step_s(&self, predicted_step_s: f64) -> f64 {
        predicted_step_s * self.correction_factor()
    }

    /// Apply the calibration to a whole model [`Prediction`] — the hook a
    /// scheduler uses so that *placement* decisions (dashboard entries,
    /// guards, deadlines) run on refined numbers, closing the paper's
    /// predict → run → refine loop.
    ///
    /// The calibration is one multiplicative efficiency factor, so every
    /// composition term scales uniformly and the breakdown's *shape* is
    /// preserved; throughput scales by the inverse. With no observations
    /// the prediction is returned unchanged.
    pub fn corrected_prediction(&self, prediction: &Prediction) -> Prediction {
        let k = self.correction_factor();
        let c = prediction.composition;
        Prediction {
            ranks: prediction.ranks,
            step_time_s: prediction.step_time_s * k,
            mflups: if k > 0.0 { prediction.mflups / k } else { 0.0 },
            composition: Composition {
                mem_s: c.mem_s * k,
                intra_s: c.intra_s * k,
                inter_s: c.inter_s * k,
                comm_bandwidth_s: c.comm_bandwidth_s * k,
                comm_latency_s: c.comm_latency_s * k,
                compute_s: c.compute_s * k,
            },
        }
    }

    /// MAPE (%) of the raw model over the **retained** observation
    /// window.
    pub fn raw_error_pct(&self) -> f64 {
        let pred: Vec<f64> = self.observations.iter().map(|o| o.predicted_step_s).collect();
        let meas: Vec<f64> = self.observations.iter().map(|o| o.measured_step_s).collect();
        mape(&pred, &meas)
    }

    /// MAPE (%) of the calibrated model over the **retained**
    /// observation window (the factor itself covers the full history).
    pub fn calibrated_error_pct(&self) -> f64 {
        let k = self.correction_factor();
        let pred: Vec<f64> = self
            .observations
            .iter()
            .map(|o| o.predicted_step_s * k)
            .collect();
        let meas: Vec<f64> = self.observations.iter().map(|o| o.measured_step_s).collect();
        mape(&pred, &meas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_calibrator_is_identity() {
        let c = ModelCalibrator::new();
        assert_eq!(c.correction_factor(), 1.0);
        assert_eq!(c.corrected_step_s(2.0), 2.0);
        assert!(c.is_empty());
    }

    #[test]
    fn recovers_constant_bias_exactly() {
        // Measurements exactly 1.6x the predictions: calibration should
        // drive the error to ~0.
        let mut c = ModelCalibrator::new();
        for (ranks, pred) in [(8usize, 0.010), (16, 0.006), (32, 0.004)] {
            c.record(ranks, pred, pred * 1.6);
        }
        assert!((c.correction_factor() - 1.6).abs() < 1e-9);
        assert!(c.raw_error_pct() > 30.0);
        assert!(c.calibrated_error_pct() < 1e-9);
    }

    #[test]
    fn calibration_reduces_error_under_noise() {
        let mut c = ModelCalibrator::new();
        let biases = [1.5, 1.7, 1.6, 1.55, 1.65];
        for (i, &b) in biases.iter().enumerate() {
            let pred = 0.01 / (i + 1) as f64;
            c.record(8 << i, pred, pred * b);
        }
        assert!(
            c.calibrated_error_pct() < c.raw_error_pct(),
            "calibrated {} !< raw {}",
            c.calibrated_error_pct(),
            c.raw_error_pct()
        );
    }

    #[test]
    #[should_panic(expected = "non-positive step time")]
    fn rejects_zero_times() {
        ModelCalibrator::new().record(1, 0.0, 1.0);
    }

    #[test]
    fn corrected_prediction_scales_uniformly() {
        let mut c = ModelCalibrator::new();
        for pred in [0.010, 0.006, 0.004] {
            c.record(8, pred, pred * 1.6);
        }
        let raw = Prediction::from_composition(
            16,
            1_000_000,
            Composition {
                mem_s: 0.002,
                comm_bandwidth_s: 0.0005,
                comm_latency_s: 0.0015,
                ..Default::default()
            },
        );
        let cal = c.corrected_prediction(&raw);
        assert_eq!(cal.ranks, raw.ranks);
        assert!((cal.step_time_s - raw.step_time_s * 1.6).abs() < 1e-12);
        assert!((cal.mflups - raw.mflups / 1.6).abs() < 1e-9);
        // The breakdown shape is preserved: every term scales by the same k.
        assert!((cal.composition.mem_s - raw.composition.mem_s * 1.6).abs() < 1e-12);
        assert!(
            (cal.composition.comm_latency_s - raw.composition.comm_latency_s * 1.6).abs() < 1e-12
        );
        assert!((cal.composition.total_s() - cal.step_time_s).abs() < 1e-12);
    }

    #[test]
    fn bounded_window_caps_storage_but_not_the_fit() {
        // Two calibrators fed the same stream: the bounded one retains a
        // 4-observation window but its correction factor — running sums
        // over the full history — stays bitwise equal to the unbounded
        // one's at every step.
        let mut full = ModelCalibrator::new();
        let mut ring = ModelCalibrator::bounded(4);
        for i in 1..=64usize {
            let pred = 0.01 / i as f64;
            let meas = pred * (1.4 + 0.3 * ((i % 5) as f64) / 5.0);
            full.record(8, pred, meas);
            ring.record(8, pred, meas);
            assert_eq!(
                full.correction_factor().to_bits(),
                ring.correction_factor().to_bits(),
                "factor diverged at observation {i}"
            );
            assert_eq!(ring.len(), i, "len() counts the full history");
            assert!(ring.observations().len() <= 4);
        }
        assert_eq!(ring.observations().len(), 4);
        assert_eq!(full.observations().len(), 64);
    }

    #[test]
    #[should_panic(expected = "zero-observation window")]
    fn bounded_rejects_zero_window() {
        let _ = ModelCalibrator::bounded(0);
    }

    #[test]
    fn corrected_prediction_is_identity_without_data() {
        let c = ModelCalibrator::new();
        let raw = Prediction::from_composition(
            4,
            10_000,
            Composition {
                mem_s: 0.001,
                ..Default::default()
            },
        );
        assert_eq!(c.corrected_prediction(&raw), raw);
    }
}

//! Model-driven job limits: protection against inadvertent cost overruns.
//!
//! The paper: "the user could allow a 10% tolerance on the prediction and
//! set a hard stop on the number of CPU hours allowed for that job or
//! dollars spent ... A performance model-driven limit would help flag
//! simulations that are vastly out of line with the prediction."
//! [`JobGuard`] turns a prediction plus tolerance into those hard limits
//! and classifies observed usage against them.

use crate::composition::Prediction;
use hemocloud_cluster::platform::Platform;

/// Hard limits derived from a prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobGuard {
    /// Predicted wall-clock seconds for the full job.
    pub predicted_seconds: f64,
    /// Tolerance fraction on top of the prediction (0.10 = 10%).
    pub tolerance: f64,
    /// Hard wall-clock stop, seconds.
    pub max_seconds: f64,
    /// Hard CPU-hours stop.
    pub max_cpu_hours: f64,
    /// Hard dollar stop.
    pub max_dollars: f64,
    /// Ranks (cores) the job uses.
    pub ranks: usize,
    /// Nodes the job occupies.
    pub nodes: usize,
}

/// Outcome of checking observed usage against a guard.
///
/// # Verdict semantics
///
/// Both limits are **inclusive**: usage *exactly at* a limit
/// (`elapsed == max_seconds`, `spent == max_dollars`) is still
/// [`GuardVerdict::WithinLimits`] — the guard grants the full budget it quoted, and
/// [`GuardVerdict::Exceeded`] requires strictly crossing a limit. This holds for
/// zero-tolerance guards too, where `max_seconds == predicted_seconds`:
/// a job that lands exactly on its prediction is compliant; the first
/// representable instant beyond it is not.
///
/// The companion queries agree with that boundary: at the exact limit
/// [`JobGuard::remaining_seconds`] returns `0` and
/// [`JobGuard::has_budget`] returns `false` while [`JobGuard::check`]
/// still says [`GuardVerdict::WithinLimits`]. A slice-driven scheduler should therefore
/// use `has_budget` to decide whether to *dispatch more work* and `check`
/// to decide whether to *kill* — a job sitting exactly on the boundary is
/// stopped cleanly rather than flagged as an overrun.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuardVerdict {
    /// Usage is within every limit (boundaries included).
    WithinLimits,
    /// A limit was strictly crossed: the job should be stopped and
    /// flagged.
    Exceeded {
        /// Elapsed seconds over the wall-clock limit (0 if that limit
        /// held).
        seconds_over: f64,
        /// Dollars over the cost limit (0 if that limit held).
        dollars_over: f64,
    },
}

impl GuardVerdict {
    /// Whether the verdict is [`GuardVerdict::Exceeded`].
    pub fn is_exceeded(&self) -> bool {
        matches!(self, GuardVerdict::Exceeded { .. })
    }
}

impl JobGuard {
    /// Build a guard from a model prediction for a `steps`-step job on
    /// `platform`, with a fractional `tolerance`.
    ///
    /// # Panics
    /// Panics on a negative tolerance.
    pub fn from_prediction(
        prediction: &Prediction,
        steps: u64,
        platform: &Platform,
        tolerance: f64,
    ) -> Self {
        assert!(tolerance >= 0.0, "negative tolerance");
        let predicted_seconds = prediction.time_for_steps(steps);
        let max_seconds = predicted_seconds * (1.0 + tolerance);
        let nodes = platform.nodes_for_ranks(prediction.ranks);
        let cores = nodes * platform.cores_per_node;
        let max_cpu_hours = max_seconds / 3600.0 * cores as f64;
        let max_dollars = max_seconds / 3600.0 * nodes as f64 * platform.price_per_node_hour;
        Self {
            predicted_seconds,
            tolerance,
            max_seconds,
            max_cpu_hours,
            max_dollars,
            ranks: prediction.ranks,
            nodes,
        }
    }

    /// Check observed elapsed time and spend against the limits.
    ///
    /// Limits are inclusive — see [`GuardVerdict`] for the exact boundary
    /// semantics.
    pub fn check(&self, elapsed_seconds: f64, dollars_spent: f64) -> GuardVerdict {
        let seconds_over = (elapsed_seconds - self.max_seconds).max(0.0);
        let dollars_over = (dollars_spent - self.max_dollars).max(0.0);
        if seconds_over > 0.0 || dollars_over > 0.0 {
            GuardVerdict::Exceeded {
                seconds_over,
                dollars_over,
            }
        } else {
            GuardVerdict::WithinLimits
        }
    }

    /// Remaining wall-clock budget after `elapsed_seconds`, floored at
    /// zero. Exactly at the limit this is `0` while [`JobGuard::check`]
    /// still reports [`GuardVerdict::WithinLimits`] — no budget left is
    /// not the same as a violation.
    pub fn remaining_seconds(&self, elapsed_seconds: f64) -> f64 {
        (self.max_seconds - elapsed_seconds).max(0.0)
    }

    /// Whether strictly positive wall-clock budget remains — the dispatch
    /// gate for slice-driven execution: schedule another slice only while
    /// `has_budget` holds, and let [`JobGuard::check`] decide afterwards
    /// whether what actually ran was an overrun.
    pub fn has_budget(&self, elapsed_seconds: f64) -> bool {
        self.remaining_seconds(elapsed_seconds) > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composition::{Composition, Prediction};

    fn prediction() -> Prediction {
        Prediction::from_composition(
            72,
            1_000_000,
            Composition {
                mem_s: 0.001,
                ..Default::default()
            },
        )
    }

    #[test]
    fn limits_scale_with_tolerance() {
        let p = prediction();
        let platform = Platform::csp2();
        let tight = JobGuard::from_prediction(&p, 1000, &platform, 0.0);
        let loose = JobGuard::from_prediction(&p, 1000, &platform, 0.10);
        assert!((loose.max_seconds / tight.max_seconds - 1.10).abs() < 1e-9);
        assert!((tight.max_seconds - 1.0).abs() < 1e-9); // 1000 × 1 ms
    }

    #[test]
    fn verdict_boundaries() {
        let p = prediction();
        let guard = JobGuard::from_prediction(&p, 1000, &Platform::csp2(), 0.10);
        assert_eq!(guard.check(1.0, 0.0), GuardVerdict::WithinLimits);
        assert_eq!(guard.check(guard.max_seconds, 0.0), GuardVerdict::WithinLimits);
        match guard.check(guard.max_seconds + 0.5, 0.0) {
            GuardVerdict::Exceeded { seconds_over, .. } => {
                assert!((seconds_over - 0.5).abs() < 1e-9)
            }
            v => panic!("expected exceed, got {v:?}"),
        }
    }

    #[test]
    fn cost_limit_trips_independently() {
        let p = prediction();
        let guard = JobGuard::from_prediction(&p, 1000, &Platform::csp2(), 0.10);
        match guard.check(0.1, guard.max_dollars * 2.0) {
            GuardVerdict::Exceeded {
                seconds_over,
                dollars_over,
            } => {
                assert_eq!(seconds_over, 0.0);
                assert!(dollars_over > 0.0);
            }
            v => panic!("expected exceed, got {v:?}"),
        }
    }

    #[test]
    fn cpu_hours_account_whole_nodes() {
        let p = prediction(); // 72 ranks on CSP-2 = 2 × 36-core nodes
        let guard = JobGuard::from_prediction(&p, 3_600_000, &Platform::csp2(), 0.0);
        // 3.6M steps × 1 ms = 3600 s = 1 h on 72 cores -> 72 CPU-hours.
        assert!((guard.max_cpu_hours - 72.0).abs() < 1e-6);
        assert_eq!(guard.nodes, 2);
    }

    #[test]
    fn remaining_budget_floors_at_zero() {
        let p = prediction();
        let guard = JobGuard::from_prediction(&p, 1000, &Platform::csp2(), 0.0);
        assert_eq!(guard.remaining_seconds(guard.max_seconds * 3.0), 0.0);
    }

    #[test]
    fn exact_limit_is_within_on_both_dimensions() {
        // The inclusive boundary, pinned on seconds and dollars at once:
        // sitting exactly on both limits is compliant.
        let p = prediction();
        let guard = JobGuard::from_prediction(&p, 1000, &Platform::csp2(), 0.10);
        assert_eq!(
            guard.check(guard.max_seconds, guard.max_dollars),
            GuardVerdict::WithinLimits
        );
        assert!(!guard.check(guard.max_seconds, guard.max_dollars).is_exceeded());
        // ...but the exact boundary exhausts the budget.
        assert_eq!(guard.remaining_seconds(guard.max_seconds), 0.0);
        assert!(!guard.has_budget(guard.max_seconds));
        assert!(guard.has_budget(guard.max_seconds * 0.999));
    }

    #[test]
    fn first_instant_beyond_the_limit_trips() {
        let p = prediction();
        let guard = JobGuard::from_prediction(&p, 1000, &Platform::csp2(), 0.10);
        let just_over = f64::from_bits(guard.max_seconds.to_bits() + 1);
        match guard.check(just_over, 0.0) {
            GuardVerdict::Exceeded {
                seconds_over,
                dollars_over,
            } => {
                assert!(seconds_over > 0.0);
                assert_eq!(dollars_over, 0.0, "cost limit held");
            }
            v => panic!("expected exceed, got {v:?}"),
        }
        let cost_over = f64::from_bits(guard.max_dollars.to_bits() + 1);
        assert!(guard.check(0.0, cost_over).is_exceeded());
    }

    #[test]
    fn zero_tolerance_guard_boundaries() {
        // tolerance = 0: the limit IS the prediction. Landing exactly on
        // it is compliant; any strict excess trips.
        let p = prediction();
        let guard = JobGuard::from_prediction(&p, 1000, &Platform::csp2(), 0.0);
        assert_eq!(guard.max_seconds, guard.predicted_seconds);
        assert_eq!(
            guard.check(guard.predicted_seconds, 0.0),
            GuardVerdict::WithinLimits
        );
        assert!(guard
            .check(f64::from_bits(guard.predicted_seconds.to_bits() + 1), 0.0)
            .is_exceeded());
        assert_eq!(guard.remaining_seconds(guard.predicted_seconds), 0.0);
        assert!(!guard.has_budget(guard.predicted_seconds));
        // Partway through, the remaining budget is exact.
        let half = guard.predicted_seconds / 2.0;
        assert!((guard.remaining_seconds(half) - half).abs() < 1e-12);
        assert!(guard.has_budget(half));
    }

    #[test]
    fn zero_usage_is_within_even_for_zero_tolerance() {
        let p = prediction();
        let guard = JobGuard::from_prediction(&p, 1000, &Platform::csp2(), 0.0);
        assert_eq!(guard.check(0.0, 0.0), GuardVerdict::WithinLimits);
        assert!((guard.remaining_seconds(0.0) - guard.max_seconds).abs() < 1e-12);
    }
}

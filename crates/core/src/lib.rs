//! The paper's contribution: performance-model-driven optimization of
//! cloud resource usage for hemodynamic (LBM) simulation.
//!
//! The pipeline mirrors the framework of the paper's Fig. 1:
//!
//! 1. **Characterize** ([`characterize()`]) — run the microbenchmarks on a
//!    platform (STREAM thread sweep, PingPong message sweep) and fit the
//!    two-line bandwidth model (Eq. 8) and linear communication model
//!    (Eq. 12).
//! 2. **Predict** — estimate runtime as `max_j(t_mem) + max_j(t_comm)`
//!    (Eq. 6) two ways: the [`direct`] model uses the actual parallel
//!    decomposition's byte counts and message lists (Eq. 9); the
//!    [`general`] model estimates them *a priori* from the task count via
//!    the load-imbalance fit (Eqs. 10-11), the surface-area halo estimate
//!    (Eqs. 13-14) and the event-count fit (Eq. 15), combined in Eq. 16.
//! 3. **Decide** ([`dashboard`], [`value`]) — build the CSP Option
//!    Dashboard: predicted throughput, time-to-solution and cost per
//!    instance type, relative-value heatmaps (Eq. 17), and
//!    objective-driven recommendations.
//! 4. **Guard** ([`guard`]) — turn a prediction plus tolerance into hard
//!    job limits that flag runs "vastly out of line with the prediction".
//! 5. **Refine** ([`refine`]) — store measured-vs-predicted pairs and
//!    iteratively calibrate the model.

pub mod characterize;
pub mod composition;
pub mod dashboard;
pub mod direct;
pub mod general;
pub mod guard;
pub mod refine;
pub mod roofline;
pub mod value;
pub mod workload;

pub use characterize::{characterize, PlatformCharacterization};
pub use composition::{Composition, Prediction};
pub use dashboard::{Dashboard, DashboardEntry, Objective};
pub use direct::DirectModel;
pub use general::GeneralModel;
pub use guard::{GuardVerdict, JobGuard};
pub use refine::ModelCalibrator;
pub use workload::Workload;

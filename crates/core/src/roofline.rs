//! FLOP-roofline extension (paper Discussion §IV).
//!
//! The base model assumes LBM is purely bandwidth-bound and "ignores costs
//! including time for floating point operations". The paper proposes
//! extending it "by adding the theoretical runtime predicted by the
//! roofline model" for other hardware limits. This module does that for
//! floating-point throughput:
//!
//! * [`FlopProfile`] counts the arithmetic per fluid-point update;
//! * [`Roofline`] holds a platform's per-core peak FLOP rate;
//! * [`roofline_prediction`] augments a prediction with the compute term
//!   and reports the arithmetic intensity vs. machine balance — which
//!   *confirms* the memory-bound premise (D3Q19 BGK sits far left of the
//!   ridge on every Table I platform) rather than assuming it.

use crate::characterize::PlatformCharacterization;
use crate::composition::{Composition, Prediction};
use hemocloud_cluster::platform::Platform;
use hemocloud_lbm::access_profile::AccessProfile;

/// Floating-point work per fluid-point update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlopProfile {
    /// Floating-point operations per point per timestep.
    pub flops_per_point: f64,
}

impl FlopProfile {
    /// D3Q19 BGK: per direction ~3 FMAs for `c·u`, ~4 ops for the
    /// quadratic equilibrium, 3 for the relaxation, plus the moment sums —
    /// ≈ 260 flops per point in our kernels (counted from
    /// `equilibrium_d3q19` + `collide`).
    pub fn d3q19_bgk() -> Self {
        Self {
            flops_per_point: 260.0,
        }
    }
}

/// A platform's floating-point ceiling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Peak double-precision GFLOP/s per core.
    pub gflops_per_core: f64,
}

impl Roofline {
    /// Conservative peak from the clock: 8 DP flops/cycle (one 256-bit FMA
    /// unit) — the right order for the paper's Haswell/Broadwell/Skylake
    /// parts without crediting unsustainable dual-issue peaks.
    pub fn from_platform(platform: &Platform) -> Self {
        Self {
            gflops_per_core: platform.clock_ghz * 8.0,
        }
    }

    /// Seconds for one task to execute `flops` floating-point operations.
    pub fn compute_time_s(&self, flops: f64) -> f64 {
        flops / (self.gflops_per_core * 1e9)
    }
}

/// Arithmetic intensity of a kernel on a geometry: flops per byte moved.
pub fn arithmetic_intensity(
    profile: &AccessProfile,
    flop: &FlopProfile,
    stats: &hemocloud_geometry::stats::GeometryStats,
) -> f64 {
    let bytes = profile.bytes_per_point(stats);
    if bytes == 0.0 {
        0.0
    } else {
        flop.flops_per_point / bytes
    }
}

/// Machine balance at a given per-task bandwidth share: the intensity at
/// which compute and memory times are equal (the roofline ridge point).
pub fn machine_balance(roofline: &Roofline, per_task_bandwidth_mb_s: f64) -> f64 {
    roofline.gflops_per_core * 1e9 / (per_task_bandwidth_mb_s * 1e6)
}

/// Augment a generalized/direct prediction with the FLOP-roofline term:
/// the compute time of the slowest task is *added* to the step (the
/// paper's "adding the theoretical runtime" approximation). Returns the
/// augmented prediction and whether the workload is memory-bound at this
/// configuration (intensity below the ridge).
pub fn roofline_prediction(
    base: &Prediction,
    character: &PlatformCharacterization,
    flop: &FlopProfile,
    points: usize,
    profile: &AccessProfile,
    stats: &hemocloud_geometry::stats::GeometryStats,
) -> (Prediction, bool) {
    let roofline = Roofline::from_platform(&character.platform);
    let tasks_per_node = base.ranks.min(character.platform.cores_per_node);
    let per_task_bw = character.per_task_bandwidth(tasks_per_node.max(1));

    let points_per_task = points as f64 / base.ranks as f64;
    let compute_s = roofline.compute_time_s(points_per_task * flop.flops_per_point);

    let intensity = arithmetic_intensity(profile, flop, stats);
    let balance = machine_balance(&roofline, per_task_bw);
    let memory_bound = intensity < balance;

    let composition = Composition {
        compute_s,
        ..base.composition
    };
    (
        Prediction::from_composition(base.ranks, points, composition),
        memory_bound,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::characterize;
    use crate::general::GeneralModel;
    use crate::workload::Workload;
    use hemocloud_geometry::anatomy::CylinderSpec;

    fn setup() -> (PlatformCharacterization, Workload) {
        let grid = CylinderSpec::default().with_resolution(12).build();
        (
            characterize(&Platform::csp2(), 42),
            Workload::harvey(&grid, 100),
        )
    }

    #[test]
    fn d3q19_bgk_is_memory_bound_on_every_platform() {
        // The paper's premise ("LBM is known to be bandwidth-bound"),
        // checked instead of assumed: intensity << machine balance at full
        // node occupancy everywhere.
        let (_, workload) = setup();
        let flop = FlopProfile::d3q19_bgk();
        let intensity = arithmetic_intensity(&workload.profile, &flop, &workload.stats);
        for p in Platform::all() {
            let roofline = Roofline::from_platform(&p);
            let c = characterize(&p, 42);
            let balance = machine_balance(&roofline, c.per_task_bandwidth(p.cores_per_node));
            assert!(
                intensity < 0.5 * balance,
                "{}: intensity {intensity} vs balance {balance}",
                p.abbrev
            );
        }
    }

    #[test]
    fn roofline_term_changes_prediction_only_modestly() {
        // Because the kernel is memory-bound, adding the compute term must
        // not move the prediction much (< 25%).
        let (character, workload) = setup();
        let model = GeneralModel::from_characterization(&character, &workload);
        let base = model.predict(36);
        let (augmented, memory_bound) = roofline_prediction(
            &base,
            &character,
            &FlopProfile::d3q19_bgk(),
            workload.points(),
            &workload.profile,
            &workload.stats,
        );
        assert!(memory_bound);
        assert!(augmented.mflups < base.mflups, "compute time adds");
        assert!(
            augmented.mflups > 0.75 * base.mflups,
            "roofline term too large: {} vs {}",
            augmented.mflups,
            base.mflups
        );
        assert!(augmented.composition.compute_s > 0.0);
    }

    #[test]
    fn compute_time_scales_with_clock() {
        let fast = Roofline::from_platform(&Platform::csp2()); // 3.41 GHz
        let slow = Roofline::from_platform(&Platform::trc()); // 2.19 GHz
        assert!(fast.compute_time_s(1e9) < slow.compute_time_s(1e9));
    }
}

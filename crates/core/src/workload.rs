//! Workload descriptors: everything a performance model needs to know
//! about a simulation before it runs.

use hemocloud_geometry::stats::GeometryStats;
use hemocloud_geometry::voxel::VoxelGrid;
use hemocloud_lbm::access_profile::AccessProfile;
use hemocloud_lbm::kernel::KernelConfig;

/// A fully described LBM simulation campaign input.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable name (geometry + code).
    pub name: String,
    /// Point-type census of the geometry.
    pub stats: GeometryStats,
    /// Kernel variant to run.
    pub kernel: KernelConfig,
    /// Byte costs of that kernel on this geometry.
    pub profile: AccessProfile,
    /// Timesteps the campaign needs.
    pub steps: u64,
    /// Total bytes a serial run accesses per timestep — the
    /// `n_bytes_serial` of paper Eq. 10.
    pub serial_bytes: f64,
    /// The voxel grid, retained for the direct model's exact
    /// decomposition analysis.
    pub grid: VoxelGrid,
}

impl Workload {
    /// Describe a workload for a kernel configuration.
    pub fn new(
        name: impl Into<String>,
        grid: &VoxelGrid,
        kernel: KernelConfig,
        steps: u64,
    ) -> Self {
        let stats = GeometryStats::measure(grid);
        let avg_links = hemocloud_cluster::exec::measured_avg_solid_links(grid);
        let profile = AccessProfile::for_kernel(&kernel, avg_links);
        let serial_bytes = profile.mesh_bytes(&stats);
        Self {
            name: name.into(),
            stats,
            kernel,
            profile,
            steps,
            serial_bytes,
            grid: grid.clone(),
        }
    }

    /// A HARVEY-style workload (indirect AoS/AB, double precision).
    pub fn harvey(grid: &VoxelGrid, steps: u64) -> Self {
        Self::new("HARVEY", grid, KernelConfig::harvey(), steps)
    }

    /// Describe the workload a [`hemocloud_lbm::solver::Solver`] would
    /// actually execute under `config`: the byte accounting (Eq. 9 inputs
    /// and resident footprint) is taken from the *configured* kernel —
    /// an AA solver run is priced as AA, never silently as AB.
    pub fn for_solver(
        grid: &VoxelGrid,
        config: &hemocloud_lbm::solver::SolverConfig,
        steps: u64,
    ) -> Self {
        Self::new(
            format!("solver {}", config.kernel.name()),
            grid,
            config.kernel,
            steps,
        )
    }

    /// A proxy-app workload with an explicit kernel variant.
    pub fn proxy(grid: &VoxelGrid, kernel: KernelConfig, steps: u64) -> Self {
        Self::new(format!("lbm-proxy-app {}", kernel.name()), grid, kernel, steps)
    }

    /// Total fluid points.
    pub fn points(&self) -> usize {
        self.stats.fluid_points
    }

    /// A resolution-scaled copy for generalized-model extrapolation: bulk
    /// points scale with the cube of the linear `factor`, wall/inlet/outlet
    /// points with its square (they are surfaces). The grid is **not**
    /// rescaled — the direct model (which reads the grid) must not be used
    /// on a scaled workload; the generalized model and dashboard (which
    /// read only the census) are the intended consumers. This mirrors the
    /// paper's "high-resolution" evaluation geometries, whose censuses are
    /// extrapolated here rather than voxelized at full size.
    ///
    /// # Panics
    /// Panics for a non-positive factor.
    pub fn scaled(&self, factor: f64) -> Workload {
        assert!(factor > 0.0, "non-positive scale factor");
        let f2 = factor * factor;
        let f3 = f2 * factor;
        let mut stats = self.stats;
        stats.bulk_points = (stats.bulk_points as f64 * f3).round() as usize;
        stats.wall_points = (stats.wall_points as f64 * f2).round() as usize;
        stats.inlet_points = (stats.inlet_points as f64 * f2).round() as usize;
        stats.outlet_points = (stats.outlet_points as f64 * f2).round() as usize;
        stats.fluid_points =
            stats.bulk_points + stats.wall_points + stats.inlet_points + stats.outlet_points;
        stats.total_voxels = (stats.total_voxels as f64 * f3).round() as usize;
        stats.fluid_fraction = stats.fluid_points as f64 / stats.total_voxels.max(1) as f64;
        stats.bulk_wall_ratio = if stats.wall_points == 0 {
            f64::INFINITY
        } else {
            stats.bulk_points as f64 / stats.wall_points as f64
        };
        let serial_bytes = self.profile.mesh_bytes(&stats);
        Workload {
            name: format!("{} (census x{factor:.2} linear)", self.name),
            stats,
            serial_bytes,
            ..self.clone()
        }
    }

    /// Total fluid-point updates of the whole campaign.
    pub fn total_updates(&self) -> f64 {
        self.points() as f64 * self.steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemocloud_geometry::anatomy::CylinderSpec;
    use hemocloud_lbm::kernel::{Layout, Propagation};

    #[test]
    fn harvey_workload_census() {
        let g = CylinderSpec::default().with_resolution(10).build();
        let w = Workload::harvey(&g, 500);
        assert_eq!(w.points(), g.fluid_count());
        assert!(w.serial_bytes > 0.0);
        assert_eq!(w.total_updates(), w.points() as f64 * 500.0);
    }

    #[test]
    fn serial_bytes_consistent_with_profile() {
        let g = CylinderSpec::default().with_resolution(8).build();
        let w = Workload::harvey(&g, 1);
        let expect = w.profile.mesh_bytes(&w.stats);
        assert_eq!(w.serial_bytes, expect);
    }

    #[test]
    fn scaled_census_grows_bulk_faster_than_wall() {
        let g = CylinderSpec::default().with_resolution(10).build();
        let w = Workload::harvey(&g, 1);
        let s = w.scaled(3.0);
        let bulk_ratio = s.stats.bulk_points as f64 / w.stats.bulk_points as f64;
        let wall_ratio = s.stats.wall_points as f64 / w.stats.wall_points as f64;
        assert!((bulk_ratio - 27.0).abs() < 0.1, "bulk {bulk_ratio}");
        assert!((wall_ratio - 9.0).abs() < 0.1, "wall {wall_ratio}");
        // Serial bytes grow between the wall (×9) and bulk (×27) factors —
        // at this coarse resolution wall points carry much of the census.
        assert!(s.serial_bytes > w.serial_bytes * 9.0);
        assert!(s.serial_bytes < w.serial_bytes * 27.0);
        assert_eq!(
            s.stats.fluid_points,
            s.stats.bulk_points + s.stats.wall_points + s.stats.inlet_points
                + s.stats.outlet_points
        );
    }

    #[test]
    fn for_solver_prices_the_configured_kernel_not_ab() {
        use hemocloud_lbm::solver::SolverConfig;
        let g = CylinderSpec::default().with_resolution(8).build();
        let aa_cfg = SolverConfig {
            kernel: KernelConfig::sparse(Propagation::Aa, Layout::Soa),
            ..Default::default()
        };
        let aa = Workload::for_solver(&g, &aa_cfg, 10);
        let ab = Workload::for_solver(&g, &SolverConfig::default(), 10);
        assert_eq!(aa.kernel, aa_cfg.kernel);
        assert_eq!(ab.kernel, KernelConfig::harvey());
        // The configured kernel drives both traffic and footprint.
        assert!(aa.serial_bytes < ab.serial_bytes);
        assert!(aa.kernel.resident_bytes_per_point() < ab.kernel.resident_bytes_per_point());
    }

    #[test]
    fn for_solver_prices_single_precision_end_to_end() {
        use hemocloud_lbm::kernel::Precision;
        use hemocloud_lbm::solver::SolverConfig;
        let g = CylinderSpec::default().with_resolution(8).build();
        let f32_cfg = SolverConfig {
            kernel: KernelConfig::sparse_with_precision(
                Propagation::Ab,
                Layout::Soa,
                Precision::Single,
            ),
            ..Default::default()
        };
        let f64_cfg = SolverConfig {
            kernel: KernelConfig::sparse(Propagation::Ab, Layout::Soa),
            ..Default::default()
        };
        let single = Workload::for_solver(&g, &f32_cfg, 10);
        let double = Workload::for_solver(&g, &f64_cfg, 10);
        // Pinned resident footprints: AB f32 = 2×19×4 + 19×4 = 228 B/point
        // (exactly AA f64), AB f64 = 380 B/point.
        assert_eq!(single.kernel.resident_bytes_per_point(), 228.0);
        assert_eq!(double.kernel.resident_bytes_per_point(), 380.0);
        // Distribution traffic halves; index traffic (19 × 4 B per bulk
        // point, both reads) does not — so per-step bytes shrink by
        // exactly 19 × 8 × points' worth on bulk cells.
        assert!(single.serial_bytes < double.serial_bytes);
        let bulk_delta = double.profile.bulk_bytes - single.profile.bulk_bytes;
        assert!((bulk_delta - 19.0 * 8.0).abs() < 1e-12);
        assert_eq!(single.profile.boundary_point_bytes, 20.0);
    }

    #[test]
    fn aa_workload_reads_fewer_bytes_than_ab() {
        let g = CylinderSpec::default().with_resolution(8).build();
        let ab = Workload::proxy(
            &g,
            KernelConfig::proxy(Layout::Soa, Propagation::Ab, true),
            1,
        );
        let aa = Workload::proxy(
            &g,
            KernelConfig::proxy(Layout::Soa, Propagation::Aa, true),
            1,
        );
        assert!(aa.serial_bytes < ab.serial_bytes);
    }
}

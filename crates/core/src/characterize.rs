//! Platform characterization: microbenchmark → fit (the top half of the
//! paper's Fig. 1 framework, producing the "CSP Option Dashboard" inputs
//! and the Table III parameters).

use hemocloud_cluster::network::LinkKind;
use hemocloud_cluster::pingpong::{
    default_message_sizes, fit_pingpong, pingpong_sweep, CommFit,
};
use hemocloud_cluster::platform::Platform;
use hemocloud_cluster::stream_bench::{stream_sweep, to_fit_arrays};
use hemocloud_fitting::two_line::{fit_two_line, TwoLineFit};

/// Fitted hardware parameters of one platform — a row of the paper's
/// Table III.
#[derive(Debug, Clone)]
pub struct PlatformCharacterization {
    /// The platform measured.
    pub platform: Platform,
    /// Two-line STREAM fit (`a1, a2, a3` of Eq. 8).
    pub memory_fit: TwoLineFit,
    /// Internodal PingPong fit (`b, l` of Eq. 12).
    pub internodal_fit: CommFit,
    /// Intranodal PingPong fit.
    pub intranodal_fit: CommFit,
}

impl PlatformCharacterization {
    /// Fitted node bandwidth (MB/s) with `threads` active.
    pub fn node_bandwidth(&self, threads: usize) -> f64 {
        self.memory_fit.eval(threads as f64)
    }

    /// Fitted per-task bandwidth share with `tasks_on_node` tasks
    /// saturating the node (the paper's even-split assumption), MB/s.
    pub fn per_task_bandwidth(&self, tasks_on_node: usize) -> f64 {
        assert!(tasks_on_node > 0);
        self.node_bandwidth(tasks_on_node) / tasks_on_node as f64
    }

    /// Communication fit for a link kind.
    pub fn link_fit(&self, kind: LinkKind) -> &CommFit {
        match kind {
            LinkKind::Internodal => &self.internodal_fit,
            LinkKind::Intranodal => &self.intranodal_fit,
        }
    }

    /// Seconds to move `bytes` through a link per the fitted model:
    /// `m/b + l` (Eq. 12).
    pub fn message_time_s(&self, kind: LinkKind, bytes: f64) -> f64 {
        let fit = self.link_fit(kind);
        (bytes / fit.bandwidth_mb_s + fit.latency_us) * 1e-6
    }
}

/// Characterize a platform by running its (simulated) microbenchmarks and
/// fitting the paper's models. `seed` controls the measurement-noise
/// streams, making characterizations reproducible.
///
/// # Panics
/// Panics if any fit fails — on these platforms the sweeps are always
/// fittable, so a failure indicates a broken measurement pipeline.
pub fn characterize(platform: &Platform, seed: u64) -> PlatformCharacterization {
    let (threads, bandwidths) = to_fit_arrays(&stream_sweep(platform, seed));
    let memory_fit = fit_two_line(&threads, &bandwidths).expect("STREAM sweep is fittable");

    let sizes = default_message_sizes();
    let internodal_fit = fit_pingpong(&pingpong_sweep(
        platform,
        LinkKind::Internodal,
        &sizes,
        seed ^ 0x1e7e,
    ))
    .expect("internodal PingPong is fittable");
    let intranodal_fit = fit_pingpong(&pingpong_sweep(
        platform,
        LinkKind::Intranodal,
        &sizes,
        seed ^ 0x17a4,
    ))
    .expect("intranodal PingPong is fittable");

    PlatformCharacterization {
        platform: platform.clone(),
        memory_fit,
        internodal_fit,
        intranodal_fit,
    }
}

/// Characterize every Table I platform.
pub fn characterize_all(seed: u64) -> Vec<PlatformCharacterization> {
    Platform::all()
        .iter()
        .map(|p| characterize(p, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characterization_recovers_table3_parameters() {
        // The full pipeline must land near the paper's Table III values
        // for CSP-2: a1 ≈ 7790, a3 ≈ 9, b ≈ 1805 MB/s, l ≈ 23.6 µs.
        let c = characterize(&Platform::csp2(), 42);
        assert!(
            (c.memory_fit.a1 - 7790.0).abs() / 7790.0 < 0.15,
            "a1 = {}",
            c.memory_fit.a1
        );
        assert!((c.memory_fit.a3 - 9.0).abs() < 3.0, "a3 = {}", c.memory_fit.a3);
        assert!(
            (c.internodal_fit.bandwidth_mb_s - 1804.84).abs() / 1804.84 < 0.15,
            "b = {}",
            c.internodal_fit.bandwidth_mb_s
        );
        assert!(
            (c.internodal_fit.latency_us - 23.59).abs() / 23.59 < 0.2,
            "l = {}",
            c.internodal_fit.latency_us
        );
    }

    #[test]
    fn per_task_bandwidth_shrinks_with_contention() {
        let c = characterize(&Platform::trc(), 7);
        assert!(c.per_task_bandwidth(4) > c.per_task_bandwidth(40));
    }

    #[test]
    fn intranodal_messages_are_cheaper() {
        let c = characterize(&Platform::csp2(), 11);
        for bytes in [0.0, 1e4, 1e6] {
            assert!(
                c.message_time_s(LinkKind::Intranodal, bytes)
                    < c.message_time_s(LinkKind::Internodal, bytes)
            );
        }
    }

    #[test]
    fn characterize_all_covers_table1() {
        let all = characterize_all(3);
        assert_eq!(all.len(), 5);
        let abbrevs: Vec<_> = all.iter().map(|c| c.platform.abbrev).collect();
        assert!(abbrevs.contains(&"TRC"));
        assert!(abbrevs.contains(&"CSP-2 EC"));
    }

    #[test]
    fn characterization_is_deterministic_per_seed() {
        let a = characterize(&Platform::csp1(), 5);
        let b = characterize(&Platform::csp1(), 5);
        assert_eq!(a.memory_fit, b.memory_fit);
        assert_eq!(a.internodal_fit, b.internodal_fit);
    }
}

//! The **direct** performance model (paper §II-D): predictions from the
//! actual parallel decomposition.
//!
//! For each rank count the workload's grid is decomposed exactly as the
//! ranked solver would decompose it; per-task byte counts (Eq. 9) and the
//! real message lists then give
//!
//! ```text
//! T ≈ max_j(t_mem_j) + max_j(t_comm_j)           (Eq. 6)
//! t_mem_j  = bytes_j / (B_NODE(n)/n)             (Eqs. 8-9)
//! t_comm_j = Σ_messages (m/b + l)                (Eqs. 5, 12)
//! ```
//!
//! using only *fitted* hardware parameters — never the simulator's ground
//! truth or its unmodeled overheads. The direct model separates model
//! error from decomposition-estimation error: it shares Eq. 6 with the
//! generalized model but replaces all a-priori estimates with measured
//! decomposition data.

use crate::characterize::PlatformCharacterization;
use crate::composition::{Composition, Prediction};
use crate::workload::Workload;
use hemocloud_cluster::network::LinkKind;
use hemocloud_decomp::halo::{bytes_per_task, resident_bytes_per_task, DecompAnalysis};
use hemocloud_decomp::placement::Placement;
use hemocloud_decomp::rcb::RcbPartition;

/// The direct model: a characterization plus a workload.
#[derive(Debug, Clone)]
pub struct DirectModel {
    character: PlatformCharacterization,
    workload: Workload,
}

impl DirectModel {
    /// Bind a characterization to a workload.
    pub fn new(character: PlatformCharacterization, workload: Workload) -> Self {
        Self {
            character,
            workload,
        }
    }

    /// The bound workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The bound characterization.
    pub fn characterization(&self) -> &PlatformCharacterization {
        &self.character
    }

    /// Predict performance at `ranks` tasks (one per core, contiguous
    /// node placement), decomposing exactly as the execution engine does
    /// (fluid-balanced RCB). Returns `None` when the rank count exceeds
    /// the platform allocation or the fluid-point count.
    pub fn predict(&self, ranks: usize) -> Option<Prediction> {
        let grid = &self.workload.grid;
        if ranks == 0
            || ranks > self.character.platform.total_cores
            || ranks > grid.fluid_count()
        {
            return None;
        }
        let partition = RcbPartition::new(grid, ranks);
        let analysis = DecompAnalysis::analyze(grid, &partition);
        let placement = Placement::contiguous(ranks, self.character.platform.cores_per_node);
        let task_bytes = bytes_per_task(
            grid,
            &partition,
            self.workload.profile.bulk_bytes,
            self.workload.profile.wall_bytes,
        );

        let tasks_per_node = placement.tasks_per_node();

        // max_j t_mem (Eq. 9 / fitted Eq. 8).
        let mut max_mem = 0.0f64;
        for (task, &bytes) in task_bytes.iter().enumerate() {
            let on_node = tasks_per_node[placement.node_of(task)].max(1);
            let bw = self.character.per_task_bandwidth(on_node); // MB/s
            let t = bytes / (bw * 1e6);
            max_mem = max_mem.max(t);
        }

        // max_j t_comm with the critical task's intra/inter split.
        let mut max_comm = 0.0f64;
        let mut critical = (0.0f64, 0.0f64);
        for (task, msgs) in analysis.messages.iter().enumerate() {
            let mut intra = 0.0;
            let mut inter = 0.0;
            for (&peer, &points) in msgs {
                let bytes = points as f64 * self.workload.profile.boundary_point_bytes;
                let kind = if placement.is_internodal(task, peer) {
                    LinkKind::Internodal
                } else {
                    LinkKind::Intranodal
                };
                // Send plus matching receive (the Eq. 13 factor of two).
                let t = 2.0 * self.character.message_time_s(kind, bytes);
                match kind {
                    LinkKind::Internodal => inter += t,
                    LinkKind::Intranodal => intra += t,
                }
            }
            if intra + inter > max_comm {
                max_comm = intra + inter;
                critical = (intra, inter);
            }
        }

        let composition = Composition {
            mem_s: max_mem,
            intra_s: critical.0,
            inter_s: critical.1,
            ..Default::default()
        };
        Some(Prediction::from_composition(
            ranks,
            self.workload.points(),
            composition,
        ))
    }

    /// Predictions over a rank sweep, skipping infeasible counts.
    pub fn sweep(&self, ranks: &[usize]) -> Vec<Prediction> {
        ranks.iter().filter_map(|&r| self.predict(r)).collect()
    }

    /// Per-task *resident* memory at `ranks` tasks, decomposed exactly as
    /// [`DirectModel::predict`] decomposes: each task's fluid points times
    /// the configured kernel's `resident_bytes_per_point`. AA kernels
    /// report half the distribution storage of AB (no second array) — the
    /// footprint that decides whether a subdomain fits in a node's memory.
    /// Returns `None` for the same infeasible rank counts as `predict`.
    pub fn resident_task_bytes(&self, ranks: usize) -> Option<Vec<f64>> {
        let grid = &self.workload.grid;
        if ranks == 0
            || ranks > self.character.platform.total_cores
            || ranks > grid.fluid_count()
        {
            return None;
        }
        let partition = RcbPartition::new(grid, ranks);
        Some(resident_bytes_per_task(
            grid,
            &partition,
            self.workload.kernel.resident_bytes_per_point(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::characterize;
    use hemocloud_cluster::exec::{simulate_geometry, Overheads};
    use hemocloud_cluster::platform::Platform;
    use hemocloud_geometry::anatomy::CylinderSpec;

    fn setup() -> DirectModel {
        let grid = CylinderSpec::default().with_resolution(12).build();
        let workload = Workload::harvey(&grid, 100);
        let character = characterize(&Platform::csp2(), 42);
        DirectModel::new(character, workload)
    }

    #[test]
    fn single_rank_has_no_communication() {
        let m = setup();
        let p = m.predict(1).unwrap();
        assert_eq!(p.composition.intra_s, 0.0);
        assert_eq!(p.composition.inter_s, 0.0);
        assert!(p.composition.mem_s > 0.0);
        assert!(p.mflups > 0.0);
    }

    #[test]
    fn multi_node_runs_have_internodal_time() {
        let m = setup();
        let p = m.predict(72).unwrap(); // 2 CSP-2 nodes
        assert!(p.composition.inter_s > 0.0);
    }

    #[test]
    fn infeasible_ranks_are_none() {
        let m = setup();
        assert!(m.predict(0).is_none());
        assert!(m.predict(100_000).is_none());
    }

    #[test]
    fn prediction_overestimates_simulated_measurement() {
        // The paper's central observation: the model (no unmodeled
        // overheads) overpredicts what the machine (with overheads)
        // delivers — consistently, not wildly.
        let grid = CylinderSpec::default().with_resolution(12).build();
        let workload = Workload::harvey(&grid, 100);
        let platform = Platform::csp2();
        let model = DirectModel::new(characterize(&platform, 42), workload);
        for ranks in [1usize, 8, 36] {
            let predicted = model.predict(ranks).unwrap();
            let measured = simulate_geometry(
                &platform,
                &grid,
                &hemocloud_lbm::kernel::KernelConfig::harvey(),
                ranks,
                100,
                &Overheads::default(),
                1,
                0.0,
            )
            .unwrap();
            let ratio = predicted.mflups / measured.mflups;
            assert!(
                (1.05..3.0).contains(&ratio),
                "ranks {ranks}: predicted {} vs measured {} (ratio {ratio})",
                predicted.mflups,
                measured.mflups
            );
        }
    }

    #[test]
    fn aa_kernel_halves_resident_distribution_storage_per_task() {
        let grid = CylinderSpec::default().with_resolution(12).build();
        let character = characterize(&Platform::csp2(), 42);
        let mut aa_kernel = hemocloud_lbm::kernel::KernelConfig::harvey();
        aa_kernel.propagation = hemocloud_lbm::kernel::Propagation::Aa;
        let ab = DirectModel::new(
            character.clone(),
            Workload::harvey(&grid, 100),
        );
        let aa = DirectModel::new(
            character,
            Workload::new("HARVEY-AA", &grid, aa_kernel, 100),
        );
        for ranks in [1usize, 8] {
            let ab_bytes = ab.resident_task_bytes(ranks).unwrap();
            let aa_bytes = aa.resident_task_bytes(ranks).unwrap();
            assert_eq!(ab_bytes.len(), ranks);
            for (b, a) in ab_bytes.iter().zip(&aa_bytes) {
                // AB: 2×19×8 + 19×4 = 380 B/point; AA drops one 152-byte
                // array → 228 B/point.
                assert!((a / b - 228.0 / 380.0).abs() < 1e-12, "{a} vs {b}");
            }
        }
        assert!(aa.resident_task_bytes(0).is_none());
    }

    #[test]
    fn sweep_skips_infeasible() {
        let m = setup();
        let preds = m.sweep(&[1, 4, 1_000_000]);
        assert_eq!(preds.len(), 2);
    }
}

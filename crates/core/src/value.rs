//! Relative value of computing infrastructures (paper Eq. 17 / Fig. 11).
//!
//! `r_{B,A} = T_sim-A / T_sim-B = MFLUPS_B / MFLUPS_A`: how much faster
//! platform B runs the workload than platform A. Plotted as a heatmap (B
//! on rows, A on columns) it makes the optimal hardware visible at a
//! glance; weighting by cost turns it into a price/performance decision.

/// A labeled relative-value matrix: `values[b][a] = r_{B,A}`.
#[derive(Debug, Clone)]
pub struct ValueMatrix {
    /// Row/column labels (platform abbreviations), in input order.
    pub labels: Vec<String>,
    /// The matrix, rows = B, columns = A.
    pub values: Vec<Vec<f64>>,
}

impl ValueMatrix {
    /// Entry `r_{B,A}` by index.
    pub fn get(&self, b: usize, a: usize) -> f64 {
        self.values[b][a]
    }

    /// Index of the best (fastest) platform: the row whose minimum entry
    /// is largest (it dominates every comparison).
    pub fn best(&self) -> usize {
        (0..self.labels.len())
            .max_by(|&i, &j| {
                let min_i = self.values[i].iter().cloned().fold(f64::INFINITY, f64::min);
                let min_j = self.values[j].iter().cloned().fold(f64::INFINITY, f64::min);
                min_i.total_cmp(&min_j)
            })
            .expect("non-empty matrix")
    }
}

/// Build the Eq. 17 matrix from `(label, mflups)` pairs.
///
/// # Panics
/// Panics on empty input or non-positive throughputs.
pub fn relative_value_matrix(entries: &[(String, f64)]) -> ValueMatrix {
    assert!(!entries.is_empty(), "empty matrix");
    assert!(
        entries.iter().all(|&(_, m)| m > 0.0),
        "non-positive throughput"
    );
    let labels: Vec<String> = entries.iter().map(|(l, _)| l.clone()).collect();
    let values = entries
        .iter()
        .map(|&(_, mb)| entries.iter().map(|&(_, ma)| mb / ma).collect())
        .collect();
    ValueMatrix { labels, values }
}

/// Cost-weighted relative value: `r_{B,A} · (cost_A / cost_B)` — platform
/// B's advantage per dollar relative to A. Entries > 1 mean B does more
/// work per dollar.
pub fn cost_weighted_matrix(entries: &[(String, f64, f64)]) -> ValueMatrix {
    assert!(!entries.is_empty(), "empty matrix");
    assert!(
        entries.iter().all(|&(_, m, c)| m > 0.0 && c > 0.0),
        "non-positive throughput or cost"
    );
    let labels: Vec<String> = entries.iter().map(|(l, _, _)| l.clone()).collect();
    let values = entries
        .iter()
        .map(|&(_, mb, cb)| {
            entries
                .iter()
                .map(|&(_, ma, ca)| (mb / ma) * (ca / cb))
                .collect()
        })
        .collect();
    ValueMatrix { labels, values }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries() -> Vec<(String, f64)> {
        vec![
            ("TRC".into(), 100.0),
            ("CSP-2".into(), 123.23),
            ("CSP-2 EC".into(), 137.33),
        ]
    }

    #[test]
    fn diagonal_is_one() {
        let m = relative_value_matrix(&entries());
        for i in 0..3 {
            assert!((m.get(i, i) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn reproduces_fig11_structure() {
        // With throughputs in the paper's ratios, the matrix reproduces
        // Fig. 11's cells: r_{CSP-2, TRC} = 1.2323, r_{EC, TRC} = 1.3733,
        // r_{EC, CSP-2} = 1.1144.
        let m = relative_value_matrix(&entries());
        assert!((m.get(1, 0) - 1.2323).abs() < 1e-3);
        assert!((m.get(2, 0) - 1.3733).abs() < 1e-3);
        assert!((m.get(2, 1) - 1.1144).abs() < 1e-3);
        // Transposed cells are reciprocals.
        assert!((m.get(0, 1) - 1.0 / 1.2323).abs() < 1e-3);
    }

    #[test]
    fn reciprocity_holds() {
        let m = relative_value_matrix(&entries());
        for b in 0..3 {
            for a in 0..3 {
                assert!((m.get(b, a) * m.get(a, b) - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn best_is_fastest() {
        let m = relative_value_matrix(&entries());
        assert_eq!(m.best(), 2);
        assert_eq!(m.labels[m.best()], "CSP-2 EC");
    }

    #[test]
    fn cost_weighting_can_flip_the_winner() {
        // EC is fastest but much pricier: per dollar, the cheap platform
        // wins.
        let m = cost_weighted_matrix(&[
            ("cheap".into(), 100.0, 1.0),
            ("fast".into(), 130.0, 2.0),
        ]);
        // cheap vs fast per dollar: (100/130)·(2/1) ≈ 1.54 > 1.
        assert!(m.get(0, 1) > 1.0);
        assert_eq!(m.best(), 0);
    }

    #[test]
    #[should_panic(expected = "empty matrix")]
    fn empty_input_panics() {
        let _ = relative_value_matrix(&[]);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn zero_throughput_panics() {
        let _ = relative_value_matrix(&[("x".into(), 0.0)]);
    }
}

//! The **generalized** performance model (paper Eqs. 10-16): predictions
//! from the task count alone, with data and halo sizes estimated
//! *a priori*.
//!
//! Where the direct model consumes an actual decomposition, this model
//! estimates it:
//!
//! ```text
//! max_j(bytes_j) ≈ z · bytes_serial / n_tasks                  (Eq. 10)
//! z = c1·ln(c2(n_tasks − 1) + 1) + 1                           (Eq. 11)
//! m_max = (w/6)·(z·N/n_tasks)^(2/3) · 2 · point_bytes          (Eq. 13)
//! w = min(log2(n_tasks), 6)                                    (Eq. 14)
//! events = 4·log2((k1/n_n + k2)(n_tasks − n_n) + 1)            (Eq. 15)
//! t_comm = m_max/b + events·l                                  (Eq. 16)
//! ```
//!
//! `c1, c2, k1, k2` are empirical, fit against decomposition sweeps of
//! prior geometry data — reproduced here by sweeping the workload's own
//! grid. The model needs **no grid at prediction time**, so it can
//! extrapolate to allocations larger than any tested instance (the
//! paper's Fig. 11 predicts 2048 cores on platforms that offered 144) —
//! that reach is exactly what makes it the dashboard's engine.
//!
//! Per the paper, only *internodal* communication is modeled; intranodal
//! messages are neglected (its direct-model data shows they are
//! negligible — our Fig. 9 reproduction confirms).

use crate::characterize::PlatformCharacterization;
use crate::composition::{Composition, Prediction};
use crate::workload::Workload;
use hemocloud_decomp::events::{event_sweep_rcb, fit_event_sweep};
use hemocloud_decomp::imbalance::{fit_sweep, imbalance_sweep_rcb};
use hemocloud_fitting::models::{EventModel, ImbalanceModel};

/// The generalized model.
#[derive(Debug, Clone)]
pub struct GeneralModel {
    character: PlatformCharacterization,
    /// Fluid points of the workload (`N`).
    points: f64,
    /// Serial byte count per step (`n_bytes_serial`).
    serial_bytes: f64,
    /// Bytes exchanged per boundary point (`n_point_comm_bytes`).
    point_comm_bytes: f64,
    /// Eq. 11 fit.
    imbalance: ImbalanceModel,
    /// Eq. 15 fit.
    events: EventModel,
}

/// Task counts used when calibrating the empirical fits against a grid.
fn calibration_counts() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 32, 64, 128, 256]
}

impl GeneralModel {
    /// Build the model, calibrating `c1, c2, k1, k2` by sweeping the
    /// workload's own grid (the "prior HARVEY decomposition data" role).
    pub fn from_characterization(
        character: &PlatformCharacterization,
        workload: &Workload,
    ) -> Self {
        let counts = calibration_counts();
        let imb_samples = imbalance_sweep_rcb(&workload.grid, &counts);
        let imbalance = fit_sweep(&imb_samples).unwrap_or_else(ImbalanceModel::perfect);
        let ev_samples = event_sweep_rcb(
            &workload.grid,
            &counts,
            character.platform.cores_per_node,
        );
        let events = fit_event_sweep(&ev_samples).unwrap_or(EventModel {
            k1: 0.0,
            k2: 1.0,
            sse: 0.0,
        });
        Self::with_models(character, workload, imbalance, events)
    }

    /// Build with explicit (externally calibrated) empirical models.
    pub fn with_models(
        character: &PlatformCharacterization,
        workload: &Workload,
        imbalance: ImbalanceModel,
        events: EventModel,
    ) -> Self {
        Self {
            character: character.clone(),
            points: workload.points() as f64,
            serial_bytes: workload.serial_bytes,
            point_comm_bytes: workload.profile.boundary_point_bytes,
            imbalance,
            events,
        }
    }

    /// The imbalance fit in use.
    pub fn imbalance_model(&self) -> &ImbalanceModel {
        &self.imbalance
    }

    /// The event fit in use.
    pub fn event_model(&self) -> &EventModel {
        &self.events
    }

    /// Predict at `ranks` tasks (one per core, whole nodes). Unlike the
    /// direct model this never needs the grid, so any positive rank count
    /// is predictable — including hypothetical allocations beyond the
    /// platform's tested size.
    ///
    /// # Panics
    /// Panics at zero ranks.
    pub fn predict(&self, ranks: usize) -> Prediction {
        assert!(ranks > 0, "zero ranks");
        let cores_per_node = self.character.platform.cores_per_node;
        let n_nodes = ranks.div_ceil(cores_per_node);
        let tasks_per_node = ranks.min(cores_per_node);

        // Memory side: Eqs. 10-11 over the fitted Eq. 8 curve.
        let z = self.imbalance.eval(ranks);
        let max_bytes = z * self.serial_bytes / ranks as f64;
        let bw = self.character.per_task_bandwidth(tasks_per_node); // MB/s
        let mem_s = max_bytes / (bw * 1e6);

        // Communication side: Eqs. 13-16, internodal only.
        let (comm_bandwidth_s, comm_latency_s) = if n_nodes > 1 {
            let w = (ranks as f64).log2().min(6.0);
            let m_max = (w / 6.0)
                * (z * self.points / ranks as f64).powf(2.0 / 3.0)
                * 2.0
                * self.point_comm_bytes;
            let events = self.events.eval(ranks, n_nodes);
            let fit = &self.character.internodal_fit;
            (
                m_max / fit.bandwidth_mb_s * 1e-6,
                events * fit.latency_us * 1e-6,
            )
        } else {
            (0.0, 0.0)
        };

        let composition = Composition {
            mem_s,
            comm_bandwidth_s,
            comm_latency_s,
            ..Default::default()
        };
        Prediction::from_composition(ranks, self.points as usize, composition)
    }

    /// Predictions over a rank sweep.
    pub fn sweep(&self, ranks: &[usize]) -> Vec<Prediction> {
        ranks.iter().map(|&r| self.predict(r)).collect()
    }

    /// Shared-node prediction (paper Discussion): assume
    /// `cotenant_cores_per_node` of each node's cores are saturated by
    /// other tenants, so our tasks receive an even share of the node
    /// bandwidth evaluated at the *total* active core count. The
    /// communication terms are unchanged (the paper leaves co-tenant
    /// network interference to future work).
    ///
    /// # Panics
    /// Panics at zero ranks.
    pub fn predict_shared(&self, ranks: usize, cotenant_cores_per_node: usize) -> Prediction {
        assert!(ranks > 0, "zero ranks");
        let base = self.predict(ranks);
        let cores_per_node = self.character.platform.cores_per_node;
        let our_tasks = ranks.min(cores_per_node);
        let active = (our_tasks + cotenant_cores_per_node).min(cores_per_node);
        if active == our_tasks {
            return base;
        }
        let dedicated_bw = self.character.per_task_bandwidth(our_tasks);
        let shared_bw = self.character.per_task_bandwidth(active);
        let composition = Composition {
            mem_s: base.composition.mem_s * dedicated_bw / shared_bw,
            ..base.composition
        };
        Prediction::from_composition(ranks, self.points as usize, composition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::characterize;
    use crate::direct::DirectModel;
    use hemocloud_cluster::platform::Platform;
    use hemocloud_geometry::anatomy::CylinderSpec;

    fn setup(platform: &Platform) -> (GeneralModel, Workload) {
        let grid = CylinderSpec::default().with_resolution(12).build();
        let workload = Workload::harvey(&grid, 100);
        let character = characterize(platform, 42);
        (
            GeneralModel::from_characterization(&character, &workload),
            workload,
        )
    }

    #[test]
    fn single_node_prediction_has_no_comm() {
        let (m, _) = setup(&Platform::csp2());
        let p = m.predict(36);
        assert_eq!(p.composition.comm_latency_s, 0.0);
        assert_eq!(p.composition.comm_bandwidth_s, 0.0);
        assert!(p.composition.mem_s > 0.0);
    }

    #[test]
    fn multi_node_prediction_is_latency_dominated_on_csp2() {
        // The paper's Fig. 10 finding: on CSP-2's slow interconnect, "the
        // bulk of the internodal communication time is due to latency and
        // not due to insufficient bandwidth".
        let (m, _) = setup(&Platform::csp2());
        let p = m.predict(144);
        assert!(
            p.composition.comm_latency_s > p.composition.comm_bandwidth_s,
            "latency {} !> bandwidth {}",
            p.composition.comm_latency_s,
            p.composition.comm_bandwidth_s
        );
    }

    #[test]
    fn extrapolates_beyond_platform_allocation() {
        let (m, _) = setup(&Platform::csp2()); // 144 cores tested
        let p = m.predict(2048);
        assert!(p.mflups > 0.0);
        assert_eq!(p.ranks, 2048);
    }

    #[test]
    fn tracks_direct_model_at_moderate_scale() {
        // The generalized estimates should stay within ~2.5x of the direct
        // model's predictions where both are defined (the paper's Figs.
        // 7-8 show them close, with the general model drifting somewhat).
        let grid = CylinderSpec::default().with_resolution(12).build();
        let workload = Workload::harvey(&grid, 100);
        let character = characterize(&Platform::csp2(), 42);
        let general = GeneralModel::from_characterization(&character, &workload);
        let direct = DirectModel::new(character, workload);
        for ranks in [1usize, 8, 36, 72] {
            let g = general.predict(ranks);
            let d = direct.predict(ranks).unwrap();
            let ratio = g.mflups / d.mflups;
            assert!(
                (0.4..2.5).contains(&ratio),
                "ranks {ranks}: general {} vs direct {} (ratio {ratio})",
                g.mflups,
                d.mflups
            );
        }
    }

    #[test]
    fn strong_scaling_helps_within_a_node_then_latency_bites() {
        // Within one node, more ranks tap more of the two-line bandwidth
        // curve; across nodes on this small workload, internodal latency
        // inverts the trend — the paper's high-rank drop.
        let (m, _) = setup(&Platform::csp2());
        let p16 = m.predict(16);
        let p36 = m.predict(36);
        let p144 = m.predict(144);
        assert!(
            p36.step_time_s < p16.step_time_s,
            "36 ranks {} !< 16 ranks {}",
            p36.step_time_s,
            p16.step_time_s
        );
        assert!(
            p144.step_time_s > p36.step_time_s,
            "rollover expected on a small workload: {} vs {}",
            p144.step_time_s,
            p36.step_time_s
        );
    }

    #[test]
    #[should_panic(expected = "zero ranks")]
    fn zero_ranks_panics() {
        let (m, _) = setup(&Platform::csp2());
        let _ = m.predict(0);
    }

    #[test]
    fn shared_node_prediction_is_slower_and_tracks_the_engine() {
        use hemocloud_cluster::exec::{simulate_geometry, Overheads};
        let platform = Platform::csp2();
        let grid = CylinderSpec::default().with_resolution(12).build();
        let workload = Workload::harvey(&grid, 100);
        let character = characterize(&platform, 42);
        let model = GeneralModel::from_characterization(&character, &workload);

        let ranks = 8;
        let cotenants = 28;
        let dedicated = model.predict(ranks);
        let shared = model.predict_shared(ranks, cotenants);
        assert!(shared.mflups < dedicated.mflups);
        // No spare cores → no change.
        assert_eq!(model.predict_shared(36, cotenants).mflups, model.predict(36).mflups);

        // Direction agrees with the timing engine's co-tenant mode, and the
        // predicted slowdown ratio is in the same ballpark.
        let cfg = hemocloud_lbm::kernel::KernelConfig::harvey();
        let m_ded =
            simulate_geometry(&platform, &grid, &cfg, ranks, 100, &Overheads::default(), 1, 0.0)
                .unwrap();
        let m_shared = simulate_geometry(
            &platform,
            &grid,
            &cfg,
            ranks,
            100,
            &Overheads {
                cotenant_cores_per_node: cotenants,
                ..Default::default()
            },
            1,
            0.0,
        )
        .unwrap();
        let predicted_slowdown = dedicated.mflups / shared.mflups;
        let measured_slowdown = m_ded.mflups / m_shared.mflups;
        assert!(predicted_slowdown > 1.2);
        assert!(
            (predicted_slowdown / measured_slowdown - 1.0).abs() < 0.5,
            "slowdowns diverge: predicted {predicted_slowdown} vs measured {measured_slowdown}"
        );
    }
}

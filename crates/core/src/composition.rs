//! Prediction outputs and runtime-composition breakdowns.
//!
//! Figs. 9 and 10 of the paper plot "the composition of maximum task
//! runtimes": how much of the predicted step time is memory access versus
//! intranodal versus internodal communication (direct model), or memory
//! versus communication bandwidth versus communication latency (general
//! model). [`Composition`] carries both decompositions; unused fields are
//! zero.

/// Breakdown of one predicted timestep, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Composition {
    /// Memory-access time of the slowest task.
    pub mem_s: f64,
    /// Intranodal communication time (direct model; Fig. 9's green band).
    pub intra_s: f64,
    /// Internodal communication time (direct model; Fig. 9's purple band).
    pub inter_s: f64,
    /// Communication time attributable to bandwidth, `m/b` (general
    /// model; Fig. 10).
    pub comm_bandwidth_s: f64,
    /// Communication time attributable to latency, `events · l` (general
    /// model; Fig. 10).
    pub comm_latency_s: f64,
    /// Floating-point compute time (zero unless the FLOP-roofline
    /// extension of `crate::roofline` is applied).
    pub compute_s: f64,
}

impl Composition {
    /// Total predicted step time.
    pub fn total_s(&self) -> f64 {
        self.mem_s
            + self.intra_s
            + self.inter_s
            + self.comm_bandwidth_s
            + self.comm_latency_s
            + self.compute_s
    }

    /// Fraction of the step spent in memory access.
    pub fn mem_fraction(&self) -> f64 {
        let t = self.total_s();
        if t == 0.0 {
            0.0
        } else {
            self.mem_s / t
        }
    }
}

/// One model prediction at a given rank count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// MPI ranks (one per core).
    pub ranks: usize,
    /// Predicted seconds per timestep.
    pub step_time_s: f64,
    /// Predicted throughput, MFLUPS (Eq. 7).
    pub mflups: f64,
    /// Where the time goes.
    pub composition: Composition,
}

impl Prediction {
    /// Assemble a prediction from a composition and workload size.
    pub fn from_composition(ranks: usize, points: usize, composition: Composition) -> Self {
        let step_time_s = composition.total_s();
        Self {
            ranks,
            step_time_s,
            mflups: if step_time_s > 0.0 {
                points as f64 / step_time_s / 1e6
            } else {
                0.0
            },
            composition,
        }
    }

    /// Predicted wall-clock seconds for `steps` timesteps.
    pub fn time_for_steps(&self, steps: u64) -> f64 {
        self.step_time_s * steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_fields() {
        let c = Composition {
            mem_s: 1.0,
            intra_s: 0.5,
            inter_s: 0.25,
            ..Default::default()
        };
        assert!((c.total_s() - 1.75).abs() < 1e-12);
        assert!((c.mem_fraction() - 1.0 / 1.75).abs() < 1e-12);
    }

    #[test]
    fn prediction_mflups_inverts_step_time() {
        let c = Composition {
            mem_s: 0.001,
            ..Default::default()
        };
        let p = Prediction::from_composition(8, 100_000, c);
        assert!((p.mflups - 100.0).abs() < 1e-9);
        assert!((p.time_for_steps(1000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_composition_is_safe() {
        let p = Prediction::from_composition(1, 100, Composition::default());
        assert_eq!(p.mflups, 0.0);
        assert_eq!(p.composition.mem_fraction(), 0.0);
    }
}

//! The CSP Option Dashboard (paper Fig. 1, Discussion §IV).
//!
//! For a given workload, the dashboard tabulates every (platform, rank
//! count) option with its predicted throughput, time-to-solution and
//! dollar cost, then recommends an option under a user-chosen objective:
//! maximum throughput, minimum cost, or cheapest-within-deadline —
//! "it is ultimately up to the end user to determine what is important to
//! them and define an appropriate cost metric to fit".

use crate::characterize::PlatformCharacterization;
use crate::composition::{Composition, Prediction};
use crate::general::GeneralModel;
use crate::workload::Workload;
use hemocloud_cluster::platform::Platform;
use hemocloud_cluster::pricing::PriceSheet;
use hemocloud_cluster::topology::{build_topology, routed_task_comm, TopologyVariant};
use hemocloud_decomp::halo::DecompAnalysis;
use hemocloud_decomp::placement::Placement;
use hemocloud_decomp::rcb::RcbPartition;

/// The user's optimization objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Fastest time to solution regardless of cost.
    MaxThroughput,
    /// Cheapest total cost regardless of time.
    MinCost,
    /// Cheapest option that finishes within the deadline (seconds).
    Deadline(f64),
}

/// One row of the dashboard.
#[derive(Debug, Clone, PartialEq)]
pub struct DashboardEntry {
    /// Platform abbreviation.
    pub platform: String,
    /// Ranks (one per core).
    pub ranks: usize,
    /// Whole nodes billed.
    pub nodes: usize,
    /// Predicted throughput, MFLUPS.
    pub predicted_mflups: f64,
    /// Predicted wall-clock seconds for the whole campaign.
    pub time_to_solution_s: f64,
    /// Predicted total cost, dollars.
    pub cost_dollars: f64,
    /// Work per dollar: fluid-point updates per dollar.
    pub updates_per_dollar: f64,
    /// Communication pricing behind this row: `"scalar"` for the Eq. 12
    /// model, or the routed topology variant (`"fat-tree"`,
    /// `"placement-group"`, `"spread"`) whose fabric repriced the
    /// internodal term.
    pub topology: String,
}

/// The dashboard: all options for one workload.
#[derive(Debug, Clone)]
pub struct Dashboard {
    /// Workload the options were computed for.
    pub workload_name: String,
    /// All feasible options.
    pub entries: Vec<DashboardEntry>,
}

impl Dashboard {
    /// Build the dashboard from characterized platforms.
    ///
    /// Each platform contributes one entry per rank option that fits its
    /// allocation (rank counts above `total_cores` are skipped — unlike
    /// pure prediction, the dashboard only offers options the user can
    /// actually buy).
    pub fn build(
        characterizations: &[PlatformCharacterization],
        workload: &Workload,
        rank_options: &[usize],
        prices: &PriceSheet,
    ) -> Self {
        Self::build_routed(characterizations, workload, rank_options, prices, &[])
    }

    /// [`Dashboard::build`] with a topology axis: besides the scalar row,
    /// each feasible `(platform, ranks)` cell contributes one row per
    /// requested topology variant, its internodal term repriced by
    /// routing the workload's exact Eq. 9 halo messages through that
    /// variant's fabric (store-and-forward, per-link serialization, no
    /// cross-job traffic — the dashboard prices one job in isolation).
    /// Multi-hop variants on oversubscribed fabrics cost more than a
    /// placement group, so `recommend` now trades topology against
    /// platform and rank count in one pass.
    pub fn build_routed(
        characterizations: &[PlatformCharacterization],
        workload: &Workload,
        rank_options: &[usize],
        prices: &PriceSheet,
        variants: &[TopologyVariant],
    ) -> Self {
        let mut entries = Vec::new();
        for character in characterizations {
            let platform = &character.platform;
            let model = GeneralModel::from_characterization(character, workload);
            for &ranks in rank_options {
                if ranks == 0 || ranks > platform.total_cores {
                    continue;
                }
                let prediction = model.predict(ranks);
                if prediction.mflups <= 0.0 {
                    continue;
                }
                let nodes = platform.nodes_for_ranks(ranks);
                let mut push = |prediction: &Prediction, topology: &str| {
                    let time = prediction.time_for_steps(workload.steps);
                    let cost = prices.cost(platform, nodes, time);
                    entries.push(DashboardEntry {
                        platform: platform.abbrev.to_string(),
                        ranks,
                        nodes,
                        predicted_mflups: prediction.mflups,
                        time_to_solution_s: time,
                        cost_dollars: cost,
                        updates_per_dollar: if cost > 0.0 {
                            workload.total_updates() / cost
                        } else {
                            f64::INFINITY
                        },
                        topology: topology.to_string(),
                    });
                };
                push(&prediction, "scalar");
                for &variant in variants {
                    if let Some(routed) =
                        routed_prediction(platform, workload, ranks, &prediction, variant)
                    {
                        push(&routed, variant.name());
                    }
                }
            }
        }
        Self {
            workload_name: workload.name.clone(),
            entries,
        }
    }

    /// Render the dashboard as deterministic JSON: fixed key order, fixed
    /// float precision, entries in build order. Byte-identical across
    /// reruns, thread counts and machines.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024 + 256 * self.entries.len());
        s.push_str("{\n");
        s.push_str("  \"report\": \"hemocloud_dashboard\",\n");
        s.push_str(&format!(
            "  \"workload\": {:?},\n",
            self.workload_name
        ));
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"platform\": {:?}, \"topology\": {:?}, \"ranks\": {}, \"nodes\": {}, \"predicted_mflups\": {:.6}, \"time_to_solution_s\": {:.6}, \"cost_dollars\": {:.6}, \"updates_per_dollar\": {:.3}}}{comma}\n",
                e.platform,
                e.topology,
                e.ranks,
                e.nodes,
                e.predicted_mflups,
                e.time_to_solution_s,
                e.cost_dollars,
                e.updates_per_dollar,
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }

    /// Recommend an option under an objective. Returns `None` when no
    /// entry qualifies (e.g. an unmeetable deadline).
    pub fn recommend(&self, objective: Objective) -> Option<&DashboardEntry> {
        self.recommend_index(objective).map(|i| &self.entries[i])
    }

    /// Index of the recommended option in [`Dashboard::entries`], or
    /// `None` when no entry qualifies.
    ///
    /// This is the lookup a scheduler should carry around instead of the
    /// entry itself: entries are plain value rows, so matching a winner
    /// back by `==` silently resolves duplicate predictions (two pools
    /// priced identically) to the *first* duplicate rather than the row
    /// that actually won. The index is unambiguous. Ties on the
    /// objective metric break toward the earliest entry, deterministic
    /// under `total_cmp` even for NaN metrics.
    pub fn recommend_index(&self, objective: Objective) -> Option<usize> {
        let candidates = self.entries.iter().enumerate();
        match objective {
            Objective::MaxThroughput => candidates
                .min_by(|(_, a), (_, b)| a.time_to_solution_s.total_cmp(&b.time_to_solution_s))
                .map(|(i, _)| i),
            Objective::MinCost => candidates
                .min_by(|(_, a), (_, b)| a.cost_dollars.total_cmp(&b.cost_dollars))
                .map(|(i, _)| i),
            Objective::Deadline(seconds) => candidates
                .filter(|(_, e)| e.time_to_solution_s <= seconds)
                .min_by(|(_, a), (_, b)| a.cost_dollars.total_cmp(&b.cost_dollars))
                .map(|(i, _)| i),
        }
    }

    /// All entries for one platform, sorted by rank count.
    pub fn for_platform(&self, abbrev: &str) -> Vec<&DashboardEntry> {
        let mut v: Vec<&DashboardEntry> = self
            .entries
            .iter()
            .filter(|e| e.platform == abbrev)
            .collect();
        v.sort_by_key(|e| e.ranks);
        v
    }
}

/// Reprice `base`'s communication under a routed fabric: decompose the
/// workload's retained grid exactly (the direct model's Eq. 9 analysis),
/// route every internodal halo message through `variant`'s topology, and
/// substitute the resulting worst-task delivery time for the general
/// model's Eq. 13-16 comm terms. The memory side is untouched. `None`
/// when the grid cannot host `ranks` subdomains (the scaled-census
/// workloads keep their original grid, so they fall back to scalar rows
/// once ranks outgrow it).
fn routed_prediction(
    platform: &Platform,
    workload: &Workload,
    ranks: usize,
    base: &Prediction,
    variant: TopologyVariant,
) -> Option<Prediction> {
    if ranks > workload.grid.fluid_count() {
        return None;
    }
    let partition = RcbPartition::new(&workload.grid, ranks);
    let analysis = DecompAnalysis::analyze(&workload.grid, &partition);
    let placement = Placement::contiguous(ranks, platform.cores_per_node);
    let topology = build_topology(platform, variant, placement.n_nodes());
    let node_map: Vec<usize> = (0..placement.n_nodes()).collect();
    let routed = routed_task_comm(
        &topology,
        &analysis,
        &placement,
        &node_map,
        workload.profile.boundary_point_bytes,
        0.0,
        &[],
    );
    let inter_s = routed
        .per_task_inter_s
        .iter()
        .fold(0.0f64, |a, &b| a.max(b));
    let composition = Composition {
        inter_s,
        comm_bandwidth_s: 0.0,
        comm_latency_s: 0.0,
        ..base.composition
    };
    Some(Prediction::from_composition(
        ranks,
        workload.points(),
        composition,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::characterize;
    use hemocloud_cluster::platform::Platform;
    use hemocloud_geometry::anatomy::CylinderSpec;

    fn dashboard() -> Dashboard {
        let grid = CylinderSpec::default().with_resolution(12).build();
        let workload = Workload::harvey(&grid, 10_000);
        let characterizations: Vec<_> = [Platform::trc(), Platform::csp2(), Platform::csp2_small()]
            .iter()
            .map(|p| characterize(p, 42))
            .collect();
        Dashboard::build(
            &characterizations,
            &workload,
            &[16, 32, 64, 128, 512],
            &PriceSheet::default(),
        )
    }

    #[test]
    fn respects_platform_allocations() {
        let d = dashboard();
        // CSP-2 offers 144 cores: no 512-rank entry; CSP-2 Small offers
        // 128: the 128-rank option exists.
        assert!(d.for_platform("CSP-2").iter().all(|e| e.ranks <= 144));
        assert!(d
            .for_platform("CSP-2 Small")
            .iter()
            .any(|e| e.ranks == 128));
        // TRC has 2000 cores: 512 ranks present.
        assert!(d.for_platform("TRC").iter().any(|e| e.ranks == 512));
    }

    #[test]
    fn throughput_recommendation_is_fastest() {
        let d = dashboard();
        let best = d.recommend(Objective::MaxThroughput).unwrap();
        for e in &d.entries {
            assert!(best.time_to_solution_s <= e.time_to_solution_s);
        }
    }

    #[test]
    fn cost_recommendation_is_cheapest() {
        let d = dashboard();
        let best = d.recommend(Objective::MinCost).unwrap();
        for e in &d.entries {
            assert!(best.cost_dollars <= e.cost_dollars);
        }
    }

    #[test]
    fn deadline_filters_then_minimizes_cost() {
        let d = dashboard();
        let fastest = d.recommend(Objective::MaxThroughput).unwrap();
        let within = d
            .recommend(Objective::Deadline(fastest.time_to_solution_s * 4.0))
            .unwrap();
        assert!(within.time_to_solution_s <= fastest.time_to_solution_s * 4.0);
        // Impossible deadline yields no recommendation.
        assert!(d
            .recommend(Objective::Deadline(fastest.time_to_solution_s * 1e-6))
            .is_none());
    }

    #[test]
    fn duplicate_predictions_resolve_to_the_winning_index() {
        // Two pools priced *identically* except for their platform label —
        // the duplicate-row shape that made the old match-back-by-`==`
        // lookup ambiguous. The recommendation must be an index, it must
        // be the first duplicate (ties break toward the earliest entry),
        // and the caller can tell which row won even though the rows
        // compare equal on every metric.
        let row = |platform: &str, cost: f64| DashboardEntry {
            platform: platform.to_string(),
            ranks: 16,
            nodes: 1,
            predicted_mflups: 100.0,
            time_to_solution_s: 500.0,
            cost_dollars: cost,
            updates_per_dollar: 1.0e9 / cost,
            topology: "scalar".to_string(),
        };
        let d = Dashboard {
            workload_name: "dup".into(),
            entries: vec![row("A", 3.0), row("B", 1.0), row("C", 1.0)],
        };
        let i = d.recommend_index(Objective::MinCost).unwrap();
        assert_eq!(i, 1, "earliest of the tied cheapest rows wins");
        assert_eq!(d.recommend(Objective::MinCost).unwrap().platform, "B");
        // Same duplicate metrics under the other objectives.
        assert_eq!(d.recommend_index(Objective::MaxThroughput), Some(0));
        assert_eq!(d.recommend_index(Objective::Deadline(600.0)), Some(1));
        assert_eq!(d.recommend_index(Objective::Deadline(1.0)), None);
        // recommend() and recommend_index() always agree on the row.
        for obj in [
            Objective::MinCost,
            Objective::MaxThroughput,
            Objective::Deadline(600.0),
        ] {
            assert_eq!(
                d.recommend(obj),
                d.recommend_index(obj).map(|i| &d.entries[i])
            );
        }
    }

    #[test]
    fn entries_have_consistent_cost_metrics() {
        let d = dashboard();
        for e in &d.entries {
            assert!(e.cost_dollars > 0.0);
            assert!(e.updates_per_dollar.is_finite());
            assert!(e.nodes >= 1);
            assert_eq!(e.topology, "scalar", "plain build prices scalar comm");
        }
    }

    fn routed_dashboard() -> Dashboard {
        use hemocloud_cluster::topology::TopologyVariant;
        let grid = CylinderSpec::default().with_resolution(12).build();
        let workload = Workload::harvey(&grid, 10_000);
        let characterizations: Vec<_> = [Platform::csp2(), Platform::csp2_small()]
            .iter()
            .map(|p| characterize(p, 42))
            .collect();
        Dashboard::build_routed(
            &characterizations,
            &workload,
            &[16, 32, 64, 128],
            &PriceSheet::default(),
            &[TopologyVariant::PlacementGroup, TopologyVariant::Spread],
        )
    }

    #[test]
    fn topology_axis_multiplies_candidates_and_orders_variants() {
        let d = routed_dashboard();
        // Every (platform, ranks) cell carries a scalar row plus one row
        // per variant (the cylinder grid hosts all these rank counts).
        for topo in ["scalar", "placement-group", "spread"] {
            assert!(
                d.entries.iter().any(|e| e.topology == topo),
                "missing {topo} rows"
            );
        }
        // On multi-node cells, the oversubscribed spread fabric is never
        // faster than the one-hop placement group at the same cell.
        for e in d.entries.iter().filter(|e| e.topology == "spread") {
            if e.nodes < 2 {
                continue;
            }
            let pg = d
                .entries
                .iter()
                .find(|o| {
                    o.platform == e.platform
                        && o.ranks == e.ranks
                        && o.topology == "placement-group"
                })
                .expect("matching placement-group row");
            assert!(
                e.time_to_solution_s >= pg.time_to_solution_s,
                "{} ranks {}: spread {} faster than placement group {}",
                e.platform,
                e.ranks,
                e.time_to_solution_s,
                pg.time_to_solution_s
            );
        }
        // recommend() now picks across the topology axis too: the winner
        // carries a topology tag, and it is never an oversubscribed
        // variant when a same-cell placement-group row beats it.
        let best = d.recommend(Objective::MaxThroughput).unwrap();
        assert!(!best.topology.is_empty());
    }

    #[test]
    fn json_rendering_is_deterministic_and_tagged() {
        let d = routed_dashboard();
        let a = d.to_json();
        let b = d.to_json();
        assert_eq!(a, b, "rendering must be deterministic");
        assert!(a.contains("\"topology\": \"spread\""));
        assert!(a.contains("\"topology\": \"scalar\""));
        assert!(a.contains("\"report\": \"hemocloud_dashboard\""));
        assert!(!a.to_lowercase().contains("nan"));
        assert!(!a.to_lowercase().contains("inf"));
        // Entry count: one line per entry between the brackets.
        let rows = a.matches("\"platform\": ").count();
        assert_eq!(rows, d.entries.len());
    }
}

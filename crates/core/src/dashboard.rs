//! The CSP Option Dashboard (paper Fig. 1, Discussion §IV).
//!
//! For a given workload, the dashboard tabulates every (platform, rank
//! count) option with its predicted throughput, time-to-solution and
//! dollar cost, then recommends an option under a user-chosen objective:
//! maximum throughput, minimum cost, or cheapest-within-deadline —
//! "it is ultimately up to the end user to determine what is important to
//! them and define an appropriate cost metric to fit".

use crate::characterize::PlatformCharacterization;
use crate::general::GeneralModel;
use crate::workload::Workload;
use hemocloud_cluster::pricing::PriceSheet;

/// The user's optimization objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Fastest time to solution regardless of cost.
    MaxThroughput,
    /// Cheapest total cost regardless of time.
    MinCost,
    /// Cheapest option that finishes within the deadline (seconds).
    Deadline(f64),
}

/// One row of the dashboard.
#[derive(Debug, Clone, PartialEq)]
pub struct DashboardEntry {
    /// Platform abbreviation.
    pub platform: String,
    /// Ranks (one per core).
    pub ranks: usize,
    /// Whole nodes billed.
    pub nodes: usize,
    /// Predicted throughput, MFLUPS.
    pub predicted_mflups: f64,
    /// Predicted wall-clock seconds for the whole campaign.
    pub time_to_solution_s: f64,
    /// Predicted total cost, dollars.
    pub cost_dollars: f64,
    /// Work per dollar: fluid-point updates per dollar.
    pub updates_per_dollar: f64,
}

/// The dashboard: all options for one workload.
#[derive(Debug, Clone)]
pub struct Dashboard {
    /// Workload the options were computed for.
    pub workload_name: String,
    /// All feasible options.
    pub entries: Vec<DashboardEntry>,
}

impl Dashboard {
    /// Build the dashboard from characterized platforms.
    ///
    /// Each platform contributes one entry per rank option that fits its
    /// allocation (rank counts above `total_cores` are skipped — unlike
    /// pure prediction, the dashboard only offers options the user can
    /// actually buy).
    pub fn build(
        characterizations: &[PlatformCharacterization],
        workload: &Workload,
        rank_options: &[usize],
        prices: &PriceSheet,
    ) -> Self {
        let mut entries = Vec::new();
        for character in characterizations {
            let platform = &character.platform;
            let model = GeneralModel::from_characterization(character, workload);
            for &ranks in rank_options {
                if ranks == 0 || ranks > platform.total_cores {
                    continue;
                }
                let prediction = model.predict(ranks);
                if prediction.mflups <= 0.0 {
                    continue;
                }
                let time = prediction.time_for_steps(workload.steps);
                let nodes = platform.nodes_for_ranks(ranks);
                let cost = prices.cost(platform, nodes, time);
                entries.push(DashboardEntry {
                    platform: platform.abbrev.to_string(),
                    ranks,
                    nodes,
                    predicted_mflups: prediction.mflups,
                    time_to_solution_s: time,
                    cost_dollars: cost,
                    updates_per_dollar: if cost > 0.0 {
                        workload.total_updates() / cost
                    } else {
                        f64::INFINITY
                    },
                });
            }
        }
        Self {
            workload_name: workload.name.clone(),
            entries,
        }
    }

    /// Recommend an option under an objective. Returns `None` when no
    /// entry qualifies (e.g. an unmeetable deadline).
    pub fn recommend(&self, objective: Objective) -> Option<&DashboardEntry> {
        self.recommend_index(objective).map(|i| &self.entries[i])
    }

    /// Index of the recommended option in [`Dashboard::entries`], or
    /// `None` when no entry qualifies.
    ///
    /// This is the lookup a scheduler should carry around instead of the
    /// entry itself: entries are plain value rows, so matching a winner
    /// back by `==` silently resolves duplicate predictions (two pools
    /// priced identically) to the *first* duplicate rather than the row
    /// that actually won. The index is unambiguous. Ties on the
    /// objective metric break toward the earliest entry, deterministic
    /// under `total_cmp` even for NaN metrics.
    pub fn recommend_index(&self, objective: Objective) -> Option<usize> {
        let candidates = self.entries.iter().enumerate();
        match objective {
            Objective::MaxThroughput => candidates
                .min_by(|(_, a), (_, b)| a.time_to_solution_s.total_cmp(&b.time_to_solution_s))
                .map(|(i, _)| i),
            Objective::MinCost => candidates
                .min_by(|(_, a), (_, b)| a.cost_dollars.total_cmp(&b.cost_dollars))
                .map(|(i, _)| i),
            Objective::Deadline(seconds) => candidates
                .filter(|(_, e)| e.time_to_solution_s <= seconds)
                .min_by(|(_, a), (_, b)| a.cost_dollars.total_cmp(&b.cost_dollars))
                .map(|(i, _)| i),
        }
    }

    /// All entries for one platform, sorted by rank count.
    pub fn for_platform(&self, abbrev: &str) -> Vec<&DashboardEntry> {
        let mut v: Vec<&DashboardEntry> = self
            .entries
            .iter()
            .filter(|e| e.platform == abbrev)
            .collect();
        v.sort_by_key(|e| e.ranks);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::characterize;
    use hemocloud_cluster::platform::Platform;
    use hemocloud_geometry::anatomy::CylinderSpec;

    fn dashboard() -> Dashboard {
        let grid = CylinderSpec::default().with_resolution(12).build();
        let workload = Workload::harvey(&grid, 10_000);
        let characterizations: Vec<_> = [Platform::trc(), Platform::csp2(), Platform::csp2_small()]
            .iter()
            .map(|p| characterize(p, 42))
            .collect();
        Dashboard::build(
            &characterizations,
            &workload,
            &[16, 32, 64, 128, 512],
            &PriceSheet::default(),
        )
    }

    #[test]
    fn respects_platform_allocations() {
        let d = dashboard();
        // CSP-2 offers 144 cores: no 512-rank entry; CSP-2 Small offers
        // 128: the 128-rank option exists.
        assert!(d.for_platform("CSP-2").iter().all(|e| e.ranks <= 144));
        assert!(d
            .for_platform("CSP-2 Small")
            .iter()
            .any(|e| e.ranks == 128));
        // TRC has 2000 cores: 512 ranks present.
        assert!(d.for_platform("TRC").iter().any(|e| e.ranks == 512));
    }

    #[test]
    fn throughput_recommendation_is_fastest() {
        let d = dashboard();
        let best = d.recommend(Objective::MaxThroughput).unwrap();
        for e in &d.entries {
            assert!(best.time_to_solution_s <= e.time_to_solution_s);
        }
    }

    #[test]
    fn cost_recommendation_is_cheapest() {
        let d = dashboard();
        let best = d.recommend(Objective::MinCost).unwrap();
        for e in &d.entries {
            assert!(best.cost_dollars <= e.cost_dollars);
        }
    }

    #[test]
    fn deadline_filters_then_minimizes_cost() {
        let d = dashboard();
        let fastest = d.recommend(Objective::MaxThroughput).unwrap();
        let within = d
            .recommend(Objective::Deadline(fastest.time_to_solution_s * 4.0))
            .unwrap();
        assert!(within.time_to_solution_s <= fastest.time_to_solution_s * 4.0);
        // Impossible deadline yields no recommendation.
        assert!(d
            .recommend(Objective::Deadline(fastest.time_to_solution_s * 1e-6))
            .is_none());
    }

    #[test]
    fn duplicate_predictions_resolve_to_the_winning_index() {
        // Two pools priced *identically* except for their platform label —
        // the duplicate-row shape that made the old match-back-by-`==`
        // lookup ambiguous. The recommendation must be an index, it must
        // be the first duplicate (ties break toward the earliest entry),
        // and the caller can tell which row won even though the rows
        // compare equal on every metric.
        let row = |platform: &str, cost: f64| DashboardEntry {
            platform: platform.to_string(),
            ranks: 16,
            nodes: 1,
            predicted_mflups: 100.0,
            time_to_solution_s: 500.0,
            cost_dollars: cost,
            updates_per_dollar: 1.0e9 / cost,
        };
        let d = Dashboard {
            workload_name: "dup".into(),
            entries: vec![row("A", 3.0), row("B", 1.0), row("C", 1.0)],
        };
        let i = d.recommend_index(Objective::MinCost).unwrap();
        assert_eq!(i, 1, "earliest of the tied cheapest rows wins");
        assert_eq!(d.recommend(Objective::MinCost).unwrap().platform, "B");
        // Same duplicate metrics under the other objectives.
        assert_eq!(d.recommend_index(Objective::MaxThroughput), Some(0));
        assert_eq!(d.recommend_index(Objective::Deadline(600.0)), Some(1));
        assert_eq!(d.recommend_index(Objective::Deadline(1.0)), None);
        // recommend() and recommend_index() always agree on the row.
        for obj in [
            Objective::MinCost,
            Objective::MaxThroughput,
            Objective::Deadline(600.0),
        ] {
            assert_eq!(
                d.recommend(obj),
                d.recommend_index(obj).map(|i| &d.entries[i])
            );
        }
    }

    #[test]
    fn entries_have_consistent_cost_metrics() {
        let d = dashboard();
        for e in &d.entries {
            assert!(e.cost_dollars > 0.0);
            assert!(e.updates_per_dollar.is_finite());
            assert!(e.nodes >= 1);
        }
    }
}

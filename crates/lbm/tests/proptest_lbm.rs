//! Property tests for the LBM kernels (`hemocloud_rt::check`): physical
//! invariants over random parameters and geometries.

use hemocloud_lbm::equilibrium::{equilibrium_d3q19, moments_d3q19};
use hemocloud_lbm::kernel::{KernelConfig, Layout, Propagation};
use hemocloud_lbm::lattice::{opposite, Q19, W19};
use hemocloud_lbm::proxy::ProxyApp;
use hemocloud_rt::check::{self, Config};

#[test]
fn bgk_collision_conserves_mass_and_momentum() {
    check::run(
        "bgk_collision_conserves_mass_and_momentum",
        Config::cases(24),
        |rng| {
            // A BGK update of any (positive) distribution leaves rho and j
            // unchanged: f' = f - omega (f - feq(f)) with feq built from
            // f's own moments.
            let omega = rng.range_f64(0.3, 1.8);
            let mut f = [0.0f64; Q19];
            for q in 0..Q19 {
                let perturbation = rng.range_f64(-0.005, 0.005);
                f[q] = W19[q] + perturbation.max(-0.8 * W19[q]);
            }
            let (rho, jx, jy, jz) = moments_d3q19(&f);
            let mut feq = [0.0f64; Q19];
            equilibrium_d3q19(rho, jx / rho, jy / rho, jz / rho, &mut feq);
            let mut post = [0.0f64; Q19];
            for q in 0..Q19 {
                post[q] = f[q] - omega * (f[q] - feq[q]);
            }
            let (r2, x2, y2, z2) = moments_d3q19(&post);
            assert!((rho - r2).abs() < 1e-13);
            assert!((jx - x2).abs() < 1e-13);
            assert!((jy - y2).abs() < 1e-13);
            assert!((jz - z2).abs() < 1e-13);
        },
    );
}

#[test]
fn proxy_conserves_mass_for_random_parameters() {
    check::run(
        "proxy_conserves_mass_for_random_parameters",
        Config::cases(24),
        |rng| {
            let diameter = rng.range_usize(5, 10);
            let length = rng.range_usize(3, 7);
            let tau = rng.range_f64(0.6, 1.4);
            let gravity = rng.range_f64(0.0, 5e-5);
            let layout = if rng.next_bool() { Layout::Aos } else { Layout::Soa };
            let propagation = if rng.next_bool() {
                Propagation::Ab
            } else {
                Propagation::Aa
            };
            let cfg = KernelConfig::proxy(layout, propagation, true);
            let mut app = ProxyApp::new(diameter, length, cfg, tau, gravity);
            let m0 = app.total_mass();
            for _ in 0..20 {
                app.step();
            }
            let m1 = app.total_mass();
            assert!((m0 - m1).abs() < 1e-9 * m0, "{m0} -> {m1}");
        },
    );
}

#[test]
fn aa_equals_streamed_ab_for_random_parameters() {
    check::run(
        "aa_equals_streamed_ab_for_random_parameters",
        Config::cases(24),
        |rng| {
            // The exact propagation-equivalence relation AA_2k = S(AB_2k),
            // checked at a probe cell for random physics parameters.
            let diameter = rng.range_usize(5, 9);
            let tau = rng.range_f64(0.6, 1.4);
            let gravity = rng.range_f64(1e-7, 3e-5);
            let steps = rng.range_u64(2, 8) * 2;
            let mut ab = ProxyApp::new(
                diameter,
                5,
                KernelConfig::proxy(Layout::Aos, Propagation::Ab, true),
                tau,
                gravity,
            );
            let mut aa = ProxyApp::new(
                diameter,
                5,
                KernelConfig::proxy(Layout::Soa, Propagation::Aa, true),
                tau,
                gravity,
            );
            for _ in 0..steps {
                ab.step();
                aa.step();
            }
            let probe = (diameter / 2 + 1, diameter / 2 + 1, 2);
            let (r_ab, _, _, w_ab) = ab.post_stream_macroscopics(probe.0, probe.1, probe.2);
            let (r_aa, _, _, w_aa) = aa.macroscopics(probe.0, probe.1, probe.2);
            assert!((r_ab - r_aa).abs() < 1e-12, "rho {r_ab} vs {r_aa}");
            assert!((w_ab - w_aa).abs() < 1e-12, "uz {w_ab} vs {w_aa}");
        },
    );
}

#[test]
fn opposite_pairs_annihilate_momentum() {
    check::run("opposite_pairs_annihilate_momentum", Config::cases(24), |rng| {
        // f with equal mass in q and opposite(q) carries no momentum along
        // any axis from that pair.
        let q = rng.range_usize(0, Q19);
        let mut f = [0.0f64; Q19];
        f[q] = 0.3;
        f[opposite(q)] += 0.3;
        let (_, jx, jy, jz) = moments_d3q19(&f);
        assert!(jx.abs() < 1e-15 && jy.abs() < 1e-15 && jz.abs() < 1e-15);
    });
}

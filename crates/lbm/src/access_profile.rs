//! Memory-access accounting for LBM kernels — the inputs to the paper's
//! Eq. 9.
//!
//! The performance model estimates per-task update time as *bytes accessed
//! / sustained bandwidth*, so it needs the bytes each fluid-point update
//! touches. Counting rules (matching the paper's conventions — plain reads
//! plus writes, no write-allocate traffic, since the STREAM bandwidths the
//! model divides by are reported under the same convention):
//!
//! * **AB**: every step reads 19 distributions, writes 19, and reads the
//!   19-entry streaming index row (4 bytes/entry; both HARVEY's sparse mesh
//!   and `lbm-proxy-app` use a precomputed neighbor/offset array).
//! * **AA**: the even step touches no index array and only the cell's own
//!   19 values; averaged over a step pair the index traffic halves — the
//!   source of the paper's "AA shifted upwards from AB".
//! * **Wall points**: a solid link needs no index entry and its
//!   bounce-back read comes from the cell's own row (cache-resident), so
//!   each solid link removes one remote read and one index read — the
//!   reason the wall-heavy cerebral geometry performs best (paper §III-D).
//!
//! **Which STREAM rate divides the bytes matters.** The byte counts above
//! are stream-shape-agnostic, but the *sustained bandwidth* they are
//! divided by is not: AB pull (and the AA odd step) runs two load streams
//! against one store stream — the shape STREAM **Triad** measures — while
//! the AA even step is one load + one store, the shape STREAM **Copy**
//! measures. On machines whose memcpy uses non-temporal stores, Triad can
//! exceed Copy, so referencing everything to Copy (the old behavior)
//! understates the bound for every gather/scatter loop. The benchmark
//! therefore resolves the reference per pattern via
//! [`crate::kernel::Propagation::stream_reference`]: Triad for AB, the
//! Copy/Triad mean for AA's alternating pair.

use crate::kernel::{KernelConfig, Propagation};
use crate::lattice::Q19;
use crate::mesh::{FluidMesh, SOLID};
use hemocloud_geometry::stats::GeometryStats;

/// Bytes of a streaming-index entry (u32 neighbor index).
pub const INDEX_BYTES: f64 = 4.0;

/// Lattice directions whose motion crosses an axis-aligned subdomain face
/// (out of the 18 moving directions, 5 cross any given face: 1 axis + 4
/// edge vectors).
pub const FACE_CROSSING_DIRECTIONS: usize = 5;

/// Per-point, per-timestep byte costs of a kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessProfile {
    /// Bytes to update one bulk fluid point.
    pub bulk_bytes: f64,
    /// Bytes to update one wall fluid point (with the average solid-link
    /// count used at construction).
    pub wall_bytes: f64,
    /// Bytes exchanged per subdomain-boundary point per halo exchange
    /// (send or receive, one direction) — the paper's
    /// `n_point_comm_bytes`.
    pub boundary_point_bytes: f64,
}

impl AccessProfile {
    /// Build the profile for a kernel, assuming `avg_solid_links` solid
    /// directions per wall point (typically 4-6 for voxelized vessels).
    pub fn for_kernel(config: &KernelConfig, avg_solid_links: f64) -> Self {
        let d = config.precision.bytes() as f64;
        let q = Q19 as f64;
        let k = avg_solid_links.clamp(0.0, q - 1.0);

        // Index traffic per step: AB reads the full row every step; AA only
        // on odd steps.
        let index_factor = match config.propagation {
            Propagation::Ab => 1.0,
            Propagation::Aa => 0.5,
        };

        let bulk_reads = q * d;
        let bulk_writes = q * d;
        let bulk_index = q * INDEX_BYTES * index_factor;
        let bulk_bytes = bulk_reads + bulk_writes + bulk_index;

        // A solid link removes one remote distribution read and one index
        // entry; the bounce-back value comes from the cell's own row.
        let wall_reads = (q - k) * d;
        let wall_index = (q - k) * INDEX_BYTES * index_factor;
        let wall_bytes = wall_reads + bulk_writes + wall_index;

        let boundary_point_bytes = FACE_CROSSING_DIRECTIONS as f64 * d;

        Self {
            bulk_bytes,
            wall_bytes,
            boundary_point_bytes,
        }
    }

    /// Total bytes per timestep for a geometry census (the Eq. 9 sum with
    /// inlet/outlet points costed as wall points — they also skip remote
    /// reads).
    pub fn mesh_bytes(&self, stats: &GeometryStats) -> f64 {
        self.bulk_bytes * stats.bulk_points as f64
            + self.wall_bytes
                * (stats.wall_points + stats.inlet_points + stats.outlet_points) as f64
    }

    /// Average bytes per fluid point for a census.
    pub fn bytes_per_point(&self, stats: &GeometryStats) -> f64 {
        if stats.fluid_points == 0 {
            0.0
        } else {
            self.mesh_bytes(stats) / stats.fluid_points as f64
        }
    }
}

/// Measure the average solid-link count of a mesh's wall points — the
/// `avg_solid_links` input to [`AccessProfile::for_kernel`], measured
/// rather than assumed.
pub fn average_solid_links(mesh: &FluidMesh) -> f64 {
    let mut links = 0usize;
    let mut walls = 0usize;
    for cell in 0..mesh.len() {
        let k = mesh
            .neighbor_row(cell)
            .iter()
            .skip(1)
            .filter(|&&n| n == SOLID)
            .count();
        if k > 0 {
            links += k;
            walls += 1;
        }
    }
    if walls == 0 {
        0.0
    } else {
        links as f64 / walls as f64
    }
}

/// Exact per-cell byte count for a mesh (the *direct* model's Eq. 9, no
/// averaging): bytes to update each fluid cell of `mesh` under `config`.
pub fn per_cell_bytes(mesh: &FluidMesh, config: &KernelConfig) -> Vec<f64> {
    let d = config.precision.bytes() as f64;
    let q = Q19 as f64;
    let index_factor = match config.propagation {
        Propagation::Ab => 1.0,
        Propagation::Aa => 0.5,
    };
    (0..mesh.len())
        .map(|cell| {
            let k = mesh
                .neighbor_row(cell)
                .iter()
                .skip(1)
                .filter(|&&n| n == SOLID)
                .count() as f64;
            let reads = (q - k) * d;
            let writes = q * d;
            let index = (q - k) * INDEX_BYTES * index_factor;
            reads + writes + index
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Layout, Precision};
    use hemocloud_geometry::anatomy::CylinderSpec;

    #[test]
    fn harvey_bulk_bytes() {
        // AB double: 19 reads + 19 writes at 8 B plus 19 index entries.
        let p = AccessProfile::for_kernel(&KernelConfig::harvey(), 5.0);
        assert!((p.bulk_bytes - (19.0 * 8.0 * 2.0 + 19.0 * 4.0)).abs() < 1e-12);
        assert!(p.wall_bytes < p.bulk_bytes);
    }

    #[test]
    fn aa_halves_index_traffic() {
        let ab = AccessProfile::for_kernel(
            &KernelConfig::proxy(Layout::Soa, Propagation::Ab, true),
            0.0,
        );
        let aa = AccessProfile::for_kernel(
            &KernelConfig::proxy(Layout::Soa, Propagation::Aa, true),
            0.0,
        );
        let saved = ab.bulk_bytes - aa.bulk_bytes;
        assert!((saved - 19.0 * INDEX_BYTES * 0.5).abs() < 1e-12);
        assert!(aa.bulk_bytes < ab.bulk_bytes);
    }

    #[test]
    fn precision_scales_distribution_traffic() {
        let mut cfg = KernelConfig::harvey();
        cfg.precision = Precision::Single;
        let single = AccessProfile::for_kernel(&cfg, 5.0);
        cfg.precision = Precision::Double;
        let double = AccessProfile::for_kernel(&cfg, 5.0);
        // f traffic doubles, index traffic does not.
        assert!((double.bulk_bytes - single.bulk_bytes - 19.0 * 8.0).abs() < 1e-12);
        assert_eq!(double.boundary_point_bytes, 2.0 * single.boundary_point_bytes);
    }

    #[test]
    fn mesh_bytes_weights_point_types() {
        let p = AccessProfile::for_kernel(&KernelConfig::harvey(), 5.0);
        let stats = GeometryStats {
            total_voxels: 1000,
            fluid_points: 100,
            bulk_points: 60,
            wall_points: 30,
            inlet_points: 5,
            outlet_points: 5,
            fluid_fraction: 0.1,
            bulk_wall_ratio: 2.0,
        };
        let expect = 60.0 * p.bulk_bytes + 40.0 * p.wall_bytes;
        assert!((p.mesh_bytes(&stats) - expect).abs() < 1e-9);
        assert!((p.bytes_per_point(&stats) - expect / 100.0).abs() < 1e-12);
    }

    #[test]
    fn measured_solid_links_are_plausible() {
        let g = CylinderSpec::default().with_resolution(10).build();
        let mesh = FluidMesh::build(&g);
        let k = average_solid_links(&mesh);
        assert!(k > 1.0 && k < 12.0, "avg solid links = {k}");
    }

    #[test]
    fn per_cell_bytes_bounded_by_profile_extremes() {
        let g = CylinderSpec::default().with_resolution(8).build();
        let mesh = FluidMesh::build(&g);
        let cfg = KernelConfig::harvey();
        let per_cell = per_cell_bytes(&mesh, &cfg);
        assert_eq!(per_cell.len(), mesh.len());
        let bulk = AccessProfile::for_kernel(&cfg, 0.0).bulk_bytes;
        for &b in &per_cell {
            assert!(b <= bulk + 1e-9);
            assert!(b >= 19.0 * 8.0); // at least the writes
        }
    }

    #[test]
    fn boundary_point_bytes_is_five_directions() {
        let p = AccessProfile::for_kernel(&KernelConfig::harvey(), 5.0);
        assert_eq!(p.boundary_point_bytes, 40.0);
    }

    #[test]
    fn aa_wall_bytes_pinned_at_reference_solid_link_counts() {
        // Pin the AA double-precision profile at the solid-link extremes
        // and a typical vessel value, per link count k:
        //   reads (19-k)·8 + writes 19·8 + index (19-k)·4·0.5
        let aa = KernelConfig::sparse(Propagation::Aa, Layout::Aos);
        for (k, bulk, wall) in [(0.0, 342.0, 342.0), (5.0, 342.0, 292.0), (18.0, 342.0, 162.0)] {
            let p = AccessProfile::for_kernel(&aa, k);
            assert_eq!(p.bulk_bytes, bulk, "bulk at k={k}");
            assert_eq!(p.wall_bytes, wall, "wall at k={k}");
        }
    }

    #[test]
    fn aa_is_cheaper_than_ab_for_every_precision_and_layout() {
        // The AA advantage (halved index traffic) must hold across the
        // whole kernel space the model prices, at bulk and wall points.
        for precision in [Precision::Single, Precision::Double, Precision::Quad] {
            for layout in [Layout::Aos, Layout::Soa] {
                for k in [0.0, 5.0, 18.0] {
                    let mut ab = KernelConfig::sparse(Propagation::Ab, layout);
                    ab.precision = precision;
                    let mut aa = KernelConfig::sparse(Propagation::Aa, layout);
                    aa.precision = precision;
                    let pab = AccessProfile::for_kernel(&ab, k);
                    let paa = AccessProfile::for_kernel(&aa, k);
                    assert!(
                        paa.bulk_bytes < pab.bulk_bytes,
                        "{precision:?}/{layout:?} bulk: AA {} !< AB {}",
                        paa.bulk_bytes,
                        pab.bulk_bytes
                    );
                    if k < 18.0 {
                        assert!(paa.wall_bytes < pab.wall_bytes, "{precision:?}/{layout:?} k={k}");
                    } else {
                        // One remaining fluid link still carries half an
                        // index entry's saving.
                        assert!(paa.wall_bytes <= pab.wall_bytes);
                    }
                }
            }
        }
    }
}

//! Indirect-addressing fluid mesh (HARVEY-style sparse representation).
//!
//! Realistic arterial domains are sparse in their bounding boxes, so HARVEY
//! stores only fluid points and a per-point neighbor index array. This
//! matters for performance modeling: every fluid update reads the 19-entry
//! neighbor list in addition to the distributions (paper Eq. 9 counts these
//! accesses), and wall points — whose solid-direction entries short-circuit
//! to bounce-back — touch fewer distribution values.

use crate::lattice::{C19, Q19};
use hemocloud_geometry::voxel::{CellType, VoxelGrid};

/// Sentinel neighbor index meaning "solid or outside: bounce back".
pub const SOLID: u32 = u32::MAX;

/// A compacted list of fluid cells with per-cell neighbor indices.
#[derive(Debug, Clone)]
pub struct FluidMesh {
    dims: (usize, usize, usize),
    dx_mm: f64,
    /// Fluid cell → linear index in the originating grid.
    grid_index: Vec<u32>,
    /// Fluid cell → cell type (never `Solid`).
    cell_type: Vec<CellType>,
    /// `neighbors[cell * 19 + q]` = fluid index of the cell at offset
    /// `C19[q]`, or [`SOLID`].
    neighbors: Vec<u32>,
}

impl FluidMesh {
    /// Compact a voxel grid into a fluid mesh.
    ///
    /// # Panics
    /// Panics if the grid has no fluid cells or more than `u32::MAX - 1`.
    pub fn build(grid: &VoxelGrid) -> Self {
        let n_total = grid.len();
        assert!(n_total < SOLID as usize, "grid too large for u32 indexing");

        // First pass: map grid linear index → fluid index.
        let mut grid_to_fluid = vec![SOLID; n_total];
        let mut grid_index = Vec::new();
        let mut cell_type = Vec::new();
        for (i, &c) in grid.cells().iter().enumerate() {
            if c.is_fluid() {
                grid_to_fluid[i] = grid_index.len() as u32;
                grid_index.push(i as u32);
                cell_type.push(c);
            }
        }
        assert!(!grid_index.is_empty(), "no fluid cells in grid");

        // Second pass: neighbor table.
        let n_fluid = grid_index.len();
        let mut neighbors = vec![SOLID; n_fluid * Q19];
        for (cell, &gi) in grid_index.iter().enumerate() {
            let (x, y, z) = grid.coords(gi as usize);
            for (q, &(dx, dy, dz)) in C19.iter().enumerate() {
                let nt = grid.get_offset(x, y, z, dx, dy, dz);
                if nt.is_fluid() {
                    let nxl = (x as i64 + dx as i64) as usize;
                    let nyl = (y as i64 + dy as i64) as usize;
                    let nzl = (z as i64 + dz as i64) as usize;
                    neighbors[cell * Q19 + q] = grid_to_fluid[grid.index(nxl, nyl, nzl)];
                }
            }
        }

        Self {
            dims: grid.dims(),
            dx_mm: grid.dx_mm(),
            grid_index,
            cell_type,
            neighbors,
        }
    }

    /// Number of fluid cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.grid_index.len()
    }

    /// Whether the mesh is empty (never true after construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.grid_index.is_empty()
    }

    /// Originating grid dimensions.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    /// Lattice spacing (mm).
    #[inline]
    pub fn dx_mm(&self) -> f64 {
        self.dx_mm
    }

    /// Grid coordinates of a fluid cell.
    #[inline]
    pub fn coords(&self, cell: usize) -> (usize, usize, usize) {
        let gi = self.grid_index[cell] as usize;
        let (nx, ny, _) = self.dims;
        let x = gi % nx;
        let y = (gi / nx) % ny;
        let z = gi / (nx * ny);
        (x, y, z)
    }

    /// Cell type of a fluid cell.
    #[inline]
    pub fn cell_type(&self, cell: usize) -> CellType {
        self.cell_type[cell]
    }

    /// Neighbor fluid index of `cell` in direction `q`, or [`SOLID`].
    #[inline]
    pub fn neighbor(&self, cell: usize, q: usize) -> u32 {
        self.neighbors[cell * Q19 + q]
    }

    /// The 19 neighbor entries of `cell`.
    #[inline]
    pub fn neighbor_row(&self, cell: usize) -> &[u32] {
        &self.neighbors[cell * Q19..(cell + 1) * Q19]
    }

    /// Indices of all cells of the given type.
    pub fn cells_of_type(&self, t: CellType) -> Vec<usize> {
        self.cell_type
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == t)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of solid-facing (bounce-back) links at a cell.
    pub fn solid_link_count(&self, cell: usize) -> usize {
        self.neighbor_row(cell)
            .iter()
            .skip(1) // rest direction has no link
            .filter(|&&n| n == SOLID)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::opposite;
    use hemocloud_geometry::anatomy::CylinderSpec;
    use hemocloud_geometry::classify::classify_walls;

    fn small_box() -> FluidMesh {
        // 4×4×4 all-bulk grid; after wall classification the outer shell is
        // wall, the inner 2×2×2 is bulk.
        let mut g = VoxelGrid::filled(4, 4, 4, 1.0, CellType::Bulk);
        classify_walls(&mut g);
        FluidMesh::build(&g)
    }

    #[test]
    fn compaction_keeps_all_fluid() {
        let mesh = small_box();
        assert_eq!(mesh.len(), 64);
        assert_eq!(mesh.cells_of_type(CellType::Bulk).len(), 8);
        assert_eq!(mesh.cells_of_type(CellType::Wall).len(), 56);
    }

    #[test]
    fn neighbor_links_are_reciprocal() {
        let mesh = small_box();
        for cell in 0..mesh.len() {
            for q in 1..Q19 {
                let n = mesh.neighbor(cell, q);
                if n != SOLID {
                    assert_eq!(
                        mesh.neighbor(n as usize, opposite(q)),
                        cell as u32,
                        "cell {cell} dir {q}"
                    );
                }
            }
        }
    }

    #[test]
    fn rest_direction_is_self() {
        let mesh = small_box();
        for cell in 0..mesh.len() {
            assert_eq!(mesh.neighbor(cell, 0), cell as u32);
        }
    }

    #[test]
    fn bulk_cells_have_no_solid_links() {
        let mesh = small_box();
        for cell in mesh.cells_of_type(CellType::Bulk) {
            assert_eq!(mesh.solid_link_count(cell), 0);
        }
        for cell in mesh.cells_of_type(CellType::Wall) {
            assert!(mesh.solid_link_count(cell) > 0);
        }
    }

    #[test]
    fn coords_roundtrip_against_grid() {
        let g = CylinderSpec::default().with_resolution(8).build();
        let mesh = FluidMesh::build(&g);
        for cell in (0..mesh.len()).step_by(7) {
            let (x, y, z) = mesh.coords(cell);
            assert!(g.get(x, y, z).is_fluid());
            assert_eq!(g.get(x, y, z), mesh.cell_type(cell));
        }
    }

    #[test]
    #[should_panic(expected = "no fluid cells")]
    fn all_solid_grid_panics() {
        let g = VoxelGrid::solid(3, 3, 3, 1.0);
        let _ = FluidMesh::build(&g);
    }
}

//! Maxwell-Boltzmann equilibrium distribution and macroscopic moments.
//!
//! The second-order equilibrium used by the BGK collision (paper Eq. 1):
//!
//! ```text
//! f_i^eq = w_i ρ (1 + 3 c_i·u + 4.5 (c_i·u)² - 1.5 u·u)
//! ```
//!
//! The moment reductions use a *fixed pairwise (tree) summation order*
//! rather than a left fold: a 19-term serial fold is a chain of 18
//! dependent adds (~4 cycles each of pure latency per moment), while the
//! tree shortens the critical path to ⌈log₂ 19⌉ levels and exposes the
//! independent partial sums to SIMD. The order is deterministic — every
//! call sums in exactly the same association — so all the solver's
//! bit-identity guarantees (serial vs parallel, AA vs AB, traversal
//! permutations) are unaffected; only the fixed association itself differs
//! from the historical left-to-right fold.

use crate::lattice::Q19;
use crate::real::Real;
use hemocloud_rt::simd::Lane;

/// Fixed-tree sum of 19 lane values: pairwise over the first 16, a small
/// tree over the 3-element tail, one combining add. Deterministic
/// association, ~4x shorter floating-point dependency chain than a left
/// fold. Lane-generic: instantiated at `V = f64` this *is* the historical
/// scalar tree; at a wide lane it runs the same tree per lane, so each
/// lane's bits equal the scalar result.
#[inline(always)]
pub(crate) fn sum19_v<R: Real, V: Lane<R>>(v: &[V; Q19]) -> V {
    let a = ((v[0] + v[1]) + (v[2] + v[3])) + ((v[4] + v[5]) + (v[6] + v[7]));
    let b = ((v[8] + v[9]) + (v[10] + v[11])) + ((v[12] + v[13]) + (v[14] + v[15]));
    let c = (v[16] + v[17]) + v[18];
    (a + b) + c
}

/// Lane-generic `f_i^eq`: the exact expression tree of the scalar
/// [`equilibrium_d3q19`], evaluated elementwise per lane (no FMA, no
/// reassociation — the constants are splatted, every op is `Lane`'s
/// IEEE elementwise arithmetic).
#[inline(always)]
pub(crate) fn equilibrium_v<R: Real, V: Lane<R>>(rho: V, ux: V, uy: V, uz: V, out: &mut [V; Q19]) {
    let usq = V::splat(R::from_f64(1.5)) * (ux * ux + uy * uy + uz * uz);
    let one = V::splat(R::ONE);
    let three = V::splat(R::from_f64(3.0));
    let c45 = V::splat(R::from_f64(4.5));
    for q in 0..Q19 {
        let cu = V::splat(R::CXF[q]) * ux + V::splat(R::CYF[q]) * uy + V::splat(R::CZF[q]) * uz;
        out[q] = V::splat(R::W19[q]) * rho * (one + three * cu + c45 * cu * cu - usq);
    }
}

/// Lane-generic density and momentum moments: `(ρ, ρu_x, ρu_y, ρu_z)`.
#[inline(always)]
pub(crate) fn moments_v<R: Real, V: Lane<R>>(f: &[V; Q19]) -> (V, V, V, V) {
    let mut tx = [V::splat(R::ZERO); Q19];
    let mut ty = [V::splat(R::ZERO); Q19];
    let mut tz = [V::splat(R::ZERO); Q19];
    for q in 0..Q19 {
        let v = f[q];
        tx[q] = v * V::splat(R::CXF[q]);
        ty[q] = v * V::splat(R::CYF[q]);
        tz[q] = v * V::splat(R::CZF[q]);
    }
    (
        sum19_v::<R, V>(f),
        sum19_v::<R, V>(&tx),
        sum19_v::<R, V>(&ty),
        sum19_v::<R, V>(&tz),
    )
}

/// Lane-generic density and velocity: `(ρ, u_x, u_y, u_z)`.
#[inline(always)]
pub(crate) fn macroscopics_v<R: Real, V: Lane<R>>(f: &[V; Q19]) -> (V, V, V, V) {
    let (rho, jx, jy, jz) = moments_v::<R, V>(f);
    let inv = V::splat(R::ONE) / rho;
    (rho, jx * inv, jy * inv, jz * inv)
}

/// Compute `f_i^eq` for all 19 directions into `out`. (The `V = f64`
/// instantiation of `equilibrium_v` — same expression tree, same bits,
/// as the pinned tests below verify against literal transcriptions.)
#[inline]
pub fn equilibrium_d3q19(rho: f64, ux: f64, uy: f64, uz: f64, out: &mut [f64; Q19]) {
    equilibrium_v::<f64, f64>(rho, ux, uy, uz, out);
}

/// Density and momentum moments of a distribution: `(ρ, ρu_x, ρu_y, ρu_z)`.
#[inline]
pub fn moments_d3q19(f: &[f64; Q19]) -> (f64, f64, f64, f64) {
    moments_v::<f64, f64>(f)
}

/// Density and velocity of a distribution: `(ρ, u_x, u_y, u_z)`.
#[inline]
pub fn macroscopics_d3q19(f: &[f64; Q19]) -> (f64, f64, f64, f64) {
    macroscopics_v::<f64, f64>(f)
}

#[cfg(test)]
fn sum19(v: &[f64; Q19]) -> f64 {
    sum19_v::<f64, f64>(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::W19;

    #[test]
    fn equilibrium_conserves_mass_and_momentum() {
        let mut f = [0.0; Q19];
        for &(rho, ux, uy, uz) in &[
            (1.0, 0.0, 0.0, 0.0),
            (1.1, 0.05, -0.02, 0.01),
            (0.9, -0.08, 0.03, 0.06),
        ] {
            equilibrium_d3q19(rho, ux, uy, uz, &mut f);
            let (r, jx, jy, jz) = moments_d3q19(&f);
            assert!((r - rho).abs() < 1e-13, "rho");
            assert!((jx - rho * ux).abs() < 1e-13, "jx");
            assert!((jy - rho * uy).abs() < 1e-13, "jy");
            assert!((jz - rho * uz).abs() < 1e-13, "jz");
        }
    }

    #[test]
    fn rest_equilibrium_is_the_weights() {
        let mut f = [0.0; Q19];
        equilibrium_d3q19(1.0, 0.0, 0.0, 0.0, &mut f);
        for q in 0..Q19 {
            assert!((f[q] - W19[q]).abs() < 1e-15);
        }
    }

    #[test]
    fn macroscopics_invert_equilibrium() {
        let mut f = [0.0; Q19];
        equilibrium_d3q19(1.05, 0.03, 0.01, -0.04, &mut f);
        let (rho, ux, uy, uz) = macroscopics_d3q19(&f);
        assert!((rho - 1.05).abs() < 1e-13);
        assert!((ux - 0.03).abs() < 1e-13);
        assert!((uy - 0.01).abs() < 1e-13);
        assert!((uz + 0.04).abs() < 1e-13);
    }

    #[test]
    fn equilibrium_is_positive_at_moderate_velocity() {
        let mut f = [0.0; Q19];
        equilibrium_d3q19(1.0, 0.1, 0.1, 0.1, &mut f);
        assert!(f.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn tree_sum_matches_serial_fold_to_roundoff_and_is_deterministic() {
        // The tree association differs from a left fold by at most a few
        // ulps of accumulated roundoff, and two calls on the same input are
        // bitwise identical (the association is fixed, not data-dependent).
        let mut f = [0.0f64; Q19];
        for (q, v) in f.iter_mut().enumerate() {
            *v = (q as f64 * 0.731).sin() + 1.0;
        }
        let fold: f64 = f.iter().sum();
        let tree = sum19(&f);
        assert!((fold - tree).abs() < 1e-13 * fold.abs());
        assert_eq!(tree.to_bits(), sum19(&f).to_bits());
    }

    #[test]
    fn generic_f64_instantiation_matches_literal_transcription_bitwise() {
        // Pin the lane-generic bodies against a literal re-transcription of
        // the historical scalar expressions: if a refactor ever changes an
        // association or introduces a fused op, this catches it at V = f64.
        use crate::lattice::{CXF, CYF, CZF, W19};
        let (rho, ux, uy, uz) = (1.0734f64, 0.0451, -0.0212, 0.0333);
        let mut out = [0.0f64; Q19];
        equilibrium_d3q19(rho, ux, uy, uz, &mut out);
        let usq = 1.5 * (ux * ux + uy * uy + uz * uz);
        for q in 0..Q19 {
            let cu = CXF[q] * ux + CYF[q] * uy + CZF[q] * uz;
            let want = W19[q] * rho * (1.0 + 3.0 * cu + 4.5 * cu * cu - usq);
            assert_eq!(out[q].to_bits(), want.to_bits(), "q={q}");
        }
        let (r, jx, jy, jz) = moments_d3q19(&out);
        let mut tx = [0.0f64; Q19];
        let mut ty = [0.0f64; Q19];
        let mut tz = [0.0f64; Q19];
        for q in 0..Q19 {
            tx[q] = out[q] * CXF[q];
            ty[q] = out[q] * CYF[q];
            tz[q] = out[q] * CZF[q];
        }
        assert_eq!(r.to_bits(), sum19(&out).to_bits());
        assert_eq!(jx.to_bits(), sum19(&tx).to_bits());
        assert_eq!(jy.to_bits(), sum19(&ty).to_bits());
        assert_eq!(jz.to_bits(), sum19(&tz).to_bits());
        let (r2, vx, _, _) = macroscopics_d3q19(&out);
        assert_eq!(r2.to_bits(), r.to_bits());
        assert_eq!(vx.to_bits(), (jx * (1.0 / r)).to_bits());
    }

    #[test]
    fn wide_lanes_match_scalar_bitwise_per_lane() {
        // Four cells with different states through the vector equilibrium +
        // moments: each lane must carry exactly the scalar result — for the
        // portable array lane AND the accelerated lane.
        use hemocloud_rt::simd::{ArrLane, F64x4};
        let rho = [1.0f64, 1.05, 0.97, 1.101];
        let ux = [0.01f64, -0.03, 0.05, 0.0];
        let uy = [0.0f64, 0.02, -0.01, 0.04];
        let uz = [0.03f64, 0.0, 0.01, -0.02];

        fn check<V: Lane<f64>>(rho: &[f64], ux: &[f64], uy: &[f64], uz: &[f64]) {
            let mut veq = [V::splat(0.0); Q19];
            equilibrium_v::<f64, V>(
                V::load(rho),
                V::load(ux),
                V::load(uy),
                V::load(uz),
                &mut veq,
            );
            let (vr, vx, vy, vz) = macroscopics_v::<f64, V>(&veq);
            let mut buf = [0.0f64; 4];
            for lane in 0..V::WIDTH {
                let mut seq = [0.0f64; Q19];
                equilibrium_d3q19(rho[lane], ux[lane], uy[lane], uz[lane], &mut seq);
                for q in 0..Q19 {
                    veq[q].store(&mut buf);
                    assert_eq!(buf[lane].to_bits(), seq[q].to_bits(), "lane {lane} q {q}");
                }
                let (sr, sx, sy, sz) = macroscopics_d3q19(&seq);
                for (v, s) in [(vr, sr), (vx, sx), (vy, sy), (vz, sz)] {
                    v.store(&mut buf);
                    assert_eq!(buf[lane].to_bits(), s.to_bits(), "lane {lane}");
                }
            }
        }
        check::<ArrLane<f64, 4>>(&rho, &ux, &uy, &uz);
        check::<F64x4>(&rho, &ux, &uy, &uz);
    }
}

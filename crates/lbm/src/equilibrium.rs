//! Maxwell-Boltzmann equilibrium distribution and macroscopic moments.
//!
//! The second-order equilibrium used by the BGK collision (paper Eq. 1):
//!
//! ```text
//! f_i^eq = w_i ρ (1 + 3 c_i·u + 4.5 (c_i·u)² - 1.5 u·u)
//! ```
//!
//! The moment reductions use a *fixed pairwise (tree) summation order*
//! rather than a left fold: a 19-term serial fold is a chain of 18
//! dependent adds (~4 cycles each of pure latency per moment), while the
//! tree shortens the critical path to ⌈log₂ 19⌉ levels and exposes the
//! independent partial sums to SIMD. The order is deterministic — every
//! call sums in exactly the same association — so all the solver's
//! bit-identity guarantees (serial vs parallel, AA vs AB, traversal
//! permutations) are unaffected; only the fixed association itself differs
//! from the historical left-to-right fold.

use crate::lattice::{CXF, CYF, CZF, Q19, W19};

/// Fixed-tree sum of 19 values: pairwise over the first 16, a small tree
/// over the 3-element tail, one combining add. Deterministic association,
/// ~4x shorter floating-point dependency chain than a left fold.
#[inline(always)]
fn sum19(v: &[f64; Q19]) -> f64 {
    let a = ((v[0] + v[1]) + (v[2] + v[3])) + ((v[4] + v[5]) + (v[6] + v[7]));
    let b = ((v[8] + v[9]) + (v[10] + v[11])) + ((v[12] + v[13]) + (v[14] + v[15]));
    let c = (v[16] + v[17]) + v[18];
    (a + b) + c
}

/// Compute `f_i^eq` for all 19 directions into `out`.
#[inline]
pub fn equilibrium_d3q19(rho: f64, ux: f64, uy: f64, uz: f64, out: &mut [f64; Q19]) {
    let usq = 1.5 * (ux * ux + uy * uy + uz * uz);
    for q in 0..Q19 {
        let cu = CXF[q] * ux + CYF[q] * uy + CZF[q] * uz;
        out[q] = W19[q] * rho * (1.0 + 3.0 * cu + 4.5 * cu * cu - usq);
    }
}

/// Density and momentum moments of a distribution: `(ρ, ρu_x, ρu_y, ρu_z)`.
#[inline]
pub fn moments_d3q19(f: &[f64; Q19]) -> (f64, f64, f64, f64) {
    let mut tx = [0.0f64; Q19];
    let mut ty = [0.0f64; Q19];
    let mut tz = [0.0f64; Q19];
    for q in 0..Q19 {
        let v = f[q];
        tx[q] = v * CXF[q];
        ty[q] = v * CYF[q];
        tz[q] = v * CZF[q];
    }
    (sum19(f), sum19(&tx), sum19(&ty), sum19(&tz))
}

/// Density and velocity of a distribution: `(ρ, u_x, u_y, u_z)`.
#[inline]
pub fn macroscopics_d3q19(f: &[f64; Q19]) -> (f64, f64, f64, f64) {
    let (rho, jx, jy, jz) = moments_d3q19(f);
    let inv = 1.0 / rho;
    (rho, jx * inv, jy * inv, jz * inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equilibrium_conserves_mass_and_momentum() {
        let mut f = [0.0; Q19];
        for &(rho, ux, uy, uz) in &[
            (1.0, 0.0, 0.0, 0.0),
            (1.1, 0.05, -0.02, 0.01),
            (0.9, -0.08, 0.03, 0.06),
        ] {
            equilibrium_d3q19(rho, ux, uy, uz, &mut f);
            let (r, jx, jy, jz) = moments_d3q19(&f);
            assert!((r - rho).abs() < 1e-13, "rho");
            assert!((jx - rho * ux).abs() < 1e-13, "jx");
            assert!((jy - rho * uy).abs() < 1e-13, "jy");
            assert!((jz - rho * uz).abs() < 1e-13, "jz");
        }
    }

    #[test]
    fn rest_equilibrium_is_the_weights() {
        let mut f = [0.0; Q19];
        equilibrium_d3q19(1.0, 0.0, 0.0, 0.0, &mut f);
        for q in 0..Q19 {
            assert!((f[q] - W19[q]).abs() < 1e-15);
        }
    }

    #[test]
    fn macroscopics_invert_equilibrium() {
        let mut f = [0.0; Q19];
        equilibrium_d3q19(1.05, 0.03, 0.01, -0.04, &mut f);
        let (rho, ux, uy, uz) = macroscopics_d3q19(&f);
        assert!((rho - 1.05).abs() < 1e-13);
        assert!((ux - 0.03).abs() < 1e-13);
        assert!((uy - 0.01).abs() < 1e-13);
        assert!((uz + 0.04).abs() < 1e-13);
    }

    #[test]
    fn equilibrium_is_positive_at_moderate_velocity() {
        let mut f = [0.0; Q19];
        equilibrium_d3q19(1.0, 0.1, 0.1, 0.1, &mut f);
        assert!(f.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn tree_sum_matches_serial_fold_to_roundoff_and_is_deterministic() {
        // The tree association differs from a left fold by at most a few
        // ulps of accumulated roundoff, and two calls on the same input are
        // bitwise identical (the association is fixed, not data-dependent).
        let mut f = [0.0f64; Q19];
        for (q, v) in f.iter_mut().enumerate() {
            *v = (q as f64 * 0.731).sin() + 1.0;
        }
        let fold: f64 = f.iter().sum();
        let tree = sum19(&f);
        assert!((fold - tree).abs() < 1e-13 * fold.abs());
        assert_eq!(tree.to_bits(), sum19(&f).to_bits());
    }
}

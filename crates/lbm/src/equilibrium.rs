//! Maxwell-Boltzmann equilibrium distribution and macroscopic moments.
//!
//! The second-order equilibrium used by the BGK collision (paper Eq. 1):
//!
//! ```text
//! f_i^eq = w_i ρ (1 + 3 c_i·u + 4.5 (c_i·u)² - 1.5 u·u)
//! ```

use crate::lattice::{C19, Q19, W19};

/// Compute `f_i^eq` for all 19 directions into `out`.
#[inline]
pub fn equilibrium_d3q19(rho: f64, ux: f64, uy: f64, uz: f64, out: &mut [f64; Q19]) {
    let usq = 1.5 * (ux * ux + uy * uy + uz * uz);
    for q in 0..Q19 {
        let (cx, cy, cz) = C19[q];
        let cu = cx as f64 * ux + cy as f64 * uy + cz as f64 * uz;
        out[q] = W19[q] * rho * (1.0 + 3.0 * cu + 4.5 * cu * cu - usq);
    }
}

/// Density and momentum moments of a distribution: `(ρ, ρu_x, ρu_y, ρu_z)`.
#[inline]
pub fn moments_d3q19(f: &[f64; Q19]) -> (f64, f64, f64, f64) {
    let mut rho = 0.0;
    let mut jx = 0.0;
    let mut jy = 0.0;
    let mut jz = 0.0;
    for q in 0..Q19 {
        let v = f[q];
        let (cx, cy, cz) = C19[q];
        rho += v;
        jx += v * cx as f64;
        jy += v * cy as f64;
        jz += v * cz as f64;
    }
    (rho, jx, jy, jz)
}

/// Density and velocity of a distribution: `(ρ, u_x, u_y, u_z)`.
#[inline]
pub fn macroscopics_d3q19(f: &[f64; Q19]) -> (f64, f64, f64, f64) {
    let (rho, jx, jy, jz) = moments_d3q19(f);
    let inv = 1.0 / rho;
    (rho, jx * inv, jy * inv, jz * inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equilibrium_conserves_mass_and_momentum() {
        let mut f = [0.0; Q19];
        for &(rho, ux, uy, uz) in &[
            (1.0, 0.0, 0.0, 0.0),
            (1.1, 0.05, -0.02, 0.01),
            (0.9, -0.08, 0.03, 0.06),
        ] {
            equilibrium_d3q19(rho, ux, uy, uz, &mut f);
            let (r, jx, jy, jz) = moments_d3q19(&f);
            assert!((r - rho).abs() < 1e-13, "rho");
            assert!((jx - rho * ux).abs() < 1e-13, "jx");
            assert!((jy - rho * uy).abs() < 1e-13, "jy");
            assert!((jz - rho * uz).abs() < 1e-13, "jz");
        }
    }

    #[test]
    fn rest_equilibrium_is_the_weights() {
        let mut f = [0.0; Q19];
        equilibrium_d3q19(1.0, 0.0, 0.0, 0.0, &mut f);
        for q in 0..Q19 {
            assert!((f[q] - W19[q]).abs() < 1e-15);
        }
    }

    #[test]
    fn macroscopics_invert_equilibrium() {
        let mut f = [0.0; Q19];
        equilibrium_d3q19(1.05, 0.03, 0.01, -0.04, &mut f);
        let (rho, ux, uy, uz) = macroscopics_d3q19(&f);
        assert!((rho - 1.05).abs() < 1e-13);
        assert!((ux - 0.03).abs() < 1e-13);
        assert!((uy - 0.01).abs() < 1e-13);
        assert!((uz + 0.04).abs() < 1e-13);
    }

    #[test]
    fn equilibrium_is_positive_at_moderate_velocity() {
        let mut f = [0.0; Q19];
        equilibrium_d3q19(1.0, 0.1, 0.1, 0.1, &mut f);
        assert!(f.iter().all(|&v| v > 0.0));
    }
}

//! D3Q19 lattice Boltzmann solvers for hemodynamic simulation.
//!
//! Two implementations mirror the two codes the paper studies:
//!
//! * [`solver::Solver`] — the HARVEY analog: sparse indirect-addressed
//!   mesh ([`mesh::FluidMesh`]), AB pull streaming, BGK collision,
//!   Poiseuille inlets / zero-pressure outlets / halfway bounce-back
//!   walls, thread-parallel updates (`hemocloud_rt::par`).
//! * [`proxy::ProxyApp`] — the `lbm-proxy-app` analog: a dense hardcoded
//!   cylinder scanning the kernel-variant space (AA/AB propagation ×
//!   SoA/AoS layout × rolled/unrolled loops) that the paper's Figs. 4 and
//!   8 evaluate.
//!
//! [`access_profile`] counts the bytes each variant touches per fluid
//! point — the raw input to the paper's Eq. 9 performance model. The
//! [`ranked`] module runs the HARVEY analog as a set of communicating
//! "ranks" with explicit halo exchange, validating that the decomposed
//! execution reproduces the global solution.

pub mod access_profile;
pub mod equilibrium;
pub mod kernel;
pub mod lattice;
pub mod mesh;
pub mod proxy;
pub mod ranked;
pub mod real;
pub mod solver;
pub mod traversal;

pub use access_profile::AccessProfile;
pub use kernel::{KernelConfig, KernelSelect, Layout, Precision, Propagation, SimdPath, StreamReference};
pub use real::Real;
pub use mesh::FluidMesh;
pub use proxy::ProxyApp;
pub use solver::{RunStats, Solver, SolverConfig};
pub use traversal::{TraversalConfig, TraversalOrder};

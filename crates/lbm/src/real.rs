//! The element type the kernels are generic over: `f64` or `f32`.
//!
//! [`Real`] bundles what a distribution element must provide — the D3Q19
//! constant tables at its own precision, widening/narrowing conversions,
//! and (via the [`hemocloud_rt::simd::Element`] supertrait) its portable
//! and accelerated SIMD lane types. Because every scalar float is itself a
//! `WIDTH = 1` [`hemocloud_rt::simd::Lane`], one lane-generic kernel body
//! serves the scalar f64 path (bit-for-bit the historical kernel), the
//! scalar f32 path, and all vector paths.
//!
//! The f32 tables are the f64 tables rounded once (round-to-nearest) at
//! compile time; the velocity components are small integers, so only the
//! weights (1/3, 1/18, 1/36) actually round.

use crate::lattice::{CXF, CXF32, CYF, CYF32, CZF, CZF32, Q19, W19, W19_F32};
use hemocloud_rt::simd::Element;

/// A floating-point distribution element (`f64` or `f32`).
pub trait Real: Element + PartialOrd + std::fmt::Debug + std::fmt::Display {
    /// D3Q19 quadrature weights at this precision.
    const W19: [Self; Q19];
    /// Velocity x-components at this precision (exact).
    const CXF: [Self; Q19];
    /// Velocity y-components at this precision (exact).
    const CYF: [Self; Q19];
    /// Velocity z-components at this precision (exact).
    const CZF: [Self; Q19];
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Round an f64 to this precision (identity for f64).
    fn from_f64(x: f64) -> Self;
    /// Widen to f64 (exact for both implementors).
    fn to_f64(self) -> f64;
    /// Whether the value is finite (readout sanity checks).
    fn is_finite(self) -> bool;
}

impl Real for f64 {
    const W19: [f64; Q19] = W19;
    const CXF: [f64; Q19] = CXF;
    const CYF: [f64; Q19] = CYF;
    const CZF: [f64; Q19] = CZF;
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;
    #[inline(always)]
    fn from_f64(x: f64) -> f64 {
        x
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

impl Real for f32 {
    const W19: [f32; Q19] = W19_F32;
    const CXF: [f32; Q19] = CXF32;
    const CYF: [f32; Q19] = CYF32;
    const CZF: [f32; Q19] = CZF32;
    const ZERO: f32 = 0.0;
    const ONE: f32 = 1.0;
    #[inline(always)]
    fn from_f64(x: f64) -> f32 {
        x as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_tables_are_the_rounded_f64_tables() {
        for q in 0..Q19 {
            assert_eq!(<f32 as Real>::W19[q], W19[q] as f32);
            // Velocity components are -1/0/1: exact in both precisions.
            assert_eq!(<f32 as Real>::CXF[q] as f64, CXF[q]);
            assert_eq!(<f32 as Real>::CYF[q] as f64, CYF[q]);
            assert_eq!(<f32 as Real>::CZF[q] as f64, CZF[q]);
        }
        let s: f32 = <f32 as Real>::W19.iter().sum();
        assert!((s - 1.0).abs() < 1e-6, "f32 weights sum to {s}");
    }

    #[test]
    fn conversions_round_trip_exactly_for_f32_values() {
        for v in [0.25f32, -1.5, 1.0 / 3.0, 1e-20, 3.4e38] {
            assert_eq!(<f32 as Real>::from_f64(v.to_f64()), v);
        }
        assert_eq!(<f64 as Real>::from_f64(0.1), 0.1);
        assert!(Real::is_finite(1.0f32) && !Real::is_finite(f32::INFINITY));
    }
}

//! Kernel configuration: the variants the paper scans.
//!
//! The proxy-app study (paper Figs. 4 and 8) crosses two **propagation
//! patterns** with two **data layouts** and two loop structures:
//!
//! * [`Propagation::Ab`] — two distribution arrays, read-old/write-new;
//! * [`Propagation::Aa`] — one array updated in place, alternating an
//!   in-cell collision step with a combined stream-collide-stream step,
//!   halving streaming-index traffic on average;
//! * [`Layout::Soa`] — structure-of-arrays, `f[q][cell]`;
//! * [`Layout::Aos`] — array-of-structures, `f[cell][q]`;
//! * rolled vs. unrolled inner direction loops.
//!
//! [`KernelConfig`] names a point in that space plus the floating-point
//! precision; the performance model derives byte counts from it (Eq. 9)
//! and the cluster simulator derives an efficiency factor.

use crate::lattice::Q19;

/// Distribution storage order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Structure of arrays: `f[q * n + cell]`. Preferred on GPUs.
    Soa,
    /// Array of structures: `f[cell * Q + q]`. Preferred on CPUs.
    Aos,
}

/// Propagation (streaming) pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Propagation {
    /// Two-array read/write ("AB" or A-B pattern).
    Ab,
    /// Single-array in-place alternating pattern ("AA", Bailey et al.).
    Aa,
}

/// Which STREAM kernel bounds a propagation pattern's achievable
/// bandwidth, used by the benchmark to turn modeled bytes into a modeled
/// time. Returned by [`Propagation::stream_reference`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamReference {
    /// STREAM Triad (`a[i] = b[i] + s*c[i]`): two load streams plus one
    /// store stream.
    Triad,
    /// The mean of STREAM Copy (one load + one store) and Triad — for
    /// patterns that alternate between the two shapes step by step.
    CopyTriadMean,
}

impl StreamReference {
    /// The reference bandwidth in GB/s given measured Copy and Triad
    /// rates.
    #[inline]
    pub fn gb_s(self, copy_gb_s: f64, triad_gb_s: f64) -> f64 {
        match self {
            StreamReference::Triad => triad_gb_s,
            StreamReference::CopyTriadMean => 0.5 * (copy_gb_s + triad_gb_s),
        }
    }

    /// Short label for benchmark provenance, e.g. `"triad"`.
    pub fn label(self) -> &'static str {
        match self {
            StreamReference::Triad => "triad",
            StreamReference::CopyTriadMean => "mean(copy,triad)",
        }
    }
}

impl Propagation {
    /// The STREAM kernel whose measured bandwidth bounds this pattern.
    ///
    /// **AB pull** gathers 19 old-array values and the neighbor-index row,
    /// then stores 19 new-array values: per cell it runs two load streams
    /// against one store stream — Triad-shaped, not Copy-shaped. **AA**
    /// alternates: the even step reads and rewrites the cell's own 19
    /// slots in place (Copy-shaped: one load + one store stream), while
    /// the odd step gathers from neighbor slots and scatters back through
    /// the index row (Triad-shaped like AB pull). Over the even/odd pair
    /// the honest bound is the mean of the two STREAM rates.
    ///
    /// Using Copy for everything — the old behavior — understated the
    /// bound for every gather/scatter loop on machines where Triad beats
    /// Copy (non-temporal-store memcpy), flattering `measured/modeled`.
    #[inline]
    pub fn stream_reference(self) -> StreamReference {
        match self {
            Propagation::Ab => StreamReference::Triad,
            Propagation::Aa => StreamReference::CopyTriadMean,
        }
    }
}

/// Floating-point precision of the distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 4-byte floats.
    Single,
    /// 8-byte floats (the default throughout the paper's experiments).
    Double,
    /// 16-byte floats (listed by the paper's Eq. 9; modeled only).
    Quad,
}

impl Precision {
    /// Bytes per stored value (the paper's `d_size`).
    #[inline]
    pub fn bytes(self) -> usize {
        match self {
            Precision::Single => 4,
            Precision::Double => 8,
            Precision::Quad => 16,
        }
    }
}

/// Compile-time distribution indexing for a storage [`Layout`], shared by
/// every kernel that is generic over layout (the dense proxy app and the
/// sparse production solvers). Monomorphizing over this trait keeps the
/// index arithmetic branch-free in the hot loops while `KernelConfig`
/// stays a runtime value.
pub trait LayoutIdx: Copy {
    /// The [`Layout`] this indexer implements.
    const LAYOUT: Layout;
    /// Flat index of `(cell, q)` in an `n`-cell array.
    fn at(cell: usize, q: usize, n: usize) -> usize;
}

/// Structure-of-arrays indexing: `f[q * n + cell]`.
#[derive(Clone, Copy)]
pub struct SoaIdx;
impl LayoutIdx for SoaIdx {
    const LAYOUT: Layout = Layout::Soa;
    #[inline(always)]
    fn at(cell: usize, q: usize, n: usize) -> usize {
        q * n + cell
    }
}

/// Array-of-structures indexing: `f[cell * 19 + q]`.
#[derive(Clone, Copy)]
pub struct AosIdx;
impl LayoutIdx for AosIdx {
    const LAYOUT: Layout = Layout::Aos;
    #[inline(always)]
    fn at(cell: usize, q: usize, _n: usize) -> usize {
        cell * Q19 + q
    }
}

/// Whether the sparse solvers run the explicitly vectorized collide-stream
/// path or the one-cell-at-a-time scalar loop. Both produce bitwise
/// identical distributions (the vector path runs the exact per-cell
/// expression tree, one cell per lane); the knob exists for A/B timing,
/// for the benchmark's equivalence oracle, and as the autotuner's search
/// axis. The `RT_SIMD` environment variable further selects *which* lane
/// backend the vector path uses (AVX2 vs portable arrays).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimdPath {
    /// One cell at a time through the scalar kernel body.
    Scalar,
    /// Lane-width cells at a time through the fused vector kernel.
    #[default]
    Vector,
}

impl SimdPath {
    /// Short label for provenance, e.g. `"vector"`.
    pub fn label(self) -> &'static str {
        match self {
            SimdPath::Scalar => "scalar",
            SimdPath::Vector => "vector",
        }
    }
}

/// How the solver picks its execution strategy at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelSelect {
    /// Run exactly what the config says ([`SimdPath`] + traversal).
    #[default]
    Fixed,
    /// Time a short calibration burst over `simd × traversal` candidates
    /// at construction and keep the fastest. Deterministic in *results*
    /// (every candidate computes identical bits) but not in wall-clock,
    /// so the choice is recorded in the solver's observability registry
    /// and benchmark provenance rather than silently applied.
    Auto,
}

impl KernelSelect {
    /// Short label for provenance, e.g. `"auto"`.
    pub fn label(self) -> &'static str {
        match self {
            KernelSelect::Fixed => "fixed",
            KernelSelect::Auto => "auto",
        }
    }
}

/// Addressing scheme: dense grids use constant strides; sparse (HARVEY)
/// meshes read a per-cell neighbor index row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Addressing {
    /// Constant-stride neighbors (proxy app's hardcoded cylinder).
    Dense,
    /// Per-cell neighbor index array (HARVEY's sparse mesh).
    Indirect,
}

/// A fully specified kernel variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelConfig {
    /// Storage order.
    pub layout: Layout,
    /// Streaming pattern.
    pub propagation: Propagation,
    /// Distribution precision.
    pub precision: Precision,
    /// Neighbor addressing.
    pub addressing: Addressing,
    /// Whether the inner direction loop is unrolled.
    pub unrolled: bool,
}

impl KernelConfig {
    /// HARVEY's configuration: indirect-addressed AoS/AB in double
    /// precision with unrolled kernels.
    pub fn harvey() -> Self {
        Self {
            layout: Layout::Aos,
            propagation: Propagation::Ab,
            precision: Precision::Double,
            addressing: Addressing::Indirect,
            unrolled: true,
        }
    }

    /// A proxy-app variant (dense addressing, double precision).
    pub fn proxy(layout: Layout, propagation: Propagation, unrolled: bool) -> Self {
        Self {
            layout,
            propagation,
            precision: Precision::Double,
            addressing: Addressing::Dense,
            unrolled,
        }
    }

    /// A sparse-mesh production variant: indirect addressing, double
    /// precision, unrolled — the space the runtime
    /// [`crate::solver::Solver`] can actually execute
    /// (`propagation × layout`; [`Self::harvey`] is
    /// `sparse(Ab, Aos)`).
    pub fn sparse(propagation: Propagation, layout: Layout) -> Self {
        Self::sparse_with_precision(propagation, layout, Precision::Double)
    }

    /// [`Self::sparse`] at an explicit storage precision. The runtime
    /// solvers execute `Single` (f32 distributions) and `Double`; `Quad`
    /// remains model-only.
    pub fn sparse_with_precision(
        propagation: Propagation,
        layout: Layout,
        precision: Precision,
    ) -> Self {
        Self {
            layout,
            propagation,
            precision,
            addressing: Addressing::Indirect,
            unrolled: true,
        }
    }

    /// All four proxy variants shown in the paper's Fig. 4 (SoA unrolled and
    /// AoS, for each propagation pattern).
    pub fn fig4_variants() -> Vec<(String, Self)> {
        let mut v = Vec::new();
        for (pname, p) in [(("AA"), Propagation::Aa), (("AB"), Propagation::Ab)] {
            v.push((
                format!("{pname}/SOA-unrolled"),
                Self::proxy(Layout::Soa, p, true),
            ));
            v.push((format!("{pname}/AOS"), Self::proxy(Layout::Aos, p, false)));
        }
        v
    }

    /// The SoA variants of the paper's Fig. 8 (AA/AB × rolled/unrolled).
    pub fn fig8_variants() -> Vec<(String, Self)> {
        let mut v = Vec::new();
        for (pname, p) in [("AA", Propagation::Aa), ("AB", Propagation::Ab)] {
            for (uname, u) in [("unrolled", true), ("rolled", false)] {
                v.push((format!("{pname}/SOA-{uname}"), Self::proxy(Layout::Soa, p, u)));
            }
        }
        v
    }

    /// Number of distribution values stored per fluid point (one array for
    /// AA, two for AB — the second array is counted as capacity, not
    /// traffic).
    #[inline]
    pub fn arrays(&self) -> usize {
        match self.propagation {
            Propagation::Ab => 2,
            Propagation::Aa => 1,
        }
    }

    /// Resident distribution-storage bytes per fluid point: `arrays × q ×
    /// d_size`, plus the streaming-index row for indirect addressing. AA
    /// configurations halve the distribution term — the paper's §III-D
    /// motivation for AA beyond bandwidth — because the second (`f_tmp`)
    /// array is never allocated.
    #[inline]
    pub fn resident_bytes_per_point(&self) -> f64 {
        let distributions = (self.arrays() * self.q() * self.precision.bytes()) as f64;
        let index = match self.addressing {
            Addressing::Dense => 0.0,
            Addressing::Indirect => self.q() as f64 * crate::access_profile::INDEX_BYTES,
        };
        distributions + index
    }

    /// Short display name, e.g. `"AB/AOS/indirect/f64"`.
    pub fn name(&self) -> String {
        format!(
            "{}/{}/{}/f{}",
            match self.propagation {
                Propagation::Ab => "AB",
                Propagation::Aa => "AA",
            },
            match self.layout {
                Layout::Soa => "SOA",
                Layout::Aos => "AOS",
            },
            match self.addressing {
                Addressing::Dense => "dense",
                Addressing::Indirect => "indirect",
            },
            self.precision.bytes() * 8,
        )
    }

    /// Number of discrete velocities (D3Q19 for every implemented kernel).
    #[inline]
    pub fn q(&self) -> usize {
        Q19
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_bytes() {
        assert_eq!(Precision::Single.bytes(), 4);
        assert_eq!(Precision::Double.bytes(), 8);
        assert_eq!(Precision::Quad.bytes(), 16);
    }

    #[test]
    fn harvey_defaults() {
        let k = KernelConfig::harvey();
        assert_eq!(k.addressing, Addressing::Indirect);
        assert_eq!(k.arrays(), 2);
        assert_eq!(k.name(), "AB/AOS/indirect/f64");
    }

    #[test]
    fn aa_uses_one_array() {
        let k = KernelConfig::proxy(Layout::Soa, Propagation::Aa, true);
        assert_eq!(k.arrays(), 1);
    }

    #[test]
    fn fig4_has_four_variants() {
        let v = KernelConfig::fig4_variants();
        assert_eq!(v.len(), 4);
        let names: Vec<_> = v.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"AA/SOA-unrolled"));
        assert!(names.contains(&"AB/AOS"));
    }

    #[test]
    fn fig8_variants_are_all_soa() {
        for (_, k) in KernelConfig::fig8_variants() {
            assert_eq!(k.layout, Layout::Soa);
        }
    }

    #[test]
    fn sparse_constructor_spans_the_runtime_space() {
        assert_eq!(KernelConfig::sparse(Propagation::Ab, Layout::Aos), KernelConfig::harvey());
        let aa = KernelConfig::sparse(Propagation::Aa, Layout::Soa);
        assert_eq!(aa.addressing, Addressing::Indirect);
        assert_eq!(aa.name(), "AA/SOA/indirect/f64");
    }

    #[test]
    fn aa_halves_resident_distribution_bytes() {
        let ab = KernelConfig::harvey();
        let aa = KernelConfig::sparse(Propagation::Aa, Layout::Aos);
        // AB: 2×19×8 + 19×4 = 380; AA drops one 152-byte array.
        assert_eq!(ab.resident_bytes_per_point(), 380.0);
        assert_eq!(aa.resident_bytes_per_point(), 228.0);
        // Dense proxy configs carry no index row.
        let dense = KernelConfig::proxy(Layout::Soa, Propagation::Aa, true);
        assert_eq!(dense.resident_bytes_per_point(), 152.0);
    }

    #[test]
    fn single_precision_byte_model_is_pinned_end_to_end() {
        // f32 halves only the distribution term; the u32 index row is
        // precision-independent. AB f32: 2×19×4 + 76 = 228 (same resident
        // footprint as AA f64); AA f32: 19×4 + 76 = 152 — below AA f64's
        // 228 B/point, the headline of the Precision::Single path.
        let ab32 = KernelConfig::sparse_with_precision(
            Propagation::Ab,
            Layout::Aos,
            Precision::Single,
        );
        let aa32 = KernelConfig::sparse_with_precision(
            Propagation::Aa,
            Layout::Soa,
            Precision::Single,
        );
        assert_eq!(ab32.resident_bytes_per_point(), 228.0);
        assert_eq!(aa32.resident_bytes_per_point(), 152.0);
        assert_eq!(ab32.name(), "AB/AOS/indirect/f32");
        assert_eq!(aa32.name(), "AA/SOA/indirect/f32");
        // Double-precision sparse constructor is unchanged by the refactor.
        assert_eq!(
            KernelConfig::sparse_with_precision(Propagation::Ab, Layout::Aos, Precision::Double),
            KernelConfig::harvey()
        );
    }

    #[test]
    fn simd_and_select_labels() {
        assert_eq!(SimdPath::default(), SimdPath::Vector);
        assert_eq!(KernelSelect::default(), KernelSelect::Fixed);
        assert_eq!(SimdPath::Scalar.label(), "scalar");
        assert_eq!(SimdPath::Vector.label(), "vector");
        assert_eq!(KernelSelect::Fixed.label(), "fixed");
        assert_eq!(KernelSelect::Auto.label(), "auto");
    }

    #[test]
    fn stream_references_match_propagation_shapes() {
        assert_eq!(
            Propagation::Ab.stream_reference(),
            StreamReference::Triad,
            "AB pull is 2 loads + 1 store per cell"
        );
        assert_eq!(
            Propagation::Aa.stream_reference(),
            StreamReference::CopyTriadMean,
            "AA alternates Copy-shaped even and Triad-shaped odd steps"
        );
        // Reference bandwidths resolve from the measured STREAM pair.
        assert_eq!(StreamReference::Triad.gb_s(10.0, 16.0), 16.0);
        assert_eq!(StreamReference::CopyTriadMean.gb_s(10.0, 16.0), 13.0);
        assert_eq!(StreamReference::Triad.label(), "triad");
        assert_eq!(StreamReference::CopyTriadMean.label(), "mean(copy,triad)");
    }

    #[test]
    fn layout_indexers_are_inverse_transposes() {
        let n = 37;
        // Every (cell, q) maps to a unique flat slot in both layouts.
        let mut seen_soa = vec![false; n * Q19];
        let mut seen_aos = vec![false; n * Q19];
        for cell in 0..n {
            for q in 0..Q19 {
                let s = SoaIdx::at(cell, q, n);
                let a = AosIdx::at(cell, q, n);
                assert!(!seen_soa[s] && !seen_aos[a]);
                seen_soa[s] = true;
                seen_aos[a] = true;
            }
        }
    }
}

//! The LBM proxy application (paper §II-B): fluid-only D3Q19 BGK in a
//! hardcoded cylinder, reproducing `lbm-proxy-app`.
//!
//! The cylinder axis is z with periodic ends; flow is driven by a uniform
//! body force along z, so the steady state is an analytic Poiseuille
//! profile — ideal both for validation and for isolating kernel
//! performance. The proxy exists to scan the kernel-variant space of the
//! paper's Figs. 4 and 8: AA vs. AB propagation × SoA vs. AoS layout ×
//! rolled vs. unrolled inner loops, all dense-addressed.
//!
//! *Rolled vs. unrolled*: the unrolled variants run the plain
//! constant-trip-count direction loop, which the compiler fully unrolls and
//! vectorizes; the rolled variants launder the loop index through
//! [`std::hint::black_box`], forcing genuine indexed iteration — the same
//! overhead structure as a non-unrolled inner `for` in C.

// Direction loops index several parallel tables by `q` on purpose — the
// layout-generic indexing needs the raw index, not an iterator item.
#![allow(clippy::needless_range_loop)]

use crate::equilibrium::{equilibrium_d3q19, moments_d3q19};
use crate::kernel::{AosIdx, KernelConfig, Layout, LayoutIdx, Propagation, SoaIdx};
use crate::lattice::{opposite, C19, Q19, W19};
use crate::solver::RunStats;
use std::hint::black_box;

/// The proxy application state.
pub struct ProxyApp {
    nx: usize,
    ny: usize,
    nz: usize,
    /// True for lumen cells.
    mask: Vec<bool>,
    config: KernelConfig,
    omega: f64,
    /// Body acceleration along +z (lattice units).
    gravity: f64,
    f_a: Vec<f64>,
    /// Second array for AB; empty for AA.
    f_b: Vec<f64>,
    steps_taken: u64,
    fluid_cells: usize,
    radius: f64,
}

impl ProxyApp {
    /// Create a cylinder of `diameter` voxels across and `length` voxels
    /// long, initialized at rest.
    ///
    /// # Panics
    /// Panics for a diameter below 4 voxels or τ ≤ 1/2.
    pub fn new(diameter: usize, length: usize, config: KernelConfig, tau: f64, gravity: f64) -> Self {
        assert!(diameter >= 4, "degenerate cylinder");
        assert!(length >= 1);
        assert!(tau > 0.5, "tau must exceed 1/2 for stability");
        let nx = diameter + 2; // one solid shell around the lumen in x/y
        let ny = diameter + 2;
        let nz = length;
        let n = nx * ny * nz;
        let radius = diameter as f64 / 2.0;
        let cx = nx as f64 / 2.0;
        let cy = ny as f64 / 2.0;

        let mut mask = vec![false; n];
        let mut fluid_cells = 0;
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let dx = x as f64 + 0.5 - cx;
                    let dy = y as f64 + 0.5 - cy;
                    if dx * dx + dy * dy < radius * radius {
                        mask[x + nx * (y + ny * z)] = true;
                        fluid_cells += 1;
                    }
                }
            }
        }

        // Rest equilibrium everywhere (solid cells hold harmless weights).
        let mut f_a = vec![0.0; n * Q19];
        for cell in 0..n {
            for q in 0..Q19 {
                let idx = match config.layout {
                    Layout::Soa => SoaIdx::at(cell, q, n),
                    Layout::Aos => AosIdx::at(cell, q, n),
                };
                f_a[idx] = W19[q];
            }
        }
        let f_b = match config.propagation {
            Propagation::Ab => f_a.clone(),
            Propagation::Aa => Vec::new(),
        };

        Self {
            nx,
            ny,
            nz,
            mask,
            config,
            omega: 1.0 / tau,
            gravity,
            f_a,
            f_b,
            steps_taken: 0,
            fluid_cells,
            radius,
        }
    }

    /// Number of lumen (fluid) cells.
    pub fn fluid_count(&self) -> usize {
        self.fluid_cells
    }

    /// Total cells in the dense box.
    pub fn total_cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// The kernel configuration being run.
    pub fn config(&self) -> KernelConfig {
        self.config
    }

    /// Timesteps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Neighbor cell index of `(x, y, z)` in direction `q`, with periodic
    /// z and `None` for solid/outside in x/y.
    #[inline(always)]
    fn neighbor(&self, x: usize, y: usize, z: usize, q: usize) -> Option<usize> {
        let (cx, cy, cz) = C19[q];
        let xx = x as i64 + cx as i64;
        let yy = y as i64 + cy as i64;
        if xx < 0 || yy < 0 || xx >= self.nx as i64 || yy >= self.ny as i64 {
            return None;
        }
        let zz = (z as i64 + cz as i64).rem_euclid(self.nz as i64) as usize;
        let idx = xx as usize + self.nx * (yy as usize + self.ny * zz);
        self.mask[idx].then_some(idx)
    }

    /// Advance one timestep with the configured kernel variant.
    pub fn step(&mut self) {
        match (self.config.propagation, self.config.layout, self.config.unrolled) {
            (Propagation::Ab, Layout::Soa, true) => self.step_ab::<SoaIdx, true>(),
            (Propagation::Ab, Layout::Soa, false) => self.step_ab::<SoaIdx, false>(),
            (Propagation::Ab, Layout::Aos, true) => self.step_ab::<AosIdx, true>(),
            (Propagation::Ab, Layout::Aos, false) => self.step_ab::<AosIdx, false>(),
            (Propagation::Aa, Layout::Soa, true) => self.step_aa::<SoaIdx, true>(),
            (Propagation::Aa, Layout::Soa, false) => self.step_aa::<SoaIdx, false>(),
            (Propagation::Aa, Layout::Aos, true) => self.step_aa::<AosIdx, true>(),
            (Propagation::Aa, Layout::Aos, false) => self.step_aa::<AosIdx, false>(),
        }
        self.steps_taken += 1;
    }

    /// Run `steps` timesteps and report throughput over fluid cells.
    pub fn run(&mut self, steps: u64) -> RunStats {
        let start = std::time::Instant::now();
        for _ in 0..steps {
            self.step();
        }
        let seconds = start.elapsed().as_secs_f64();
        let updates = steps * self.fluid_cells as u64;
        RunStats {
            updates,
            seconds,
            mflups: if seconds > 0.0 {
                updates as f64 / seconds / 1e6
            } else {
                0.0
            },
        }
    }

    /// BGK collision with body force, shared by every variant.
    #[inline(always)]
    fn collide(&self, fin: &[f64; Q19], fout: &mut [f64; Q19]) {
        let (rho, jx, jy, jz) = moments_d3q19(fin);
        let inv = 1.0 / rho;
        let (ux, uy, uz) = (jx * inv, jy * inv, jz * inv);
        let mut feq = [0.0; Q19];
        equilibrium_d3q19(rho, ux, uy, uz, &mut feq);
        for q in 0..Q19 {
            let force = 3.0 * W19[q] * C19[q].2 as f64 * self.gravity;
            fout[q] = fin[q] - self.omega * (fin[q] - feq[q]) + force;
        }
    }

    /// AB pull step: gather from `f_a`, collide, write `f_b`, swap.
    fn step_ab<L: LayoutIdx, const UNROLLED: bool>(&mut self) {
        let n = self.total_cells();
        let mut f_b = std::mem::take(&mut self.f_b);
        {
            let src = &self.f_a;
            for z in 0..self.nz {
                for y in 0..self.ny {
                    for x in 0..self.nx {
                        let cell = x + self.nx * (y + self.ny * z);
                        if !self.mask[cell] {
                            continue;
                        }
                        let mut fin = [0.0f64; Q19];
                        for qi in 0..Q19 {
                            let q = if UNROLLED { qi } else { black_box(qi) };
                            // Arrival along q comes from the neighbor
                            // opposite q; solid links bounce back.
                            fin[q] = match self.neighbor(x, y, z, opposite(q)) {
                                Some(nb) => src[L::at(nb, q, n)],
                                None => src[L::at(cell, opposite(q), n)],
                            };
                        }
                        let mut fout = [0.0f64; Q19];
                        self.collide(&fin, &mut fout);
                        for qi in 0..Q19 {
                            let q = if UNROLLED { qi } else { black_box(qi) };
                            f_b[L::at(cell, q, n)] = fout[q];
                        }
                    }
                }
            }
        }
        self.f_b = f_b;
        std::mem::swap(&mut self.f_a, &mut self.f_b);
    }

    /// AA-pattern step: even timesteps collide in place writing opposite
    /// slots; odd timesteps gather from neighbors' opposite slots, collide,
    /// and scatter forward. Each cell's read set equals its write set, so
    /// the update is in-place safe (Bailey et al. 2009).
    fn step_aa<L: LayoutIdx, const UNROLLED: bool>(&mut self) {
        let n = self.total_cells();
        let even = self.steps_taken.is_multiple_of(2);
        let mut f = std::mem::take(&mut self.f_a);
        for z in 0..self.nz {
            for y in 0..self.ny {
                for x in 0..self.nx {
                    let cell = x + self.nx * (y + self.ny * z);
                    if !self.mask[cell] {
                        continue;
                    }
                    let mut fin = [0.0f64; Q19];
                    if even {
                        for qi in 0..Q19 {
                            let q = if UNROLLED { qi } else { black_box(qi) };
                            fin[q] = f[L::at(cell, q, n)];
                        }
                    } else {
                        for qi in 0..Q19 {
                            let q = if UNROLLED { qi } else { black_box(qi) };
                            // Value arriving along q was stored by the even
                            // step at the (x - c_q) neighbor's opposite slot.
                            fin[q] = match self.neighbor(x, y, z, opposite(q)) {
                                Some(nb) => f[L::at(nb, opposite(q), n)],
                                None => f[L::at(cell, q, n)],
                            };
                        }
                    }
                    let mut fout = [0.0f64; Q19];
                    self.collide(&fin, &mut fout);
                    if even {
                        for qi in 0..Q19 {
                            let q = if UNROLLED { qi } else { black_box(qi) };
                            f[L::at(cell, opposite(q), n)] = fout[q];
                        }
                    } else {
                        for qi in 0..Q19 {
                            let q = if UNROLLED { qi } else { black_box(qi) };
                            match self.neighbor(x, y, z, q) {
                                Some(nb) => f[L::at(nb, q, n)] = fout[q],
                                None => f[L::at(cell, opposite(q), n)] = fout[q],
                            }
                        }
                    }
                }
            }
        }
        self.f_a = f;
    }

    /// Whether the distributions are currently in natural storage order
    /// (true for AB always; for AA only after an even number of steps).
    pub fn in_natural_order(&self) -> bool {
        match self.config.propagation {
            Propagation::Ab => true,
            Propagation::Aa => self.steps_taken.is_multiple_of(2),
        }
    }

    /// Density and velocity at `(x, y, z)`; requires natural storage order.
    ///
    /// # Panics
    /// Panics for a solid cell or when the AA state is mid-pair.
    pub fn macroscopics(&self, x: usize, y: usize, z: usize) -> (f64, f64, f64, f64) {
        assert!(
            self.in_natural_order(),
            "AA state is only readable after an even number of steps"
        );
        let n = self.total_cells();
        let cell = x + self.nx * (y + self.ny * z);
        assert!(self.mask[cell], "solid cell");
        let mut f = [0.0; Q19];
        for q in 0..Q19 {
            let idx = match self.config.layout {
                Layout::Soa => SoaIdx::at(cell, q, n),
                Layout::Aos => AosIdx::at(cell, q, n),
            };
            f[q] = self.f_a[idx];
        }
        let (rho, jx, jy, jz) = moments_d3q19(&f);
        (rho, jx / rho, jy / rho, jz / rho)
    }

    /// Density and velocity of the *post-stream* state at `(x, y, z)`:
    /// moments of the gathered (streamed, pre-collision) distributions,
    /// without advancing the simulation. Only meaningful for AB configs.
    ///
    /// This exists for the AA/AB equivalence check: starting from a
    /// stream-invariant state, the AA array after an even number of steps
    /// equals the AB array with one extra streaming applied
    /// (`AA_2k = S(AB_2k)`), so AA's natural-order moments must match AB's
    /// post-stream moments exactly.
    ///
    /// # Panics
    /// Panics for AA configs or a solid cell.
    pub fn post_stream_macroscopics(&self, x: usize, y: usize, z: usize) -> (f64, f64, f64, f64) {
        assert!(
            matches!(self.config.propagation, Propagation::Ab),
            "post-stream readout is defined for AB configs"
        );
        let n = self.total_cells();
        let cell = x + self.nx * (y + self.ny * z);
        assert!(self.mask[cell], "solid cell");
        let at = |c: usize, q: usize| match self.config.layout {
            Layout::Soa => SoaIdx::at(c, q, n),
            Layout::Aos => AosIdx::at(c, q, n),
        };
        let mut fin = [0.0; Q19];
        for q in 0..Q19 {
            fin[q] = match self.neighbor(x, y, z, opposite(q)) {
                Some(nb) => self.f_a[at(nb, q)],
                None => self.f_a[at(cell, opposite(q))],
            };
        }
        let (rho, jx, jy, jz) = moments_d3q19(&fin);
        (rho, jx / rho, jy / rho, jz / rho)
    }

    /// Axial velocity along a diameter at mid-length: `(radial distance,
    /// u_z)` pairs, for Poiseuille validation.
    pub fn velocity_profile(&self) -> Vec<(f64, f64)> {
        let z = self.nz / 2;
        let y = self.ny / 2;
        let cx = self.nx as f64 / 2.0;
        let mut out = Vec::new();
        for x in 0..self.nx {
            let cell = x + self.nx * (y + self.ny * z);
            if self.mask[cell] {
                let (_, _, _, uz) = self.macroscopics(x, y, z);
                out.push((x as f64 + 0.5 - cx, uz));
            }
        }
        out
    }

    /// Total mass over fluid cells; requires natural storage order.
    pub fn total_mass(&self) -> f64 {
        let mut mass = 0.0;
        for z in 0..self.nz {
            for y in 0..self.ny {
                for x in 0..self.nx {
                    if self.mask[x + self.nx * (y + self.ny * z)] {
                        mass += self.macroscopics(x, y, z).0;
                    }
                }
            }
        }
        mass
    }

    /// Analytic steady Poiseuille peak velocity for this cylinder:
    /// `u_max = g R² / (4 ν)`.
    pub fn analytic_peak_velocity(&self) -> f64 {
        let nu = (1.0 / self.omega - 0.5) / 3.0;
        self.gravity * self.radius * self.radius / (4.0 * nu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(layout: Layout, propagation: Propagation, unrolled: bool) -> KernelConfig {
        KernelConfig::proxy(layout, propagation, unrolled)
    }

    #[test]
    fn mask_is_a_cylinder() {
        let p = ProxyApp::new(10, 6, cfg(Layout::Aos, Propagation::Ab, true), 0.8, 0.0);
        // Lumen area ≈ π r² = π·25 ≈ 78.5 per slice.
        let per_slice = p.fluid_count() / 6;
        assert!((70..=86).contains(&per_slice), "per-slice = {per_slice}");
    }

    #[test]
    fn zero_gravity_rest_state_is_stationary() {
        for (layout, prop) in [
            (Layout::Soa, Propagation::Ab),
            (Layout::Aos, Propagation::Ab),
            (Layout::Soa, Propagation::Aa),
            (Layout::Aos, Propagation::Aa),
        ] {
            let mut p = ProxyApp::new(8, 4, cfg(layout, prop, true), 0.8, 0.0);
            for _ in 0..4 {
                p.step();
            }
            let (rho, ux, uy, uz) = p.macroscopics(5, 5, 2);
            assert!((rho - 1.0).abs() < 1e-13);
            assert!(ux.abs() < 1e-13 && uy.abs() < 1e-13 && uz.abs() < 1e-13);
        }
    }

    #[test]
    fn mass_is_conserved_under_forcing() {
        let mut p = ProxyApp::new(8, 6, cfg(Layout::Aos, Propagation::Ab, true), 0.8, 1e-5);
        let m0 = p.total_mass();
        for _ in 0..100 {
            p.step();
        }
        let m1 = p.total_mass();
        assert!((m0 - m1).abs() < 1e-9 * m0, "{m0} -> {m1}");
    }

    #[test]
    fn all_variants_agree_macroscopically() {
        // Every (layout, propagation, unrolled) combination computes the
        // same physics. AB variants compare state-to-state; AA variants are
        // one streaming pass ahead (`AA_2k = S(AB_2k)` from a
        // stream-invariant start), so they compare against the AB
        // reference's post-stream moments.
        let reference = {
            let mut p = ProxyApp::new(8, 6, cfg(Layout::Aos, Propagation::Ab, true), 0.8, 1e-5);
            for _ in 0..20 {
                p.step();
            }
            p
        };
        let probe = (5usize, 5usize, 3usize);
        let (ab_rho, _, _, ab_uz) = reference.macroscopics(probe.0, probe.1, probe.2);
        let (st_rho, _, _, st_uz) = reference.post_stream_macroscopics(probe.0, probe.1, probe.2);
        for layout in [Layout::Soa, Layout::Aos] {
            for prop in [Propagation::Ab, Propagation::Aa] {
                for unrolled in [true, false] {
                    let mut p = ProxyApp::new(8, 6, cfg(layout, prop, unrolled), 0.8, 1e-5);
                    for _ in 0..20 {
                        p.step();
                    }
                    let (r1, _, _, w1) = p.macroscopics(probe.0, probe.1, probe.2);
                    let (r0, w0) = match prop {
                        Propagation::Ab => (ab_rho, ab_uz),
                        Propagation::Aa => (st_rho, st_uz),
                    };
                    assert!(
                        (r0 - r1).abs() < 1e-12 && (w0 - w1).abs() < 1e-12,
                        "{layout:?}/{prop:?}/unrolled={unrolled}: rho {r0} vs {r1}, uz {w0} vs {w1}"
                    );
                }
            }
        }
    }

    #[test]
    fn converges_to_poiseuille() {
        // Small cylinder, run to near-steady state; peak velocity within
        // 15% of the analytic value (halfway bounce-back staircase limits
        // accuracy at this resolution).
        let mut p = ProxyApp::new(10, 4, cfg(Layout::Aos, Propagation::Ab, true), 0.9, 2e-6);
        for _ in 0..1500 {
            p.step();
        }
        let peak = p
            .velocity_profile()
            .iter()
            .map(|&(_, uz)| uz)
            .fold(0.0f64, f64::max);
        let analytic = p.analytic_peak_velocity();
        let err = (peak - analytic).abs() / analytic;
        assert!(err < 0.15, "peak {peak} vs analytic {analytic} (err {err})");
    }

    #[test]
    fn poiseuille_profile_is_parabolic() {
        let mut p = ProxyApp::new(12, 4, cfg(Layout::Soa, Propagation::Aa, true), 0.9, 2e-6);
        for _ in 0..2000 {
            p.step();
        }
        let profile = p.velocity_profile();
        let peak = profile.iter().map(|&(_, u)| u).fold(0.0f64, f64::max);
        // Fit u(r)/u_peak against 1 - (r/R)²; every sample within 20%
        // pointwise (near-axis) is enough to confirm the shape.
        let r_edge = p.radius;
        for &(r, u) in &profile {
            let expect = peak * (1.0 - (r / r_edge) * (r / r_edge));
            assert!(
                (u - expect).abs() < 0.25 * peak,
                "r={r}: u={u} expect={expect}"
            );
        }
    }

    #[test]
    fn aa_state_unreadable_mid_pair() {
        let mut p = ProxyApp::new(8, 4, cfg(Layout::Soa, Propagation::Aa, true), 0.8, 0.0);
        p.step();
        assert!(!p.in_natural_order());
        p.step();
        assert!(p.in_natural_order());
    }

    #[test]
    #[should_panic(expected = "solid cell")]
    fn macroscopics_rejects_solid() {
        let p = ProxyApp::new(8, 4, cfg(Layout::Aos, Propagation::Ab, true), 0.8, 0.0);
        let _ = p.macroscopics(0, 0, 0);
    }
}

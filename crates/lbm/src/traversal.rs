//! Locality-aware traversal of the sparse fluid mesh.
//!
//! The kernels in [`crate::solver`] and [`crate::ranked`] visit fluid
//! cells through index lists, so *storage* order and *traversal* order are
//! independent degrees of freedom. This module owns the traversal side:
//!
//! * [`TraversalOrder`] — the permutation applied to the cell lists at
//!   solver construction. `Natural` is ascending cell id (the historical
//!   order, and the geometry builder's x-fastest raster order); `Morton`
//!   sorts cells along a Z-order space-filling curve, so cells that are
//!   close in 3-space become close in the traversal, which shrinks the
//!   reuse distance of the 19-point neighbor stencil.
//! * cache **blocking** — the per-step loop can be cut into fixed-size
//!   position blocks, each of which visits its bulk, inlet, and outlet
//!   cells before moving on; the block's working set (own rows + neighbor
//!   rows) then stays resident across the three kind loops.
//! * software **prefetch** — the gather/scatter loops can issue `T0`
//!   prefetches for the neighbor-index rows and distribution slots a few
//!   cells ahead, hiding the dependent-load latency of indirect
//!   addressing.
//! * deterministic work **stealing** — the per-step parallel loop can run
//!   on the chunk-granular stealing scheduler
//!   ([`hemocloud_rt::pool::Pool::par_owner_mut_stealing_workers`])
//!   instead of the static balanced partition.
//!
//! **Every knob is bit-neutral.** Each kernel computes each cell purely
//! from pre-step state, and the per-cell write sets are pairwise disjoint
//! (the AA safety argument in [`crate::solver`]), so *any* execution order
//! of the cells — permuted, blocked, stolen, or all three — stores exactly
//! the same bits. The traversal-permutation oracle tests enforce this for
//! every config combination.
//!
//! The one order this module must **not** touch is the inlet-profile sum
//! in `poiseuille_profile_for`, which folds inlet centroids in ascending
//! cell-id order at construction time; reordering that fold would
//! reassociate floating-point adds and change the inlet velocity bits.
//! Traversal permutations therefore apply only to the per-step loops.

use crate::mesh::FluidMesh;

/// The cell-visit permutation applied at solver construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraversalOrder {
    /// Ascending cell id — the raster order the mesh builder emits.
    #[default]
    Natural,
    /// Z-order (Morton) space-filling curve over the cell coordinates:
    /// spatially adjacent cells become traversal-adjacent, improving
    /// stencil reuse on the sparse mesh.
    Morton,
}

/// Traversal-side configuration, the sibling of
/// [`crate::kernel::KernelConfig`] on
/// [`crate::solver::SolverConfig`]. All fields are bit-neutral — they
/// change *when* each cell is visited and by *whom*, never what it
/// computes. See the module docs for the argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraversalConfig {
    /// Cell-visit permutation.
    pub order: TraversalOrder,
    /// Cache-block size in traversal positions; `0` disables blocking.
    /// Each block runs its bulk/inlet/outlet sub-loops back to back.
    pub block: usize,
    /// Issue software prefetches for upcoming gather/scatter targets in
    /// the indirect-addressed kernel loops.
    pub prefetch: bool,
    /// Run the per-step parallel loop on the work-stealing scheduler
    /// instead of the static balanced partition.
    pub stealing: bool,
    /// Steal granularity in traversal positions; `0` picks an automatic
    /// chunk size (several chunks per worker, floor 64) so there is
    /// enough slack to steal without shrinking chunks into scheduler
    /// overhead.
    pub steal_chunk: usize,
}

impl TraversalConfig {
    /// The historical traversal: natural order, unblocked, no prefetch,
    /// static partition.
    pub fn natural() -> Self {
        Self::default()
    }

    /// Morton order only — isolates the space-filling-curve effect.
    pub fn morton() -> Self {
        Self {
            order: TraversalOrder::Morton,
            ..Self::default()
        }
    }

    /// The full locality package: Morton order, 4096-cell blocks,
    /// prefetch, and work stealing with automatic chunking.
    pub fn tuned() -> Self {
        Self {
            order: TraversalOrder::Morton,
            block: 4096,
            prefetch: true,
            stealing: true,
            steal_chunk: 0,
        }
    }

    /// Compact name for benchmark tables and provenance records, e.g.
    /// `"natural"` or `"morton+block4096+pf+steal"`.
    pub fn name(&self) -> String {
        let mut s = match self.order {
            TraversalOrder::Natural => "natural".to_string(),
            TraversalOrder::Morton => "morton".to_string(),
        };
        if self.block > 0 {
            s.push_str(&format!("+block{}", self.block));
        }
        if self.prefetch {
            s.push_str("+pf");
        }
        if self.stealing {
            s.push_str("+steal");
            if self.steal_chunk > 0 {
                s.push_str(&format!("{}", self.steal_chunk));
            }
        }
        s
    }

    /// The steal chunk size for `n_items` positions on `workers` logical
    /// workers: the explicit `steal_chunk` if set, else several chunks
    /// per worker with a floor of 64 positions so chunks stay coarse
    /// enough to amortize the CAS per chunk.
    pub fn steal_chunk_for(&self, n_items: usize, workers: usize) -> usize {
        if self.steal_chunk > 0 {
            return self.steal_chunk;
        }
        (n_items / (8 * workers.max(1))).max(64)
    }
}

/// The traversal permutation for `mesh` under `order`: `perm[p]` is the
/// cell id visited at position `p`. Natural order is the identity;
/// Morton order is a stable sort by the Z-order key of each cell's grid
/// coordinates (ties — impossible for distinct cells, but kept for
/// robustness — break by cell id).
pub fn permutation(mesh: &FluidMesh, order: TraversalOrder) -> Vec<u32> {
    let n = mesh.len();
    let mut perm: Vec<u32> = (0..n as u32).collect();
    if order == TraversalOrder::Morton {
        let mut keyed: Vec<(u64, u32)> = perm
            .iter()
            .map(|&cell| {
                let (x, y, z) = mesh.coords(cell as usize);
                (morton3(x as u64, y as u64, z as u64), cell)
            })
            .collect();
        keyed.sort_unstable(); // (key, cell) pairs: ties break by cell id
        for (p, &(_, cell)) in keyed.iter().enumerate() {
            perm[p] = cell;
        }
    }
    perm
}

/// Interleave the low 21 bits of `x`, `y`, `z` into a 63-bit Morton key
/// (x in the least-significant position of each triple).
pub fn morton3(x: u64, y: u64, z: u64) -> u64 {
    spread2(x) | (spread2(y) << 1) | (spread2(z) << 2)
}

/// Spread the low 21 bits of `v` so bit `i` lands at bit `3i` — the
/// standard parallel-prefix bit interleave.
fn spread2(v: u64) -> u64 {
    let mut v = v & 0x1f_ffff; // 21 bits
    v = (v | (v << 32)) & 0x001f_0000_0000_ffff;
    v = (v | (v << 16)) & 0x001f_0000_ff00_00ff;
    v = (v | (v << 8)) & 0x100f_00f0_0f00_f00f;
    v = (v | (v << 4)) & 0x10c3_0c30_c30c_30c3;
    v = (v | (v << 2)) & 0x1249_2492_4924_9249;
    v
}

/// Software-prefetch the cache line holding `ptr` into all cache levels.
/// A scheduling hint only — never a memory access — so it is safe on any
/// address and a no-op on non-x86 targets.
#[inline(always)]
pub fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch(ptr as *const i8, _MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = ptr;
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemocloud_geometry::anatomy::CylinderSpec;

    fn small_mesh() -> FluidMesh {
        let g = CylinderSpec::default()
            .with_dimensions(2.0, 8.0)
            .with_resolution(6)
            .build();
        FluidMesh::build(&g)
    }

    #[test]
    fn spread2_places_bit_i_at_bit_3i() {
        for i in 0..21u32 {
            assert_eq!(spread2(1 << i), 1u64 << (3 * i));
        }
        assert_eq!(spread2(0), 0);
    }

    #[test]
    fn morton3_interleaves_axes() {
        assert_eq!(morton3(1, 0, 0), 0b001);
        assert_eq!(morton3(0, 1, 0), 0b010);
        assert_eq!(morton3(0, 0, 1), 0b100);
        assert_eq!(morton3(1, 1, 1), 0b111);
        assert_eq!(morton3(2, 0, 0), 0b001_000);
        // Distinct coordinates give distinct keys (injective on 21 bits).
        assert_ne!(morton3(3, 5, 7), morton3(5, 3, 7));
    }

    #[test]
    fn permutations_are_bijections() {
        let mesh = small_mesh();
        for order in [TraversalOrder::Natural, TraversalOrder::Morton] {
            let perm = permutation(&mesh, order);
            assert_eq!(perm.len(), mesh.len());
            let mut seen = vec![false; mesh.len()];
            for &cell in &perm {
                assert!(!seen[cell as usize], "{order:?}: cell {cell} repeated");
                seen[cell as usize] = true;
            }
        }
    }

    #[test]
    fn natural_permutation_is_the_identity() {
        let mesh = small_mesh();
        let perm = permutation(&mesh, TraversalOrder::Natural);
        assert!(perm.iter().enumerate().all(|(p, &c)| c as usize == p));
    }

    #[test]
    fn morton_permutation_sorts_by_interleaved_key() {
        let mesh = small_mesh();
        let perm = permutation(&mesh, TraversalOrder::Morton);
        let keys: Vec<u64> = perm
            .iter()
            .map(|&cell| {
                let (x, y, z) = mesh.coords(cell as usize);
                morton3(x as u64, y as u64, z as u64)
            })
            .collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys not sorted");
    }

    #[test]
    fn config_names_encode_every_knob() {
        assert_eq!(TraversalConfig::natural().name(), "natural");
        assert_eq!(TraversalConfig::morton().name(), "morton");
        assert_eq!(TraversalConfig::tuned().name(), "morton+block4096+pf+steal");
        let explicit = TraversalConfig {
            stealing: true,
            steal_chunk: 128,
            ..TraversalConfig::natural()
        };
        assert_eq!(explicit.name(), "natural+steal128");
    }

    #[test]
    fn auto_steal_chunk_is_coarse_and_respects_overrides() {
        let auto = TraversalConfig::tuned();
        assert_eq!(auto.steal_chunk_for(100_000, 8), 100_000 / 64);
        assert_eq!(auto.steal_chunk_for(10, 8), 64, "floor keeps chunks coarse");
        let explicit = TraversalConfig {
            steal_chunk: 13,
            ..TraversalConfig::tuned()
        };
        assert_eq!(explicit.steal_chunk_for(100_000, 8), 13);
    }

    #[test]
    fn prefetch_is_a_safe_hint_on_any_address() {
        let data = [1.0f64; 8];
        prefetch_read(data.as_ptr());
        prefetch_read(std::ptr::null::<f64>());
        // Reaching here is the assertion: prefetch never faults.
    }
}

//! Lattice velocity sets.
//!
//! HARVEY and the proxy app use the standard **D3Q19** discretization
//! (paper §II-C); its tables are the ones the kernels hardcode. D3Q15 and
//! D3Q27 descriptors are provided as well — they are exercised by the
//! performance model's byte counting (the number of distributions per point
//! is a first-order term in Eq. 9) and by the extension examples.

/// Number of discrete velocities in D3Q19.
pub const Q19: usize = 19;

/// D3Q19 velocity vectors. Index 0 is the rest velocity; directions `2k-1`
/// and `2k` are opposites, so [`opposite`] is a closed form.
pub const C19: [(i32, i32, i32); Q19] = [
    (0, 0, 0),
    (1, 0, 0),
    (-1, 0, 0),
    (0, 1, 0),
    (0, -1, 0),
    (0, 0, 1),
    (0, 0, -1),
    (1, 1, 0),
    (-1, -1, 0),
    (1, -1, 0),
    (-1, 1, 0),
    (1, 0, 1),
    (-1, 0, -1),
    (1, 0, -1),
    (-1, 0, 1),
    (0, 1, 1),
    (0, -1, -1),
    (0, 1, -1),
    (0, -1, 1),
];

/// D3Q19 quadrature weights: 1/3 for rest, 1/18 for the 6 axis directions,
/// 1/36 for the 12 edge directions.
pub const W19: [f64; Q19] = [
    1.0 / 3.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
];

/// The x-components of [`C19`] as `f64` (exact integer conversions),
/// precomputed so the hot kernels' inner direction loops multiply against
/// flat `f64` tables instead of converting tuple fields — the form LLVM
/// vectorizes cleanly.
pub const CXF: [f64; Q19] = c19_component(0);
/// The y-components of [`C19`] as `f64`.
pub const CYF: [f64; Q19] = c19_component(1);
/// The z-components of [`C19`] as `f64`.
pub const CZF: [f64; Q19] = c19_component(2);

const fn c19_component(axis: usize) -> [f64; Q19] {
    let mut a = [0.0; Q19];
    let mut q = 0;
    while q < Q19 {
        let (x, y, z) = C19[q];
        a[q] = match axis {
            0 => x,
            1 => y,
            _ => z,
        } as f64;
        q += 1;
    }
    a
}

/// [`W19`] narrowed to f32 (round-to-nearest once per weight) — the
/// quadrature table the single-precision kernels use.
pub const W19_F32: [f32; Q19] = narrow19(W19);
/// [`CXF`] as f32 (exact: components are -1/0/1).
pub const CXF32: [f32; Q19] = narrow19(CXF);
/// [`CYF`] as f32 (exact).
pub const CYF32: [f32; Q19] = narrow19(CYF);
/// [`CZF`] as f32 (exact).
pub const CZF32: [f32; Q19] = narrow19(CZF);

const fn narrow19(a: [f64; Q19]) -> [f32; Q19] {
    let mut out = [0.0f32; Q19];
    let mut q = 0;
    while q < Q19 {
        out[q] = a[q] as f32;
        q += 1;
    }
    out
}

/// Index of the direction opposite to `q` in [`C19`].
#[inline]
pub const fn opposite(q: usize) -> usize {
    if q == 0 {
        0
    } else if q % 2 == 1 {
        q + 1
    } else {
        q - 1
    }
}

/// Lattice sound speed squared (`c_s² = 1/3` in lattice units), shared by
/// all DdQq models used here.
pub const CS2: f64 = 1.0 / 3.0;

/// A generic velocity-set descriptor, used by the performance model for
/// byte counting and by generic (non-hot-path) routines.
#[derive(Debug, Clone)]
pub struct VelocitySet {
    /// Human-readable name, e.g. `"D3Q19"`.
    pub name: &'static str,
    /// Velocity vectors.
    pub velocities: Vec<(i32, i32, i32)>,
    /// Quadrature weights (sum to 1).
    pub weights: Vec<f64>,
}

impl VelocitySet {
    /// The D3Q19 set.
    pub fn d3q19() -> Self {
        Self {
            name: "D3Q19",
            velocities: C19.to_vec(),
            weights: W19.to_vec(),
        }
    }

    /// The D3Q15 set (6 axis + 8 corner directions).
    pub fn d3q15() -> Self {
        let mut velocities = vec![(0, 0, 0)];
        let mut weights = vec![2.0 / 9.0];
        for &v in &[
            (1, 0, 0),
            (-1, 0, 0),
            (0, 1, 0),
            (0, -1, 0),
            (0, 0, 1),
            (0, 0, -1),
        ] {
            velocities.push(v);
            weights.push(1.0 / 9.0);
        }
        for sx in [1, -1] {
            for sy in [1, -1] {
                for sz in [1, -1] {
                    velocities.push((sx, sy, sz));
                    weights.push(1.0 / 72.0);
                }
            }
        }
        Self {
            name: "D3Q15",
            velocities,
            weights,
        }
    }

    /// The D3Q27 set (full 3×3×3 stencil).
    pub fn d3q27() -> Self {
        let mut velocities = Vec::with_capacity(27);
        let mut weights = Vec::with_capacity(27);
        for z in [0i32, 1, -1] {
            for y in [0i32, 1, -1] {
                for x in [0i32, 1, -1] {
                    let nnz = (x != 0) as u32 + (y != 0) as u32 + (z != 0) as u32;
                    velocities.push((x, y, z));
                    weights.push(match nnz {
                        0 => 8.0 / 27.0,
                        1 => 2.0 / 27.0,
                        2 => 1.0 / 54.0,
                        _ => 1.0 / 216.0,
                    });
                }
            }
        }
        Self {
            name: "D3Q27",
            velocities,
            weights,
        }
    }

    /// Number of discrete velocities.
    pub fn q(&self) -> usize {
        self.velocities.len()
    }

    /// Index of the opposite of direction `q` (by table search; the hot
    /// kernels use the closed-form [`opposite`] instead).
    pub fn opposite_of(&self, q: usize) -> usize {
        let (x, y, z) = self.velocities[q];
        self.velocities
            .iter()
            .position(|&(a, b, c)| (a, b, c) == (-x, -y, -z))
            .expect("velocity set is symmetric")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q19_weights_sum_to_one() {
        let s: f64 = W19.iter().sum();
        assert!((s - 1.0).abs() < 1e-15);
    }

    #[test]
    fn q19_velocities_sum_to_zero() {
        let (sx, sy, sz) = C19
            .iter()
            .fold((0, 0, 0), |(ax, ay, az), &(x, y, z)| (ax + x, ay + y, az + z));
        assert_eq!((sx, sy, sz), (0, 0, 0));
    }

    #[test]
    fn q19_second_moment_is_isotropic() {
        // Σ w_i c_iα c_iβ = c_s² δ_αβ — required for correct hydrodynamics.
        for alpha in 0..3 {
            for beta in 0..3 {
                let m: f64 = C19
                    .iter()
                    .zip(&W19)
                    .map(|(&c, &w)| {
                        let c = [c.0 as f64, c.1 as f64, c.2 as f64];
                        w * c[alpha] * c[beta]
                    })
                    .sum();
                let expect = if alpha == beta { CS2 } else { 0.0 };
                assert!((m - expect).abs() < 1e-15, "moment[{alpha}][{beta}] = {m}");
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // `q` indexes two parallel tables
    fn opposite_is_an_involution() {
        for q in 0..Q19 {
            let o = opposite(q);
            assert_eq!(opposite(o), q);
            let (x, y, z) = C19[q];
            assert_eq!(C19[o], (-x, -y, -z));
        }
    }

    #[test]
    fn generic_sets_are_consistent() {
        for set in [VelocitySet::d3q15(), VelocitySet::d3q19(), VelocitySet::d3q27()] {
            assert_eq!(
                set.q(),
                set.weights.len(),
                "{}: weight count mismatch",
                set.name
            );
            let s: f64 = set.weights.iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "{}: weights sum to {s}", set.name);
            for q in 0..set.q() {
                assert_eq!(set.opposite_of(set.opposite_of(q)), q, "{}", set.name);
            }
            // Isotropy of the second moment for all sets.
            for alpha in 0..3 {
                for beta in 0..3 {
                    let m: f64 = set
                        .velocities
                        .iter()
                        .zip(&set.weights)
                        .map(|(&c, &w)| {
                            let c = [c.0 as f64, c.1 as f64, c.2 as f64];
                            w * c[alpha] * c[beta]
                        })
                        .sum();
                    let expect = if alpha == beta { CS2 } else { 0.0 };
                    assert!(
                        (m - expect).abs() < 1e-12,
                        "{}: moment[{alpha}][{beta}] = {m}",
                        set.name
                    );
                }
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // `q` indexes four parallel tables
    fn f64_component_tables_match_c19_exactly() {
        for q in 0..Q19 {
            let (x, y, z) = C19[q];
            assert_eq!(CXF[q], x as f64);
            assert_eq!(CYF[q], y as f64);
            assert_eq!(CZF[q], z as f64);
        }
    }

    #[test]
    fn q19_matches_geometry_direction_table() {
        // The geometry crate duplicates the nonzero directions for wall
        // classification; the two tables must agree as sets.
        let geo: std::collections::HashSet<_> = hemocloud_geometry::classify::D3Q19_DIRECTIONS
            .iter()
            .copied()
            .collect();
        let lbm: std::collections::HashSet<_> =
            C19.iter().skip(1).map(|&(x, y, z)| (x, y, z)).collect();
        assert_eq!(geo, lbm);
    }

    #[test]
    fn q_counts() {
        assert_eq!(VelocitySet::d3q15().q(), 15);
        assert_eq!(VelocitySet::d3q19().q(), 19);
        assert_eq!(VelocitySet::d3q27().q(), 27);
    }
}

//! The HARVEY-style flow solver: D3Q19 BGK on an indirect-addressed fluid
//! mesh with AB (two-array) pull streaming.
//!
//! Boundary conditions follow the paper's setup (§II-C): a Poiseuille
//! velocity profile imposed at inlets, a zero-pressure (unit-density)
//! condition at outlets, and halfway bounce-back at walls. The update is
//! data-parallel over destination cells on the persistent shared worker
//! pool (`hemocloud_rt::pool`), which is race-free by construction for
//! the pull scheme: every cell writes only its own distributions, and the
//! chunked schedule partitions the destination array without reordering
//! any arithmetic — so parallel and serial steps are bit-identical, and a
//! whole run spawns no OS threads beyond the pool's fixed complement.
//!
//! The per-cell boundary dispatch is hoisted out of the kernel: cells are
//! sorted into per-kind index lists (bulk-like / inlet / outlet) once at
//! construction, so the hot bulk loop carries no branch on cell type.

use crate::equilibrium::{equilibrium_d3q19, macroscopics_d3q19};
use crate::lattice::{opposite, Q19, W19};
use crate::mesh::{FluidMesh, SOLID};
use hemocloud_geometry::voxel::CellType;
use hemocloud_rt::pool;

/// Tunable parameters of a simulation.
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    /// BGK relaxation time τ (lattice units); kinematic viscosity is
    /// `ν = (τ - 1/2)/3`. Stability requires τ > 1/2.
    pub tau: f64,
    /// Peak inlet velocity (lattice units). Keep ≲ 0.1 for accuracy.
    pub u_max: f64,
    /// Unit vector of the inlet flow direction.
    pub flow_dir: (f64, f64, f64),
    /// Update cells in parallel (scoped threads) when the mesh has at
    /// least [`SolverConfig::parallel_threshold`] cells.
    pub parallel: bool,
    /// Minimum mesh size before parallelism pays for itself. Lower it to
    /// force the parallel path on small meshes (equivalence tests do).
    pub parallel_threshold: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            tau: 0.8,
            u_max: 0.05,
            flow_dir: (0.0, 0.0, 1.0),
            parallel: true,
            parallel_threshold: PARALLEL_THRESHOLD,
        }
    }
}

/// Per-step throughput record.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Lattice updates performed (fluid points × timesteps).
    pub updates: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Millions of fluid-point updates per second (paper Eq. 7).
    pub mflups: f64,
}

/// The flow solver.
pub struct Solver {
    mesh: FluidMesh,
    f: Vec<f64>,
    f_tmp: Vec<f64>,
    omega: f64,
    config: SolverConfig,
    /// Per-cell slot into `inlet_vel` (`u32::MAX` for non-inlet cells).
    inlet_slot: Vec<u32>,
    /// Prescribed velocity for each inlet cell.
    inlet_vel: Vec<[f64; 3]>,
    /// Cells sorted by update kind, precomputed once so the hot loop does
    /// not re-dispatch on `mesh.cell_type(cell)` every step.
    kinds: KindLists,
    steps_taken: u64,
}

/// Ascending per-kind cell index lists. `bulk` holds every cell that
/// takes the plain BGK collide path (bulk *and* wall fluid — bounce-back
/// is handled in the gather, exactly as the old `_ =>` match arm did);
/// `inlet` and `outlet` hold the Dirichlet/zero-pressure cells.
struct KindLists {
    bulk: Vec<u32>,
    inlet: Vec<u32>,
    outlet: Vec<u32>,
}

impl KindLists {
    fn build(mesh: &FluidMesh) -> Self {
        let mut bulk = Vec::new();
        let mut inlet = Vec::new();
        let mut outlet = Vec::new();
        for cell in 0..mesh.len() {
            match mesh.cell_type(cell) {
                CellType::Inlet => inlet.push(cell as u32),
                CellType::Outlet => outlet.push(cell as u32),
                _ => bulk.push(cell as u32),
            }
        }
        Self { bulk, inlet, outlet }
    }

    /// The sub-range of an (ascending) list falling in `[first, end)`.
    fn in_range(list: &[u32], first: usize, end: usize) -> &[u32] {
        let lo = list.partition_point(|&c| (c as usize) < first);
        let hi = list.partition_point(|&c| (c as usize) < end);
        &list[lo..hi]
    }
}

/// Default minimum mesh size before thread parallelism pays for itself.
const PARALLEL_THRESHOLD: usize = 8192;

impl Solver {
    /// Initialize the solver at rest (`ρ = 1`, `u = 0`) and precompute the
    /// inlet Poiseuille profile.
    pub fn new(mesh: FluidMesh, config: SolverConfig) -> Self {
        assert!(config.tau > 0.5, "tau must exceed 1/2 for stability");
        let n = mesh.len();
        let mut f = vec![0.0; n * Q19];
        for cell in 0..n {
            for q in 0..Q19 {
                f[cell * Q19 + q] = W19[q];
            }
        }
        let f_tmp = f.clone();

        let (inlet_slot, inlet_vel) = Self::poiseuille_profile(&mesh, &config);
        let kinds = KindLists::build(&mesh);

        Self {
            mesh,
            f,
            f_tmp,
            omega: 1.0 / config.tau,
            config,
            inlet_slot,
            inlet_vel,
            kinds,
            steps_taken: 0,
        }
    }

    /// Compute the prescribed inlet velocities: a parabolic profile over
    /// the inlet cross-section, `u(r) = u_max (1 - (r/R)²)` along the flow
    /// direction.
    fn poiseuille_profile(mesh: &FluidMesh, config: &SolverConfig) -> (Vec<u32>, Vec<[f64; 3]>) {
        poiseuille_profile_for(mesh, config)
    }
}

/// Prescribed inlet velocities for a mesh: a parabolic (Poiseuille) profile
/// over the inlet cross-section. Returns a per-cell slot vector
/// (`u32::MAX` for non-inlet cells) and the per-inlet-cell velocities.
/// Shared by [`Solver`] and [`crate::ranked::RankedSolver`] so the two
/// impose bitwise-identical boundary data.
pub fn poiseuille_profile_for(
    mesh: &FluidMesh,
    config: &SolverConfig,
) -> (Vec<u32>, Vec<[f64; 3]>) {
    {
        // Block-scoped to keep the body identical to the original inline
        // implementation (bitwise-identical boundary data matters to the
        // ranked-solver equivalence test).
        let inlets = mesh.cells_of_type(CellType::Inlet);
        let mut slot = vec![u32::MAX; mesh.len()];
        if inlets.is_empty() {
            return (slot, Vec::new());
        }
        let d = config.flow_dir;
        let dn = (d.0 * d.0 + d.1 * d.1 + d.2 * d.2).sqrt();
        assert!(dn > 0.0, "flow direction must be nonzero");
        let d = (d.0 / dn, d.1 / dn, d.2 / dn);

        // Centroid of the inlet cells.
        let mut cx = 0.0;
        let mut cy = 0.0;
        let mut cz = 0.0;
        for &cell in &inlets {
            let (x, y, z) = mesh.coords(cell);
            cx += x as f64;
            cy += y as f64;
            cz += z as f64;
        }
        let inv = 1.0 / inlets.len() as f64;
        let (cx, cy, cz) = (cx * inv, cy * inv, cz * inv);

        // Radial distance of each inlet cell from the flow axis.
        let radial = |x: f64, y: f64, z: f64| -> f64 {
            let (px, py, pz) = (x - cx, y - cy, z - cz);
            let along = px * d.0 + py * d.1 + pz * d.2;
            let (rx, ry, rz) = (px - along * d.0, py - along * d.1, pz - along * d.2);
            (rx * rx + ry * ry + rz * rz).sqrt()
        };
        let mut r_max = 0.0f64;
        let mut radii = Vec::with_capacity(inlets.len());
        for &cell in &inlets {
            let (x, y, z) = mesh.coords(cell);
            let r = radial(x as f64, y as f64, z as f64);
            r_max = r_max.max(r);
            radii.push(r);
        }
        let r_edge = r_max + 0.5; // wall sits half a voxel beyond the last cell

        let mut vel = Vec::with_capacity(inlets.len());
        for (&cell, &r) in inlets.iter().zip(&radii) {
            let u = config.u_max * (1.0 - (r / r_edge) * (r / r_edge));
            slot[cell] = vel.len() as u32;
            vel.push([u * d.0, u * d.1, u * d.2]);
        }
        (slot, vel)
    }
}

impl Solver {
    /// The mesh being simulated.
    pub fn mesh(&self) -> &FluidMesh {
        &self.mesh
    }

    /// Solver configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Number of timesteps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Pull-scheme gather with bounce-back: the value arriving along `q`
    /// comes from the neighbor opposite `q`; a solid link reflects this
    /// cell's own opposite-direction value from the previous step.
    #[inline]
    fn gather(mesh: &FluidMesh, src: &[f64], cell: usize) -> [f64; Q19] {
        let mut fin = [0.0f64; Q19];
        let row = mesh.neighbor_row(cell);
        for q in 0..Q19 {
            let nb = row[opposite(q)];
            fin[q] = if nb == SOLID {
                src[cell * Q19 + opposite(q)]
            } else {
                src[nb as usize * Q19 + q]
            };
        }
        fin
    }

    /// BGK collide for a bulk (or wall) fluid cell — the branch-free hot
    /// kernel.
    #[inline]
    fn update_bulk_cell(mesh: &FluidMesh, src: &[f64], omega: f64, cell: usize, out: &mut [f64]) {
        let fin = Self::gather(mesh, src, cell);
        let (rho, ux, uy, uz) = macroscopics_d3q19(&fin);
        let mut feq = [0.0f64; Q19];
        equilibrium_d3q19(rho, ux, uy, uz, &mut feq);
        for q in 0..Q19 {
            out[q] = fin[q] - omega * (fin[q] - feq[q]);
        }
    }

    /// Dirichlet velocity inlet: equilibrium at the prescribed profile
    /// velocity and the gathered density.
    #[inline]
    fn update_inlet_cell(
        mesh: &FluidMesh,
        src: &[f64],
        inlet_slot: &[u32],
        inlet_vel: &[[f64; 3]],
        cell: usize,
        out: &mut [f64],
    ) {
        let fin = Self::gather(mesh, src, cell);
        let (rho, _, _, _) = macroscopics_d3q19(&fin);
        let v = inlet_vel[inlet_slot[cell] as usize];
        let mut feq = [0.0f64; Q19];
        equilibrium_d3q19(rho, v[0], v[1], v[2], &mut feq);
        out[..Q19].copy_from_slice(&feq);
    }

    /// Zero-pressure outlet: equilibrium at unit density and the gathered
    /// velocity.
    #[inline]
    fn update_outlet_cell(mesh: &FluidMesh, src: &[f64], cell: usize, out: &mut [f64]) {
        let fin = Self::gather(mesh, src, cell);
        let (_, ux, uy, uz) = macroscopics_d3q19(&fin);
        let mut feq = [0.0f64; Q19];
        equilibrium_d3q19(1.0, ux, uy, uz, &mut feq);
        out[..Q19].copy_from_slice(&feq);
    }

    /// Update every destination cell in `[first_cell, first_cell + out.len()
    /// / Q19)`, with `out` the corresponding sub-slice of the destination
    /// array. Runs the three kind loops (bulk, inlet, outlet) over the
    /// precomputed index lists; each cell's 19 values are a pure function
    /// of `src`, so any partition of the cell range produces bit-identical
    /// results.
    #[allow(clippy::too_many_arguments)]
    fn update_range(
        mesh: &FluidMesh,
        src: &[f64],
        omega: f64,
        inlet_slot: &[u32],
        inlet_vel: &[[f64; 3]],
        kinds: &KindLists,
        first_cell: usize,
        out: &mut [f64],
    ) {
        let end_cell = first_cell + out.len() / Q19;
        for &cell in KindLists::in_range(&kinds.bulk, first_cell, end_cell) {
            let cell = cell as usize;
            let out = &mut out[(cell - first_cell) * Q19..][..Q19];
            Self::update_bulk_cell(mesh, src, omega, cell, out);
        }
        for &cell in KindLists::in_range(&kinds.inlet, first_cell, end_cell) {
            let cell = cell as usize;
            let out = &mut out[(cell - first_cell) * Q19..][..Q19];
            Self::update_inlet_cell(mesh, src, inlet_slot, inlet_vel, cell, out);
        }
        for &cell in KindLists::in_range(&kinds.outlet, first_cell, end_cell) {
            let cell = cell as usize;
            let out = &mut out[(cell - first_cell) * Q19..][..Q19];
            Self::update_outlet_cell(mesh, src, cell, out);
        }
    }

    /// Advance one timestep.
    pub fn step(&mut self) {
        let mesh = &self.mesh;
        let src = &self.f;
        let omega = self.omega;
        let inlet_slot = &self.inlet_slot;
        let inlet_vel = &self.inlet_vel;
        let kinds = &self.kinds;
        let dst = &mut self.f_tmp;

        if self.config.parallel && mesh.len() >= self.config.parallel_threshold {
            // One contiguous block of whole cells per pool worker; the
            // pool is spawned once per process, so stepping never spawns
            // OS threads.
            let pool = pool::global();
            let cells_per_block = mesh.len().div_ceil(pool.threads()).max(1);
            pool.par_chunks_mut(dst, cells_per_block * Q19, |block, out| {
                let first_cell = block * cells_per_block;
                Self::update_range(
                    mesh, src, omega, inlet_slot, inlet_vel, kinds, first_cell, out,
                );
            });
        } else {
            Self::update_range(mesh, src, omega, inlet_slot, inlet_vel, kinds, 0, dst);
        }

        std::mem::swap(&mut self.f, &mut self.f_tmp);
        self.steps_taken += 1;
    }

    /// Run `steps` timesteps and report throughput.
    pub fn run(&mut self, steps: u64) -> RunStats {
        let start = std::time::Instant::now();
        for _ in 0..steps {
            self.step();
        }
        let seconds = start.elapsed().as_secs_f64();
        let updates = steps * self.mesh.len() as u64;
        RunStats {
            updates,
            seconds,
            mflups: if seconds > 0.0 {
                updates as f64 / seconds / 1e6
            } else {
                0.0
            },
        }
    }

    /// Density and velocity at a fluid cell.
    pub fn macroscopics(&self, cell: usize) -> (f64, f64, f64, f64) {
        let mut f = [0.0; Q19];
        f.copy_from_slice(&self.f[cell * Q19..(cell + 1) * Q19]);
        macroscopics_d3q19(&f)
    }

    /// Total mass (sum of densities over all cells).
    pub fn total_mass(&self) -> f64 {
        (0..self.mesh.len()).map(|c| self.macroscopics(c).0).sum()
    }

    /// Maximum velocity magnitude over all cells.
    pub fn max_velocity(&self) -> f64 {
        (0..self.mesh.len())
            .map(|c| {
                let (_, ux, uy, uz) = self.macroscopics(c);
                (ux * ux + uy * uy + uz * uz).sqrt()
            })
            .fold(0.0, f64::max)
    }

    /// Raw distribution access for checkpoint/equivalence tests.
    pub fn distributions(&self) -> &[f64] {
        &self.f
    }

    /// Add `delta` to the rest population of the first fluid cell — a
    /// local mass/pressure perturbation, useful for conservation tests and
    /// relaxation demos.
    pub fn bump_first_cell(&mut self, delta: f64) {
        self.f[0] += delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemocloud_geometry::anatomy::CylinderSpec;
    use hemocloud_geometry::classify::classify_walls;
    use hemocloud_geometry::voxel::VoxelGrid;

    fn closed_box_solver() -> Solver {
        // A sealed box: no inlets/outlets, so mass is exactly conserved.
        let mut g = VoxelGrid::filled(6, 6, 6, 1.0, CellType::Bulk);
        classify_walls(&mut g);
        Solver::new(FluidMesh::build(&g), SolverConfig::default())
    }

    #[test]
    fn equilibrium_rest_state_is_stationary() {
        let mut s = closed_box_solver();
        let before = s.distributions().to_vec();
        for _ in 0..5 {
            s.step();
        }
        for (a, b) in before.iter().zip(s.distributions()) {
            assert!((a - b).abs() < 1e-14, "rest state drifted: {a} vs {b}");
        }
    }

    #[test]
    fn closed_box_conserves_mass() {
        let mut s = closed_box_solver();
        // Perturb through the public API: bump one cell's rest population.
        s.bump_first_cell(0.01);
        let m0 = s.total_mass();
        for _ in 0..50 {
            s.step();
        }
        let m1 = s.total_mass();
        assert!(
            (m0 - m1).abs() < 1e-9 * m0,
            "mass drifted: {m0} -> {m1}"
        );
    }

    #[test]
    fn bump_first_cell_touches_only_the_rest_population() {
        let mut s = closed_box_solver();
        let before = s.distributions().to_vec();
        let (rho0, ux0, uy0, uz0) = s.macroscopics(0);
        s.bump_first_cell(0.01);
        let after = s.distributions();
        // Exactly one entry changed: the rest population (q = 0) of cell 0.
        assert_eq!(after[0], before[0] + 0.01);
        for (i, (a, b)) in after.iter().zip(&before).enumerate().skip(1) {
            assert_eq!(a, b, "entry {i} changed");
        }
        // The rest direction carries no momentum: density rises, velocity
        // momentum is untouched (velocity = momentum / density).
        let (rho1, ux1, uy1, uz1) = s.macroscopics(0);
        assert_eq!(rho1, rho0 + 0.01);
        assert_eq!(ux1 * rho1, ux0 * rho0);
        assert_eq!(uy1 * rho1, uy0 * rho0);
        assert_eq!(uz1 * rho1, uz0 * rho0);
    }

    #[test]
    fn perturbation_decays_in_closed_box() {
        let mut s = closed_box_solver();
        s.f[0] += 0.01;
        for _ in 0..300 {
            s.step();
        }
        // Viscous dissipation returns the box to (a) rest.
        assert!(s.max_velocity() < 1e-4, "v = {}", s.max_velocity());
    }

    #[test]
    fn cylinder_flow_develops_and_stays_stable() {
        let g = CylinderSpec::default()
            .with_dimensions(3.0, 15.0)
            .with_resolution(8)
            .build();
        let mut s = Solver::new(FluidMesh::build(&g), SolverConfig::default());
        for _ in 0..200 {
            s.step();
        }
        let vmax = s.max_velocity();
        assert!(vmax > 0.2 * s.config.u_max, "flow failed to develop: {vmax}");
        assert!(vmax < 3.0 * s.config.u_max, "flow blew up: {vmax}");
        assert!(s.distributions().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn parallel_and_serial_agree_bitwise() {
        // parallel_threshold: 0 forces the threaded path on this small
        // cylinder, so the test genuinely compares the two schedules.
        let g = CylinderSpec::default()
            .with_dimensions(3.0, 12.0)
            .with_resolution(8)
            .build();
        let mesh = FluidMesh::build(&g);
        let mut a = Solver::new(
            mesh.clone(),
            SolverConfig {
                parallel: false,
                ..Default::default()
            },
        );
        let mut b = Solver::new(
            mesh,
            SolverConfig {
                parallel: true,
                parallel_threshold: 0,
                ..Default::default()
            },
        );
        for _ in 0..20 {
            a.step();
            b.step();
        }
        for (x, y) in a.distributions().iter().zip(b.distributions()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn stepping_never_spawns_threads_beyond_the_pool() {
        // The motivating bug for the pool: `step()` used to spawn and
        // join fresh OS threads on every call. Now thread spawns are
        // bounded by the pool's fixed complement for an entire run.
        let pool = hemocloud_rt::pool::global();
        let spawned_before = pool.spawned_threads();
        assert!(
            spawned_before < pool.threads(),
            "pool spawns are bounded by its width minus the caller"
        );
        let g = CylinderSpec::default()
            .with_dimensions(3.0, 12.0)
            .with_resolution(8)
            .build();
        let mut s = Solver::new(
            FluidMesh::build(&g),
            SolverConfig {
                parallel: true,
                parallel_threshold: 0,
                ..Default::default()
            },
        );
        for _ in 0..100 {
            s.step();
        }
        assert_eq!(
            pool.spawned_threads(),
            spawned_before,
            "100 steps must not spawn a single extra OS thread"
        );
        assert!(s.distributions().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn inlet_profile_is_parabolic() {
        let g = CylinderSpec::default()
            .with_dimensions(4.0, 12.0)
            .with_resolution(12)
            .build();
        let mesh = FluidMesh::build(&g);
        let s = Solver::new(mesh, SolverConfig::default());
        // Peak prescribed velocity is near u_max, edge velocities near 0.
        let peak = s
            .inlet_vel
            .iter()
            .map(|v| (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt())
            .fold(0.0f64, f64::max);
        assert!(peak > 0.8 * s.config.u_max, "peak = {peak}");
        assert!(peak <= s.config.u_max + 1e-12);
    }

    #[test]
    #[should_panic(expected = "tau must exceed")]
    fn unstable_tau_rejected() {
        let mut g = VoxelGrid::filled(4, 4, 4, 1.0, CellType::Bulk);
        classify_walls(&mut g);
        let _ = Solver::new(
            FluidMesh::build(&g),
            SolverConfig {
                tau: 0.4,
                ..Default::default()
            },
        );
    }
}
